#!/usr/bin/env bash
# Full verification matrix: builds and runs the test suite in three
# configurations — plain, AddressSanitizer+UBSan, and ThreadSanitizer.
# The TSan leg is what proves the parallel execution engine free of data
# races; the differential tests in parallel_exec_test.cc drive every
# parallel operator at DOP 4 under it.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_config() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build + ctest (${dir}) ==="
  cmake -B "${dir}" -S . -DTANGO_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "=== ${name}: OK ==="
  echo
}

run_config "plain"  build           ""
run_config "asan"   build-asan      address
run_config "tsan"   build-tsan      thread

echo "all configurations passed"
