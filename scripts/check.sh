#!/usr/bin/env bash
# Full verification matrix: builds and runs the test suite in three
# configurations — plain, AddressSanitizer+UBSan, and ThreadSanitizer.
# The TSan leg is what proves the parallel execution engine free of data
# races; the differential tests in parallel_exec_test.cc drive every
# parallel operator at DOP 4 under it.
#
# The robustness suites (fault_matrix_test, wire_fuzz_test, recovery_test)
# are additionally invoked by name under both sanitizer legs: the fault
# matrix and the wire fuzzer are exactly the tests whose failure mode is
# memory corruption / a race in the recovery paths, so they must stay green
# under ASan and TSan even if the main ctest selection is ever narrowed.
#
# The observability suites (obs_test, trace_test, explain_analyze_test) get
# the same treatment — the metrics registry and trace recorder are written
# to concurrently by the pool workers and prefetch producers, so TSan is
# their real referee. Every leg additionally fails if any test binary
# printed a metrics-registry leak warning (an expect-zero gauge, e.g.
# pool.queue_depth or query.active, that did not drain back to zero).
#
# The adaptive-plan-management suites (plan_cache_test, feedback_test,
# fingerprint_test) join the by-name matrix too: the sharded plan cache and
# the feedback store are hit concurrently from every query thread, and
# plan_cache_test's ConcurrentHammer only means something under TSan.
#
# The durability suites (wal_recovery_test, write_churn_test) are the write
# path's referee: the crash matrix kills and recovers the engine at injected
# LSN boundaries (torn tails, partial fsyncs), and the churn test races the
# temporal-update writer against live queries — exactly the code whose
# failure mode is a racy log append or a use-after-free in undo, so both
# must stay green under ASan and TSan.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

ROBUSTNESS_SUITES='^(fault_matrix_test|wire_fuzz_test|recovery_test)$'
OBS_SUITES='^(obs_test|trace_test|explain_analyze_test)$'
ADAPT_SUITES='^(plan_cache_test|feedback_test|fingerprint_test)$'
# The batch/tuple differential sweeps: exec_property_test proves every
# operator bit-identical between Next and NextBatch at batch sizes
# {1,2,7,1024}, and parallel_exec_test does the same for the parallel
# variants at DOP 4 — ASan catches a moved-from row reused, TSan a racy
# block handoff, so both suites run under both sanitizers by name.
VECTOR_SUITES='^(exec_property_test|parallel_exec_test)$'
DURABILITY_SUITES='^(wal_recovery_test|write_churn_test)$'

# A stuck test under a sanitizer leg should fail the run, not hang it.
CTEST_TIMEOUT=600

# ctest rewrites LastTest.log on every invocation, so this runs after each
# one: no test binary may print a metrics-registry leak warning.
check_leaks() {
  local name="$1" dir="$2"
  if grep -q "metrics-registry leak" "${dir}/Testing/Temporary/LastTest.log"; then
    echo "=== ${name}: FAILED — metrics-registry leak warnings in test output ==="
    grep "metrics-registry leak" "${dir}/Testing/Temporary/LastTest.log"
    exit 1
  fi
}

run_config() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build + ctest (${dir}) ==="
  cmake -B "${dir}" -S . -DTANGO_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  # Sanitizer legs skip the `slow`-labeled suites in the broad pass (they
  # run 5-20x slower instrumented); the ones that matter under sanitizers
  # are then invoked by name below, so nothing slow is actually skipped —
  # it is just targeted. The plain leg runs everything.
  local label_filter=()
  if [[ -n "${sanitize}" ]]; then
    label_filter=(-LE slow)
  fi
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" --timeout "${CTEST_TIMEOUT}" "${label_filter[@]}")
  check_leaks "${name}" "${dir}"
  if [[ -n "${sanitize}" ]]; then
    echo "=== ${name}: robustness suites (fault matrix + wire fuzz + recovery) ==="
    (cd "${dir}" && ctest --output-on-failure -R "${ROBUSTNESS_SUITES}" --timeout "${CTEST_TIMEOUT}")
    check_leaks "${name}" "${dir}"
    echo "=== ${name}: observability suites (metrics + trace + explain analyze) ==="
    (cd "${dir}" && ctest --output-on-failure -R "${OBS_SUITES}" --timeout "${CTEST_TIMEOUT}")
    check_leaks "${name}" "${dir}"
    echo "=== ${name}: adaptive suites (plan cache + feedback + fingerprint) ==="
    (cd "${dir}" && ctest --output-on-failure -R "${ADAPT_SUITES}" --timeout "${CTEST_TIMEOUT}")
    check_leaks "${name}" "${dir}"
    echo "=== ${name}: vectorization suites (batch/tuple differential + parallel) ==="
    (cd "${dir}" && ctest --output-on-failure -R "${VECTOR_SUITES}" --timeout "${CTEST_TIMEOUT}")
    check_leaks "${name}" "${dir}"
    echo "=== ${name}: durability suites (WAL crash matrix + write churn) ==="
    (cd "${dir}" && ctest --output-on-failure -R "${DURABILITY_SUITES}" --timeout "${CTEST_TIMEOUT}")
    check_leaks "${name}" "${dir}"
  fi
  echo "=== ${name}: OK ==="
  echo
}

run_config "plain"  build           ""
run_config "asan"   build-asan      address
run_config "tsan"   build-tsan      thread

echo "all configurations passed"
