#!/usr/bin/env bash
# Full verification matrix: builds and runs the test suite in three
# configurations — plain, AddressSanitizer+UBSan, and ThreadSanitizer.
# The TSan leg is what proves the parallel execution engine free of data
# races; the differential tests in parallel_exec_test.cc drive every
# parallel operator at DOP 4 under it.
#
# The robustness suites (fault_matrix_test, wire_fuzz_test, recovery_test)
# are additionally invoked by name under both sanitizer legs: the fault
# matrix and the wire fuzzer are exactly the tests whose failure mode is
# memory corruption / a race in the recovery paths, so they must stay green
# under ASan and TSan even if the main ctest selection is ever narrowed.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

ROBUSTNESS_SUITES='^(fault_matrix_test|wire_fuzz_test|recovery_test)$'

run_config() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build + ctest (${dir}) ==="
  cmake -B "${dir}" -S . -DTANGO_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  if [[ -n "${sanitize}" ]]; then
    echo "=== ${name}: robustness suites (fault matrix + wire fuzz + recovery) ==="
    (cd "${dir}" && ctest --output-on-failure -R "${ROBUSTNESS_SUITES}")
  fi
  echo "=== ${name}: OK ==="
  echo
}

run_config "plain"  build           ""
run_config "asan"   build-asan      address
run_config "tsan"   build-tsan      thread

echo "all configurations passed"
