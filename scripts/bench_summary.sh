#!/usr/bin/env bash
# Builds and runs the committed-baseline benches and writes their JSON
# summaries at the repo root — the perf-trajectory baselines the repo
# tracks in review as diffs, not surprises:
#
#   BENCH_vectorized.json   closed-loop vectorization bench (EXPERIMENTS.md
#                           E14) — re-run after any hot-path change.
#   BENCH_write_churn.json  durable write path (EXPERIMENTS.md E15) —
#                           query latency quiet vs under temporal-update
#                           churn, plus recovery-time vs log-length with
#                           and without a checkpoint.
#
# Usage: scripts/bench_summary.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j "$(nproc)" --target bench_vectorized bench_write_churn
"./${BUILD}/bench/bench_vectorized" BENCH_vectorized.json
echo "BENCH_vectorized.json updated"
"./${BUILD}/bench/bench_write_churn" BENCH_write_churn.json
echo "BENCH_write_churn.json updated"
