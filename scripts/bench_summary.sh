#!/usr/bin/env bash
# Builds and runs the closed-loop vectorization bench and writes its JSON
# summary to BENCH_vectorized.json at the repo root — the committed
# perf-trajectory baseline for the block execution engine (EXPERIMENTS.md
# E14). Re-run after any hot-path change and commit the refreshed JSON so
# regressions show up in review as a diff, not a surprise.
#
# Usage: scripts/bench_summary.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j "$(nproc)" --target bench_vectorized
"./${BUILD}/bench_vectorized" BENCH_vectorized.json
echo "BENCH_vectorized.json updated"
