#include "workload/uis.h"

#include "common/date.h"
#include "common/rng.h"

#include <cmath>

// GCC 12 raises a false-positive -Wmaybe-uninitialized inside std::variant
// move construction when Value temporaries are built in push_back at -O2.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace tango {
namespace workload {

namespace {

/// Period start distribution reproducing the paper's observations: most
/// data after 1992, ~65% of starts in 1995 or later.
int64_t PositionStart(Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.10) {
    // Early history 1980..1990.
    return rng->Uniform(date::Jan1(1980), date::Jan1(1990) - 1);
  }
  if (u < 0.35) {
    // 1990..1995.
    return rng->Uniform(date::Jan1(1990), date::Jan1(1995) - 1);
  }
  // 65%: 1995..1998.
  return rng->Uniform(date::Jan1(1995), date::Jan1(1998) - 1);
}

/// Assignment durations: mostly months-to-years, skewed short.
int64_t PositionDuration(Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.5) return rng->Uniform(30, 365);
  if (u < 0.85) return rng->Uniform(365, 3 * 365);
  return rng->Uniform(3 * 365, 8 * 365);
}

}  // namespace

std::string PositionDdlColumns() {
  return "(PosID INT, EmpID INT, EmpName VARCHAR(12), PayRate DOUBLE, "
         "Dept INT, Status VARCHAR(8), T1 INT, T2 INT)";
}

std::vector<Tuple> GeneratePositionRows(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(rows);
  // Position ids: on average ~20 assignments per position over time, with a
  // skew so some positions have many more. This matches the property the
  // paper's Query 3 exhibits: many employees hold the same position
  // concurrently, so the all-pairs temporal self-join result outgrows its
  // arguments once most of the data is in range.
  const int64_t num_positions =
      std::max<int64_t>(1, static_cast<int64_t>(rows) / 20);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t posid = 1 + rng.Skewed(num_positions, 0.3);
    const int64_t empid = rng.Uniform(0, 49971);
    const int64_t t1 = PositionStart(&rng);
    const int64_t t2 = t1 + PositionDuration(&rng);
    Tuple t;
    t.push_back(Value(posid));
    t.push_back(Value(empid));
    t.push_back(Value("EMP" + std::to_string(empid)));
    // Hourly pay rates: exponential around a median near $6, so the
    // paper's "pay rate greater than $10" predicate is selective (~25%).
    t.push_back(Value(3.0 - 5.0 * std::log(1.0 - rng.NextDouble())));
    t.push_back(Value(rng.Uniform(1, 40)));             // Dept
    std::string status = rng.Bernoulli(0.8) ? "ACTIVE" : "LEAVE";
    t.push_back(Value(std::move(status)));
    t.push_back(Value(t1));
    t.push_back(Value(t2));
    out.push_back(std::move(t));
  }
  return out;
}

Status LoadUis(dbms::Engine* db, const UisOptions& options) {
  // EMPLOYEE: 31 attributes ~276 bytes/tuple (13.8 MB over 49,972 rows).
  std::string employee_ddl = "CREATE TABLE EMPLOYEE (EmpID INT, "
                             "EmpName VARCHAR(12), Addr VARCHAR(24), "
                             "Dept INT, Rank INT, Salary DOUBLE, "
                             "Phone INT, Office INT";
  for (int i = 9; i <= 31; ++i) {
    employee_ddl += ", Attr" + std::to_string(i) + " VARCHAR(8)";
  }
  employee_ddl += ")";
  TANGO_RETURN_IF_ERROR(db->Execute(employee_ddl).status());

  Rng rng(options.seed ^ 0x5151);
  std::vector<Tuple> employees;
  employees.reserve(options.employee_rows);
  for (size_t i = 0; i < options.employee_rows; ++i) {
    Tuple t;
    t.push_back(Value(static_cast<int64_t>(i)));
    t.push_back(Value("EMP" + std::to_string(i)));
    t.push_back(Value(std::to_string(rng.Uniform(1, 9999)) + " " +
                      rng.Identifier(10) + " ST"));
    t.push_back(Value(rng.Uniform(1, 40)));
    t.push_back(Value(rng.Uniform(1, 9)));
    t.push_back(Value(20000.0 + rng.NextDouble() * 80000.0));
    t.push_back(Value(rng.Uniform(2000000, 9999999)));
    t.push_back(Value(rng.Uniform(100, 899)));
    // Short filler attributes sized so the 31-column tuple averages the
    // paper's ~276 bytes (13.8 MB over 49,972 rows).
    for (int a = 9; a <= 31; ++a) t.push_back(Value(rng.Identifier(3)));
    employees.push_back(std::move(t));
  }
  TANGO_RETURN_IF_ERROR(db->BulkLoad("EMPLOYEE", employees));

  TANGO_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE POSITION " + PositionDdlColumns()).status());
  TANGO_RETURN_IF_ERROR(db->BulkLoad(
      "POSITION", GeneratePositionRows(options.position_rows, options.seed)));

  if (options.build_indexes) {
    TANGO_RETURN_IF_ERROR(
        db->Execute("CREATE INDEX IX_EMP_NAME ON EMPLOYEE (EmpName)").status());
    TANGO_RETURN_IF_ERROR(
        db->Execute("CREATE INDEX IX_EMP_ID ON EMPLOYEE (EmpID)").status());
    TANGO_RETURN_IF_ERROR(
        db->Execute("CREATE INDEX IX_POS_T1 ON POSITION (T1)").status());
    TANGO_RETURN_IF_ERROR(
        db->Execute("CREATE INDEX IX_POS_T2 ON POSITION (T2)").status());
  }
  if (options.analyze) {
    TANGO_RETURN_IF_ERROR(db->Execute("ANALYZE").status());
  }
  return Status::OK();
}

Status LoadPositionVariant(dbms::Engine* db, const std::string& name,
                           size_t rows, const UisOptions& options) {
  TANGO_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE " + name + " " + PositionDdlColumns())
          .status());
  TANGO_RETURN_IF_ERROR(
      db->BulkLoad(name, GeneratePositionRows(rows, options.seed)));
  if (options.build_indexes) {
    TANGO_RETURN_IF_ERROR(
        db->Execute("CREATE INDEX IX_" + name + "_T1 ON " + name + " (T1)")
            .status());
  }
  if (options.analyze) {
    TANGO_RETURN_IF_ERROR(db->Execute("ANALYZE " + name).status());
  }
  return Status::OK();
}

Status LoadUniformR(dbms::Engine* db, const std::string& name, size_t rows,
                    uint64_t seed) {
  TANGO_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE " + name +
                  " (ID INT, VAL INT, T1 INT, T2 INT)")
          .status());
  Rng rng(seed);
  const int64_t lo = date::Jan1(1995);
  const int64_t hi = date::FromYmd(1999, 12, 25);  // so T2 <= 2000-01-01
  std::vector<Tuple> out;
  out.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t t1 = rng.Uniform(lo, hi);
    out.push_back({Value(static_cast<int64_t>(i)), Value(rng.Uniform(0, 999)),
                   Value(t1), Value(t1 + 7)});
  }
  TANGO_RETURN_IF_ERROR(db->BulkLoad(name, out));
  return db->Execute("ANALYZE " + name).status();
}

}  // namespace workload
}  // namespace tango
