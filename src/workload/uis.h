#ifndef TANGO_WORKLOAD_UIS_H_
#define TANGO_WORKLOAD_UIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dbms/engine.h"

namespace tango {
namespace workload {

/// \brief Synthetic stand-in for the University Information System dataset
/// (TIMECENTER CD-1) the paper's experiments use.
///
/// Matches every statistic the paper reports:
///  * EMPLOYEE: 49,972 tuples x 31 attributes, ~13.8 MB;
///  * POSITION: 83,857 tuples x 8 attributes, ~6.7 MB;
///  * eight POSITION variants of 8k..74k tuples;
///  * period mass concentrated after 1992, ~65% of POSITION periods
///    starting in 1995 or later (the property Query 3 hinges on);
///  * position ids shared by a handful of employees over time (the
///    grouping-key skew temporal aggregation exercises).
struct UisOptions {
  size_t employee_rows = 49972;
  size_t position_rows = 83857;
  uint64_t seed = 42;
  /// Build the secondary indexes the experiments rely on (EMPLOYEE.EMPNAME
  /// for the nested-loop join of Query 4; POSITION.T1/T2 for selections).
  bool build_indexes = true;
  /// Run ANALYZE after loading.
  bool analyze = true;
};

/// Creates and populates EMPLOYEE and POSITION in the DBMS.
Status LoadUis(dbms::Engine* db, const UisOptions& options);

/// Creates a POSITION variant (same generator, first `rows` tuples) named
/// e.g. POSITION_8000, as the paper's eight size variants.
Status LoadPositionVariant(dbms::Engine* db, const std::string& name,
                           size_t rows, const UisOptions& options);

/// Creates the §3.3 selectivity relation: `rows` tuples with 7-day periods
/// uniformly distributed over 1995-01-01 .. 2000-01-01.
Status LoadUniformR(dbms::Engine* db, const std::string& name, size_t rows,
                    uint64_t seed = 7);

/// Generates the POSITION rows (shared by LoadUis and the variants).
std::vector<Tuple> GeneratePositionRows(size_t rows, uint64_t seed);

/// POSITION's schema DDL column list (without table name).
std::string PositionDdlColumns();

}  // namespace workload
}  // namespace tango

#endif  // TANGO_WORKLOAD_UIS_H_
