#ifndef TANGO_WORKLOAD_WRITER_H_
#define TANGO_WORKLOAD_WRITER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/rng.h"
#include "dbms/connection.h"

namespace tango {
namespace workload {

/// Knobs of the temporal-update churn stream.
struct WriterOptions {
  std::string table = "POSITION";
  uint64_t seed = 99;
  /// Fraction of transactions voluntarily rolled back (exercises undo).
  double abort_fraction = 0.1;
  /// Lock-conflict (kAborted) retries per transaction before giving up.
  int max_retries = 64;
  /// Position-id universe the churn picks from (matches the generator's
  /// ~20-assignments-per-position density when table size / 20).
  int64_t num_positions = 4000;
  /// The advancing "current time": the first transaction's day.
  int64_t start_day = 0;  // 0 = 1998-01-01
};

/// What the stream did (reads are safe while the writer runs).
struct WriterCounters {
  std::atomic<uint64_t> txns_committed{0};
  std::atomic<uint64_t> txns_rolled_back{0};
  std::atomic<uint64_t> lock_retries{0};
  std::atomic<uint64_t> txns_failed{0};  // retry budget exhausted
  std::atomic<uint64_t> statements{0};
};

/// \brief Streams temporal-update transactions against a live table while
/// queries run — the churn half of the durability experiments.
///
/// Each transaction is the canonical temporal-update pattern over the
/// POSITION-shaped table: BEGIN; close the position's open versions
/// (UPDATE .. SET T2 = now WHERE PosID = p AND T2 > now); INSERT the new
/// version valid from `now`; COMMIT — or ROLLBACK for an `abort_fraction`
/// of transactions. Time advances monotonically across transactions.
///
/// A lock conflict (the engine's no-wait table locks return kAborted)
/// rolls the transaction back and retries it with fresh jittered backoff;
/// the whole stream is single-threaded over its own Connection (its own
/// engine session), so it conflicts only with other writers, never with
/// itself.
class WriterGenerator {
 public:
  WriterGenerator(dbms::Connection* conn, WriterOptions options);
  ~WriterGenerator() { (void)Stop(); }

  WriterGenerator(const WriterGenerator&) = delete;
  WriterGenerator& operator=(const WriterGenerator&) = delete;

  /// Runs `txns` transactions synchronously on the calling thread.
  Status Run(size_t txns);

  /// Starts the stream on a background thread (runs until Stop or until
  /// `txns` transactions completed). No-op if already running.
  void Start(size_t txns = SIZE_MAX);

  /// Stops the background stream and joins it; returns the first error the
  /// stream hit (retry exhaustion is counted, not an error).
  Status Stop();

  const WriterCounters& counters() const { return counters_; }

 private:
  /// One churn transaction, including conflict retries.
  Status RunOne();

  dbms::Connection* conn_;
  WriterOptions options_;
  Rng rng_;
  int64_t now_;
  WriterCounters counters_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  Status background_status_;
};

}  // namespace workload
}  // namespace tango

#endif  // TANGO_WORKLOAD_WRITER_H_
