#include "workload/writer.h"

#include <chrono>
#include <utility>

#include "common/date.h"

namespace tango {
namespace workload {

WriterGenerator::WriterGenerator(dbms::Connection* conn, WriterOptions options)
    : conn_(conn),
      options_(std::move(options)),
      rng_(options_.seed),
      now_(options_.start_day != 0 ? options_.start_day : date::Jan1(1998)) {}

Status WriterGenerator::RunOne() {
  const int64_t posid = 1 + rng_.Skewed(options_.num_positions, 0.3);
  const int64_t empid = rng_.Uniform(0, 49971);
  now_ += rng_.Uniform(0, 2);
  const int64_t t2 = now_ + rng_.Uniform(30, 3 * 365);
  const bool voluntary_abort = rng_.Bernoulli(options_.abort_fraction);

  const std::string now_s = std::to_string(now_);
  const std::string close_sql = "UPDATE " + options_.table + " SET T2 = " +
                                now_s + " WHERE PosID = " +
                                std::to_string(posid) + " AND T2 > " + now_s;
  const std::string insert_sql =
      "INSERT INTO " + options_.table + " VALUES (" + std::to_string(posid) +
      ", " + std::to_string(empid) + ", 'EMP" + std::to_string(empid) +
      "', " + std::to_string(6.0 + rng_.NextDouble() * 10.0) + ", " +
      std::to_string(rng_.Uniform(1, 40)) + ", 'ACTIVE', " + now_s + ", " +
      std::to_string(t2) + ")";

  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    Status st = Status::OK();
    const char* stmts[] = {"BEGIN", close_sql.c_str(), insert_sql.c_str(),
                           voluntary_abort ? "ROLLBACK" : "COMMIT"};
    for (const char* sql : stmts) {
      counters_.statements.fetch_add(1, std::memory_order_relaxed);
      st = conn_->Execute(sql).status();
      if (!st.ok()) break;
    }
    if (st.ok()) {
      (voluntary_abort ? counters_.txns_rolled_back : counters_.txns_committed)
          .fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    // Clear whatever is open before deciding; ROLLBACK without an open
    // transaction is a no-op, so this is always safe.
    (void)conn_->Execute("ROLLBACK");
    if (st.code() != StatusCode::kAborted) return st;  // not a lock conflict
    counters_.lock_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(50 + rng_.Uniform(0, 200) * (attempt + 1)));
  }
  // Exhausted the conflict budget: counted, not fatal — the stream goes on.
  counters_.txns_failed.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WriterGenerator::Run(size_t txns) {
  for (size_t i = 0; i < txns && !stop_.load(std::memory_order_relaxed); ++i) {
    TANGO_RETURN_IF_ERROR(RunOne());
  }
  return Status::OK();
}

void WriterGenerator::Start(size_t txns) {
  if (running_.exchange(true)) return;
  stop_.store(false);
  background_status_ = Status::OK();
  thread_ = std::thread([this, txns] { background_status_ = Run(txns); });
}

Status WriterGenerator::Stop() {
  if (!running_.load()) return Status::OK();
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
  return background_status_;
}

}  // namespace workload
}  // namespace tango
