#ifndef TANGO_ALGEBRA_ALGEBRA_H_
#define TANGO_ALGEBRA_ALGEBRA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "expr/expr.h"

namespace tango {
namespace algebra {

/// Logical operators of TANGO's temporal algebra (Section 2/4 of the paper).
/// Temporal operators follow the conventions of the paper's running example:
/// every temporal relation carries the closed-open period attributes T1, T2.
enum class OpKind {
  kScan,        // base relation (always resides in the DBMS)
  kSelect,      // σ_P
  kProject,     // π_{f1..fn}
  kSort,        // sort_A
  kJoin,        // ⋈ (equijoin)
  kTJoin,       // ⋈^T temporal join: equijoin + period overlap + intersection
  kTAggregate,  // ξ^T temporal aggregation
  kDupElim,     // rdup: duplicate elimination
  kCoalesce,    // coal: merge value-equivalent tuples with adjacent periods
  kDifference,  // multiset difference
  kProduct,     // × Cartesian product
  kTransferM,   // T^M: DBMS -> middleware
  kTransferD,   // T^D: middleware -> DBMS
};

const char* OpKindName(OpKind kind);

/// One projection function: an expression over the input and its output name.
struct ProjectItem {
  ExprPtr expr;
  std::string name;
};

/// One aggregate of a temporal aggregation: the function, the argument
/// attribute (empty = COUNT(*)), and the output column name.
struct AggItem {
  AggFunc func = AggFunc::kCount;
  std::string arg;   // attribute reference, empty for COUNT(*)
  std::string name;  // e.g. "COUNTOFPOSID"
};

/// One sort criterion by attribute reference.
struct SortSpec {
  std::string attr;
  bool ascending = true;

  bool operator==(const SortSpec&) const = default;
};

struct Op;
using OpPtr = std::shared_ptr<const Op>;

/// \brief Immutable logical operator node.
///
/// Construction goes through the factory functions below, which derive and
/// validate the output schema; optimizer rules create variants by reusing
/// children (structural sharing).
struct Op {
  OpKind kind = OpKind::kScan;
  std::vector<OpPtr> children;

  // kScan
  std::string table;
  std::string alias;  // range variable; defaults to the table name

  // kSelect
  ExprPtr predicate;

  // kProject
  std::vector<ProjectItem> items;

  // kSort
  std::vector<SortSpec> sort_keys;

  // kJoin / kTJoin: equi pairs (left attr, right attr)
  std::vector<std::pair<std::string, std::string>> join_attrs;

  // kTAggregate
  std::vector<std::string> group_by;
  std::vector<AggItem> aggs;

  /// Derived output schema.
  Schema schema;

  /// Pretty tree rendering for EXPLAIN output and tests.
  std::string ToString(int indent = 0) const;

  /// One-line description of this node (no children).
  std::string Describe() const;

  /// Deep structural equality (used by memo deduplication at the top level;
  /// the memo itself compares children by group).
  bool Equals(const Op& other) const;

  /// Fingerprint of this node's own parameters (kind + params, not
  /// children); two nodes with equal fingerprints and equal child groups are
  /// duplicates in the memo.
  std::string ParamFingerprint() const;
};

// ---- factory functions (validate + derive schemas) ----

/// Base relation access; `schema` comes from the DBMS catalog via the
/// Statistics Collector. The alias re-qualifies columns (self-joins).
Result<OpPtr> Scan(std::string table, const Schema& schema,
                   std::string alias = "");

Result<OpPtr> Select(OpPtr child, ExprPtr predicate);

Result<OpPtr> Project(OpPtr child, std::vector<ProjectItem> items);

Result<OpPtr> Sort(OpPtr child, std::vector<SortSpec> keys);

/// Equijoin. Output schema: left columns then right columns.
Result<OpPtr> Join(OpPtr left, OpPtr right,
                   std::vector<std::pair<std::string, std::string>> attrs);

/// Temporal join: equijoin + Overlaps(left period, right period); output
/// periods are intersected. Output schema: left columns without T1/T2, then
/// right columns without the right join attrs and T1/T2, then T1, T2.
Result<OpPtr> TJoin(OpPtr left, OpPtr right,
                    std::vector<std::pair<std::string, std::string>> attrs);

/// Temporal aggregation ξ^T. Output schema: group-by columns, T1, T2, then
/// one column per aggregate.
Result<OpPtr> TAggregate(OpPtr child, std::vector<std::string> group_by,
                         std::vector<AggItem> aggs);

Result<OpPtr> DupElim(OpPtr child);

/// Coalescing: merges value-equivalent tuples whose periods overlap or are
/// adjacent. Requires T1/T2 in the child schema.
Result<OpPtr> Coalesce(OpPtr child);

/// Multiset difference (left minus right); schemas must be compatible.
Result<OpPtr> Difference(OpPtr left, OpPtr right);

Result<OpPtr> Product(OpPtr left, OpPtr right);

Result<OpPtr> TransferM(OpPtr child);
Result<OpPtr> TransferD(OpPtr child);

/// Replaces the children of `op` (same parameters), re-deriving the schema.
Result<OpPtr> WithChildren(const Op& op, std::vector<OpPtr> children);

/// True if the schema has the temporal attributes T1 and T2.
bool HasPeriod(const Schema& schema);

/// Positions of T1/T2 in a schema (both must exist; checked by HasPeriod).
Result<size_t> T1Index(const Schema& schema);
Result<size_t> T2Index(const Schema& schema);

}  // namespace algebra
}  // namespace tango

#endif  // TANGO_ALGEBRA_ALGEBRA_H_
