#include "algebra/algebra.h"

#include <algorithm>

namespace tango {
namespace algebra {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan: return "SCAN";
    case OpKind::kSelect: return "SELECT";
    case OpKind::kProject: return "PROJECT";
    case OpKind::kSort: return "SORT";
    case OpKind::kJoin: return "JOIN";
    case OpKind::kTJoin: return "TJOIN";
    case OpKind::kTAggregate: return "TAGGR";
    case OpKind::kDupElim: return "DUPELIM";
    case OpKind::kCoalesce: return "COALESCE";
    case OpKind::kDifference: return "DIFFERENCE";
    case OpKind::kProduct: return "PRODUCT";
    case OpKind::kTransferM: return "T^M";
    case OpKind::kTransferD: return "T^D";
  }
  return "?";
}

bool HasPeriod(const Schema& schema) {
  return schema.IndexOf("T1").ok() && schema.IndexOf("T2").ok();
}

Result<size_t> T1Index(const Schema& schema) { return schema.IndexOf("T1"); }
Result<size_t> T2Index(const Schema& schema) { return schema.IndexOf("T2"); }

namespace {

std::shared_ptr<Op> NewOp(OpKind kind, std::vector<OpPtr> children) {
  auto op = std::make_shared<Op>();
  op->kind = kind;
  op->children = std::move(children);
  return op;
}

}  // namespace

Result<OpPtr> Scan(std::string table, const Schema& schema,
                   std::string alias) {
  auto op = NewOp(OpKind::kScan, {});
  op->table = ToUpper(table);
  op->alias = alias.empty() ? op->table : ToUpper(alias);
  op->schema = schema.WithQualifier(op->alias);
  return OpPtr(op);
}

Result<OpPtr> Select(OpPtr child, ExprPtr predicate) {
  if (predicate == nullptr) return Status::InvalidArgument("null predicate");
  TANGO_RETURN_IF_ERROR(Bind(predicate, child->schema).status());
  auto op = NewOp(OpKind::kSelect, {child});
  op->predicate = std::move(predicate);
  op->schema = child->schema;
  return OpPtr(op);
}

Result<OpPtr> Project(OpPtr child, std::vector<ProjectItem> items) {
  if (items.empty()) return Status::InvalidArgument("empty projection");
  Schema schema;
  for (auto& item : items) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(item.expr, child->schema));
    Column col;
    col.name = ToUpper(item.name);
    TANGO_ASSIGN_OR_RETURN(col.type, InferType(bound, child->schema));
    schema.AddColumn(col);
    item.name = col.name;
  }
  auto op = NewOp(OpKind::kProject, {child});
  op->items = std::move(items);
  op->schema = std::move(schema);
  return OpPtr(op);
}

Result<OpPtr> Sort(OpPtr child, std::vector<SortSpec> keys) {
  if (keys.empty()) return Status::InvalidArgument("empty sort keys");
  for (auto& k : keys) {
    k.attr = ToUpper(k.attr);
    TANGO_RETURN_IF_ERROR(child->schema.IndexOf(k.attr).status());
  }
  auto op = NewOp(OpKind::kSort, {child});
  op->sort_keys = std::move(keys);
  op->schema = child->schema;
  return OpPtr(op);
}

Result<OpPtr> Join(OpPtr left, OpPtr right,
                   std::vector<std::pair<std::string, std::string>> attrs) {
  if (attrs.empty()) return Status::InvalidArgument("equijoin without attrs");
  for (auto& [l, r] : attrs) {
    l = ToUpper(l);
    r = ToUpper(r);
    TANGO_RETURN_IF_ERROR(left->schema.IndexOf(l).status());
    TANGO_RETURN_IF_ERROR(right->schema.IndexOf(r).status());
  }
  auto op = NewOp(OpKind::kJoin, {left, right});
  op->join_attrs = std::move(attrs);
  op->schema = Schema::Concat(left->schema, right->schema);
  return OpPtr(op);
}

Result<OpPtr> TJoin(OpPtr left, OpPtr right,
                    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!HasPeriod(left->schema) || !HasPeriod(right->schema)) {
    return Status::InvalidArgument("temporal join requires T1/T2 on both sides");
  }
  for (auto& [l, r] : attrs) {
    l = ToUpper(l);
    r = ToUpper(r);
    TANGO_RETURN_IF_ERROR(left->schema.IndexOf(l).status());
    TANGO_RETURN_IF_ERROR(right->schema.IndexOf(r).status());
  }
  // Output: left non-period columns, right columns minus join attrs and
  // period, then the intersected period T1, T2.
  Schema schema;
  TANGO_ASSIGN_OR_RETURN(size_t lt1, T1Index(left->schema));
  TANGO_ASSIGN_OR_RETURN(size_t lt2, T2Index(left->schema));
  for (size_t i = 0; i < left->schema.num_columns(); ++i) {
    if (i == lt1 || i == lt2) continue;
    schema.AddColumn(left->schema.column(i));
  }
  TANGO_ASSIGN_OR_RETURN(size_t rt1, T1Index(right->schema));
  TANGO_ASSIGN_OR_RETURN(size_t rt2, T2Index(right->schema));
  std::vector<size_t> excluded = {rt1, rt2};
  for (const auto& [l, r] : attrs) {
    TANGO_ASSIGN_OR_RETURN(size_t idx, right->schema.IndexOf(r));
    excluded.push_back(idx);
  }
  for (size_t i = 0; i < right->schema.num_columns(); ++i) {
    if (std::find(excluded.begin(), excluded.end(), i) != excluded.end()) {
      continue;
    }
    schema.AddColumn(right->schema.column(i));
  }
  schema.AddColumn({"", "T1", DataType::kInt});
  schema.AddColumn({"", "T2", DataType::kInt});

  auto op = NewOp(OpKind::kTJoin, {left, right});
  op->join_attrs = std::move(attrs);
  op->schema = std::move(schema);
  return OpPtr(op);
}

Result<OpPtr> TAggregate(OpPtr child, std::vector<std::string> group_by,
                         std::vector<AggItem> aggs) {
  if (!HasPeriod(child->schema)) {
    return Status::InvalidArgument("temporal aggregation requires T1/T2");
  }
  if (aggs.empty()) return Status::InvalidArgument("no aggregate functions");
  Schema schema;
  for (auto& g : group_by) {
    g = ToUpper(g);
    TANGO_ASSIGN_OR_RETURN(size_t idx, child->schema.IndexOf(g));
    Column col = child->schema.column(idx);
    col.table.clear();  // aggregation output columns are unqualified
    schema.AddColumn(col);
  }
  schema.AddColumn({"", "T1", DataType::kInt});
  schema.AddColumn({"", "T2", DataType::kInt});
  for (auto& a : aggs) {
    a.name = ToUpper(a.name);
    a.arg = ToUpper(a.arg);
    Column col;
    col.name = a.name;
    if (a.func == AggFunc::kCount) {
      col.type = DataType::kInt;
    } else if (a.func == AggFunc::kAvg) {
      col.type = DataType::kDouble;
    } else {
      if (a.arg.empty()) {
        return Status::InvalidArgument("aggregate requires an argument");
      }
      TANGO_ASSIGN_OR_RETURN(size_t idx, child->schema.IndexOf(a.arg));
      col.type = child->schema.column(idx).type;
    }
    if (!a.arg.empty()) {
      TANGO_RETURN_IF_ERROR(child->schema.IndexOf(a.arg).status());
    }
    schema.AddColumn(col);
  }
  auto op = NewOp(OpKind::kTAggregate, {child});
  op->group_by = std::move(group_by);
  op->aggs = std::move(aggs);
  op->schema = std::move(schema);
  return OpPtr(op);
}

Result<OpPtr> DupElim(OpPtr child) {
  auto op = NewOp(OpKind::kDupElim, {child});
  op->schema = child->schema;
  return OpPtr(op);
}

Result<OpPtr> Coalesce(OpPtr child) {
  if (!HasPeriod(child->schema)) {
    return Status::InvalidArgument("coalescing requires T1/T2");
  }
  auto op = NewOp(OpKind::kCoalesce, {child});
  op->schema = child->schema;
  return OpPtr(op);
}

Result<OpPtr> Difference(OpPtr left, OpPtr right) {
  if (left->schema.num_columns() != right->schema.num_columns()) {
    return Status::InvalidArgument("difference arms have different arity");
  }
  for (size_t i = 0; i < left->schema.num_columns(); ++i) {
    if (left->schema.column(i).type != right->schema.column(i).type) {
      return Status::InvalidArgument("difference arms have different types");
    }
  }
  auto op = NewOp(OpKind::kDifference, {left, right});
  op->schema = left->schema;
  return OpPtr(op);
}

Result<OpPtr> Product(OpPtr left, OpPtr right) {
  auto op = NewOp(OpKind::kProduct, {left, right});
  op->schema = Schema::Concat(left->schema, right->schema);
  return OpPtr(op);
}

Result<OpPtr> TransferM(OpPtr child) {
  auto op = NewOp(OpKind::kTransferM, {child});
  op->schema = child->schema;
  return OpPtr(op);
}

Result<OpPtr> TransferD(OpPtr child) {
  auto op = NewOp(OpKind::kTransferD, {child});
  op->schema = child->schema;
  return OpPtr(op);
}

Result<OpPtr> WithChildren(const Op& op, std::vector<OpPtr> children) {
  switch (op.kind) {
    case OpKind::kScan:
      return Scan(op.table, op.schema, op.alias);
    case OpKind::kSelect:
      return Select(children[0], op.predicate);
    case OpKind::kProject:
      return Project(children[0], op.items);
    case OpKind::kSort:
      return Sort(children[0], op.sort_keys);
    case OpKind::kJoin:
      return Join(children[0], children[1], op.join_attrs);
    case OpKind::kTJoin:
      return TJoin(children[0], children[1], op.join_attrs);
    case OpKind::kTAggregate:
      return TAggregate(children[0], op.group_by, op.aggs);
    case OpKind::kDupElim:
      return DupElim(children[0]);
    case OpKind::kCoalesce:
      return Coalesce(children[0]);
    case OpKind::kDifference:
      return Difference(children[0], children[1]);
    case OpKind::kProduct:
      return Product(children[0], children[1]);
    case OpKind::kTransferM:
      return TransferM(children[0]);
    case OpKind::kTransferD:
      return TransferD(children[0]);
  }
  return Status::Internal("unreachable");
}

std::string Op::Describe() const {
  std::string out = OpKindName(kind);
  switch (kind) {
    case OpKind::kScan:
      out += " " + table;
      if (alias != table) out += " AS " + alias;
      break;
    case OpKind::kSelect:
      out += " [" + predicate->ToString() + "]";
      break;
    case OpKind::kProject: {
      out += " [";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].expr->ToString();
        if (items[i].name != items[i].expr->ToString()) {
          out += " AS " + items[i].name;
        }
      }
      out += "]";
      break;
    }
    case OpKind::kSort: {
      out += " [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_keys[i].attr;
        if (!sort_keys[i].ascending) out += " DESC";
      }
      out += "]";
      break;
    }
    case OpKind::kJoin:
    case OpKind::kTJoin: {
      out += " [";
      for (size_t i = 0; i < join_attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += join_attrs[i].first + "=" + join_attrs[i].second;
      }
      out += "]";
      break;
    }
    case OpKind::kTAggregate: {
      out += " [";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i];
      }
      out += "; ";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += AggFuncName(aggs[i].func);
        out += "(" + (aggs[i].arg.empty() ? "*" : aggs[i].arg) + ")";
        out += " AS " + aggs[i].name;
      }
      out += "]";
      break;
    }
    default:
      break;
  }
  return out;
}

std::string Op::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const OpPtr& c : children) out += c->ToString(indent + 1);
  return out;
}

std::string Op::ParamFingerprint() const {
  // Describe() covers all parameters; schema is derived so excluded.
  return Describe();
}

bool Op::Equals(const Op& other) const {
  if (ParamFingerprint() != other.ParamFingerprint()) return false;
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

}  // namespace algebra
}  // namespace tango
