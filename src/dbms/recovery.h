#ifndef TANGO_DBMS_RECOVERY_H_
#define TANGO_DBMS_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "dbms/catalog.h"
#include "dbms/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal.h"

namespace tango {
namespace dbms {

/// \brief ARIES-style restart recovery over the engine's WAL directory.
///
/// `Run` replays the log into the catalog in the classic three passes:
///
///  1. **Analysis** — scan every durable record (the scan happens before the
///     torn tail is trimmed, so the discarded byte count is reported), build
///     the lsn -> record map and the transaction table (who committed, who
///     ended, who is a loser).
///  2. **Redo** — repeat history from the latest loadable snapshot: records
///     at or below the snapshot lsn are skipped (a checkpoint snapshot is
///     sharp: it reflects exactly the records before it), page-level records
///     additionally honor the page LSN so redo is idempotent. System records
///     (DDL, ANALYZE, direct-path loads) replay through the same catalog
///     entry points the live engine uses — ANALYZE replay makes recovered
///     statistics bit-identical to the never-crashed run.
///  3. **Undo** — walk each loser's record chain backwards (following
///     `undo_next` across compensation records, so an interrupted rollback
///     resumes instead of double-undoing), writing a CLR per undone record
///     and a kEnd when the loser is fully out.
class RecoveryManager {
 public:
  RecoveryManager(Catalog* catalog, storage::Wal* wal,
                  obs::MetricsRegistry* metrics, obs::TraceRecorder* trace)
      : catalog_(catalog), wal_(wal), metrics_(metrics), trace_(trace) {}

  /// Runs all passes. `max_txn_id` receives the largest transaction id seen
  /// anywhere in the log (the engine resumes numbering above it).
  Status Run(RecoveryStats* stats, uint64_t* max_txn_id);

  /// Serializes the catalog (schemas, heap pages with LSNs and dead marks,
  /// index definitions, full TableStats including histogram buckets) for a
  /// checkpoint snapshot. Temp tables (`TANGO_TMP_`) are excluded — they are
  /// non-durable by contract.
  static std::vector<uint8_t> SerializeSnapshot(const Catalog& catalog);

  /// Rebuilds the catalog from a snapshot payload (secondary indexes are
  /// reconstructed by scanning the restored heaps).
  static Status LoadSnapshot(const std::vector<uint8_t>& payload,
                             Catalog* catalog);

 private:
  Status Redo(const storage::WalRecord& rec, RecoveryStats* stats);
  void ClearCatalog();

  Catalog* catalog_;
  storage::Wal* wal_;
  obs::MetricsRegistry* metrics_;
  obs::TraceRecorder* trace_;
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_RECOVERY_H_
