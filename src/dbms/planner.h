#ifndef TANGO_DBMS_PLANNER_H_
#define TANGO_DBMS_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cursor.h"
#include "dbms/catalog.h"
#include "dbms/exec_ops.h"
#include "sql/ast.h"

namespace tango {
namespace dbms {

/// Session-level execution settings. `forced_join` stands in for the Oracle
/// optimizer hints the paper uses in Query 4 to pin the DBMS join method.
struct SessionConfig {
  enum class JoinMethod { kAuto, kNestedLoop, kMerge, kHash };
  JoinMethod forced_join = JoinMethod::kAuto;

  /// Selectivity threshold below which an available index is preferred over
  /// a full scan.
  double index_scan_threshold = 0.25;
};

/// \brief Rudimentary cost-based planner for the mini-DBMS.
///
/// The middleware deliberately treats this engine as a black box (the paper:
/// "the middleware does not know which join algorithm the DBMS will use");
/// this planner is that hidden machinery: selection pushdown, index
/// selection by estimated selectivity, left-deep join trees with hash /
/// sort-merge / index-nested-loop joins, sort-based grouping and duplicate
/// elimination.
class Planner {
 public:
  Planner(Catalog* catalog, const SessionConfig* config)
      : catalog_(catalog), config_(config) {}

  /// Plans a (possibly UNION-chained) SELECT into an executable cursor.
  Result<CursorPtr> PlanSelect(const sql::SelectStmt& stmt);

 private:
  // One FROM entry with its pushed-down single-relation conjuncts.
  struct PlannedRef {
    CursorPtr cursor;
    std::string qualifier;
  };

  Result<CursorPtr> PlanArm(const sql::SelectStmt& stmt);
  Result<CursorPtr> PlanTableRef(const sql::TableRef& ref,
                                 std::vector<ExprPtr> pushed);
  Result<CursorPtr> PlanBaseTable(const Table* table, const std::string& alias,
                                  std::vector<ExprPtr> pushed);
  Result<CursorPtr> PlanJoins(const sql::SelectStmt& stmt,
                              std::vector<ExprPtr>* residuals);
  Result<CursorPtr> PlanAggregation(const sql::SelectStmt& stmt,
                                    CursorPtr input,
                                    std::vector<ExprPtr>* select_exprs,
                                    Schema* out_schema);
  Result<CursorPtr> ApplyOrderBy(const sql::SelectStmt& stmt, CursorPtr input);

  /// Estimated fraction of `table` rows satisfying `col op literal`.
  double EstimateColumnSelectivity(const Table* table, size_t column,
                                   BinaryOp op, const Value& literal) const;

  Catalog* catalog_;
  const SessionConfig* config_;
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_PLANNER_H_
