#include "dbms/exec_ops.h"

#include <algorithm>

namespace tango {
namespace dbms {

// ---------------------------------------------------------------- TableScan

TableScanOp::TableScanOp(const Table* table, const std::string& alias)
    : table_(table),
      schema_(alias.empty() ? table->schema()
                            : table->schema().WithQualifier(alias)) {}

Status TableScanOp::Init() {
  it_.emplace(table_->file().Scan());
  return Status::OK();
}

Result<bool> TableScanOp::Next(Tuple* tuple) {
  return it_->Next(tuple);
}

Result<size_t> TableScanOp::NextBatch(RowBlock* block) {
  block->Clear();
  Tuple t;
  while (!block->full()) {
    if (!it_->Next(&t)) break;
    block->AppendRow(std::move(t));
  }
  return block->rows();
}

// ---------------------------------------------------------------- IndexScan

IndexScanOp::IndexScanOp(const Table* table, size_t column,
                         const std::string& alias, std::optional<Value> lo,
                         bool lo_inclusive, std::optional<Value> hi,
                         bool hi_inclusive)
    : table_(table),
      column_(column),
      schema_(alias.empty() ? table->schema()
                            : table->schema().WithQualifier(alias)),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      lo_inclusive_(lo_inclusive),
      hi_inclusive_(hi_inclusive) {}

Status IndexScanOp::Init() {
  const storage::BPlusTree* index = table_->GetIndex(column_);
  if (index == nullptr) return Status::Internal("index scan without index");
  if (lo_.has_value()) {
    it_ = lo_inclusive_ ? index->SeekGE(*lo_) : index->SeekGT(*lo_);
  } else {
    it_ = index->Begin();
  }
  return Status::OK();
}

Result<bool> IndexScanOp::Next(Tuple* tuple) {
  Value key;
  storage::Rid rid;
  if (!it_->Next(&key, &rid)) return false;
  if (hi_.has_value()) {
    const int c = key.Compare(*hi_);
    if (c > 0 || (c == 0 && !hi_inclusive_)) return false;
  }
  TANGO_ASSIGN_OR_RETURN(*tuple, table_->file().Get(rid));
  return true;
}

// ------------------------------------------------------------------- Filter

Result<bool> FilterOp::Next(Tuple* tuple) {
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(tuple));
    if (!more) return false;
    if (EvalPredicate(*predicate_, *tuple)) return true;
  }
}

Result<size_t> FilterOp::NextBatch(RowBlock* block) {
  block->Clear();
  in_block_.set_capacity(block->capacity());
  Tuple t;
  while (block->empty()) {
    TANGO_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(&in_block_));
    if (n == 0) return 0;
    for (size_t i = 0; i < n; ++i) {
      in_block_.MoveRowTo(i, &t);
      if (EvalPredicate(*predicate_, t)) block->AppendRow(std::move(t));
    }
  }
  return block->rows();
}

// ------------------------------------------------------------------ Project

Result<bool> ProjectOp::Next(Tuple* tuple) {
  Tuple in;
  TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  tuple->clear();
  tuple->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) tuple->push_back(Eval(*e, in));
  return true;
}

Result<size_t> ProjectOp::NextBatch(RowBlock* block) {
  block->Clear();
  in_block_.set_capacity(block->capacity());
  TANGO_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(&in_block_));
  if (n == 0) return 0;
  Tuple in, out;
  for (size_t i = 0; i < n; ++i) {
    in_block_.MoveRowTo(i, &in);
    out.clear();
    out.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) out.push_back(Eval(*e, in));
    block->AppendRow(std::move(out));
  }
  return block->rows();
}

// --------------------------------------------------------------------- Sort

Status SortOp::Init() {
  rows_.clear();
  pos_ = 0;
  TANGO_ASSIGN_OR_RETURN(rows_, MaterializeAll(child_.get()));
  TupleComparator cmp(keys_);
  std::stable_sort(rows_.begin(), rows_.end(), cmp);
  return Status::OK();
}

Result<bool> SortOp::Next(Tuple* tuple) {
  if (pos_ >= rows_.size()) return false;
  *tuple = rows_[pos_++];
  return true;
}

Result<size_t> SortOp::NextBatch(RowBlock* block) {
  block->Clear();
  // Copies, not moves: the materialized result may be replayed.
  while (pos_ < rows_.size() && !block->full()) {
    block->AppendRow(rows_[pos_++]);
  }
  return block->rows();
}

// -------------------------------------------------------------------- Dedup

Result<bool> DedupOp::Next(Tuple* tuple) {
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
    if (!more) return false;
    bool same = have_prev_ && t.size() == prev_.size();
    if (same) {
      for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].Compare(prev_[i]) != 0 || t[i].is_null() != prev_[i].is_null()) {
          same = false;
          break;
        }
      }
    }
    prev_ = t;
    have_prev_ = true;
    if (!same) {
      *tuple = std::move(t);
      return true;
    }
  }
}

// ----------------------------------------------------------------- UnionAll

Status UnionAllOp::Init() {
  current_ = 0;
  for (auto& c : children_) TANGO_RETURN_IF_ERROR(c->Init());
  return Status::OK();
}

Result<bool> UnionAllOp::Next(Tuple* tuple) {
  while (current_ < children_.size()) {
    TANGO_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(tuple));
    if (more) return true;
    ++current_;
  }
  return false;
}

// -------------------------------------------------------------- SortMergeJoin

SortMergeJoinOp::SortMergeJoinOp(CursorPtr left, CursorPtr right,
                                 std::vector<size_t> left_keys,
                                 std::vector<size_t> right_keys,
                                 ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

int SortMergeJoinOp::CompareKeys(const Tuple& l, const Tuple& r) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    const Value& a = l[left_keys_[i]];
    const Value& b = r[right_keys_[i]];
    // NULL keys never match; order them first consistently.
    const int c = a.Compare(b);
    if (c != 0) return c;
  }
  return 0;
}

Status SortMergeJoinOp::Init() {
  TANGO_RETURN_IF_ERROR(left_->Init());
  TANGO_RETURN_IF_ERROR(right_->Init());
  left_valid_ = false;
  right_pending_valid_ = false;
  right_exhausted_ = false;
  right_group_.clear();
  group_pos_ = 0;
  group_matches_left_ = false;
  TANGO_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
  TANGO_ASSIGN_OR_RETURN(right_pending_valid_, right_->Next(&right_pending_));
  right_exhausted_ = !right_pending_valid_;
  return Status::OK();
}

// Loads into right_group_ the next run of right tuples with equal keys,
// starting from right_pending_.
Result<bool> SortMergeJoinOp::FillRightGroup() {
  right_group_.clear();
  if (!right_pending_valid_) return false;
  right_group_.push_back(right_pending_);
  while (true) {
    Tuple t;
    TANGO_ASSIGN_OR_RETURN(bool more, right_->Next(&t));
    if (!more) {
      right_pending_valid_ = false;
      right_exhausted_ = true;
      break;
    }
    // Same key as the group head?
    bool same = true;
    for (size_t i = 0; i < right_keys_.size(); ++i) {
      if (t[right_keys_[i]].Compare(right_group_.front()[right_keys_[i]]) != 0) {
        same = false;
        break;
      }
    }
    if (same) {
      right_group_.push_back(std::move(t));
    } else {
      right_pending_ = std::move(t);
      right_pending_valid_ = true;
      break;
    }
  }
  return true;
}

Result<bool> SortMergeJoinOp::Next(Tuple* tuple) {
  while (true) {
    // Emit pending (left row x right group) pairs.
    if (group_matches_left_ && group_pos_ < right_group_.size()) {
      const Tuple& r = right_group_[group_pos_++];
      Tuple joined = left_row_;
      joined.insert(joined.end(), r.begin(), r.end());
      if (residual_ == nullptr || EvalPredicate(*residual_, joined)) {
        *tuple = std::move(joined);
        return true;
      }
      continue;
    }
    if (group_matches_left_) {
      // Exhausted the group for this left row; advance left and retry the
      // same group (next left row may share the key).
      TANGO_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
      group_pos_ = 0;
      if (!left_valid_) {
        // Clear the match flag so a post-exhaustion call cannot replay the
        // last group against the stale left row: batch drains legitimately
        // call Next again after a false.
        group_matches_left_ = false;
        return false;
      }
      if (!right_group_.empty() &&
          CompareKeys(left_row_, right_group_.front()) == 0) {
        continue;  // same key: replay group
      }
      group_matches_left_ = false;
      // fall through to group advancement
    }
    if (!left_valid_) return false;
    // Advance the right group until it is >= the left key.
    while (true) {
      if (right_group_.empty() ||
          CompareKeys(left_row_, right_group_.front()) > 0) {
        TANGO_ASSIGN_OR_RETURN(bool filled, FillRightGroup());
        if (!filled) {
          if (right_group_.empty()) return false;  // right fully exhausted
        }
        if (right_group_.empty()) return false;
        continue;
      }
      break;
    }
    const int c = CompareKeys(left_row_, right_group_.front());
    if (c < 0) {
      TANGO_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
      if (!left_valid_) return false;
      continue;
    }
    if (c == 0) {
      // NULL join keys never match.
      bool has_null = false;
      for (size_t k : left_keys_) {
        if (left_row_[k].is_null()) {
          has_null = true;
          break;
        }
      }
      if (has_null) {
        TANGO_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
        if (!left_valid_) return false;
        continue;
      }
      group_matches_left_ = true;
      group_pos_ = 0;
      continue;
    }
  }
}

// ----------------------------------------------------------------- HashJoin

HashJoinOp::HashJoinOp(CursorPtr left, CursorPtr right,
                       std::vector<size_t> left_keys,
                       std::vector<size_t> right_keys, ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status HashJoinOp::Init() {
  TANGO_RETURN_IF_ERROR(left_->Init());
  TANGO_RETURN_IF_ERROR(right_->Init());
  hash_table_.clear();
  probe_valid_ = false;
  match_bucket_ = nullptr;
  match_pos_ = 0;
  // Build on the left input.
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, left_->Next(&t));
    if (!more) break;
    std::vector<Value> key;
    key.reserve(left_keys_.size());
    bool has_null = false;
    for (size_t k : left_keys_) {
      if (t[k].is_null()) has_null = true;
      key.push_back(t[k]);
    }
    if (has_null) continue;  // NULL keys never join
    hash_table_[std::move(key)].push_back(std::move(t));
  }
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Tuple* tuple) {
  while (true) {
    if (match_bucket_ != nullptr && match_pos_ < match_bucket_->size()) {
      Tuple joined = (*match_bucket_)[match_pos_++];
      joined.insert(joined.end(), probe_row_.begin(), probe_row_.end());
      if (residual_ == nullptr || EvalPredicate(*residual_, joined)) {
        *tuple = std::move(joined);
        return true;
      }
      continue;
    }
    TANGO_ASSIGN_OR_RETURN(probe_valid_, right_->Next(&probe_row_));
    if (!probe_valid_) return false;
    std::vector<Value> key;
    key.reserve(right_keys_.size());
    bool has_null = false;
    for (size_t k : right_keys_) {
      if (probe_row_[k].is_null()) has_null = true;
      key.push_back(probe_row_[k]);
    }
    match_bucket_ = nullptr;
    match_pos_ = 0;
    if (has_null) continue;
    const auto it = hash_table_.find(key);
    if (it != hash_table_.end()) match_bucket_ = &it->second;
  }
}

// ----------------------------------------------------------- NestedLoopJoin

NestedLoopJoinOp::NestedLoopJoinOp(CursorPtr left, CursorPtr right,
                                   ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status NestedLoopJoinOp::Init() {
  TANGO_RETURN_IF_ERROR(left_->Init());
  TANGO_RETURN_IF_ERROR(right_->Init());
  inner_.clear();
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, right_->Next(&t));
    if (!more) break;
    inner_.push_back(std::move(t));
  }
  outer_valid_ = false;
  inner_pos_ = 0;
  TANGO_ASSIGN_OR_RETURN(outer_valid_, left_->Next(&outer_row_));
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(Tuple* tuple) {
  while (outer_valid_) {
    while (inner_pos_ < inner_.size()) {
      Tuple joined = outer_row_;
      const Tuple& r = inner_[inner_pos_++];
      joined.insert(joined.end(), r.begin(), r.end());
      if (predicate_ == nullptr || EvalPredicate(*predicate_, joined)) {
        *tuple = std::move(joined);
        return true;
      }
    }
    inner_pos_ = 0;
    TANGO_ASSIGN_OR_RETURN(outer_valid_, left_->Next(&outer_row_));
  }
  return false;
}

// ------------------------------------------------------ IndexNestedLoopJoin

IndexNestedLoopJoinOp::IndexNestedLoopJoinOp(CursorPtr outer,
                                             const Table* inner,
                                             const std::string& inner_alias,
                                             size_t outer_key,
                                             size_t inner_column,
                                             ExprPtr residual)
    : outer_(std::move(outer)),
      inner_(inner),
      outer_key_(outer_key),
      inner_column_(inner_column),
      residual_(std::move(residual)),
      schema_(Schema::Concat(
          outer_->schema(), inner_alias.empty()
                                ? inner->schema()
                                : inner->schema().WithQualifier(inner_alias))) {}

Status IndexNestedLoopJoinOp::Init() {
  if (inner_->GetIndex(inner_column_) == nullptr) {
    return Status::Internal("index nested-loop join without index");
  }
  TANGO_RETURN_IF_ERROR(outer_->Init());
  outer_valid_ = false;
  matches_.clear();
  match_pos_ = 0;
  return Status::OK();
}

Result<bool> IndexNestedLoopJoinOp::Next(Tuple* tuple) {
  while (true) {
    if (match_pos_ < matches_.size()) {
      TANGO_ASSIGN_OR_RETURN(Tuple inner_row,
                             inner_->file().Get(matches_[match_pos_++]));
      Tuple joined = outer_row_;
      joined.insert(joined.end(), inner_row.begin(), inner_row.end());
      if (residual_ == nullptr || EvalPredicate(*residual_, joined)) {
        *tuple = std::move(joined);
        return true;
      }
      continue;
    }
    TANGO_ASSIGN_OR_RETURN(outer_valid_, outer_->Next(&outer_row_));
    if (!outer_valid_) return false;
    matches_.clear();
    match_pos_ = 0;
    const Value& key = outer_row_[outer_key_];
    if (key.is_null()) continue;
    matches_ = inner_->GetIndex(inner_column_)->Lookup(key);
  }
}

// ----------------------------------------------------------------- GroupAgg

GroupAggOp::GroupAggOp(CursorPtr child, std::vector<size_t> group_cols,
                       std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)) {
  // Output schema: group columns (with their child names/types), then one
  // column per aggregate.
  for (size_t c : group_cols_) schema_.AddColumn(child_->schema().column(c));
  for (const AggSpec& a : aggs_) {
    Column col;
    col.name = ToUpper(a.name);
    if (a.func == AggFunc::kCount) {
      col.type = DataType::kInt;
    } else if (a.func == AggFunc::kAvg) {
      col.type = DataType::kDouble;
    } else if (a.arg != nullptr) {
      auto t = InferType(a.arg, child_->schema());
      col.type = t.ok() ? t.ValueOrDie() : DataType::kDouble;
    } else {
      col.type = DataType::kDouble;
    }
    schema_.AddColumn(col);
  }
}

Status GroupAggOp::Init() {
  TANGO_RETURN_IF_ERROR(child_->Init());
  group_open_ = false;
  pending_valid_ = false;
  input_done_ = false;
  emitted_global_ = false;
  states_.assign(aggs_.size(), AggState{});
  return Status::OK();
}

void GroupAggOp::Accumulate(const Tuple& row) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggState& st = states_[i];
    const AggSpec& a = aggs_[i];
    Value v;
    if (a.arg != nullptr) {
      v = Eval(*a.arg, row);
      if (v.is_null()) continue;  // SQL aggregates skip NULLs
    }
    st.any = true;
    st.count += 1;
    if (a.arg != nullptr && v.is_numeric()) {
      st.sum += v.AsDouble();
      if (!v.is_int()) st.sum_is_int = false;
      if (st.count == 1 || v < st.min) st.min = v;
      if (st.count == 1 || v > st.max) st.max = v;
    } else if (a.arg != nullptr) {
      if (st.count == 1 || v < st.min) st.min = v;
      if (st.count == 1 || v > st.max) st.max = v;
    }
  }
}

Tuple GroupAggOp::EmitGroup() {
  Tuple out;
  out.reserve(group_cols_.size() + aggs_.size());
  for (size_t c : group_cols_) out.push_back(group_key_row_[c]);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggState& st = states_[i];
    switch (aggs_[i].func) {
      case AggFunc::kCount:
        out.push_back(Value(st.count));
        break;
      case AggFunc::kSum:
        if (!st.any) {
          out.push_back(Value::Null());
        } else if (st.sum_is_int) {
          out.push_back(Value(static_cast<int64_t>(st.sum)));
        } else {
          out.push_back(Value(st.sum));
        }
        break;
      case AggFunc::kAvg:
        out.push_back(st.any ? Value(st.sum / static_cast<double>(st.count))
                             : Value::Null());
        break;
      case AggFunc::kMin:
        out.push_back(st.any ? st.min : Value::Null());
        break;
      case AggFunc::kMax:
        out.push_back(st.any ? st.max : Value::Null());
        break;
    }
  }
  states_.assign(aggs_.size(), AggState{});
  return out;
}

Result<bool> GroupAggOp::Next(Tuple* tuple) {
  if (input_done_) {
    // Global aggregation over an empty input still yields one row.
    if (group_cols_.empty() && !emitted_global_ && !group_open_) {
      emitted_global_ = true;
      group_key_row_.clear();
      *tuple = EmitGroup();
      return true;
    }
    if (group_open_) {
      group_open_ = false;
      *tuple = EmitGroup();
      emitted_global_ = true;
      return true;
    }
    return false;
  }
  while (true) {
    Tuple row;
    bool more;
    if (pending_valid_) {
      row = std::move(pending_);
      pending_valid_ = false;
      more = true;
    } else {
      TANGO_ASSIGN_OR_RETURN(more, child_->Next(&row));
    }
    if (!more) {
      input_done_ = true;
      if (group_open_) {
        group_open_ = false;
        emitted_global_ = true;
        *tuple = EmitGroup();
        return true;
      }
      if (group_cols_.empty() && !emitted_global_) {
        emitted_global_ = true;
        group_key_row_.clear();
        *tuple = EmitGroup();
        return true;
      }
      return false;
    }
    if (!group_open_) {
      group_open_ = true;
      group_key_row_ = row;
      Accumulate(row);
      continue;
    }
    // Same group?
    bool same = true;
    for (size_t c : group_cols_) {
      if (row[c].Compare(group_key_row_[c]) != 0) {
        same = false;
        break;
      }
    }
    if (same) {
      Accumulate(row);
      continue;
    }
    // New group: emit the finished one, stash the row.
    pending_ = std::move(row);
    pending_valid_ = true;
    Tuple out = EmitGroup();
    group_key_row_.clear();
    group_open_ = false;
    *tuple = std::move(out);
    // Open the new group on the next call.
    if (pending_valid_) {
      group_open_ = true;
      group_key_row_ = pending_;
      Accumulate(pending_);
      pending_valid_ = false;
    }
    return true;
  }
}

}  // namespace dbms
}  // namespace tango
