#include "dbms/fault.h"

namespace tango {
namespace dbms {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kStatementFail:
      return "statement-fail";
    case FaultKind::kCursorKill:
      return "cursor-kill";
    case FaultKind::kWireTruncate:
      return "wire-truncate";
    case FaultKind::kWireCorrupt:
      return "wire-corrupt";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kWalCrash:
      return "wal-crash";
    case FaultKind::kWalTornWrite:
      return "wal-torn-write";
    case FaultKind::kWalPartialFsync:
      return "wal-partial-fsync";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  statements_ = 0;
  fired_ = 0;
  salt_state_ = plan_.seed;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = FaultPlan();
}

uint64_t FaultInjector::statements_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statements_;
}

uint64_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_fired_;
}

FaultInjector::StatementDecision FaultInjector::OnStatement(
    const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t index = statements_++;
  StatementDecision decision;
  if (!ArmedLocked() || index < plan_.statement_index) return decision;
  if (!plan_.sql_substring.empty() &&
      sql.find(plan_.sql_substring) == std::string::npos) {
    return decision;
  }
  switch (plan_.kind) {
    case FaultKind::kStatementFail:
      ++fired_;
      ++total_fired_;
      decision.inject = Status::Unavailable(
          "injected fault: statement " + std::to_string(index) + " failed");
      break;
    case FaultKind::kLatencySpike:
      ++fired_;
      ++total_fired_;
      decision.extra_latency_seconds = plan_.latency_seconds;
      break;
    case FaultKind::kCursorKill:
    case FaultKind::kWireTruncate:
    case FaultKind::kWireCorrupt:
      // The firing is charged when the batch fault actually happens.
      decision.fault_result_cursor = true;
      break;
    case FaultKind::kNone:
    case FaultKind::kWalCrash:
    case FaultKind::kWalTornWrite:
    case FaultKind::kWalPartialFsync:
      // WAL kinds fire on the log-device hooks, not at statement issue.
      break;
  }
  return decision;
}

FaultInjector::BatchFault FaultInjector::OnBatch(uint64_t batch_no) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ArmedLocked() || batch_no < plan_.batch_index) return BatchFault::kNone;
  ++fired_;
  ++total_fired_;
  switch (plan_.kind) {
    case FaultKind::kCursorKill:
      return BatchFault::kKill;
    case FaultKind::kWireTruncate:
      return BatchFault::kTruncate;
    case FaultKind::kWireCorrupt:
      return BatchFault::kCorrupt;
    default:
      // The cursor was marked faultable but the plan changed since; undo.
      --fired_;
      --total_fired_;
      return BatchFault::kNone;
  }
}

uint64_t FaultInjector::NextSalt() {
  std::lock_guard<std::mutex> lock(mu_);
  return NextSaltLocked();
}

uint64_t FaultInjector::NextSaltLocked() {
  uint64_t z = (salt_state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

FaultInjector::WalDecision FaultInjector::OnWal(bool is_sync, uint64_t lsn,
                                                uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  WalDecision decision;
  if (!ArmedLocked() || lsn < plan_.wal_lsn) return decision;
  switch (plan_.kind) {
    case FaultKind::kWalCrash:
      if (is_sync) return decision;
      decision.action = WalDecision::Action::kCrash;
      break;
    case FaultKind::kWalTornWrite:
      if (is_sync) return decision;
      decision.action = WalDecision::Action::kTorn;
      decision.keep_bytes = bytes == 0 ? 0 : NextSaltLocked() % bytes;
      break;
    case FaultKind::kWalPartialFsync:
      if (!is_sync) return decision;
      decision.action = WalDecision::Action::kPartialFsync;
      decision.keep_bytes = bytes == 0 ? 0 : NextSaltLocked() % bytes;
      break;
    default:
      return decision;
  }
  ++fired_;
  ++total_fired_;
  return decision;
}

}  // namespace dbms
}  // namespace tango
