#include "dbms/engine.h"

#include <utility>

#include "dbms/recovery.h"
#include "sql/parser.h"

namespace tango {
namespace dbms {

using storage::Lsn;
using storage::WalRecord;
using storage::WalRecordType;

bool IsTempTableName(const std::string& name) {
  return ToUpper(name).rfind("TANGO_TMP_", 0) == 0;
}

obs::Counter* Engine::Metric(const char* name) {
  return options_.metrics == nullptr ? nullptr
                                     : &options_.metrics->counter(name);
}

Status Engine::Halted() const {
  if (wal_ != nullptr && wal_->crashed()) {
    return Status::Unavailable(
        "engine halted by injected log fault; reopen to recover");
  }
  return Status::OK();
}

Status Engine::Open() {
  if (options_.wal_dir.empty()) return Status::OK();
  if (wal_ != nullptr) return Status::InvalidArgument("engine already open");
  wal_ = std::make_unique<storage::Wal>(options_.wal_dir,
                                        options_.wal_segment_bytes);
  RecoveryManager recovery(&catalog_, wal_.get(), options_.metrics,
                           options_.trace);
  uint64_t max_txn = 0;
  TANGO_RETURN_IF_ERROR(recovery.Run(&recovery_stats_, &max_txn));
  next_txn_ = max_txn + 1;
  // The log device consults the failure model on every append and sync;
  // installed after recovery so replay itself is never faulted (a machine
  // that dies during recovery is just another crash — tests model it by
  // re-running the whole matrix over the longer log).
  wal_->set_fault_hook([this](bool is_sync, Lsn lsn, size_t bytes) {
    storage::WalFault fault;
    if (injector_ == nullptr) return fault;
    const FaultInjector::WalDecision d =
        injector_->OnWal(is_sync, lsn, bytes);
    switch (d.action) {
      case FaultInjector::WalDecision::Action::kCrash:
        fault.action = storage::WalFault::Action::kCrash;
        break;
      case FaultInjector::WalDecision::Action::kTorn:
        fault.action = storage::WalFault::Action::kTorn;
        break;
      case FaultInjector::WalDecision::Action::kPartialFsync:
        fault.action = storage::WalFault::Action::kPartialFsync;
        break;
      case FaultInjector::WalDecision::Action::kNone:
        break;
    }
    fault.keep_bytes = d.keep_bytes;
    return fault;
  });
  if (auto* c = Metric("wal.recoveries")) c->Increment();
  return Status::OK();
}

Result<Lsn> Engine::LogTxn(WalRecord* rec, Txn* txn) {
  TANGO_ASSIGN_OR_RETURN(const Lsn lsn, wal_->Append(rec));
  if (txn->first_lsn == storage::kNoLsn) txn->first_lsn = lsn;
  txn->last_lsn = lsn;
  if (auto* c = Metric("wal.appends")) c->Increment();
  return lsn;
}

Status Engine::LogSystem(WalRecord* rec) {
  if (wal_ == nullptr) return Status::OK();
  TANGO_RETURN_IF_ERROR(wal_->Append(rec).status());
  TANGO_RETURN_IF_ERROR(wal_->Sync());
  if (auto* c = Metric("wal.appends")) c->Increment();
  if (auto* c = Metric("wal.syncs")) c->Increment();
  return Status::OK();
}

Status Engine::CommitTxn(Txn* txn) {
  if (wal_ != nullptr && txn->first_lsn != storage::kNoLsn) {
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn = txn->id;
    commit.prev_lsn = txn->last_lsn;
    TANGO_ASSIGN_OR_RETURN(const Lsn commit_lsn, wal_->Append(&commit));
    // The durability point: the statement is acknowledged only after the
    // commit record is on disk.
    TANGO_RETURN_IF_ERROR(wal_->Sync());
    if (auto* c = Metric("wal.syncs")) c->Increment();
    WalRecord end;
    end.type = WalRecordType::kEnd;
    end.txn = txn->id;
    end.prev_lsn = commit_lsn;
    TANGO_RETURN_IF_ERROR(wal_->Append(&end).status());
  }
  locks_.ReleaseAll(txn->id);
  if (auto* c = Metric("txn.commits")) c->Increment();
  return Status::OK();
}

Status Engine::RollbackTxn(Txn* txn) {
  for (size_t i = txn->journal.size(); i-- > 0;) {
    const UndoEntry& entry = txn->journal[i];
    TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(entry.table));
    Lsn clr_lsn = storage::kNoLsn;
    if (wal_ != nullptr && entry.lsn != storage::kNoLsn) {
      WalRecord clr;
      clr.txn = txn->id;
      clr.prev_lsn = txn->last_lsn;
      // An interrupted rollback resumes here instead of undoing twice.
      clr.undo_next = i > 0 ? txn->journal[i - 1].lsn : storage::kNoLsn;
      clr.table = entry.table;
      clr.rid = entry.rid;
      if (entry.type == WalRecordType::kInsert) {
        clr.type = WalRecordType::kClrInsert;
      } else {
        clr.type = WalRecordType::kClrUpdate;
        clr.rows = {entry.before};
      }
      TANGO_ASSIGN_OR_RETURN(clr_lsn, LogTxn(&clr, txn));
    }
    if (entry.type == WalRecordType::kInsert) {
      TANGO_ASSIGN_OR_RETURN(const Tuple image, table->file().Get(entry.rid));
      TANGO_RETURN_IF_ERROR(table->ApplyDelete(entry.rid, image, clr_lsn));
    } else {
      TANGO_ASSIGN_OR_RETURN(const Tuple cur, table->file().Get(entry.rid));
      TANGO_RETURN_IF_ERROR(
          table->ApplyUpdate(entry.rid, cur, entry.before, clr_lsn));
    }
    table->file().StampPageLsn(entry.rid.page, clr_lsn);
  }
  if (wal_ != nullptr && txn->first_lsn != storage::kNoLsn) {
    WalRecord end;
    end.type = WalRecordType::kEnd;
    end.txn = txn->id;
    end.prev_lsn = txn->last_lsn;
    // Rollback needs no force: an un-synced loser is undone at recovery
    // anyway; the CLRs only save that work when they do reach the disk.
    TANGO_RETURN_IF_ERROR(wal_->Append(&end).status());
  }
  locks_.ReleaseAll(txn->id);
  if (auto* c = Metric("txn.rollbacks")) c->Increment();
  return Status::OK();
}

Status Engine::InsertRow(Txn* txn, Table* table, const Tuple& row,
                         bool logged) {
  TANGO_ASSIGN_OR_RETURN(const storage::Rid rid, table->ApplyInsert(row, 0));
  Lsn lsn = storage::kNoLsn;
  if (logged) {
    WalRecord rec;
    rec.type = WalRecordType::kInsert;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    rec.table = table->name();
    rec.rid = rid;
    rec.rows = {row};
    TANGO_ASSIGN_OR_RETURN(lsn, LogTxn(&rec, txn));
    table->file().StampPageLsn(rid.page, lsn);
  }
  UndoEntry entry;
  entry.lsn = lsn;
  entry.type = WalRecordType::kInsert;
  entry.table = table->name();
  entry.rid = rid;
  txn->journal.push_back(std::move(entry));
  return Status::OK();
}

Status Engine::UpdateRow(Txn* txn, Table* table, const storage::Rid& rid,
                         const Tuple& before, const Tuple& after,
                         bool logged) {
  TANGO_RETURN_IF_ERROR(table->ApplyUpdate(rid, before, after, 0));
  Lsn lsn = storage::kNoLsn;
  if (logged) {
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    rec.table = table->name();
    rec.rid = rid;
    rec.rows = {before, after};
    TANGO_ASSIGN_OR_RETURN(lsn, LogTxn(&rec, txn));
    table->file().StampPageLsn(rid.page, lsn);
  }
  UndoEntry entry;
  entry.lsn = lsn;
  entry.type = WalRecordType::kUpdate;
  entry.table = table->name();
  entry.rid = rid;
  entry.before = before;
  txn->journal.push_back(std::move(entry));
  return Status::OK();
}

Result<QueryResult> Engine::ExecuteInsert(const sql::InsertStmt& ins,
                                          uint64_t session) {
  TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(ins.table));
  // Evaluate every VALUES row first: validation must precede any mutation.
  std::vector<Tuple> rows;
  rows.reserve(ins.rows.size());
  for (const auto& row_exprs : ins.rows) {
    if (row_exprs.size() != table->schema().num_columns()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Tuple row;
    row.reserve(row_exprs.size());
    for (const ExprPtr& e : row_exprs) {
      // VALUES expressions are constant (no column references).
      std::vector<std::string> cols;
      CollectColumns(e, &cols);
      if (!cols.empty()) {
        return Status::InvalidArgument("non-constant INSERT value");
      }
      row.push_back(Eval(*e, {}));
    }
    rows.push_back(std::move(row));
  }
  if (IsTempTableName(table->name())) {
    for (const Tuple& row : rows) {
      TANGO_RETURN_IF_ERROR(table->ApplyInsert(row, 0).status());
    }
    return QueryResult{};
  }

  const auto it = txns_.find(session);
  const bool autocommit = it == txns_.end();
  Txn auto_txn;
  Txn* txn = autocommit ? &auto_txn : &it->second;
  if (autocommit) auto_txn.id = next_txn_++;
  Status lock = locks_.TryLockExclusive(table->name(), txn->id);
  if (!lock.ok()) {
    if (auto* c = Metric("txn.lock_conflicts")) c->Increment();
    return lock;
  }
  Status st = Status::OK();
  for (const Tuple& row : rows) {
    st = InsertRow(txn, table, row, wal_ != nullptr);
    if (!st.ok()) break;
  }
  if (autocommit) {
    if (st.ok()) {
      st = CommitTxn(&auto_txn);
    } else {
      (void)RollbackTxn(&auto_txn);  // best effort; st carries the cause
    }
  }
  if (!st.ok()) return st;
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteUpdate(const sql::UpdateStmt& upd,
                                          uint64_t session) {
  TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(upd.table));
  const Schema& schema = table->schema();
  ExprPtr where;
  if (upd.where != nullptr) {
    TANGO_ASSIGN_OR_RETURN(where, Bind(upd.where, schema));
  }
  std::vector<std::pair<size_t, ExprPtr>> sets;
  sets.reserve(upd.sets.size());
  for (const auto& [col, e] : upd.sets) {
    TANGO_ASSIGN_OR_RETURN(const size_t idx, schema.IndexOf(col));
    TANGO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(e, schema));
    sets.emplace_back(idx, std::move(bound));
  }

  // Collect-then-mutate: the scan must not observe its own writes (SET
  // T2 = now WHERE T2 = forever would otherwise chase rewritten rows).
  std::vector<std::pair<storage::Rid, Tuple>> targets;
  auto scan = table->file().Scan();
  Tuple t;
  storage::Rid rid;
  while (scan.Next(&t, &rid)) {
    if (where == nullptr || EvalPredicate(*where, t)) {
      targets.emplace_back(rid, t);
    }
  }

  if (IsTempTableName(table->name())) {
    for (auto& [target_rid, before] : targets) {
      Tuple after = before;
      for (const auto& [idx, e] : sets) after[idx] = Eval(*e, before);
      TANGO_RETURN_IF_ERROR(table->ApplyUpdate(target_rid, before, after, 0));
    }
    return QueryResult{};
  }

  const auto it = txns_.find(session);
  const bool autocommit = it == txns_.end();
  Txn auto_txn;
  Txn* txn = autocommit ? &auto_txn : &it->second;
  if (autocommit) auto_txn.id = next_txn_++;
  Status lock = locks_.TryLockExclusive(table->name(), txn->id);
  if (!lock.ok()) {
    if (auto* c = Metric("txn.lock_conflicts")) c->Increment();
    return lock;
  }
  Status st = Status::OK();
  for (auto& [target_rid, before] : targets) {
    Tuple after = before;
    for (const auto& [idx, e] : sets) after[idx] = Eval(*e, before);
    st = UpdateRow(txn, table, target_rid, before, after, wal_ != nullptr);
    if (!st.ok()) break;
  }
  if (autocommit) {
    if (st.ok()) {
      st = CommitTxn(&auto_txn);
    } else {
      (void)RollbackTxn(&auto_txn);
    }
  }
  if (!st.ok()) return st;
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteTxn(const sql::TxnStmt& stmt,
                                       uint64_t session) {
  switch (stmt.kind) {
    case sql::TxnStmt::Kind::kBegin: {
      if (txns_.count(session) != 0) {
        return Status::InvalidArgument(
            "transaction already open on this session");
      }
      Txn txn;
      txn.id = next_txn_++;
      txns_[session] = std::move(txn);
      if (auto* c = Metric("txn.begins")) c->Increment();
      return QueryResult{};
    }
    case sql::TxnStmt::Kind::kCommit: {
      const auto it = txns_.find(session);
      if (it == txns_.end()) return QueryResult{};  // autocommit mode: no-op
      Txn txn = std::move(it->second);
      txns_.erase(it);
      TANGO_RETURN_IF_ERROR(CommitTxn(&txn));
      return QueryResult{};
    }
    case sql::TxnStmt::Kind::kRollback: {
      const auto it = txns_.find(session);
      if (it == txns_.end()) return QueryResult{};
      Txn txn = std::move(it->second);
      txns_.erase(it);
      TANGO_RETURN_IF_ERROR(RollbackTxn(&txn));
      return QueryResult{};
    }
    case sql::TxnStmt::Kind::kCheckpoint:
      TANGO_RETURN_IF_ERROR(Checkpoint());
      return QueryResult{};
  }
  return Status::Internal("unhandled txn statement");
}

Result<QueryResult> Engine::Execute(const std::string& sql, uint64_t session) {
  TANGO_RETURN_IF_ERROR(Halted());
  ++statements_;
  TANGO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parser::Parse(sql));

  if (stmt.select != nullptr) {
    Planner planner(&catalog_, &config_);
    TANGO_ASSIGN_OR_RETURN(CursorPtr cursor, planner.PlanSelect(*stmt.select));
    QueryResult result;
    result.schema = cursor->schema();
    TANGO_ASSIGN_OR_RETURN(result.rows, MaterializeAll(cursor.get()));
    return result;
  }

  if (stmt.insert != nullptr) return ExecuteInsert(*stmt.insert, session);
  if (stmt.update != nullptr) return ExecuteUpdate(*stmt.update, session);
  if (stmt.txn != nullptr) return ExecuteTxn(*stmt.txn, session);

  if (stmt.create_table != nullptr) {
    const auto& ct = *stmt.create_table;
    const std::string key = ToUpper(ct.name);
    if (catalog_.HasTable(key)) return Status::AlreadyExists("table " + key);
    const bool logged = wal_ != nullptr && !IsTempTableName(key);
    if (ct.as_select != nullptr) {
      Planner planner(&catalog_, &config_);
      TANGO_ASSIGN_OR_RETURN(CursorPtr cursor,
                             planner.PlanSelect(*ct.as_select));
      // Strip qualifiers: the new table's columns are its own.
      Schema schema;
      for (const Column& c : cursor->schema().columns()) {
        schema.AddColumn({"", c.name, c.type});
      }
      // Materialize before logging anything: a failing source query must
      // leave no trace in the log or the catalog.
      TANGO_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                             MaterializeAll(cursor.get()));
      Lsn load_lsn = storage::kNoLsn;
      if (logged) {
        WalRecord create;
        create.type = WalRecordType::kCreateTable;
        create.table = key;
        create.schema_columns = schema.columns();
        TANGO_RETURN_IF_ERROR(LogSystem(&create));
        if (!rows.empty()) {
          WalRecord load;
          load.type = WalRecordType::kBulkLoad;
          load.table = key;
          load.rows = rows;
          TANGO_RETURN_IF_ERROR(LogSystem(&load));
          load_lsn = load.lsn;
        }
      }
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.CreateTable(key, schema));
      for (const Tuple& row : rows) {
        TANGO_RETURN_IF_ERROR(table->ApplyInsert(row, load_lsn).status());
      }
      return QueryResult{};
    }
    Schema schema;
    for (const Column& c : ct.columns) {
      schema.AddColumn({"", ToUpper(c.name), c.type});
    }
    if (logged) {
      WalRecord create;
      create.type = WalRecordType::kCreateTable;
      create.table = key;
      create.schema_columns = schema.columns();
      TANGO_RETURN_IF_ERROR(LogSystem(&create));
    }
    TANGO_RETURN_IF_ERROR(catalog_.CreateTable(key, schema).status());
    return QueryResult{};
  }

  if (stmt.drop_table != nullptr) {
    const std::string key = ToUpper(stmt.drop_table->table);
    if (!catalog_.HasTable(key)) return Status::NotFound("table " + key);
    const bool logged = wal_ != nullptr && !IsTempTableName(key);
    // NO WAIT: dropping a table some open transaction mutated must fail,
    // not corrupt that transaction's undo chain.
    const uint64_t owner = next_txn_++;
    Status lock = locks_.TryLockExclusive(key, owner);
    if (!lock.ok()) {
      if (auto* c = Metric("txn.lock_conflicts")) c->Increment();
      return lock;
    }
    Status st = Status::OK();
    if (logged) {
      WalRecord drop;
      drop.type = WalRecordType::kDropTable;
      drop.table = key;
      st = LogSystem(&drop);
    }
    if (st.ok()) st = catalog_.DropTable(key);
    locks_.ReleaseAll(owner);
    if (!st.ok()) return st;
    return QueryResult{};
  }

  if (stmt.analyze != nullptr) {
    const std::string key = ToUpper(stmt.analyze->table);
    if (!key.empty() && !catalog_.HasTable(key)) {
      return Status::NotFound("table " + key);
    }
    const bool logged =
        wal_ != nullptr && (key.empty() || !IsTempTableName(key));
    if (logged) {
      WalRecord an;
      an.type = WalRecordType::kAnalyze;
      an.table = key;
      an.aux = analyze_histogram_buckets;
      TANGO_RETURN_IF_ERROR(LogSystem(&an));
    }
    if (key.empty()) {
      TANGO_RETURN_IF_ERROR(catalog_.AnalyzeAll(analyze_histogram_buckets));
    } else {
      TANGO_RETURN_IF_ERROR(catalog_.Analyze(key, analyze_histogram_buckets));
    }
    return QueryResult{};
  }

  if (stmt.create_index != nullptr) {
    const std::string key = ToUpper(stmt.create_index->table);
    TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(key));
    TANGO_ASSIGN_OR_RETURN(const size_t col,
                           table->schema().IndexOf(stmt.create_index->column));
    if (table->HasIndex(col)) {
      return Status::AlreadyExists("index exists on " +
                                   table->schema().column(col).name);
    }
    const bool logged = wal_ != nullptr && !IsTempTableName(key);
    if (logged) {
      WalRecord ci;
      ci.type = WalRecordType::kCreateIndex;
      ci.table = key;
      ci.aux = col;
      TANGO_RETURN_IF_ERROR(LogSystem(&ci));
    }
    TANGO_RETURN_IF_ERROR(table->CreateIndex(col));
    return QueryResult{};
  }

  return Status::Internal("unhandled statement");
}

Result<CursorPtr> Engine::OpenQuery(const std::string& sql) {
  TANGO_RETURN_IF_ERROR(Halted());
  ++statements_;
  TANGO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parser::Parse(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("OpenQuery requires a SELECT");
  }
  Planner planner(&catalog_, &config_);
  return planner.PlanSelect(*stmt.select);
}

Status Engine::BulkLoad(const std::string& table_name,
                        const std::vector<Tuple>& rows) {
  TANGO_RETURN_IF_ERROR(Halted());
  TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(table_name));
  for (const Tuple& t : rows) {
    if (t.size() != table->schema().num_columns()) {
      return Status::InvalidArgument("tuple arity mismatch for " +
                                     table->name());
    }
  }
  if (wal_ == nullptr || IsTempTableName(table->name())) {
    // Still goes through ApplyInsert: a direct-path load must bump the
    // statistics epoch exactly like row-at-a-time DML (the middleware's
    // staleness check depends on it).
    for (const Tuple& t : rows) {
      TANGO_RETURN_IF_ERROR(table->ApplyInsert(t, 0).status());
    }
    return Status::OK();
  }
  const uint64_t owner = next_txn_++;
  Status lock = locks_.TryLockExclusive(table->name(), owner);
  if (!lock.ok()) {
    if (auto* c = Metric("txn.lock_conflicts")) c->Increment();
    return lock;
  }
  WalRecord load;
  load.type = WalRecordType::kBulkLoad;
  load.table = table->name();
  load.rows = rows;
  Status st = LogSystem(&load);
  if (st.ok()) {
    for (const Tuple& t : rows) {
      st = table->ApplyInsert(t, load.lsn).status();
      if (!st.ok()) break;
    }
  }
  locks_.ReleaseAll(owner);
  return st;
}

Status Engine::Checkpoint() {
  if (wal_ == nullptr) return Status::OK();
  TANGO_RETURN_IF_ERROR(Halted());
  // Force everything buffered, so the snapshot lsn is a durable point.
  TANGO_RETURN_IF_ERROR(wal_->Sync());
  const Lsn snapshot_lsn = wal_->end_lsn() - 1;
  const std::vector<uint8_t> payload =
      RecoveryManager::SerializeSnapshot(catalog_);
  TANGO_RETURN_IF_ERROR(storage::Wal::WriteSealedFile(
      storage::Wal::SnapshotPath(options_.wal_dir, snapshot_lsn), payload));
  WalRecord ck;
  ck.type = WalRecordType::kCheckpoint;
  ck.aux = snapshot_lsn;
  for (const auto& [session, txn] : txns_) {
    (void)session;
    if (txn.first_lsn != storage::kNoLsn) {
      ck.active_txns.emplace_back(txn.id, txn.first_lsn);
    }
  }
  TANGO_RETURN_IF_ERROR(LogSystem(&ck));
  if (auto* c = Metric("wal.checkpoints")) c->Increment();
  return Status::OK();
}

Result<size_t> Engine::ReclaimWalSegments() {
  if (wal_ == nullptr) return size_t{0};
  TANGO_RETURN_IF_ERROR(Halted());
  const std::vector<Lsn> snaps =
      storage::Wal::ListSnapshots(options_.wal_dir);
  if (snaps.empty()) return size_t{0};
  const Lsn snapshot = snaps.back();
  // Everything at or below the snapshot is covered by it — except records
  // of transactions still in flight, whose undo chains must survive.
  Lsn cutoff = snapshot + 1;
  for (const auto& [session, txn] : txns_) {
    (void)session;
    if (txn.first_lsn != storage::kNoLsn && txn.first_lsn < cutoff) {
      cutoff = txn.first_lsn;
    }
  }
  return wal_->TruncateBefore(cutoff, snapshot);
}

}  // namespace dbms
}  // namespace tango
