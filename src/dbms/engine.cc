#include "dbms/engine.h"

#include "sql/parser.h"

namespace tango {
namespace dbms {

Result<QueryResult> Engine::Execute(const std::string& sql) {
  ++statements_;
  TANGO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parser::Parse(sql));

  if (stmt.select != nullptr) {
    Planner planner(&catalog_, &config_);
    TANGO_ASSIGN_OR_RETURN(CursorPtr cursor, planner.PlanSelect(*stmt.select));
    QueryResult result;
    result.schema = cursor->schema();
    TANGO_ASSIGN_OR_RETURN(result.rows, MaterializeAll(cursor.get()));
    return result;
  }

  if (stmt.create_table != nullptr) {
    const auto& ct = *stmt.create_table;
    if (ct.as_select != nullptr) {
      Planner planner(&catalog_, &config_);
      TANGO_ASSIGN_OR_RETURN(CursorPtr cursor, planner.PlanSelect(*ct.as_select));
      // Strip qualifiers: the new table's columns are its own.
      Schema schema;
      for (const Column& c : cursor->schema().columns()) {
        schema.AddColumn({"", c.name, c.type});
      }
      TANGO_ASSIGN_OR_RETURN(Table * table,
                             catalog_.CreateTable(ct.name, schema));
      TANGO_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                             MaterializeAll(cursor.get()));
      for (const Tuple& t : rows) TANGO_RETURN_IF_ERROR(table->Append(t));
      return QueryResult{};
    }
    Schema schema;
    for (const Column& c : ct.columns) {
      schema.AddColumn({"", ToUpper(c.name), c.type});
    }
    TANGO_RETURN_IF_ERROR(catalog_.CreateTable(ct.name, schema).status());
    return QueryResult{};
  }

  if (stmt.insert != nullptr) {
    TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.insert->table));
    for (const auto& row_exprs : stmt.insert->rows) {
      if (row_exprs.size() != table->schema().num_columns()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      Tuple row;
      row.reserve(row_exprs.size());
      for (const ExprPtr& e : row_exprs) {
        // VALUES expressions are constant (no column references).
        std::vector<std::string> cols;
        CollectColumns(e, &cols);
        if (!cols.empty()) {
          return Status::InvalidArgument("non-constant INSERT value");
        }
        row.push_back(Eval(*e, {}));
      }
      TANGO_RETURN_IF_ERROR(table->Append(row));
    }
    return QueryResult{};
  }

  if (stmt.drop_table != nullptr) {
    TANGO_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop_table->table));
    return QueryResult{};
  }

  if (stmt.analyze != nullptr) {
    if (stmt.analyze->table.empty()) {
      TANGO_RETURN_IF_ERROR(catalog_.AnalyzeAll(analyze_histogram_buckets));
    } else {
      TANGO_RETURN_IF_ERROR(
          catalog_.Analyze(stmt.analyze->table, analyze_histogram_buckets));
    }
    return QueryResult{};
  }

  if (stmt.create_index != nullptr) {
    TANGO_ASSIGN_OR_RETURN(Table * table,
                           catalog_.GetTable(stmt.create_index->table));
    TANGO_ASSIGN_OR_RETURN(size_t col,
                           table->schema().IndexOf(stmt.create_index->column));
    TANGO_RETURN_IF_ERROR(table->CreateIndex(col));
    return QueryResult{};
  }

  return Status::Internal("unhandled statement");
}

Result<CursorPtr> Engine::OpenQuery(const std::string& sql) {
  ++statements_;
  TANGO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parser::Parse(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("OpenQuery requires a SELECT");
  }
  Planner planner(&catalog_, &config_);
  return planner.PlanSelect(*stmt.select);
}

Status Engine::BulkLoad(const std::string& table_name,
                        const std::vector<Tuple>& rows) {
  TANGO_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(table_name));
  for (const Tuple& t : rows) {
    TANGO_RETURN_IF_ERROR(table->Append(t));
  }
  return Status::OK();
}

}  // namespace dbms
}  // namespace tango
