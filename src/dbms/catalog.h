#ifndef TANGO_DBMS_CATALOG_H_
#define TANGO_DBMS_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "stats/histogram.h"
#include "storage/btree.h"
#include "storage/heap_file.h"

namespace tango {
namespace dbms {

/// Per-attribute statistics maintained by ANALYZE — exactly the standard
/// statistics the paper assumes are available from any DBMS (§3):
/// minimum/maximum values, number of distinct values, histograms, and index
/// availability/clustering.
struct ColumnStats {
  Value min;
  Value max;
  double num_distinct = 0;
  stats::Histogram histogram;   // empty for non-numeric columns
  bool has_index = false;
  bool index_clustered = false;
};

/// Per-relation statistics: block counts, numbers of tuples, and average
/// tuple sizes (§3).
struct TableStats {
  bool analyzed = false;
  double cardinality = 0;
  double blocks = 0;
  double avg_tuple_bytes = 0;
  std::vector<ColumnStats> columns;  // parallel to the schema
  /// Staleness signals, filled from the live table when the stats cross the
  /// wire (not by ANALYZE): the table's modification epoch at read time and
  /// how many row mutations happened since the last ANALYZE. The middleware
  /// compares epochs to re-collect only when something actually changed.
  uint64_t epoch = 0;
  uint64_t mods_since_analyze = 0;
};

/// \brief A stored table: heap file, secondary indexes, statistics.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), file_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return file_.schema(); }
  storage::HeapFile& file() { return file_; }
  const storage::HeapFile& file() const { return file_; }

  /// Appends a tuple, maintaining all indexes.
  Status Append(const Tuple& tuple);

  /// Logged insert: appends with an LSN stamp, maintains indexes, bumps the
  /// modification epoch. Returns the new row's rid (for the undo journal).
  Result<storage::Rid> ApplyInsert(const Tuple& tuple, uint64_t lsn);

  /// Logged in-place update: `before` is the stored image (drives index
  /// maintenance), `after` replaces it.
  Status ApplyUpdate(const storage::Rid& rid, const Tuple& before,
                     const Tuple& after, uint64_t lsn);

  /// Logged tombstone (transaction undo of an insert): marks `rid` dead and
  /// removes its index entries. Idempotent.
  Status ApplyDelete(const storage::Rid& rid, const Tuple& tuple,
                     uint64_t lsn);

  /// Builds a B+-tree index on the given column (by index).
  Status CreateIndex(size_t column);
  const storage::BPlusTree* GetIndex(size_t column) const;
  bool HasIndex(size_t column) const { return GetIndex(column) != nullptr; }
  std::vector<size_t> IndexedColumns() const;

  TableStats& stats() { return stats_; }
  const TableStats& stats() const { return stats_; }

  /// Monotone counter of content mutations (DML and direct-path loads
  /// alike); the middleware's staleness check compares it across reads.
  uint64_t stats_epoch() const { return stats_epoch_; }
  uint64_t mods_since_analyze() const { return mods_since_analyze_; }
  void BumpEpoch() {
    ++stats_epoch_;
    ++mods_since_analyze_;
  }
  /// Direct-path loads charge the whole batch at once.
  void BumpEpochBy(uint64_t mods) {
    stats_epoch_ += mods;
    mods_since_analyze_ += mods;
  }
  void ResetModsSinceAnalyze() { mods_since_analyze_ = 0; }

 private:
  std::string name_;
  storage::HeapFile file_;
  std::map<size_t, std::unique_ptr<storage::BPlusTree>> indexes_;
  TableStats stats_;
  uint64_t stats_epoch_ = 0;
  uint64_t mods_since_analyze_ = 0;
};

/// \brief The DBMS system catalog: tables by (upper-cased) name.
class Catalog {
 public:
  /// Creates an empty table; fails if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Recomputes TableStats (and ColumnStats incl. histograms) for one table.
  /// `histogram_buckets` = 0 disables histogram construction, modeling the
  /// paper's "optimizer without histograms" configuration.
  Status Analyze(const std::string& name, size_t histogram_buckets = 32);

  /// Analyze every table.
  Status AnalyzeAll(size_t histogram_buckets = 32);

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_CATALOG_H_
