#include "dbms/planner.h"

#include <algorithm>
#include <map>
#include <optional>

namespace tango {
namespace dbms {

namespace {

/// Re-qualifies a child's schema with a range-variable alias (used for
/// subqueries in FROM: `(SELECT ...) A`).
class AliasOp : public Cursor {
 public:
  AliasOp(CursorPtr child, const std::string& alias)
      : child_(std::move(child)), schema_(child_->schema().WithQualifier(alias)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* tuple) override { return child_->Next(tuple); }
  const Schema& schema() const override { return schema_; }

 private:
  CursorPtr child_;
  Schema schema_;
};

bool IsColumnRef(const ExprPtr& e) {
  return e != nullptr && e->kind == Expr::Kind::kColumn;
}

bool IsLiteral(const ExprPtr& e) {
  return e != nullptr && e->kind == Expr::Kind::kLiteral;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;
  }
}

/// A `col op literal` conjunct usable for index range selection.
struct IndexableConjunct {
  size_t column;     // column index in the table schema
  BinaryOp op;       // kEq, kLt, kLe, kGt, kGe with the column on the left
  Value literal;
};

/// Recognizes `col op literal` / `literal op col` against `schema`.
bool MatchIndexable(const ExprPtr& e, const Schema& schema,
                    IndexableConjunct* out) {
  if (e == nullptr || e->kind != Expr::Kind::kBinary) return false;
  BinaryOp op = e->binary_op;
  if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLe &&
      op != BinaryOp::kGt && op != BinaryOp::kGe) {
    return false;
  }
  ExprPtr col = e->children[0], lit = e->children[1];
  if (IsLiteral(col) && IsColumnRef(lit)) {
    std::swap(col, lit);
    op = FlipComparison(op);
  }
  if (!IsColumnRef(col) || !IsLiteral(lit)) return false;
  auto idx = schema.IndexOf(col->table, col->name);
  if (!idx.ok()) return false;
  out->column = idx.ValueOrDie();
  out->op = op;
  out->literal = lit->literal;
  return true;
}

std::vector<SortKey> AllColumnsAsc(const Schema& schema) {
  std::vector<SortKey> keys;
  keys.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) keys.push_back({i, true});
  return keys;
}

/// Replaces aggregate nodes with bound references into the aggregation
/// output, and group-key column references with their output positions.
Result<ExprPtr> RewriteOverAggOutput(const ExprPtr& e, const Schema& input,
                                     const std::vector<size_t>& group_cols,
                                     const std::vector<AggSpec>& aggs,
                                     const std::vector<ExprPtr>& agg_originals) {
  if (e->kind == Expr::Kind::kAggregate) {
    for (size_t j = 0; j < agg_originals.size(); ++j) {
      if (e->Equals(*agg_originals[j])) {
        return Expr::BoundColumn(static_cast<int>(group_cols.size() + j),
                                 aggs[j].name);
      }
    }
    return Status::Internal("aggregate not collected");
  }
  if (e->kind == Expr::Kind::kColumn) {
    TANGO_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(e->table, e->name));
    for (size_t g = 0; g < group_cols.size(); ++g) {
      if (group_cols[g] == idx) {
        return Expr::BoundColumn(static_cast<int>(g), e->name);
      }
    }
    return Status::InvalidArgument("column " + e->name +
                                   " is not in the GROUP BY list");
  }
  auto out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const ExprPtr& c : e->children) {
    TANGO_ASSIGN_OR_RETURN(
        ExprPtr r, RewriteOverAggOutput(c, input, group_cols, aggs, agg_originals));
    out->children.push_back(std::move(r));
  }
  return ExprPtr(out);
}

void CollectAggNodes(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kAggregate) {
    for (const ExprPtr& seen : *out) {
      if (seen->Equals(*e)) return;
    }
    out->push_back(e);
    return;
  }
  for (const ExprPtr& c : e->children) CollectAggNodes(c, out);
}

}  // namespace

Result<CursorPtr> Planner::PlanSelect(const sql::SelectStmt& stmt) {
  // Plan the UNION chain.
  std::vector<CursorPtr> arms;
  bool all_union_all = true;
  const sql::SelectStmt* arm = &stmt;
  while (arm != nullptr) {
    TANGO_ASSIGN_OR_RETURN(CursorPtr planned, PlanArm(*arm));
    arms.push_back(std::move(planned));
    if (arm->union_next != nullptr && !arm->union_all) all_union_all = false;
    arm = arm->union_next.get();
  }
  CursorPtr cur;
  if (arms.size() == 1) {
    cur = std::move(arms[0]);
  } else {
    // Union compatibility: same arity.
    const size_t arity = arms[0]->schema().num_columns();
    for (const CursorPtr& a : arms) {
      if (a->schema().num_columns() != arity) {
        return Status::InvalidArgument("UNION arms have different arity");
      }
    }
    cur = std::make_unique<UnionAllOp>(std::move(arms));
    if (!all_union_all) {
      auto keys = AllColumnsAsc(cur->schema());
      cur = std::make_unique<SortOp>(std::move(cur), std::move(keys));
      cur = std::make_unique<DedupOp>(std::move(cur));
    }
    TANGO_ASSIGN_OR_RETURN(cur, ApplyOrderBy(stmt, std::move(cur)));
  }
  return cur;
}

Result<CursorPtr> Planner::PlanArm(const sql::SelectStmt& stmt) {
  std::vector<ExprPtr> residuals;
  TANGO_ASSIGN_OR_RETURN(CursorPtr cur, PlanJoins(stmt, &residuals));
  if (!residuals.empty()) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr pred,
                           Bind(Expr::AndAll(residuals), cur->schema()));
    cur = std::make_unique<FilterOp>(std::move(cur), std::move(pred));
  }

  // Aggregation or plain projection.
  bool needs_agg = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.items) {
    if (!item.star && ContainsAggregate(item.expr)) needs_agg = true;
  }
  if (stmt.having != nullptr) needs_agg = true;

  std::vector<ExprPtr> select_exprs;
  Schema out_schema;
  if (needs_agg) {
    TANGO_ASSIGN_OR_RETURN(
        cur, PlanAggregation(stmt, std::move(cur), &select_exprs, &out_schema));
  } else {
    // Expand stars and bind items against the join output.
    const Schema& in = cur->schema();
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < in.num_columns(); ++i) {
          const Column& c = in.column(i);
          if (!item.star_qualifier.empty() && c.table != item.star_qualifier) {
            continue;
          }
          select_exprs.push_back(Expr::BoundColumn(static_cast<int>(i), c.name));
          out_schema.AddColumn(c);
        }
        continue;
      }
      TANGO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(item.expr, in));
      Column col;
      col.name = !item.alias.empty()
                     ? item.alias
                     : (item.expr->kind == Expr::Kind::kColumn ? item.expr->name
                                                               : item.expr->ToString());
      TANGO_ASSIGN_OR_RETURN(col.type, InferType(bound, in));
      select_exprs.push_back(std::move(bound));
      out_schema.AddColumn(col);
    }
  }
  // ORDER BY handling for a standalone SELECT (union chains are ordered by
  // PlanSelect over the union result). Columns may reference either the
  // projected output or, as standard SQL allows, pre-projection columns.
  const bool order_here = !stmt.order_by.empty() && stmt.union_next == nullptr;
  bool order_in_output = order_here;
  if (order_here) {
    for (const sql::OrderItem& item : stmt.order_by) {
      if (!IsColumnRef(item.expr) ||
          !out_schema.IndexOf(item.expr->table, item.expr->name).ok()) {
        order_in_output = false;
        break;
      }
    }
    if (!order_in_output) {
      // Sort below the projection (invalid under DISTINCT, whose dedup sort
      // would destroy the order anyway).
      if (stmt.distinct) {
        return Status::NotSupported(
            "ORDER BY of non-projected columns with DISTINCT");
      }
      std::vector<SortKey> keys;
      for (const sql::OrderItem& item : stmt.order_by) {
        if (!IsColumnRef(item.expr)) {
          return Status::NotSupported("ORDER BY supports column references only");
        }
        TANGO_ASSIGN_OR_RETURN(
            size_t idx, cur->schema().IndexOf(item.expr->table, item.expr->name));
        keys.push_back({idx, item.ascending});
      }
      cur = std::make_unique<SortOp>(std::move(cur), std::move(keys));
    }
  }

  cur = std::make_unique<ProjectOp>(std::move(cur), std::move(select_exprs),
                                    std::move(out_schema));

  if (stmt.distinct) {
    auto keys = AllColumnsAsc(cur->schema());
    cur = std::make_unique<SortOp>(std::move(cur), std::move(keys));
    cur = std::make_unique<DedupOp>(std::move(cur));
  }
  if (order_in_output) {
    TANGO_ASSIGN_OR_RETURN(cur, ApplyOrderBy(stmt, std::move(cur)));
  }
  return cur;
}

Result<CursorPtr> Planner::PlanJoins(const sql::SelectStmt& stmt,
                                     std::vector<ExprPtr>* residuals) {
  if (stmt.from.empty()) return Status::InvalidArgument("empty FROM");

  // Compute each ref's schema for conjunct classification (without planning
  // the refs yet, so pushed predicates can inform index selection).
  std::vector<Schema> ref_schemas;
  for (const sql::TableRef& ref : stmt.from) {
    if (ref.subquery != nullptr) {
      // Plan for the schema only and discard; planning is cheap (no
      // execution happens until Init/Next).
      TANGO_ASSIGN_OR_RETURN(CursorPtr sub, PlanSelect(*ref.subquery));
      ref_schemas.push_back(sub->schema().WithQualifier(ref.alias));
    } else {
      TANGO_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(ref.table));
      const std::string qual = ref.alias.empty() ? ref.table : ref.alias;
      ref_schemas.push_back(table->schema().WithQualifier(qual));
    }
  }

  // Classify WHERE conjuncts: single-ref (pushed), join-level, unresolved.
  std::vector<std::vector<ExprPtr>> pushed(stmt.from.size());
  std::vector<std::vector<ExprPtr>> join_level(stmt.from.size());
  for (const ExprPtr& conjunct : SplitConjuncts(stmt.where)) {
    size_t bind_count = 0;
    size_t bind_ref = 0;
    for (size_t i = 0; i < ref_schemas.size(); ++i) {
      if (Bind(conjunct, ref_schemas[i]).ok()) {
        ++bind_count;
        bind_ref = i;
      }
    }
    if (bind_count == 1) {
      pushed[bind_ref].push_back(conjunct);
      continue;
    }
    if (bind_count > 1) {
      std::vector<std::string> cols;
      CollectColumns(conjunct, &cols);
      if (cols.empty()) {
        pushed[0].push_back(conjunct);  // constant predicate
        continue;
      }
      return Status::InvalidArgument("ambiguous column reference in: " +
                                     conjunct->ToString());
    }
    // Smallest prefix of refs the conjunct resolves in.
    Schema acc = ref_schemas[0];
    bool placed = false;
    for (size_t k = 1; k < ref_schemas.size(); ++k) {
      acc = Schema::Concat(acc, ref_schemas[k]);
      if (Bind(conjunct, acc).ok()) {
        join_level[k].push_back(conjunct);
        placed = true;
        break;
      }
    }
    if (!placed) residuals->push_back(conjunct);
  }

  // Plan the first ref and fold in the rest left-deep.
  auto plan_ref = [&](size_t i) -> Result<CursorPtr> {
    return PlanTableRef(stmt.from[i], pushed[i]);
  };
  TANGO_ASSIGN_OR_RETURN(CursorPtr cur, plan_ref(0));

  for (size_t i = 1; i < stmt.from.size(); ++i) {
    // Split this level's conjuncts into equi-join keys and residual.
    std::vector<ExprPtr> equis, others;
    std::vector<std::string> left_cols, right_cols;
    for (const ExprPtr& c : join_level[i]) {
      bool is_equi = false;
      if (c->kind == Expr::Kind::kBinary && c->binary_op == BinaryOp::kEq &&
          IsColumnRef(c->children[0]) && IsColumnRef(c->children[1])) {
        const ExprPtr& a = c->children[0];
        const ExprPtr& b = c->children[1];
        const bool a_left = Bind(a, cur->schema()).ok();
        const bool a_right = Bind(a, ref_schemas[i]).ok();
        const bool b_left = Bind(b, cur->schema()).ok();
        const bool b_right = Bind(b, ref_schemas[i]).ok();
        if (a_left && !a_right && b_right && !b_left) {
          left_cols.push_back(a->table.empty() ? a->name : a->table + "." + a->name);
          right_cols.push_back(b->table.empty() ? b->name : b->table + "." + b->name);
          is_equi = true;
        } else if (b_left && !b_right && a_right && !a_left) {
          left_cols.push_back(b->table.empty() ? b->name : b->table + "." + b->name);
          right_cols.push_back(a->table.empty() ? a->name : a->table + "." + a->name);
          is_equi = true;
        }
      }
      if (is_equi) {
        equis.push_back(c);
      } else {
        others.push_back(c);
      }
    }

    const Schema joined = Schema::Concat(cur->schema(), ref_schemas[i]);
    ExprPtr residual = nullptr;
    if (!others.empty()) {
      TANGO_ASSIGN_OR_RETURN(residual, Bind(Expr::AndAll(others), joined));
    }

    const SessionConfig::JoinMethod method = config_->forced_join;
    const sql::TableRef& ref = stmt.from[i];

    if (!equis.empty() && method == SessionConfig::JoinMethod::kNestedLoop &&
        ref.subquery == nullptr) {
      // Index nested-loop: probe the inner base table's index.
      TANGO_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(ref.table));
      const std::string qual = ref.alias.empty() ? ref.table : ref.alias;
      // Find an equi pair whose inner column has an index.
      int chosen = -1;
      size_t inner_col = 0;
      for (size_t e = 0; e < equis.size(); ++e) {
        auto inner_idx = table->schema().IndexOf(right_cols[e]);
        if (!inner_idx.ok()) {
          // right_cols may carry the alias qualifier; retry unqualified.
          const size_t dot = right_cols[e].find('.');
          if (dot != std::string::npos) {
            inner_idx = table->schema().IndexOf(right_cols[e].substr(dot + 1));
          }
        }
        if (inner_idx.ok() && table->HasIndex(inner_idx.ValueOrDie())) {
          chosen = static_cast<int>(e);
          inner_col = inner_idx.ValueOrDie();
          break;
        }
      }
      if (chosen >= 0) {
        TANGO_ASSIGN_OR_RETURN(size_t outer_key,
                               cur->schema().IndexOf(left_cols[chosen]));
        // Remaining equis + pushed conjuncts of the inner + others become
        // the residual (evaluated on the joined schema).
        std::vector<ExprPtr> res = others;
        for (size_t e = 0; e < equis.size(); ++e) {
          if (static_cast<int>(e) != chosen) res.push_back(equis[e]);
        }
        for (const ExprPtr& p : pushed[i]) res.push_back(p);
        ExprPtr bound_res = nullptr;
        if (!res.empty()) {
          TANGO_ASSIGN_OR_RETURN(bound_res, Bind(Expr::AndAll(res), joined));
        }
        cur = std::make_unique<IndexNestedLoopJoinOp>(
            std::move(cur), table, qual, outer_key, inner_col, bound_res);
        continue;
      }
      // No usable index: fall through to block nested loop below.
    }

    TANGO_ASSIGN_OR_RETURN(CursorPtr right, plan_ref(i));

    if (equis.empty() || method == SessionConfig::JoinMethod::kNestedLoop) {
      std::vector<ExprPtr> all = equis;
      all.insert(all.end(), others.begin(), others.end());
      ExprPtr pred = nullptr;
      if (!all.empty()) {
        TANGO_ASSIGN_OR_RETURN(pred, Bind(Expr::AndAll(all), joined));
      }
      cur = std::make_unique<NestedLoopJoinOp>(std::move(cur), std::move(right),
                                               std::move(pred));
      continue;
    }

    // Resolve key columns on both sides.
    std::vector<size_t> lkeys, rkeys;
    for (size_t e = 0; e < equis.size(); ++e) {
      TANGO_ASSIGN_OR_RETURN(size_t lk, cur->schema().IndexOf(left_cols[e]));
      TANGO_ASSIGN_OR_RETURN(size_t rk, right->schema().IndexOf(right_cols[e]));
      lkeys.push_back(lk);
      rkeys.push_back(rk);
    }

    if (method == SessionConfig::JoinMethod::kMerge) {
      std::vector<SortKey> lsort, rsort;
      for (size_t e = 0; e < lkeys.size(); ++e) {
        lsort.push_back({lkeys[e], true});
        rsort.push_back({rkeys[e], true});
      }
      cur = std::make_unique<SortOp>(std::move(cur), std::move(lsort));
      right = std::make_unique<SortOp>(std::move(right), std::move(rsort));
      cur = std::make_unique<SortMergeJoinOp>(std::move(cur), std::move(right),
                                              std::move(lkeys), std::move(rkeys),
                                              std::move(residual));
    } else {
      // kAuto / kHash: hash join, building on the accumulated left side.
      cur = std::make_unique<HashJoinOp>(std::move(cur), std::move(right),
                                         std::move(lkeys), std::move(rkeys),
                                         std::move(residual));
      // HashJoinOp probes with the right input but emits left ++ right, so
      // downstream binding is unaffected.
    }
  }
  return cur;
}

Result<CursorPtr> Planner::PlanTableRef(const sql::TableRef& ref,
                                        std::vector<ExprPtr> pushed) {
  if (ref.subquery != nullptr) {
    TANGO_ASSIGN_OR_RETURN(CursorPtr sub, PlanSelect(*ref.subquery));
    CursorPtr cur = std::make_unique<AliasOp>(std::move(sub), ref.alias);
    if (!pushed.empty()) {
      TANGO_ASSIGN_OR_RETURN(ExprPtr pred,
                             Bind(Expr::AndAll(pushed), cur->schema()));
      cur = std::make_unique<FilterOp>(std::move(cur), std::move(pred));
    }
    return cur;
  }
  TANGO_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(ref.table));
  const std::string qual = ref.alias.empty() ? ref.table : ref.alias;
  return PlanBaseTable(table, qual, std::move(pushed));
}

Result<CursorPtr> Planner::PlanBaseTable(const Table* table,
                                         const std::string& alias,
                                         std::vector<ExprPtr> pushed) {
  const Schema qualified = table->schema().WithQualifier(alias);

  // Gather indexable conjuncts per indexed column.
  struct Range {
    std::optional<Value> lo, hi;
    bool lo_inc = true, hi_inc = true;
    double selectivity = 1.0;
  };
  std::map<size_t, Range> ranges;
  for (const ExprPtr& c : pushed) {
    IndexableConjunct ic;
    if (!MatchIndexable(c, qualified, &ic)) continue;
    if (!table->HasIndex(ic.column)) continue;
    Range& r = ranges[ic.column];
    switch (ic.op) {
      case BinaryOp::kEq:
        r.lo = ic.literal;
        r.hi = ic.literal;
        r.lo_inc = r.hi_inc = true;
        break;
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        if (!r.hi.has_value() || ic.literal < *r.hi) {
          r.hi = ic.literal;
          r.hi_inc = ic.op == BinaryOp::kLe;
        }
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (!r.lo.has_value() || ic.literal > *r.lo) {
          r.lo = ic.literal;
          r.lo_inc = ic.op == BinaryOp::kGe;
        }
        break;
      default:
        break;
    }
    const double sel =
        EstimateColumnSelectivity(table, ic.column, ic.op, ic.literal);
    r.selectivity = std::min(r.selectivity, sel);
  }

  // Pick the most selective indexed range under the threshold.
  int best_col = -1;
  double best_sel = config_->index_scan_threshold;
  for (const auto& [col, range] : ranges) {
    if (range.selectivity < best_sel) {
      best_sel = range.selectivity;
      best_col = static_cast<int>(col);
    }
  }

  CursorPtr cur;
  if (best_col >= 0) {
    const Range& r = ranges[static_cast<size_t>(best_col)];
    cur = std::make_unique<IndexScanOp>(table, static_cast<size_t>(best_col),
                                        alias, r.lo, r.lo_inc, r.hi, r.hi_inc);
  } else {
    cur = std::make_unique<TableScanOp>(table, alias);
  }
  if (!pushed.empty()) {
    // Keep the full predicate as a residual filter: correct regardless of
    // which conjuncts the index range already enforces.
    TANGO_ASSIGN_OR_RETURN(ExprPtr pred,
                           Bind(Expr::AndAll(pushed), cur->schema()));
    cur = std::make_unique<FilterOp>(std::move(cur), std::move(pred));
  }
  return cur;
}

double Planner::EstimateColumnSelectivity(const Table* table, size_t column,
                                          BinaryOp op,
                                          const Value& literal) const {
  const TableStats& stats = table->stats();
  if (!stats.analyzed || stats.cardinality <= 0 ||
      column >= stats.columns.size()) {
    // Without statistics assume equality is selective, ranges are not.
    return op == BinaryOp::kEq ? 0.01 : 1.0;
  }
  const ColumnStats& cs = stats.columns[column];
  if (op == BinaryOp::kEq) {
    return cs.num_distinct > 0 ? 1.0 / cs.num_distinct : 1.0;
  }
  if (!literal.is_numeric()) return 0.5;
  const double a = literal.AsDouble();
  double frac_less;
  if (!cs.histogram.empty()) {
    frac_less = cs.histogram.EstimateLess(a) / stats.cardinality;
  } else if (cs.min.is_numeric() && cs.max.is_numeric() &&
             cs.max.AsDouble() > cs.min.AsDouble()) {
    frac_less = (a - cs.min.AsDouble()) /
                (cs.max.AsDouble() - cs.min.AsDouble());
  } else {
    return 0.5;
  }
  frac_less = std::clamp(frac_less, 0.0, 1.0);
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return frac_less;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 1.0 - frac_less;
    default:
      return 0.5;
  }
}

Result<CursorPtr> Planner::PlanAggregation(const sql::SelectStmt& stmt,
                                           CursorPtr input,
                                           std::vector<ExprPtr>* select_exprs,
                                           Schema* out_schema) {
  const Schema& in = input->schema();

  // Group columns must be plain column references.
  std::vector<size_t> group_cols;
  for (const ExprPtr& g : stmt.group_by) {
    if (!IsColumnRef(g)) {
      return Status::NotSupported("GROUP BY supports column references only");
    }
    TANGO_ASSIGN_OR_RETURN(size_t idx, in.IndexOf(g->table, g->name));
    group_cols.push_back(idx);
  }

  // Collect distinct aggregate nodes from the select list and HAVING.
  std::vector<ExprPtr> agg_nodes;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      return Status::NotSupported("SELECT * with aggregation");
    }
    CollectAggNodes(item.expr, &agg_nodes);
  }
  if (stmt.having != nullptr) CollectAggNodes(stmt.having, &agg_nodes);

  std::vector<AggSpec> aggs;
  for (size_t j = 0; j < agg_nodes.size(); ++j) {
    AggSpec spec;
    spec.func = agg_nodes[j]->agg;
    spec.name = "AGG" + std::to_string(j);
    if (!agg_nodes[j]->agg_star) {
      TANGO_ASSIGN_OR_RETURN(spec.arg, Bind(agg_nodes[j]->children[0], in));
    }
    aggs.push_back(std::move(spec));
  }

  // Sort by group columns, then aggregate.
  CursorPtr cur = std::move(input);
  if (!group_cols.empty()) {
    std::vector<SortKey> keys;
    for (size_t c : group_cols) keys.push_back({c, true});
    cur = std::make_unique<SortOp>(std::move(cur), std::move(keys));
  }
  cur = std::make_unique<GroupAggOp>(std::move(cur), group_cols, aggs);

  // HAVING over the aggregate output.
  if (stmt.having != nullptr) {
    TANGO_ASSIGN_OR_RETURN(
        ExprPtr pred,
        RewriteOverAggOutput(stmt.having, in, group_cols, aggs, agg_nodes));
    cur = std::make_unique<FilterOp>(std::move(cur), std::move(pred));
  }

  // Select expressions over the aggregate output.
  for (const sql::SelectItem& item : stmt.items) {
    TANGO_ASSIGN_OR_RETURN(
        ExprPtr e,
        RewriteOverAggOutput(item.expr, in, group_cols, aggs, agg_nodes));
    Column col;
    col.name = !item.alias.empty()
                   ? item.alias
                   : (item.expr->kind == Expr::Kind::kColumn
                          ? item.expr->name
                          : item.expr->ToString());
    TANGO_ASSIGN_OR_RETURN(col.type, InferType(e, cur->schema()));
    select_exprs->push_back(std::move(e));
    out_schema->AddColumn(col);
  }
  return cur;
}

Result<CursorPtr> Planner::ApplyOrderBy(const sql::SelectStmt& stmt,
                                        CursorPtr input) {
  if (stmt.order_by.empty()) return input;
  std::vector<SortKey> keys;
  for (const sql::OrderItem& item : stmt.order_by) {
    if (!IsColumnRef(item.expr)) {
      return Status::NotSupported("ORDER BY supports column references only");
    }
    TANGO_ASSIGN_OR_RETURN(
        size_t idx, input->schema().IndexOf(item.expr->table, item.expr->name));
    keys.push_back({idx, item.ascending});
  }
  return CursorPtr(std::make_unique<SortOp>(std::move(input), std::move(keys)));
}

}  // namespace dbms
}  // namespace tango
