#include "dbms/recovery.h"

#include <algorithm>
#include <map>

#include "common/wire.h"

namespace tango {
namespace dbms {

namespace {

using storage::Lsn;
using storage::WalRecord;
using storage::WalRecordType;

void PutColumnStats(WireWriter* w, const ColumnStats& cs) {
  w->PutValue(cs.min);
  w->PutValue(cs.max);
  w->PutDouble(cs.num_distinct);
  const std::vector<stats::Histogram::BucketSpec> buckets =
      cs.histogram.DumpBuckets();
  w->PutU32(static_cast<uint32_t>(buckets.size()));
  for (const auto& b : buckets) {
    w->PutDouble(b.lo);
    w->PutDouble(b.hi);
    w->PutDouble(b.count);
  }
  w->PutU8(cs.has_index ? 1 : 0);
  w->PutU8(cs.index_clustered ? 1 : 0);
}

Result<ColumnStats> GetColumnStats(WireReader* r) {
  ColumnStats cs;
  TANGO_ASSIGN_OR_RETURN(cs.min, r->GetValue());
  TANGO_ASSIGN_OR_RETURN(cs.max, r->GetValue());
  TANGO_ASSIGN_OR_RETURN(cs.num_distinct, r->GetDouble());
  TANGO_ASSIGN_OR_RETURN(const uint32_t nbuckets, r->GetU32());
  std::vector<stats::Histogram::BucketSpec> buckets(nbuckets);
  for (uint32_t i = 0; i < nbuckets; ++i) {
    TANGO_ASSIGN_OR_RETURN(buckets[i].lo, r->GetDouble());
    TANGO_ASSIGN_OR_RETURN(buckets[i].hi, r->GetDouble());
    TANGO_ASSIGN_OR_RETURN(buckets[i].count, r->GetDouble());
  }
  cs.histogram = stats::Histogram::FromBuckets(buckets);
  TANGO_ASSIGN_OR_RETURN(const uint8_t has_index, r->GetU8());
  cs.has_index = has_index != 0;
  TANGO_ASSIGN_OR_RETURN(const uint8_t clustered, r->GetU8());
  cs.index_clustered = clustered != 0;
  return cs;
}

}  // namespace

std::vector<uint8_t> RecoveryManager::SerializeSnapshot(
    const Catalog& catalog) {
  WireWriter w;
  std::vector<const Table*> tables;
  for (const std::string& name : catalog.TableNames()) {
    if (IsTempTableName(name)) continue;
    tables.push_back(catalog.GetTable(name).ValueOrDie());
  }
  w.PutU32(static_cast<uint32_t>(tables.size()));
  for (const Table* table : tables) {
    w.PutString(table->name());
    const Schema& schema = table->schema();
    w.PutU32(static_cast<uint32_t>(schema.num_columns()));
    for (const Column& c : schema.columns()) {
      w.PutString(c.name);
      w.PutU8(static_cast<uint8_t>(c.type));
    }
    table->file().SerializeTo(&w);
    const std::vector<size_t> indexed = table->IndexedColumns();
    w.PutU32(static_cast<uint32_t>(indexed.size()));
    for (const size_t col : indexed) w.PutU32(static_cast<uint32_t>(col));
    const TableStats& ts = table->stats();
    w.PutU8(ts.analyzed ? 1 : 0);
    w.PutDouble(ts.cardinality);
    w.PutDouble(ts.blocks);
    w.PutDouble(ts.avg_tuple_bytes);
    w.PutU32(static_cast<uint32_t>(ts.columns.size()));
    for (const ColumnStats& cs : ts.columns) PutColumnStats(&w, cs);
  }
  return w.Take();
}

Status RecoveryManager::LoadSnapshot(const std::vector<uint8_t>& payload,
                                     Catalog* catalog) {
  WireReader r(payload.data(), payload.size());
  TANGO_ASSIGN_OR_RETURN(const uint32_t ntables, r.GetU32());
  for (uint32_t t = 0; t < ntables; ++t) {
    TANGO_ASSIGN_OR_RETURN(const std::string name, r.GetString());
    TANGO_ASSIGN_OR_RETURN(const uint32_t ncols, r.GetU32());
    Schema schema;
    for (uint32_t c = 0; c < ncols; ++c) {
      Column col;
      TANGO_ASSIGN_OR_RETURN(col.name, r.GetString());
      TANGO_ASSIGN_OR_RETURN(const uint8_t type, r.GetU8());
      col.type = static_cast<DataType>(type);
      schema.AddColumn(std::move(col));
    }
    TANGO_ASSIGN_OR_RETURN(Table * table, catalog->CreateTable(name, schema));
    TANGO_RETURN_IF_ERROR(table->file().SerializeFrom(&r));
    TANGO_ASSIGN_OR_RETURN(const uint32_t nindexed, r.GetU32());
    for (uint32_t i = 0; i < nindexed; ++i) {
      TANGO_ASSIGN_OR_RETURN(const uint32_t col, r.GetU32());
      TANGO_RETURN_IF_ERROR(table->CreateIndex(col));
    }
    TableStats ts;
    TANGO_ASSIGN_OR_RETURN(const uint8_t analyzed, r.GetU8());
    ts.analyzed = analyzed != 0;
    TANGO_ASSIGN_OR_RETURN(ts.cardinality, r.GetDouble());
    TANGO_ASSIGN_OR_RETURN(ts.blocks, r.GetDouble());
    TANGO_ASSIGN_OR_RETURN(ts.avg_tuple_bytes, r.GetDouble());
    TANGO_ASSIGN_OR_RETURN(const uint32_t nstats, r.GetU32());
    ts.columns.reserve(nstats);
    for (uint32_t i = 0; i < nstats; ++i) {
      TANGO_ASSIGN_OR_RETURN(ColumnStats cs, GetColumnStats(&r));
      ts.columns.push_back(std::move(cs));
    }
    table->stats() = std::move(ts);
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in snapshot");
  return Status::OK();
}

void RecoveryManager::ClearCatalog() {
  for (const std::string& name : catalog_->TableNames()) {
    (void)catalog_->DropTable(name);
  }
}

Status RecoveryManager::Redo(const WalRecord& rec, RecoveryStats* stats) {
  switch (rec.type) {
    case WalRecordType::kCommit:
    case WalRecordType::kEnd:
    case WalRecordType::kCheckpoint:
      return Status::OK();
    case WalRecordType::kCreateTable: {
      Schema schema;
      for (const Column& c : rec.schema_columns) {
        schema.AddColumn({"", c.name, c.type});
      }
      TANGO_RETURN_IF_ERROR(
          catalog_->CreateTable(rec.table, std::move(schema)).status());
      ++stats->redo_applied;
      return Status::OK();
    }
    case WalRecordType::kDropTable:
      TANGO_RETURN_IF_ERROR(catalog_->DropTable(rec.table));
      ++stats->redo_applied;
      return Status::OK();
    case WalRecordType::kCreateIndex: {
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
      TANGO_RETURN_IF_ERROR(table->CreateIndex(rec.aux));
      ++stats->redo_applied;
      return Status::OK();
    }
    case WalRecordType::kAnalyze:
      if (rec.table.empty()) {
        TANGO_RETURN_IF_ERROR(catalog_->AnalyzeAll(rec.aux));
      } else {
        TANGO_RETURN_IF_ERROR(catalog_->Analyze(rec.table, rec.aux));
      }
      ++stats->redo_applied;
      return Status::OK();
    case WalRecordType::kBulkLoad: {
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
      for (const Tuple& row : rec.rows) {
        TANGO_RETURN_IF_ERROR(table->ApplyInsert(row, rec.lsn).status());
      }
      ++stats->redo_applied;
      return Status::OK();
    }
    case WalRecordType::kInsert: {
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
      if (table->file().PageLsn(rec.rid.page) >= rec.lsn) {
        ++stats->redo_skipped;
        return Status::OK();
      }
      TANGO_ASSIGN_OR_RETURN(const storage::Rid rid,
                             table->ApplyInsert(rec.rows.at(0), rec.lsn));
      if (!(rid == rec.rid)) {
        return Status::Internal("redo diverged: insert landed at a different "
                                "rid than the log recorded");
      }
      ++stats->redo_applied;
      return Status::OK();
    }
    case WalRecordType::kUpdate: {
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
      if (table->file().PageLsn(rec.rid.page) >= rec.lsn) {
        ++stats->redo_skipped;
        return Status::OK();
      }
      TANGO_RETURN_IF_ERROR(table->ApplyUpdate(rec.rid, rec.rows.at(0),
                                               rec.rows.at(1), rec.lsn));
      ++stats->redo_applied;
      return Status::OK();
    }
    case WalRecordType::kClrInsert: {
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
      if (table->file().PageLsn(rec.rid.page) >= rec.lsn) {
        ++stats->redo_skipped;
        return Status::OK();
      }
      TANGO_ASSIGN_OR_RETURN(const Tuple image, table->file().Get(rec.rid));
      TANGO_RETURN_IF_ERROR(table->ApplyDelete(rec.rid, image, rec.lsn));
      ++stats->redo_applied;
      return Status::OK();
    }
    case WalRecordType::kClrUpdate: {
      TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
      if (table->file().PageLsn(rec.rid.page) >= rec.lsn) {
        ++stats->redo_skipped;
        return Status::OK();
      }
      TANGO_ASSIGN_OR_RETURN(const Tuple cur, table->file().Get(rec.rid));
      TANGO_RETURN_IF_ERROR(
          table->ApplyUpdate(rec.rid, cur, rec.rows.at(0), rec.lsn));
      ++stats->redo_applied;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled wal record type in redo");
}

Status RecoveryManager::Run(RecoveryStats* stats, uint64_t* max_txn_id) {
  obs::ScopedSpan run_span(trace_, "recovery.replay", "recovery");

  // Scan before Wal::Open trims the torn tail, so we can report how many
  // bytes the damaged frame cost.
  storage::WalScan scan;
  {
    obs::ScopedSpan span(trace_, "recovery.analysis", "recovery",
                         run_span.id());
    TANGO_ASSIGN_OR_RETURN(scan, storage::ReadWal(wal_->dir()));
  }
  TANGO_RETURN_IF_ERROR(wal_->Open());
  stats->records_scanned = scan.records.size();
  stats->torn_bytes_discarded = scan.torn_bytes;

  // Latest loadable snapshot (a corrupt or half-written one falls back to
  // the previous; no snapshot at all means replay from the log start).
  Lsn snapshot_lsn = storage::kNoLsn;
  {
    obs::ScopedSpan span(trace_, "recovery.load_snapshot", "recovery",
                         run_span.id());
    const std::vector<Lsn> snaps = storage::Wal::ListSnapshots(wal_->dir());
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
      Result<std::vector<uint8_t>> payload = storage::Wal::ReadSealedFile(
          storage::Wal::SnapshotPath(wal_->dir(), *it));
      if (!payload.ok()) continue;
      ClearCatalog();
      if (LoadSnapshot(payload.ValueOrDie(), catalog_).ok()) {
        snapshot_lsn = *it;
        break;
      }
      ClearCatalog();
    }
  }
  stats->snapshot_lsn = snapshot_lsn;

  // Analysis: transaction table + lsn -> record map.
  std::map<Lsn, const WalRecord*> by_lsn;
  struct TxnInfo {
    Lsn last = storage::kNoLsn;
    bool committed = false;
    bool ended = false;
  };
  std::map<uint64_t, TxnInfo> txns;
  uint64_t max_txn = 0;
  for (const WalRecord& rec : scan.records) {
    by_lsn[rec.lsn] = &rec;
    max_txn = std::max(max_txn, rec.txn);
    if (rec.type == WalRecordType::kCheckpoint) {
      for (const auto& [id, first] : rec.active_txns) {
        (void)first;
        max_txn = std::max(max_txn, id);
      }
    }
    if (rec.txn != 0) {
      TxnInfo& info = txns[rec.txn];
      info.last = rec.lsn;
      if (rec.type == WalRecordType::kCommit) info.committed = true;
      if (rec.type == WalRecordType::kEnd) info.ended = true;
    }
  }
  *max_txn_id = max_txn;

  // Redo: repeat history after the snapshot.
  {
    obs::ScopedSpan span(trace_, "recovery.redo", "recovery", run_span.id());
    for (const WalRecord& rec : scan.records) {
      if (rec.lsn <= snapshot_lsn) {
        ++stats->redo_skipped;
        continue;
      }
      TANGO_RETURN_IF_ERROR(Redo(rec, stats));
    }
  }

  // Undo the losers: every transaction with records but neither a durable
  // kCommit nor a kEnd.
  {
    obs::ScopedSpan span(trace_, "recovery.undo", "recovery", run_span.id());
    for (const auto& [id, info] : txns) {
      if (info.committed) {
        ++stats->txns_committed;
        continue;
      }
      if (info.ended) continue;
      Lsn cur = info.last;
      Lsn tail = info.last;  // lsn chain tail for the CLRs we append
      while (cur != storage::kNoLsn) {
        const auto it = by_lsn.find(cur);
        if (it == by_lsn.end()) {
          return Status::Internal("undo chain reaches a truncated lsn " +
                                  std::to_string(cur));
        }
        const WalRecord& rec = *it->second;
        if (rec.type == WalRecordType::kClrInsert ||
            rec.type == WalRecordType::kClrUpdate) {
          cur = rec.undo_next;  // resume an interrupted rollback
          continue;
        }
        if (rec.type != WalRecordType::kInsert &&
            rec.type != WalRecordType::kUpdate) {
          cur = rec.prev_lsn;
          continue;
        }
        TANGO_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rec.table));
        WalRecord clr;
        clr.txn = id;
        clr.prev_lsn = tail;
        clr.undo_next = rec.prev_lsn;
        clr.table = rec.table;
        clr.rid = rec.rid;
        if (rec.type == WalRecordType::kInsert) {
          clr.type = WalRecordType::kClrInsert;
        } else {
          clr.type = WalRecordType::kClrUpdate;
          clr.rows = {rec.rows.at(0)};
        }
        TANGO_ASSIGN_OR_RETURN(const Lsn clr_lsn, wal_->Append(&clr));
        tail = clr_lsn;
        if (rec.type == WalRecordType::kInsert) {
          TANGO_ASSIGN_OR_RETURN(const Tuple image, table->file().Get(rec.rid));
          TANGO_RETURN_IF_ERROR(table->ApplyDelete(rec.rid, image, clr_lsn));
        } else {
          TANGO_ASSIGN_OR_RETURN(const Tuple curimg,
                                 table->file().Get(rec.rid));
          TANGO_RETURN_IF_ERROR(
              table->ApplyUpdate(rec.rid, curimg, rec.rows.at(0), clr_lsn));
        }
        table->file().StampPageLsn(rec.rid.page, clr_lsn);
        ++stats->undo_records;
        cur = rec.prev_lsn;
      }
      WalRecord end;
      end.type = WalRecordType::kEnd;
      end.txn = id;
      end.prev_lsn = tail;
      TANGO_RETURN_IF_ERROR(wal_->Append(&end).status());
      ++stats->txns_undone;
    }
    TANGO_RETURN_IF_ERROR(wal_->Sync());
  }

  if (metrics_ != nullptr) {
    metrics_->counter("recovery.replay.records")
        .Increment(stats->records_scanned);
    metrics_->counter("recovery.replay.redo_applied")
        .Increment(stats->redo_applied);
    metrics_->counter("recovery.replay.redo_skipped")
        .Increment(stats->redo_skipped);
    metrics_->counter("recovery.replay.undo_records")
        .Increment(stats->undo_records);
    metrics_->counter("recovery.replay.txns_undone")
        .Increment(stats->txns_undone);
    metrics_->counter("recovery.replay.torn_bytes_discarded")
        .Increment(stats->torn_bytes_discarded);
  }
  return Status::OK();
}

}  // namespace dbms
}  // namespace tango
