#ifndef TANGO_DBMS_LOCK_TABLE_H_
#define TANGO_DBMS_LOCK_TABLE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tango {
namespace dbms {

/// \brief Table-level exclusive locks with NO WAIT semantics.
///
/// The durable write path serializes writers per table: a transaction takes
/// an exclusive lock on every table it mutates and keeps it until commit or
/// rollback (strict two-phase). Lock conflicts do not queue — the requester
/// gets kAborted immediately (retryable, like the paper's transient
/// middleware faults), which makes deadlock impossible and keeps the churn
/// workload's retry loop honest.
class LockTable {
 public:
  /// Locks `table` exclusively for `txn`; reentrant for the owner. A
  /// conflict returns kAborted at once (no wait).
  Status TryLockExclusive(const std::string& table, uint64_t txn) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = owners_.try_emplace(table, txn);
    if (!inserted && it->second != txn) {
      return Status::Aborted("table " + table + " locked by txn " +
                             std::to_string(it->second));
    }
    return Status::OK();
  }

  /// Releases every lock `txn` holds (commit / rollback).
  void ReleaseAll(uint64_t txn) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = owners_.begin(); it != owners_.end();) {
      if (it->second == txn) {
        it = owners_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t held() const {
    std::lock_guard<std::mutex> lock(mu_);
    return owners_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> owners_;  // table -> owning txn
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_LOCK_TABLE_H_
