#ifndef TANGO_DBMS_CONNECTION_H_
#define TANGO_DBMS_CONNECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/cursor.h"
#include "dbms/engine.h"
#include "dbms/fault.h"
#include "obs/metrics.h"

namespace tango {
namespace dbms {

/// \brief Parameters of the simulated client/server link.
///
/// The paper's middleware talks to Oracle over JDBC; here the DBMS runs
/// in-process, so the marshalling + network cost that makes `T^M`/`T^D`
/// expensive is reproduced by (a) genuinely serializing every tuple through
/// the wire codec and (b) pacing the link at `bytes_per_second` with a
/// `roundtrip_seconds` latency per statement and per prefetch batch. The
/// defaults model a ~2001-era 100 Mbit LAN with JDBC overheads; see
/// DESIGN.md §2 for the substitution rationale.
struct WireConfig {
  double bytes_per_second = 25.0e6;
  double roundtrip_seconds = 300e-6;
  /// JDBC row-prefetch: tuples fetched per batch into the client buffer
  /// (§3.2 discusses its performance effect).
  size_t row_prefetch = 256;
  double per_batch_seconds = 60e-6;
  /// Disable pacing entirely (serialization still happens); used by unit
  /// tests that assert on results, not timing.
  bool simulate_delay = true;
};

/// Counters describing what crossed the wire (observability + tests).
struct WireCounters {
  uint64_t bytes_to_client = 0;    // T^M direction
  uint64_t bytes_to_server = 0;    // T^D direction
  uint64_t statements = 0;
  uint64_t batches = 0;
  /// CRC-framed RowBlocks that crossed the link (both directions); with
  /// block framing every prefetch batch and every bulk-load chunk is one
  /// block frame.
  uint64_t blocks = 0;
  double simulated_seconds = 0;    // total pacing applied
};

/// \brief Client-side connection to the DBMS — the only door the middleware
/// may use (mirrors a JDBC connection).
///
/// Every operation takes an optional `QueryControl`: a cancelled or expired
/// query fails fast at the next statement or prefetch batch instead of
/// continuing to drive the wire. An attached `FaultInjector` (tests, chaos
/// runs) is consulted at the same boundaries; prefetch batches additionally
/// cross the link CRC-framed, so an injected (or real) truncation/bit-flip
/// surfaces as a transient `kUnavailable` — never as garbled rows.
class Connection {
 public:
  explicit Connection(Engine* engine, WireConfig config = WireConfig())
      : engine_(engine), config_(config), session_(engine->NewSession()) {}

  const WireConfig& config() const { return config_; }
  WireConfig& config() { return config_; }
  const WireCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = WireCounters(); }

  /// Mirrors the wire counters into `registry` as the process-wide
  /// "wire.statements" / "wire.batches" / "wire.bytes_to_client" /
  /// "wire.bytes_to_server" series (null detaches). Unlike the per-
  /// connection WireCounters, these are never reset.
  void set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
      m_statements_ = m_batches_ = m_blocks_ = m_bytes_to_client_ =
          m_bytes_to_server_ = nullptr;
      return;
    }
    m_statements_ = &registry->counter("wire.statements");
    m_batches_ = &registry->counter("wire.batches");
    m_blocks_ = &registry->counter("wire.blocks");
    m_bytes_to_client_ = &registry->counter("wire.bytes_to_client");
    m_bytes_to_server_ = &registry->counter("wire.bytes_to_server");
  }

  /// Attaches the failure model consulted at every statement/batch; null
  /// detaches it.
  void set_fault_injector(FaultInjectorPtr injector) {
    fault_ = std::move(injector);
  }
  const FaultInjectorPtr& fault_injector() const { return fault_; }

  /// Executes a statement and transfers the full result over the wire.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryControlPtr& control = nullptr);

  /// Opens a server-side cursor; rows cross the wire in prefetch batches as
  /// the returned cursor is drained (this is `TRANSFER^M`'s engine).
  Result<CursorPtr> ExecuteQuery(const std::string& sql,
                                 const QueryControlPtr& control = nullptr);

  /// Direct-path load into an existing table (the SQL*Loader stand-in used
  /// by `TRANSFER^D`); rows are serialized across the wire.
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows,
                  const QueryControlPtr& control = nullptr);

  /// Row-at-a-time INSERT load — the inefficient alternative the paper
  /// mentions; kept for the bulk-load-vs-INSERT experiment.
  Status InsertLoad(const std::string& table, const std::vector<Tuple>& rows,
                    const QueryControlPtr& control = nullptr);

  /// Catalog statistics for the middleware's Statistics Collector; costs one
  /// round trip (the stats relations are tiny).
  Result<TableStats> GetTableStats(const std::string& table);
  Result<Schema> GetTableSchema(const std::string& table);

  /// Table names starting with `prefix` (one round trip against the catalog
  /// views); the temp-table janitor's orphan scan.
  Result<std::vector<std::string>> ListTables(const std::string& prefix);

  /// Asks the server to reclaim WAL segments covered by the latest
  /// checkpoint snapshot (the janitor's durable-garbage sweep); returns how
  /// many files were removed. No-op (0) on a volatile engine.
  Result<size_t> ReclaimWalSegments();

  /// The engine session this connection's statements run under — explicit
  /// transactions (BEGIN .. COMMIT) are scoped to it, so two Connections
  /// never share a transaction.
  uint64_t session() const { return session_; }

  /// Applies pacing for `bytes` crossing the link (used internally and by
  /// the remote cursor). Callers must hold the wire lock.
  void PaceBytes(size_t bytes);
  void PaceRoundTrip();
  void PaceBatch();
  /// Counts one framed RowBlock crossing the link (either direction).
  void CountBlock();

  /// Serializes access to the (single) wire and the in-process engine. The
  /// parallel execution engine drains TRANSFER^M cursors on prefetch
  /// threads, so statements and prefetch batches from different threads
  /// interleave at statement/batch granularity under this lock — like one
  /// JDBC connection shared by synchronized accessors.
  std::unique_lock<std::mutex> AcquireWire() {
    return std::unique_lock<std::mutex>(wire_mu_);
  }

  /// Serializes access to the shared engine across Connections (the engine
  /// does not lock internally). Lock order: own wire lock first, then this —
  /// never the reverse. Held only around the engine call itself, not around
  /// pacing, so concurrent connections overlap their simulated wire time.
  std::unique_lock<std::mutex> AcquireEngine() {
    return std::unique_lock<std::mutex>(engine_->statement_mutex());
  }

 private:
  void Spin(double seconds);

  /// Statement-boundary gate: polls `control`, consults the fault injector
  /// (applying any injected latency, which itself respects the deadline),
  /// and paces the round trip. On a non-OK return the statement was not
  /// executed. Must be called with the wire lock held.
  Status StatementGate(const std::string& sql, const QueryControlPtr& control,
                       bool* fault_result_cursor);

  Engine* engine_;
  WireConfig config_;
  WireCounters counters_;
  obs::Counter* m_statements_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_blocks_ = nullptr;
  obs::Counter* m_bytes_to_client_ = nullptr;
  obs::Counter* m_bytes_to_server_ = nullptr;
  FaultInjectorPtr fault_;
  std::mutex wire_mu_;
  uint64_t session_ = 0;
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_CONNECTION_H_
