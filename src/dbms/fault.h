#ifndef TANGO_DBMS_FAULT_H_
#define TANGO_DBMS_FAULT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace tango {
namespace dbms {

/// What the misbehaving environment does to one interaction.
enum class FaultKind {
  kNone,
  /// The statement round trip fails outright (server unreachable).
  kStatementFail,
  /// The statement succeeds but its server-side cursor dies mid-fetch.
  kCursorKill,
  /// A prefetch batch loses its tail on the link.
  kWireTruncate,
  /// A prefetch batch arrives with a flipped bit.
  kWireCorrupt,
  /// The round trip stalls (drives the deadline/timeout path).
  kLatencySpike,
  /// The server process dies before the WAL record at/after `wal_lsn`
  /// reaches the log buffer.
  kWalCrash,
  /// The WAL record at/after `wal_lsn` is torn: only a seeded prefix of its
  /// frame reaches the disk before the process dies.
  kWalTornWrite,
  /// The fsync at/after `wal_lsn` lies: only a seeded prefix of the pending
  /// log buffer persists before the process dies.
  kWalPartialFsync,
};

const char* FaultKindName(FaultKind kind);

/// When and how often a fault fires. Deterministic: statements crossing the
/// connection are numbered 0, 1, 2, ... from Arm(); the fault fires on every
/// matching event whose statement number is >= `statement_index` until
/// `times` firings have happened, then the injector disarms itself. With
/// `times` below the retry budget the query must recover; with `times` above
/// it the query must fail cleanly (or degrade to a fallback plan).
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  uint64_t statement_index = 0;
  /// For the cursor kinds: which prefetch batch of the faulted statement's
  /// cursor dies (0 = the first batch fetched).
  uint64_t batch_index = 0;
  /// Firings before the injector disarms; each re-issued statement (a retry)
  /// is a new event and consumes one firing.
  int times = 1;
  /// Only statements whose SQL contains this substring are faultable
  /// (empty = all). Lets a test target e.g. the TRANSFER^D CREATE without
  /// counting statement positions.
  std::string sql_substring;
  /// For the WAL kinds: the first log sequence number at which the fault may
  /// fire (0 = the very first logged record). Sweeping this over every lsn a
  /// workload produces yields the crash matrix.
  uint64_t wal_lsn = 0;
  double latency_seconds = 5e-3;
  /// Seeds the truncation point / flipped-bit choice.
  uint64_t seed = 0xfa017;
};

/// \brief Deterministic, seeded failure model for the middleware<->DBMS
/// boundary, consulted by `Connection` at every statement issue and by the
/// remote cursor at every prefetch batch.
///
/// Thread-safe: prefetch threads fetch batches concurrently with statements
/// issued from the main thread.
class FaultInjector {
 public:
  /// Arms `plan` and resets the statement numbering.
  void Arm(FaultPlan plan);
  void Disarm();

  uint64_t statements_seen() const;
  uint64_t faults_fired() const;

  /// Outcome of the statement-issue hook.
  struct StatementDecision {
    Status inject;  // non-OK: fail the statement with this status
    double extra_latency_seconds = 0;
    /// The statement's result cursor should consult OnBatch.
    bool fault_result_cursor = false;
  };

  /// Called once per statement crossing the wire (Execute / ExecuteQuery /
  /// BulkLoad / InsertLoad), with the statement text for substring matching.
  StatementDecision OnStatement(const std::string& sql);

  /// What a faulted cursor does to one prefetch batch.
  enum class BatchFault { kNone, kKill, kTruncate, kCorrupt };

  /// Called by a faulted result cursor with its 0-based batch number; fires
  /// at most once per cursor (the caller stops consulting after a firing).
  BatchFault OnBatch(uint64_t batch_no);

  /// Seeded value driving the truncation point / bit choice; advances on
  /// every call so repeated corruptions differ deterministically.
  uint64_t NextSalt();

  /// Outcome of the WAL device hooks (mirrors storage::WalFault without a
  /// dbms -> storage dependency in this header's clients).
  struct WalDecision {
    enum class Action { kNone, kCrash, kTorn, kPartialFsync };
    Action action = Action::kNone;
    /// Bytes of the frame / pending buffer that survive (kTorn /
    /// kPartialFsync).
    uint64_t keep_bytes = 0;
  };

  /// Called by the engine's log-device adapter: once per WAL append
  /// (is_sync = false, lsn = the record's lsn, bytes = its framed size) and
  /// once per WAL sync (is_sync = true, lsn = the log end, bytes = the
  /// pending-buffer size). kWalCrash and kWalTornWrite fire on appends,
  /// kWalPartialFsync on syncs, each at the first event with
  /// lsn >= plan.wal_lsn.
  WalDecision OnWal(bool is_sync, uint64_t lsn, uint64_t bytes);

 private:
  bool ArmedLocked() const {
    return plan_.kind != FaultKind::kNone && fired_ < plan_.times;
  }
  uint64_t NextSaltLocked();

  mutable std::mutex mu_;
  FaultPlan plan_;
  uint64_t statements_ = 0;
  int fired_ = 0;
  uint64_t total_fired_ = 0;
  uint64_t salt_state_ = 0;
};

using FaultInjectorPtr = std::shared_ptr<FaultInjector>;

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_FAULT_H_
