#ifndef TANGO_DBMS_EXEC_OPS_H_
#define TANGO_DBMS_EXEC_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cursor.h"
#include "dbms/catalog.h"
#include "expr/expr.h"

namespace tango {
namespace dbms {

/// Aggregate specification used by the group-aggregate operator.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;        // bound against the child schema; null for COUNT(*)
  std::string name;   // output column name
};

/// \brief Full scan of a stored table.
class TableScanOp : public Cursor {
 public:
  /// `alias` re-qualifies the output schema (range variable).
  TableScanOp(const Table* table, const std::string& alias);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Fills the block straight from the heap-file iterator: one virtual
  /// cursor call per block instead of one per stored row.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

 private:
  const Table* table_;
  Schema schema_;
  std::optional<storage::HeapFile::Iterator> it_;
};

/// \brief Range scan via a B+-tree index: key in [lo, hi] with optional
/// open bounds on either side.
class IndexScanOp : public Cursor {
 public:
  IndexScanOp(const Table* table, size_t column, const std::string& alias,
              std::optional<Value> lo, bool lo_inclusive,
              std::optional<Value> hi, bool hi_inclusive);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 private:
  const Table* table_;
  size_t column_;
  Schema schema_;
  std::optional<Value> lo_, hi_;
  bool lo_inclusive_, hi_inclusive_;
  std::optional<storage::BPlusTree::Iterator> it_;
};

/// \brief Selection: passes tuples satisfying a bound predicate.
class FilterOp : public Cursor {
 public:
  FilterOp(CursorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* tuple) override;
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  ExprPtr predicate_;
  RowBlock in_block_{RowBlock::kDefaultCapacity};
};

/// \brief Projection: evaluates bound expressions into a new schema.
class ProjectOp : public Cursor {
 public:
  ProjectOp(CursorPtr child, std::vector<ExprPtr> exprs, Schema out_schema)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(out_schema)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* tuple) override;
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

 private:
  CursorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  RowBlock in_block_{RowBlock::kDefaultCapacity};
};

/// \brief In-memory sort; materializes its input in Init.
class SortOp : public Cursor {
 public:
  SortOp(CursorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// \brief Removes adjacent duplicates; requires input sorted on all columns.
class DedupOp : public Cursor {
 public:
  explicit DedupOp(CursorPtr child) : child_(std::move(child)) {}

  Status Init() override {
    have_prev_ = false;
    return child_->Init();
  }
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  Tuple prev_;
  bool have_prev_ = false;
};

/// \brief Concatenation of children (UNION ALL); schemas must be
/// union-compatible (first child's schema wins).
class UnionAllOp : public Cursor {
 public:
  explicit UnionAllOp(std::vector<CursorPtr> children)
      : children_(std::move(children)) {}

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return children_.front()->schema(); }

 private:
  std::vector<CursorPtr> children_;
  size_t current_ = 0;
};

/// \brief Sort-merge join on equi-keys with an optional residual predicate
/// (evaluated against the concatenated tuple). Inputs must be sorted on
/// their key columns. Duplicate key groups are buffered on the right side.
class SortMergeJoinOp : public Cursor {
 public:
  SortMergeJoinOp(CursorPtr left, CursorPtr right,
                  std::vector<size_t> left_keys, std::vector<size_t> right_keys,
                  ExprPtr residual);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 private:
  int CompareKeys(const Tuple& l, const Tuple& r) const;
  Result<bool> AdvanceLeft();
  Result<bool> FillRightGroup();

  CursorPtr left_, right_;
  std::vector<size_t> left_keys_, right_keys_;
  ExprPtr residual_;
  Schema schema_;

  Tuple left_row_;
  bool left_valid_ = false;
  Tuple right_pending_;
  bool right_pending_valid_ = false;
  bool right_exhausted_ = false;
  std::vector<Tuple> right_group_;
  size_t group_pos_ = 0;
  bool group_matches_left_ = false;
};

/// \brief Hash join (build = left, probe = right) on equi-keys with an
/// optional residual predicate. Output order: left columns then right.
class HashJoinOp : public Cursor {
 public:
  HashJoinOp(CursorPtr left, CursorPtr right, std::vector<size_t> left_keys,
             std::vector<size_t> right_keys, ExprPtr residual);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 private:
  CursorPtr left_, right_;
  std::vector<size_t> left_keys_, right_keys_;
  ExprPtr residual_;
  Schema schema_;

  struct KeyHash {
    size_t operator()(const std::vector<Value>& k) const {
      size_t h = 0;
      for (const Value& v : k) h = h * 1315423911u + v.Hash();
      return h;
    }
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        // NULL keys never join; treat them as equal only to keep the map
        // well-formed (NULL rows are filtered out before insertion).
        if (a[i].Compare(b[i]) != 0) return false;
      }
      return true;
    }
  };
  std::unordered_map<std::vector<Value>, std::vector<Tuple>, KeyHash, KeyEq>
      hash_table_;

  Tuple probe_row_;
  bool probe_valid_ = false;
  const std::vector<Tuple>* match_bucket_ = nullptr;
  size_t match_pos_ = 0;
};

/// \brief Block nested-loop join with an arbitrary predicate; the right
/// input is materialized in Init.
class NestedLoopJoinOp : public Cursor {
 public:
  NestedLoopJoinOp(CursorPtr left, CursorPtr right, ExprPtr predicate);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 private:
  CursorPtr left_, right_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Tuple> inner_;
  Tuple outer_row_;
  bool outer_valid_ = false;
  size_t inner_pos_ = 0;
};

/// \brief Index nested-loop equi-join: for each outer tuple, probes the
/// inner table's B+-tree on the join column. This is the plan Oracle's
/// nested-loop hint produces in Query 4.
class IndexNestedLoopJoinOp : public Cursor {
 public:
  /// `outer_key` is a bound column index into the outer schema; the inner
  /// side appears on the right of the output schema.
  IndexNestedLoopJoinOp(CursorPtr outer, const Table* inner,
                        const std::string& inner_alias, size_t outer_key,
                        size_t inner_column, ExprPtr residual);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 private:
  CursorPtr outer_;
  const Table* inner_;
  size_t outer_key_;
  size_t inner_column_;
  ExprPtr residual_;
  Schema schema_;

  Tuple outer_row_;
  bool outer_valid_ = false;
  std::vector<storage::Rid> matches_;
  size_t match_pos_ = 0;
};

/// \brief Sort-based group aggregation; the input must arrive sorted on the
/// group columns. With no group columns, produces one row for the whole
/// input (and one row even for empty input, per SQL semantics).
class GroupAggOp : public Cursor {
 public:
  GroupAggOp(CursorPtr child, std::vector<size_t> group_cols,
             std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 private:
  // Running state for one aggregate within the current group.
  struct AggState {
    double sum = 0;
    int64_t count = 0;
    bool sum_is_int = true;
    Value min, max;
    bool any = false;
  };

  void Accumulate(const Tuple& row);
  Tuple EmitGroup();

  CursorPtr child_;
  std::vector<size_t> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  Tuple group_key_row_;     // representative row of the open group
  bool group_open_ = false;
  std::vector<AggState> states_;
  Tuple pending_;
  bool pending_valid_ = false;
  bool input_done_ = false;
  bool emitted_global_ = false;
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_EXEC_OPS_H_
