#include "dbms/catalog.h"

#include <algorithm>

namespace tango {
namespace dbms {

Status Table::Append(const Tuple& tuple) {
  if (tuple.size() != schema().num_columns()) {
    return Status::InvalidArgument("tuple arity mismatch for " + name_);
  }
  const storage::Rid rid = file_.Append(tuple);
  for (auto& [col, index] : indexes_) {
    index->Insert(tuple[col], rid);
  }
  return Status::OK();
}

Result<storage::Rid> Table::ApplyInsert(const Tuple& tuple, uint64_t lsn) {
  if (tuple.size() != schema().num_columns()) {
    return Status::InvalidArgument("tuple arity mismatch for " + name_);
  }
  const storage::Rid rid = file_.AppendStamped(tuple, lsn);
  for (auto& [col, index] : indexes_) {
    index->Insert(tuple[col], rid);
  }
  BumpEpoch();
  return rid;
}

Status Table::ApplyUpdate(const storage::Rid& rid, const Tuple& before,
                          const Tuple& after, uint64_t lsn) {
  if (after.size() != schema().num_columns()) {
    return Status::InvalidArgument("tuple arity mismatch for " + name_);
  }
  TANGO_RETURN_IF_ERROR(file_.Update(rid, after, lsn));
  for (auto& [col, index] : indexes_) {
    if (col < before.size() && before[col] != after[col]) {
      index->Remove(before[col], rid);
      index->Insert(after[col], rid);
    }
  }
  BumpEpoch();
  return Status::OK();
}

Status Table::ApplyDelete(const storage::Rid& rid, const Tuple& tuple,
                          uint64_t lsn) {
  const bool was_live = !file_.IsDead(rid);
  TANGO_RETURN_IF_ERROR(file_.MarkDeleted(rid, lsn));
  if (was_live) {
    for (auto& [col, index] : indexes_) {
      if (col < tuple.size()) index->Remove(tuple[col], rid);
    }
    BumpEpoch();
  }
  return Status::OK();
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema().num_columns()) {
    return Status::InvalidArgument("no such column");
  }
  if (indexes_.count(column) != 0) {
    return Status::AlreadyExists("index exists on " +
                                 schema().column(column).name);
  }
  auto index = std::make_unique<storage::BPlusTree>();
  auto it = file_.Scan();
  Tuple t;
  storage::Rid rid;
  while (it.Next(&t, &rid)) {
    index->Insert(t[column], rid);
  }
  indexes_[column] = std::move(index);
  return Status::OK();
}

const storage::BPlusTree* Table::GetIndex(size_t column) const {
  const auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<size_t> Table::IndexedColumns() const {
  std::vector<size_t> out;
  out.reserve(indexes_.size());
  for (const auto& [col, index] : indexes_) {
    (void)index;
    out.push_back(col);
  }
  return out;
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToUpper(name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table " + key);
  }
  auto table = std::make_unique<Table>(key, std::move(schema));
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  const auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) return Status::NotFound("table " + ToUpper(name));
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) return Status::NotFound("table " + ToUpper(name));
  return static_cast<const Table*>(it->second.get());
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToUpper(name)) != 0;
}

Status Catalog::DropTable(const std::string& name) {
  const auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) return Status::NotFound("table " + ToUpper(name));
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::Analyze(const std::string& name, size_t histogram_buckets) {
  TANGO_ASSIGN_OR_RETURN(Table * table, GetTable(name));
  const Schema& schema = table->schema();
  const storage::HeapFile& file = table->file();

  TableStats stats;
  stats.analyzed = true;
  stats.cardinality = static_cast<double>(file.num_tuples());
  stats.blocks = static_cast<double>(file.num_pages());
  stats.avg_tuple_bytes = file.avg_tuple_bytes();
  stats.columns.resize(schema.num_columns());

  // One pass collecting per-column values (kept by value; ANALYZE is an
  // offline operation, and the experiment relations fit comfortably).
  std::vector<std::vector<Value>> values(schema.num_columns());
  auto it = file.Scan();
  Tuple t;
  while (it.Next(&t)) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (!t[c].is_null()) values[c].push_back(t[c]);
    }
  }

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnStats& cs = stats.columns[c];
    auto& vals = values[c];
    if (!vals.empty()) {
      std::sort(vals.begin(), vals.end());
      cs.min = vals.front();
      cs.max = vals.back();
      double distinct = 1;
      for (size_t i = 1; i < vals.size(); ++i) {
        if (vals[i] != vals[i - 1]) distinct += 1;
      }
      cs.num_distinct = distinct;
      if (histogram_buckets > 0 && schema.column(c).type != DataType::kString) {
        std::vector<double> nums;
        nums.reserve(vals.size());
        for (const Value& v : vals) nums.push_back(v.AsDouble());
        cs.histogram =
            stats::Histogram::BuildEquiDepth(std::move(nums), histogram_buckets);
      }
    }
    // Index availability and clustering: an index is "clustered" when the
    // heap order mostly follows the index order (fraction of leaf-adjacent
    // entries whose rids ascend).
    const storage::BPlusTree* index = table->GetIndex(c);
    cs.has_index = index != nullptr;
    if (index != nullptr && index->size() > 1) {
      auto leaf_it = index->Begin();
      Value k;
      storage::Rid rid;
      bool first = true;
      storage::Rid prev{};
      double ordered = 0, pairs = 0;
      while (leaf_it.Next(&k, &rid)) {
        if (!first) {
          pairs += 1;
          if (prev.page < rid.page ||
              (prev.page == rid.page && prev.slot <= rid.slot)) {
            ordered += 1;
          }
        }
        prev = rid;
        first = false;
      }
      cs.index_clustered = pairs > 0 && ordered / pairs > 0.9;
    }
  }

  table->stats() = std::move(stats);
  table->ResetModsSinceAnalyze();
  return Status::OK();
}

Status Catalog::AnalyzeAll(size_t histogram_buckets) {
  for (const auto& [name, table] : tables_) {
    (void)table;
    TANGO_RETURN_IF_ERROR(Analyze(name, histogram_buckets));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    out.push_back(name);
  }
  return out;
}

}  // namespace dbms
}  // namespace tango
