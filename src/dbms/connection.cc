#include "dbms/connection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/wire.h"

namespace tango {
namespace dbms {

namespace {

/// Client-side cursor over a server-side query: fetches up to
/// `row_prefetch` tuples at a time as one column-packed RowBlock, genuinely
/// serialized, CRC-framed (one frame per block), and deserialized through
/// the wire codec with link pacing applied.
class RemoteCursor : public Cursor {
 public:
  RemoteCursor(Connection* conn, CursorPtr server_cursor, size_t prefetch,
               QueryControlPtr control, bool faulted)
      : conn_(conn),
        server_(std::move(server_cursor)),
        prefetch_(prefetch == 0 ? 1 : prefetch),
        schema_(server_->schema()),
        control_(std::move(control)),
        faulted_(faulted),
        server_block_(prefetch_) {}

  Status Init() override {
    block_.Clear();
    pos_ = 0;
    batch_no_ = 0;
    server_done_ = false;
    const auto engine = conn_->AcquireEngine();
    return server_->Init();
  }

  Result<bool> Next(Tuple* tuple) override {
    while (pos_ >= block_.rows()) {
      if (server_done_) return false;
      TANGO_RETURN_IF_ERROR(FetchBlock());
      if (block_.empty()) return false;
    }
    block_.MoveRowTo(pos_++, tuple);
    return true;
  }

  Result<size_t> NextBatch(RowBlock* block) override {
    block->Clear();
    while (pos_ >= block_.rows()) {
      if (server_done_) return 0;
      TANGO_RETURN_IF_ERROR(FetchBlock());
      if (block_.empty()) return 0;
    }
    if (pos_ == 0) {
      // Hand the whole decoded block to the consumer without re-packing.
      const size_t cap = block->capacity();
      *block = std::move(block_);
      block->set_capacity(cap);
      block_ = RowBlock();
      return block->rows();
    }
    Tuple t;
    while (pos_ < block_.rows() && !block->full()) {
      block_.MoveRowTo(pos_++, &t);
      block->AppendRow(std::move(t));
    }
    return block->rows();
  }

  const Schema& schema() const override { return schema_; }

 private:
  Status FetchBlock() {
    // A cancelled/expired query stops driving the wire at the next batch.
    TANGO_RETURN_IF_ERROR(CheckControl(control_));
    // Per-batch wire lock: concurrent remote cursors (prefetch threads)
    // interleave batches instead of racing on the engine and counters.
    const auto wire = conn_->AcquireWire();
    block_.Clear();
    pos_ = 0;
    // Server side: produce + serialize one block (one NextBatch of the
    // server plan — the block boundary is the batch boundary).
    server_block_.Clear();
    size_t n = 0;
    {
      const auto engine = conn_->AcquireEngine();
      TANGO_ASSIGN_OR_RETURN(n, server_->NextBatch(&server_block_));
    }
    if (n == 0) {
      server_done_ = true;
      return Status::OK();
    }
    WireWriter writer;
    writer.PutRowBlock(server_block_);
    // The block crosses the link, length- and CRC-framed.
    std::vector<uint8_t> framed = WireFrame::Seal(writer.buffer());
    const uint64_t batch_no = batch_no_++;
    if (faulted_ && conn_->fault_injector() != nullptr) {
      FaultInjector& injector = *conn_->fault_injector();
      switch (injector.OnBatch(batch_no)) {
        case FaultInjector::BatchFault::kKill:
          faulted_ = false;
          return Status::Unavailable("injected fault: cursor killed after " +
                                     std::to_string(batch_no) + " batches");
        case FaultInjector::BatchFault::kTruncate:
          faulted_ = false;
          framed.resize(injector.NextSalt() % framed.size());
          break;
        case FaultInjector::BatchFault::kCorrupt:
          faulted_ = false;
          framed[(injector.NextSalt() / 8) % framed.size()] ^=
              static_cast<uint8_t>(1u << (injector.NextSalt() % 8));
          break;
        case FaultInjector::BatchFault::kNone:
          break;
      }
    }
    conn_->PaceBatch();
    conn_->CountBlock();
    conn_->PaceBytes(framed.size());
    // Client side: verify the frame, then deserialize. Any damage — real or
    // injected — surfaces as a transient link failure, never as garbled
    // rows reaching an operator.
    const uint8_t* payload = nullptr;
    size_t len = 0;
    Status frame = WireFrame::Check(framed, &payload, &len);
    if (!frame.ok()) {
      return Status::Unavailable("prefetch block garbled on the wire: " +
                                 frame.message());
    }
    WireReader reader(payload, len);
    Result<size_t> decoded = reader.GetRowBlock(&block_);
    if (!decoded.ok() || !reader.AtEnd()) {
      block_.Clear();
      return Status::Unavailable(
          "prefetch block undecodable: " +
          (decoded.ok() ? std::string("trailing bytes after block")
                        : decoded.status().message()));
    }
    return Status::OK();
  }

  Connection* conn_;
  CursorPtr server_;
  size_t prefetch_;
  Schema schema_;
  QueryControlPtr control_;
  bool faulted_;
  RowBlock server_block_;  // server-side staging, reused across fetches
  RowBlock block_;         // client-side decoded block being drained
  size_t pos_ = 0;
  uint64_t batch_no_ = 0;
  bool server_done_ = false;
};

}  // namespace

void Connection::Spin(double seconds) {
  if (!config_.simulate_delay || seconds <= 0) return;
  counters_.simulated_seconds += seconds;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<int64_t>(seconds * 1e9));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy-wait: pacing must be precise at tens of microseconds
  }
}

void Connection::PaceBytes(size_t bytes) {
  counters_.bytes_to_client += bytes;
  if (m_bytes_to_client_ != nullptr) m_bytes_to_client_->Increment(bytes);
  Spin(static_cast<double>(bytes) / config_.bytes_per_second);
}

void Connection::PaceRoundTrip() {
  ++counters_.statements;
  if (m_statements_ != nullptr) ++*m_statements_;
  Spin(config_.roundtrip_seconds);
}

void Connection::PaceBatch() {
  ++counters_.batches;
  if (m_batches_ != nullptr) ++*m_batches_;
  Spin(config_.per_batch_seconds);
}

void Connection::CountBlock() {
  ++counters_.blocks;
  if (m_blocks_ != nullptr) ++*m_blocks_;
}

Status Connection::StatementGate(const std::string& sql,
                                 const QueryControlPtr& control,
                                 bool* fault_result_cursor) {
  TANGO_RETURN_IF_ERROR(CheckControl(control));
  if (fault_ != nullptr) {
    FaultInjector::StatementDecision decision = fault_->OnStatement(sql);
    if (decision.extra_latency_seconds > 0) {
      // An injected stall is real wall-clock time (independent of
      // simulate_delay), polled so a deadline fires mid-spike rather than
      // after it.
      const auto spike_end =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::duration<double>(decision.extra_latency_seconds));
      while (std::chrono::steady_clock::now() < spike_end) {
        TANGO_RETURN_IF_ERROR(CheckControl(control));
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      TANGO_RETURN_IF_ERROR(CheckControl(control));
    }
    if (!decision.inject.ok()) {
      // The failed round trip still crossed the wire.
      PaceRoundTrip();
      counters_.bytes_to_server += sql.size();
      if (m_bytes_to_server_ != nullptr) m_bytes_to_server_->Increment(sql.size());
      return decision.inject;
    }
    if (fault_result_cursor != nullptr) {
      *fault_result_cursor = decision.fault_result_cursor;
    }
  }
  PaceRoundTrip();
  counters_.bytes_to_server += sql.size();
  if (m_bytes_to_server_ != nullptr) m_bytes_to_server_->Increment(sql.size());
  return Status::OK();
}

Result<QueryResult> Connection::Execute(const std::string& sql,
                                        const QueryControlPtr& control) {
  const auto wire = AcquireWire();
  TANGO_RETURN_IF_ERROR(StatementGate(sql, control, nullptr));
  QueryResult result;
  {
    const auto engine = AcquireEngine();
    TANGO_ASSIGN_OR_RETURN(result, engine_->Execute(sql, session_));
  }
  // The whole result set crosses the wire.
  if (!result.rows.empty()) {
    WireWriter writer;
    for (const Tuple& t : result.rows) writer.PutTuple(t);
    PaceBytes(writer.size());
    // (Deserialization skipped: rows are already materialized values; the
    // pacing and byte accounting are what matter here.)
  }
  return result;
}

Result<CursorPtr> Connection::ExecuteQuery(const std::string& sql,
                                           const QueryControlPtr& control) {
  const auto wire = AcquireWire();
  bool faulted = false;
  TANGO_RETURN_IF_ERROR(StatementGate(sql, control, &faulted));
  CursorPtr server;
  {
    const auto engine = AcquireEngine();
    TANGO_ASSIGN_OR_RETURN(server, engine_->OpenQuery(sql));
  }
  return CursorPtr(std::make_unique<RemoteCursor>(
      this, std::move(server), config_.row_prefetch, control, faulted));
}

Status Connection::BulkLoad(const std::string& table,
                            const std::vector<Tuple>& rows,
                            const QueryControlPtr& control) {
  const auto wire = AcquireWire();
  TANGO_RETURN_IF_ERROR(StatementGate("BULKLOAD " + table, control, nullptr));
  // Client side chunks the rows into column-packed blocks — the SQL*Loader
  // data file crosses the wire as one CRC frame per block — and the server
  // verifies, decodes, and direct-path loads.
  const size_t chunk =
      config_.row_prefetch == 0 ? size_t{1} : config_.row_prefetch;
  std::vector<Tuple> decoded;
  decoded.reserve(rows.size());
  RowBlock block(chunk);
  for (size_t base = 0; base < rows.size(); base += chunk) {
    block.Clear();
    const size_t end = std::min(rows.size(), base + chunk);
    for (size_t i = base; i < end; ++i) block.AppendRow(rows[i]);
    WireWriter writer;
    writer.PutRowBlock(block);
    const std::vector<uint8_t> framed = WireFrame::Seal(writer.buffer());
    counters_.bytes_to_server += framed.size();
    if (m_bytes_to_server_ != nullptr) {
      m_bytes_to_server_->Increment(framed.size());
    }
    CountBlock();
    Spin(static_cast<double>(framed.size()) / config_.bytes_per_second);
    const uint8_t* payload = nullptr;
    size_t len = 0;
    Status frame = WireFrame::Check(framed, &payload, &len);
    if (!frame.ok()) {
      return Status::Unavailable("bulk-load block garbled on the wire: " +
                                 frame.message());
    }
    WireReader reader(payload, len);
    RowBlock in;
    Result<size_t> got = reader.GetRowBlock(&in);
    if (!got.ok()) {
      return Status::Unavailable("bulk-load block undecodable: " +
                                 got.status().message());
    }
    Tuple t;
    for (size_t i = 0; i < in.rows(); ++i) {
      in.MoveRowTo(i, &t);
      decoded.push_back(std::move(t));
    }
  }
  const auto engine = AcquireEngine();
  return engine_->BulkLoad(table, decoded);
}

Status Connection::InsertLoad(const std::string& table,
                              const std::vector<Tuple>& rows,
                              const QueryControlPtr& control) {
  // One INSERT statement (round trip) per tuple — the paper's "inefficient
  // for large amounts of data" alternative.
  for (const Tuple& t : rows) {
    std::string sql = "INSERT INTO " + table + " VALUES (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += t[i].ToSqlLiteral();
    }
    sql += ")";
    const auto wire = AcquireWire();
    TANGO_RETURN_IF_ERROR(StatementGate(sql, control, nullptr));
    const auto engine = AcquireEngine();
    TANGO_RETURN_IF_ERROR(engine_->Execute(sql, session_).status());
  }
  return Status::OK();
}

Result<TableStats> Connection::GetTableStats(const std::string& table) {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  const auto engine = AcquireEngine();
  TANGO_ASSIGN_OR_RETURN(const Table* t, engine_->catalog().GetTable(table));
  // The staleness fields come from the live table, not the (possibly old)
  // ANALYZE output: a reader compares the epoch it cached statistics at
  // against the epoch it sees now.
  TableStats stats = t->stats();
  stats.epoch = t->stats_epoch();
  stats.mods_since_analyze = t->mods_since_analyze();
  return stats;
}

Result<Schema> Connection::GetTableSchema(const std::string& table) {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  const auto engine = AcquireEngine();
  TANGO_ASSIGN_OR_RETURN(const Table* t, engine_->catalog().GetTable(table));
  return t->schema();
}

Result<std::vector<std::string>> Connection::ListTables(
    const std::string& prefix) {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  const auto engine = AcquireEngine();
  std::vector<std::string> names;
  for (const std::string& name : engine_->catalog().TableNames()) {
    if (name.rfind(prefix, 0) == 0) names.push_back(name);
  }
  return names;
}

Result<size_t> Connection::ReclaimWalSegments() {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  const auto engine = AcquireEngine();
  return engine_->ReclaimWalSegments();
}

}  // namespace dbms
}  // namespace tango
