#include "dbms/connection.h"

#include <chrono>
#include <thread>

#include "common/wire.h"

namespace tango {
namespace dbms {

namespace {

/// Client-side cursor over a server-side query: fetches `row_prefetch`
/// tuples at a time, each batch genuinely serialized, CRC-framed, and
/// deserialized through the wire codec with link pacing applied.
class RemoteCursor : public Cursor {
 public:
  RemoteCursor(Connection* conn, CursorPtr server_cursor, size_t prefetch,
               QueryControlPtr control, bool faulted)
      : conn_(conn),
        server_(std::move(server_cursor)),
        prefetch_(prefetch == 0 ? 1 : prefetch),
        schema_(server_->schema()),
        control_(std::move(control)),
        faulted_(faulted) {}

  Status Init() override {
    buffer_.clear();
    pos_ = 0;
    batch_no_ = 0;
    server_done_ = false;
    return server_->Init();
  }

  Result<bool> Next(Tuple* tuple) override {
    if (pos_ >= buffer_.size()) {
      if (server_done_) return false;
      TANGO_RETURN_IF_ERROR(FetchBatch());
      if (buffer_.empty()) return false;
    }
    *tuple = std::move(buffer_[pos_++]);
    return true;
  }

  const Schema& schema() const override { return schema_; }

 private:
  Status FetchBatch() {
    // A cancelled/expired query stops driving the wire at the next batch.
    TANGO_RETURN_IF_ERROR(CheckControl(control_));
    // Per-batch wire lock: concurrent remote cursors (prefetch threads)
    // interleave batches instead of racing on the engine and counters.
    const auto wire = conn_->AcquireWire();
    buffer_.clear();
    pos_ = 0;
    // Server side: produce + serialize a batch.
    WireWriter writer;
    size_t n = 0;
    Tuple t;
    while (n < prefetch_) {
      TANGO_ASSIGN_OR_RETURN(bool more, server_->Next(&t));
      if (!more) {
        server_done_ = true;
        break;
      }
      writer.PutTuple(t);
      ++n;
    }
    if (n == 0) return Status::OK();
    // The batch crosses the link, length- and CRC-framed.
    std::vector<uint8_t> framed = WireFrame::Seal(writer.buffer());
    const uint64_t batch_no = batch_no_++;
    if (faulted_ && conn_->fault_injector() != nullptr) {
      FaultInjector& injector = *conn_->fault_injector();
      switch (injector.OnBatch(batch_no)) {
        case FaultInjector::BatchFault::kKill:
          faulted_ = false;
          return Status::Unavailable("injected fault: cursor killed after " +
                                     std::to_string(batch_no) + " batches");
        case FaultInjector::BatchFault::kTruncate:
          faulted_ = false;
          framed.resize(injector.NextSalt() % framed.size());
          break;
        case FaultInjector::BatchFault::kCorrupt:
          faulted_ = false;
          framed[(injector.NextSalt() / 8) % framed.size()] ^=
              static_cast<uint8_t>(1u << (injector.NextSalt() % 8));
          break;
        case FaultInjector::BatchFault::kNone:
          break;
      }
    }
    conn_->PaceBatch();
    conn_->PaceBytes(framed.size());
    // Client side: verify the frame, then deserialize. Any damage — real or
    // injected — surfaces as a transient link failure, never as garbled
    // rows reaching an operator.
    const uint8_t* payload = nullptr;
    size_t len = 0;
    Status frame = WireFrame::Check(framed, &payload, &len);
    if (!frame.ok()) {
      return Status::Unavailable("prefetch batch garbled on the wire: " +
                                 frame.message());
    }
    WireReader reader(payload, len);
    buffer_.reserve(n);
    while (!reader.AtEnd()) {
      Result<Tuple> row = reader.GetTuple();
      if (!row.ok()) {
        return Status::Unavailable("prefetch batch undecodable: " +
                                   row.status().message());
      }
      buffer_.push_back(row.MoveValueOrDie());
    }
    return Status::OK();
  }

  Connection* conn_;
  CursorPtr server_;
  size_t prefetch_;
  Schema schema_;
  QueryControlPtr control_;
  bool faulted_;
  std::vector<Tuple> buffer_;
  size_t pos_ = 0;
  uint64_t batch_no_ = 0;
  bool server_done_ = false;
};

}  // namespace

void Connection::Spin(double seconds) {
  if (!config_.simulate_delay || seconds <= 0) return;
  counters_.simulated_seconds += seconds;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<int64_t>(seconds * 1e9));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy-wait: pacing must be precise at tens of microseconds
  }
}

void Connection::PaceBytes(size_t bytes) {
  counters_.bytes_to_client += bytes;
  if (m_bytes_to_client_ != nullptr) m_bytes_to_client_->Increment(bytes);
  Spin(static_cast<double>(bytes) / config_.bytes_per_second);
}

void Connection::PaceRoundTrip() {
  ++counters_.statements;
  if (m_statements_ != nullptr) ++*m_statements_;
  Spin(config_.roundtrip_seconds);
}

void Connection::PaceBatch() {
  ++counters_.batches;
  if (m_batches_ != nullptr) ++*m_batches_;
  Spin(config_.per_batch_seconds);
}

Status Connection::StatementGate(const std::string& sql,
                                 const QueryControlPtr& control,
                                 bool* fault_result_cursor) {
  TANGO_RETURN_IF_ERROR(CheckControl(control));
  if (fault_ != nullptr) {
    FaultInjector::StatementDecision decision = fault_->OnStatement(sql);
    if (decision.extra_latency_seconds > 0) {
      // An injected stall is real wall-clock time (independent of
      // simulate_delay), polled so a deadline fires mid-spike rather than
      // after it.
      const auto spike_end =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::duration<double>(decision.extra_latency_seconds));
      while (std::chrono::steady_clock::now() < spike_end) {
        TANGO_RETURN_IF_ERROR(CheckControl(control));
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      TANGO_RETURN_IF_ERROR(CheckControl(control));
    }
    if (!decision.inject.ok()) {
      // The failed round trip still crossed the wire.
      PaceRoundTrip();
      counters_.bytes_to_server += sql.size();
      if (m_bytes_to_server_ != nullptr) m_bytes_to_server_->Increment(sql.size());
      return decision.inject;
    }
    if (fault_result_cursor != nullptr) {
      *fault_result_cursor = decision.fault_result_cursor;
    }
  }
  PaceRoundTrip();
  counters_.bytes_to_server += sql.size();
  if (m_bytes_to_server_ != nullptr) m_bytes_to_server_->Increment(sql.size());
  return Status::OK();
}

Result<QueryResult> Connection::Execute(const std::string& sql,
                                        const QueryControlPtr& control) {
  const auto wire = AcquireWire();
  TANGO_RETURN_IF_ERROR(StatementGate(sql, control, nullptr));
  TANGO_ASSIGN_OR_RETURN(QueryResult result, engine_->Execute(sql));
  // The whole result set crosses the wire.
  if (!result.rows.empty()) {
    WireWriter writer;
    for (const Tuple& t : result.rows) writer.PutTuple(t);
    PaceBytes(writer.size());
    // (Deserialization skipped: rows are already materialized values; the
    // pacing and byte accounting are what matter here.)
  }
  return result;
}

Result<CursorPtr> Connection::ExecuteQuery(const std::string& sql,
                                           const QueryControlPtr& control) {
  const auto wire = AcquireWire();
  bool faulted = false;
  TANGO_RETURN_IF_ERROR(StatementGate(sql, control, &faulted));
  TANGO_ASSIGN_OR_RETURN(CursorPtr server, engine_->OpenQuery(sql));
  return CursorPtr(std::make_unique<RemoteCursor>(
      this, std::move(server), config_.row_prefetch, control, faulted));
}

Status Connection::BulkLoad(const std::string& table,
                            const std::vector<Tuple>& rows,
                            const QueryControlPtr& control) {
  const auto wire = AcquireWire();
  TANGO_RETURN_IF_ERROR(StatementGate("BULKLOAD " + table, control, nullptr));
  // Client side serializes everything (the SQL*Loader data file)...
  WireWriter writer;
  for (const Tuple& t : rows) writer.PutTuple(t);
  counters_.bytes_to_server += writer.size();
  if (m_bytes_to_server_ != nullptr) {
    m_bytes_to_server_->Increment(writer.size());
  }
  Spin(static_cast<double>(writer.size()) / config_.bytes_per_second);
  // ...and the server performs a direct-path load.
  std::vector<Tuple> decoded;
  decoded.reserve(rows.size());
  WireReader reader(writer.buffer());
  while (!reader.AtEnd()) {
    TANGO_ASSIGN_OR_RETURN(Tuple row, reader.GetTuple());
    decoded.push_back(std::move(row));
  }
  return engine_->BulkLoad(table, decoded);
}

Status Connection::InsertLoad(const std::string& table,
                              const std::vector<Tuple>& rows,
                              const QueryControlPtr& control) {
  // One INSERT statement (round trip) per tuple — the paper's "inefficient
  // for large amounts of data" alternative.
  for (const Tuple& t : rows) {
    std::string sql = "INSERT INTO " + table + " VALUES (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += t[i].ToSqlLiteral();
    }
    sql += ")";
    const auto wire = AcquireWire();
    TANGO_RETURN_IF_ERROR(StatementGate(sql, control, nullptr));
    TANGO_RETURN_IF_ERROR(engine_->Execute(sql).status());
  }
  return Status::OK();
}

Result<TableStats> Connection::GetTableStats(const std::string& table) {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  TANGO_ASSIGN_OR_RETURN(const Table* t, engine_->catalog().GetTable(table));
  return t->stats();
}

Result<Schema> Connection::GetTableSchema(const std::string& table) {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  TANGO_ASSIGN_OR_RETURN(const Table* t, engine_->catalog().GetTable(table));
  return t->schema();
}

Result<std::vector<std::string>> Connection::ListTables(
    const std::string& prefix) {
  const auto wire = AcquireWire();
  PaceRoundTrip();
  std::vector<std::string> names;
  for (const std::string& name : engine_->catalog().TableNames()) {
    if (name.rfind(prefix, 0) == 0) names.push_back(name);
  }
  return names;
}

}  // namespace dbms
}  // namespace tango
