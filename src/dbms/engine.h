#ifndef TANGO_DBMS_ENGINE_H_
#define TANGO_DBMS_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cursor.h"
#include "dbms/catalog.h"
#include "dbms/planner.h"

namespace tango {
namespace dbms {

/// Materialized result of a statement.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;
};

/// \brief The conventional DBMS the middleware sits on top of.
///
/// Accepts SQL text (the only interface the middleware may use, mirroring
/// JDBC), plans and executes it against its own catalog and storage. The
/// middleware never sees inside: it talks to this engine exclusively through
/// `Connection` (see connection.h).
class Engine {
 public:
  Engine() = default;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  SessionConfig& config() { return config_; }

  /// Histogram buckets used by ANALYZE (0 disables histograms, the paper's
  /// "optimizer without histograms" configuration).
  size_t analyze_histogram_buckets = 32;

  /// Parses and executes one statement; SELECTs return rows, DDL/DML return
  /// an empty result.
  Result<QueryResult> Execute(const std::string& sql);

  /// Plans a SELECT into a server-side cursor without materializing it.
  Result<CursorPtr> OpenQuery(const std::string& sql);

  /// Direct-path load (the SQL*Loader stand-in): appends rows to a table
  /// without going through INSERT parsing. Used by Connection::BulkLoad.
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows);

  /// Number of statements executed so far (observability for tests).
  uint64_t statements_executed() const { return statements_; }

 private:
  Catalog catalog_;
  SessionConfig config_;
  uint64_t statements_ = 0;
};

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_ENGINE_H_
