#ifndef TANGO_DBMS_ENGINE_H_
#define TANGO_DBMS_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cursor.h"
#include "dbms/catalog.h"
#include "dbms/fault.h"
#include "dbms/lock_table.h"
#include "dbms/planner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal.h"

namespace tango {
namespace sql {
struct InsertStmt;
struct UpdateStmt;
struct TxnStmt;
}  // namespace sql

namespace dbms {

/// Materialized result of a statement.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;
};

/// How the engine opens its durable state.
struct EngineOptions {
  /// Directory holding WAL segments and checkpoint snapshots. Empty keeps
  /// the engine volatile (no logging, no recovery) — the pre-durability
  /// behavior every read-only experiment uses.
  std::string wal_dir;
  size_t wal_segment_bytes = 1 << 20;
  /// Optional observability sinks ("wal.*" / "txn.*" / "recovery.replay.*").
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// What recovery did during Open (tests and the janitor read this).
struct RecoveryStats {
  uint64_t snapshot_lsn = 0;
  uint64_t records_scanned = 0;
  uint64_t redo_applied = 0;
  uint64_t redo_skipped = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_undone = 0;
  uint64_t undo_records = 0;
  uint64_t torn_bytes_discarded = 0;
};

/// \brief The conventional DBMS the middleware sits on top of.
///
/// Accepts SQL text (the only interface the middleware may use, mirroring
/// JDBC), plans and executes it against its own catalog and storage. The
/// middleware never sees inside: it talks to this engine exclusively through
/// `Connection` (see connection.h).
///
/// With a `wal_dir` configured the engine is durable: every row mutation is
/// logged before the statement is acknowledged, DDL/ANALYZE/direct-path
/// loads are forced to the log before they apply, and `Open()` replays the
/// log ARIES-style (analysis / redo / undo) over the latest checkpoint
/// snapshot. The in-memory heap is the volatile medium; the log directory is
/// the durable one. After an injected log fault the engine is `crashed()`
/// and refuses every statement — tests then construct a fresh Engine over
/// the same directory and recover.
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(std::move(options)) {}

  /// Opens the WAL and replays it into the catalog; must be called (once)
  /// before any statement when `wal_dir` is set. No-op for volatile engines.
  Status Open();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  SessionConfig& config() { return config_; }

  /// Histogram buckets used by ANALYZE (0 disables histograms, the paper's
  /// "optimizer without histograms" configuration).
  size_t analyze_histogram_buckets = 32;

  /// Allocates a session: explicit-transaction state (BEGIN .. COMMIT) is
  /// per session, so concurrent Connections do not share transactions.
  /// Session 0 always exists.
  uint64_t NewSession() { return next_session_++; }

  /// Parses and executes one statement; SELECTs return rows, DDL/DML return
  /// an empty result. DML outside BEGIN..COMMIT autocommits (logged, forced,
  /// durable on return).
  Result<QueryResult> Execute(const std::string& sql, uint64_t session = 0);

  /// Plans a SELECT into a server-side cursor without materializing it.
  Result<CursorPtr> OpenQuery(const std::string& sql);

  /// Direct-path load (the SQL*Loader stand-in): appends rows to a table
  /// without going through INSERT parsing. Used by Connection::BulkLoad.
  /// Logged as one self-committing kBulkLoad record, and bumps the table's
  /// statistics epoch exactly like row-at-a-time DML.
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows);

  /// Fuzzy checkpoint: forces the log, writes a `snap-<lsn>.ckpt` catalog
  /// snapshot, then logs a kCheckpoint record naming it and the transactions
  /// still in flight. Does NOT truncate the log — segment reclamation is the
  /// janitor's job (ReclaimWalSegments), so orphaned segments after a crash
  /// are the norm, not a leak.
  Status Checkpoint();

  /// Removes WAL segments wholly covered by the latest snapshot (keeping
  /// everything any open transaction still needs) and superseded snapshot
  /// files; returns how many files were reclaimed.
  Result<size_t> ReclaimWalSegments();

  /// Number of statements executed so far (observability for tests).
  uint64_t statements_executed() const { return statements_; }

  /// Attaches the failure model whose WAL kinds (crash / torn write /
  /// partial fsync) this engine's log device consults.
  void set_fault_injector(FaultInjectorPtr injector) {
    injector_ = std::move(injector);
  }

  /// True after an injected log fault halted the engine.
  bool crashed() const { return wal_ != nullptr && wal_->crashed(); }

  bool in_txn(uint64_t session) const { return txns_.count(session) != 0; }

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  storage::Wal* wal() { return wal_.get(); }

  /// Statement-granularity mutex: concurrent Connections serialize every
  /// engine call — and every server-side cursor batch — on this (the engine
  /// itself does not lock; Connection::AcquireEngine does).
  std::mutex& statement_mutex() { return stmt_mu_; }

 private:
  /// One entry of a transaction's in-memory undo journal.
  struct UndoEntry {
    storage::Lsn lsn = storage::kNoLsn;
    storage::WalRecordType type = storage::WalRecordType::kInsert;
    std::string table;
    storage::Rid rid;
    Tuple before;  // kUpdate: the image to restore
  };
  struct Txn {
    uint64_t id = 0;
    storage::Lsn first_lsn = storage::kNoLsn;
    storage::Lsn last_lsn = storage::kNoLsn;
    std::vector<UndoEntry> journal;
  };

  Status Halted() const;
  /// Appends a transactional record, maintaining the txn's lsn chain.
  Result<storage::Lsn> LogTxn(storage::WalRecord* rec, Txn* txn);
  /// Forces a self-committing system record to disk (append + sync) BEFORE
  /// the caller applies the operation: a durable record means the operation
  /// happened, an absent one means it never did.
  Status LogSystem(storage::WalRecord* rec);
  Status CommitTxn(Txn* txn);
  Status RollbackTxn(Txn* txn);

  Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                    uint64_t session);
  Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                    uint64_t session);
  Result<QueryResult> ExecuteTxn(const sql::TxnStmt& stmt, uint64_t session);

  Status InsertRow(Txn* txn, Table* table, const Tuple& row, bool logged);
  Status UpdateRow(Txn* txn, Table* table, const storage::Rid& rid,
                   const Tuple& before, const Tuple& after, bool logged);

  obs::Counter* Metric(const char* name);

  EngineOptions options_;
  Catalog catalog_;
  SessionConfig config_;
  uint64_t statements_ = 0;

  std::unique_ptr<storage::Wal> wal_;
  FaultInjectorPtr injector_;
  LockTable locks_;
  std::map<uint64_t, Txn> txns_;  // session -> open explicit txn
  uint64_t next_txn_ = 1;
  uint64_t next_session_ = 1;
  RecoveryStats recovery_stats_;
  std::mutex stmt_mu_;
};

/// True for the middleware's `TANGO_TMP_`-prefixed temporaries: they skip
/// locking, logging, and snapshots (non-transactional scratch space — a
/// restart is supposed to lose them; the janitor reclaims any that leak).
bool IsTempTableName(const std::string& name);

}  // namespace dbms
}  // namespace tango

#endif  // TANGO_DBMS_ENGINE_H_
