#include "tango/middleware.h"

#include <chrono>
#include <cstdio>

namespace tango {

namespace {

/// Builds the EXPLAIN ANALYZE observation tree from one execution: the
/// optimizer's estimates come from the plan nodes, the actuals from the
/// timing sink the instrumented cursors filled in.
obs::AnalyzeReport BuildReport(const CompiledPlan& compiled,
                               const Middleware::Execution& exec) {
  obs::AnalyzeReport report;
  report.ops.resize(exec.timings.size());
  for (const CompiledNode& node : compiled.nodes) {
    if (node.timing_id >= report.ops.size()) continue;
    obs::OpObservation& op = report.ops[node.timing_id];
    const optimizer::PhysPlan& p = *node.plan;
    const exec::AlgorithmTiming& t = exec.timings[node.timing_id];
    op.label = optimizer::AlgorithmName(p.algorithm);
    op.site = p.site == optimizer::Site::kMiddleware ? 'M' : 'D';
    op.timing_id = node.timing_id;
    op.children = t.child_ids;
    op.est_rows = p.est_cardinality;
    op.est_bytes = p.est_bytes;
    op.est_cost_us = p.cost;
    op.act_rows = t.rows;
    op.inclusive_seconds = t.inclusive_seconds;
    op.self_seconds = exec::SelfSeconds(exec.timings, node.timing_id);
    op.worker_seconds = t.worker_seconds;
    op.sql = node.sql;
  }
  report.root = compiled.root_timing_id;
  report.elapsed_seconds = exec.elapsed_seconds;
  report.result_rows = exec.rows.size();
  return report;
}

/// \brief RAII janitor for one execution's temporary tables (§3.2: "the
/// table must be dropped at the end of the query").
///
/// Drops happen in reverse creation order (later tables may only exist
/// because earlier ones do), each drop is retried on transient failures,
/// and every outcome is counted — a failed drop is a recorded leak, never a
/// silent one. The guard ignores the query's own cancellation token:
/// cleanup must run precisely when the query is dying.
class TempTableGuard {
 public:
  TempTableGuard(dbms::Connection* conn, std::vector<std::string> tables,
                 RetryPolicy policy, RecoveryCounters* counters)
      : conn_(conn),
        tables_(std::move(tables)),
        policy_(policy),
        counters_(counters) {}

  ~TempTableGuard() { DropAll(); }

  TempTableGuard(const TempTableGuard&) = delete;
  TempTableGuard& operator=(const TempTableGuard&) = delete;

  /// Idempotent; the destructor is only the backstop for early returns.
  /// Returns the first permanent drop failure.
  Status DropAll() {
    if (done_) return first_failure_;
    done_ = true;
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
      const Status s = DropOne(*it);
      if (!s.ok() && first_failure_.ok()) first_failure_ = s;
    }
    return first_failure_;
  }

 private:
  Status DropOne(const std::string& table) {
    RetryState retry(policy_);
    while (true) {
      const Status s = conn_->Execute("DROP TABLE " + table).status();
      if (s.ok()) {
        ++counters_->temp_tables_dropped;
        return Status::OK();
      }
      // Never created (the fault hit before its CREATE): nothing to leak.
      if (s.code() == StatusCode::kNotFound) return Status::OK();
      if (retry.ShouldRetry(s)) {
        ++counters_->drop_retries;
        if (retry.Backoff(nullptr).ok()) continue;
      }
      ++counters_->temp_table_drop_failures;
      ++counters_->temp_tables_leaked;
      return Status(s.code(),
                    "temp table " + table + " could not be dropped: " +
                        s.message());
    }
  }

  dbms::Connection* conn_;
  std::vector<std::string> tables_;
  RetryPolicy policy_;
  RecoveryCounters* counters_;
  bool done_ = false;
  Status first_failure_;
};

}  // namespace

Status Middleware::CollectStatistics(const std::vector<std::string>& tables) {
  for (const std::string& t : tables) {
    TANGO_ASSIGN_OR_RETURN(dbms::TableStats raw,
                           connection_.GetTableStats(t));
    TANGO_ASSIGN_OR_RETURN(Schema schema, connection_.GetTableSchema(t));
    stats::RelStats rel = stats::FromTableStats(raw, schema);
    if (!config_.use_histograms) rel = StripHistograms(std::move(rel));
    table_stats_[ToUpper(t)] = std::move(rel);
  }
  return Status::OK();
}

stats::RelStats Middleware::StripHistograms(stats::RelStats rel) const {
  for (stats::ColumnInfo& c : rel.columns) c.histogram = stats::Histogram();
  return rel;
}

Result<stats::RelStats> Middleware::TableStatistics(const std::string& table) {
  const auto it = table_stats_.find(ToUpper(table));
  if (it == table_stats_.end()) {
    return Status::NotFound("no statistics collected for " + ToUpper(table));
  }
  return it->second;
}

Result<Middleware::Prepared> Middleware::Prepare(const std::string& tsql_text) {
  // Schema provider backed by the DBMS catalog (and implicit statistics
  // collection so the optimizer can cost scans of every referenced table).
  tsql::Parser::SchemaProvider provider =
      [this](const std::string& table) -> Result<Schema> {
    if (table_stats_.find(ToUpper(table)) == table_stats_.end()) {
      TANGO_RETURN_IF_ERROR(CollectStatistics({table}));
    }
    return connection_.GetTableSchema(table);
  };
  TANGO_ASSIGN_OR_RETURN(algebra::OpPtr initial,
                         tsql::Parser::Parse(tsql_text, provider));
  return PrepareLogical(initial);
}

Result<Middleware::Prepared> Middleware::PrepareLogical(
    const algebra::OpPtr& initial_plan,
    optimizer::SiteRestriction restriction) {
  obs::ScopedSpan optimize_span(trace_, "optimize", "query");
  optimizer::Optimizer::Options opts;
  opts.semantic_temporal_selectivity = config_.semantic_temporal_selectivity;
  opts.site_restriction = restriction;
  optimizer::Optimizer opt(&cost_model_, opts);
  opt.set_scan_stats_provider(
      [this](const std::string& table) -> Result<stats::RelStats> {
        auto it = table_stats_.find(ToUpper(table));
        if (it == table_stats_.end()) {
          TANGO_RETURN_IF_ERROR(CollectStatistics({table}));
          it = table_stats_.find(ToUpper(table));
        }
        return it->second;
      });
  TANGO_ASSIGN_OR_RETURN(optimizer::Optimizer::Optimized result,
                         opt.Optimize(initial_plan));
  Prepared prepared;
  prepared.initial_plan = initial_plan;
  prepared.plan = std::move(result.plan);
  prepared.num_classes = result.num_classes;
  prepared.num_elements = result.num_elements;
  prepared.num_physical = result.num_physical;
  return prepared;
}

Result<Middleware::Execution> Middleware::ExecuteOnce(
    const optimizer::PhysPlanPtr& plan, const QueryControlPtr& control,
    obs::AnalyzeReport* report) {
  // Declared first so the span closes after every other interval of this
  // execution (compile, operators, retries, pool/prefetch threads).
  obs::ScopedSpan execute_span(trace_, "execute", "query");
  obs::Gauge& active =
      metrics_->gauge("query.active", /*expect_zero_at_exit=*/true);
  active.Increment();
  struct ActiveGuard {
    obs::Gauge* gauge;
    ~ActiveGuard() { gauge->Decrement(); }
  } active_guard{&active};
  ++metrics_->counter("query.executions");

  PlanCompiler compiler(&connection_);
  compiler.set_share_common_transfers(config_.share_common_transfers);
  compiler.set_sort_memory_budget(config_.sort_memory_budget_bytes);
  compiler.set_dop(config_.dop);
  compiler.set_query_control(control);
  compiler.set_retry_policy(config_.retry);
  compiler.set_recovery_counters(&recovery_);
  compiler.set_temp_prefix("TANGO_TMP_" + std::to_string(++exec_seq_) + "_");
  compiler.set_metrics(metrics_);
  compiler.set_trace(trace_, execute_span.id());
  Result<CompiledPlan> compiled_or = [&] {
    obs::ScopedSpan compile_span(trace_, "compile", "query",
                                 execute_span.id());
    return compiler.Compile(plan);
  }();
  if (!compiled_or.ok()) {
    ++metrics_->counter("query.failures");
    return compiled_or.status();
  }
  CompiledPlan compiled = compiled_or.MoveValueOrDie();

  // The temporary tables must be dropped at the end of the query (§3.2) no
  // matter how execution ends — the guard's destructor covers every exit.
  TempTableGuard janitor(&connection_, compiled.temp_tables, config_.retry,
                         &recovery_);

  const auto start = std::chrono::steady_clock::now();
  Result<std::vector<Tuple>> rows = MaterializeAll(compiled.root.get());
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Tear the cursor tree down before cleanup: after a cancelled or failed
  // materialization the prefetch producers may still be mid-fetch, and
  // their destructors are what joins them. Past this point the timing sink
  // is quiescent and the janitor's DROPs cannot race an in-flight fetch.
  const Schema schema = compiled.root->schema();
  compiled.root.reset();

  const Status cleanup = janitor.DropAll();
  if (!rows.ok()) {
    ++metrics_->counter("query.failures");
    return rows.status();
  }

  Execution exec;
  exec.schema = schema;
  exec.rows = rows.MoveValueOrDie();
  exec.elapsed_seconds = std::chrono::duration<double>(elapsed).count();
  exec.timings = *compiled.timings;
  exec.sql_statements = compiled.sql_statements;
  exec.cleanup_status = cleanup;
  metrics_->histogram("query.latency_seconds").Record(exec.elapsed_seconds);

  if (config_.adapt) ApplyFeedback(compiled, exec.timings);
  if (report != nullptr) *report = BuildReport(compiled, exec);
  return exec;
}

Result<Middleware::Execution> Middleware::Execute(
    const optimizer::PhysPlanPtr& plan, const QueryControlPtr& control) {
  return ExecuteOnce(plan, control);
}

Result<Middleware::Execution> Middleware::Execute(
    const Prepared& prepared, const QueryControlPtr& control) {
  Result<Execution> first = ExecuteOnce(prepared.plan, control);
  if (first.ok() || !config_.degrade_on_failure) return first;
  // Degrade only on an exhausted retry budget (kUnavailable). kTimeout and
  // kAborted mean the query's deadline/cancellation governs — re-running a
  // bigger plan cannot help a dead query.
  const Status& failure = first.status();
  if (failure.code() != StatusCode::kUnavailable) return first;
  if (control != nullptr && !control->Check().ok()) return first;

  // A failing T^D direction means the DBMS cannot accept middleware data:
  // plan middleware-only (no temp tables at all). Anything else is T^M /
  // statement trouble on the result path: fall back to the paper's initial
  // shape, everything in the DBMS with one T^M on top.
  using optimizer::SiteRestriction;
  const bool td_failed =
      failure.message().find("TRANSFER^D") != std::string::npos;
  const SiteRestriction preferred = td_failed
                                        ? SiteRestriction::kMiddlewareOnly
                                        : SiteRestriction::kDbmsOnly;
  const SiteRestriction alternate = td_failed
                                        ? SiteRestriction::kDbmsOnly
                                        : SiteRestriction::kMiddlewareOnly;
  Result<Prepared> fallback =
      PrepareLogical(prepared.initial_plan, preferred);
  if (!fallback.ok()) {
    // E.g. COALESCE/DIFF queries cannot be planned DBMS-only.
    fallback = PrepareLogical(prepared.initial_plan, alternate);
  }
  if (!fallback.ok()) return first;

  ++recovery_.downgrades;
  Result<Execution> second =
      ExecuteOnce(fallback.ValueOrDie().plan, control);
  if (!second.ok()) return second;
  Execution degraded = second.MoveValueOrDie();
  degraded.degraded = true;
  return degraded;
}

Status Middleware::SweepOrphanTempTables() {
  TANGO_ASSIGN_OR_RETURN(std::vector<std::string> orphans,
                         connection_.ListTables("TANGO_TMP_"));
  Status first_failure;
  for (const std::string& t : orphans) {
    const Status s = connection_.Execute("DROP TABLE " + t).status();
    if (s.ok() || s.code() == StatusCode::kNotFound) {
      ++recovery_.orphans_swept;
    } else if (first_failure.ok()) {
      first_failure = s;
    }
  }
  return first_failure;
}

Result<std::string> Middleware::Explain(const Prepared& prepared) {
  PlanCompiler compiler(&connection_);
  compiler.set_share_common_transfers(config_.share_common_transfers);
  TANGO_ASSIGN_OR_RETURN(CompiledPlan compiled, compiler.Compile(prepared.plan));
  // Compilation creates the T^D temporaries' names only; nothing executed —
  // but any temp tables were not created either (that happens in Init), so
  // there is nothing to drop.
  std::string out = "initial plan:\n" + prepared.initial_plan->ToString();
  out += "\nchosen physical plan (" + std::to_string(prepared.num_classes) +
         " classes, " + std::to_string(prepared.num_elements) +
         " elements, " + std::to_string(prepared.num_physical) +
         " physical combinations):\n";
  out += prepared.plan->ToString();
  out += "\nSQL sent to the DBMS:\n";
  for (const std::string& sql : compiled.sql_statements) {
    out += "  " + sql + "\n";
  }
  return out;
}

Result<Middleware::Execution> Middleware::Query(const std::string& tsql_text,
                                                const QueryControlPtr& control) {
  TANGO_ASSIGN_OR_RETURN(Prepared prepared, Prepare(tsql_text));
  return Execute(prepared, control);
}

Result<obs::AnalyzeReport> Middleware::Analyze(const Prepared& prepared,
                                               const QueryControlPtr& control) {
  obs::AnalyzeReport report;
  TANGO_RETURN_IF_ERROR(ExecuteOnce(prepared.plan, control, &report).status());
  return report;
}

Result<std::string> Middleware::ExplainAnalyze(const Prepared& prepared,
                                               const QueryControlPtr& control) {
  TANGO_ASSIGN_OR_RETURN(obs::AnalyzeReport report, Analyze(prepared, control));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "elapsed=%.3fms",
                report.elapsed_seconds * 1e3);
  std::string out = "EXPLAIN ANALYZE rows=" +
                    std::to_string(report.result_rows) + " " + buf + "\n";
  out += obs::RenderAnalyzeTree(report);
  return out;
}

void Middleware::ApplyFeedback(const CompiledPlan& compiled,
                               const exec::TimingSink& timings) {
  cost::CostFactors& f = cost_model_.factors();
  const double alpha = config_.feedback_alpha;
  for (const CompiledNode& node : compiled.nodes) {
    const optimizer::PhysPlan& p = *node.plan;
    const double self_us = exec::SelfSeconds(timings, node.timing_id) * 1e6;
    if (self_us <= 1) continue;
    // The size basis of each factor, per the Figure 6 formulas. For
    // TRANSFER^M the measured time includes the DBMS fragment's work — the
    // paper notes dividing it is an open challenge; attributing it to p_tm
    // makes the factor absorb the DBMS cost observed for similar fragments.
    double in_bytes = 0;
    for (const auto& c : p.children) in_bytes += c->est_bytes;
    switch (p.algorithm) {
      case optimizer::Algorithm::kTransferM: {
        // The measured time covers the transfer AND the DBMS fragment below
        // it. The paper leaves dividing it among the DBMS algorithms as
        // future work; we implement the natural split: attribute the
        // observed time proportionally to each part's estimated cost and
        // scale every involved factor toward the observed ratio. A fragment
        // that ran 10x over its estimate thus makes all its DBMS factors
        // ~10x larger, repartitioning subsequent queries.
        std::vector<const optimizer::PhysPlan*> fragment;
        std::function<void(const optimizer::PhysPlan&)> collect =
            [&](const optimizer::PhysPlan& n) {
              if (n.algorithm == optimizer::Algorithm::kTransferD) return;
              fragment.push_back(&n);
              for (const auto& c : n.children) collect(*c);
            };
        collect(*p.children[0]);
        auto self_est = [](const optimizer::PhysPlan& n) {
          double est = n.cost;
          for (const auto& c : n.children) est -= c->cost;
          return est < 0 ? 0 : est;
        };
        // Trust the simple, calibration-pinned parts (the round trip, the
        // per-byte transfer, the scans); the remainder of the observed time
        // belongs to the complex operators, whose factors are scaled toward
        // the observed ratio.
        double trusted = f.stmt + f.tm * p.est_bytes;
        double adjustable_est = 0;
        for (const optimizer::PhysPlan* n : fragment) {
          if (n->algorithm == optimizer::Algorithm::kScanD) {
            trusted += self_est(*n);
          } else {
            adjustable_est += self_est(*n);
          }
        }
        if (adjustable_est < 1) {
          // Nothing adjustable in the fragment: the time is the transfer's.
          cost::CostModel::Feedback(&f.tm, self_us - f.stmt, p.est_bytes,
                                    alpha);
          break;
        }
        const double leftover = std::max(0.0, self_us - trusted);
        const double ratio = std::clamp(leftover / adjustable_est, 0.05, 20.0);
        const double scale = (1 - alpha) + alpha * ratio;
        for (const optimizer::PhysPlan* n : fragment) {
          switch (n->algorithm) {
            case optimizer::Algorithm::kSortD:
            case optimizer::Algorithm::kDistinctD:
              f.sortd *= scale;
              break;
            case optimizer::Algorithm::kJoinD:
            case optimizer::Algorithm::kTJoinD:
              f.joind *= scale;
              f.joindout *= scale;
              break;
            case optimizer::Algorithm::kProductD:
              f.prodd *= scale;
              break;
            case optimizer::Algorithm::kTAggrD:
              f.taggd1 *= scale;
              f.taggd2 *= scale;
              break;
            default:
              break;  // scans handled above; selection/projection are free
          }
        }
        break;
      }
      case optimizer::Algorithm::kTransferD:
        cost::CostModel::Feedback(&f.td, self_us - f.stmt, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kFilterM: {
        const double coef =
            cost::CostModel::PredicateCoefficient(p.op->predicate);
        cost::CostModel::Feedback(&f.sem, self_us, coef * in_bytes, alpha);
        break;
      }
      case optimizer::Algorithm::kProjectM:
        cost::CostModel::Feedback(&f.projm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kSortM: {
        // At DOP > 1 the run generation ran on `dop` workers, so the wall
        // time observed here is the serial work divided by the effective
        // DOP; using the same discounted basis as the formula keeps the
        // factor comparable across DOP settings.
        const double card = p.est_cardinality < 2 ? 2 : p.est_cardinality;
        cost::CostModel::Feedback(
            &f.sortm, self_us,
            p.est_bytes * std::log2(card) / cost_model_.EffectiveDop(),
            alpha);
        break;
      }
      case optimizer::Algorithm::kMergeJoinM:
        cost::CostModel::Feedback(&f.mjm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kTJoinM:
        cost::CostModel::Feedback(&f.tjm, self_us,
                                  in_bytes / cost_model_.EffectiveDop(),
                                  alpha);
        break;
      case optimizer::Algorithm::kTAggrM:
        // Two factors share the observation; scale both by the ratio of
        // observed to estimated time.
        if (in_bytes > 0) {
          const double est =
              f.taggm1 * in_bytes + f.taggm2 * p.est_bytes;
          if (est > 1) {
            const double ratio = self_us / est;
            f.taggm1 *= (1 - alpha) + alpha * ratio;
            f.taggm2 *= (1 - alpha) + alpha * ratio;
          }
        }
        break;
      case optimizer::Algorithm::kDupElimM:
        cost::CostModel::Feedback(&f.dupm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kCoalesceM:
        cost::CostModel::Feedback(&f.coalm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kDiffM:
        cost::CostModel::Feedback(&f.diffm, self_us, in_bytes, alpha);
        break;
      default:
        break;
    }
  }
}

}  // namespace tango
