#include "tango/middleware.h"

#include <chrono>
#include <cstdio>

#include "adapt/fingerprint.h"

namespace tango {

namespace {

/// The EXPLAIN / EXPLAIN ANALYZE cache-provenance line. Counters are read
/// live from the entry, so an ExplainAnalyze run reports the execution it
/// just performed.
std::string ProvenanceLine(const Middleware::Prepared& prepared) {
  const char* source = "uncached";
  switch (prepared.source) {
    case Middleware::Prepared::Source::kUncached: source = "uncached"; break;
    case Middleware::Prepared::Source::kFresh: source = "fresh"; break;
    case Middleware::Prepared::Source::kCached: source = "cached"; break;
    case Middleware::Prepared::Source::kReoptimized:
      source = "reoptimized";
      break;
  }
  std::string out = std::string("plan: ") + source;
  if (prepared.cache_entry != nullptr) {
    out += ", executions=" +
           std::to_string(prepared.cache_entry->executions.load(
               std::memory_order_relaxed));
    out += ", reoptimized=" +
           std::to_string(prepared.cache_entry->reoptimized.load(
               std::memory_order_relaxed));
  }
  return out + "\n";
}

/// Builds the EXPLAIN ANALYZE observation tree from one execution: the
/// optimizer's estimates come from the plan nodes, the actuals from the
/// timing sink the instrumented cursors filled in.
obs::AnalyzeReport BuildReport(const CompiledPlan& compiled,
                               const Middleware::Execution& exec) {
  obs::AnalyzeReport report;
  report.ops.resize(exec.timings.size());
  for (const CompiledNode& node : compiled.nodes) {
    if (node.timing_id >= report.ops.size()) continue;
    obs::OpObservation& op = report.ops[node.timing_id];
    const optimizer::PhysPlan& p = *node.plan;
    const exec::AlgorithmTiming& t = exec.timings[node.timing_id];
    op.label = optimizer::AlgorithmName(p.algorithm);
    op.site = p.site == optimizer::Site::kMiddleware ? 'M' : 'D';
    op.timing_id = node.timing_id;
    op.children = t.child_ids;
    op.est_rows = p.est_cardinality;
    op.est_bytes = p.est_bytes;
    op.est_cost_us = p.cost;
    op.act_rows = t.rows;
    op.act_batches = t.batches;
    op.inclusive_seconds = t.inclusive_seconds;
    op.self_seconds = exec::SelfSeconds(exec.timings, node.timing_id);
    op.worker_seconds = t.worker_seconds;
    op.sql = node.sql;
  }
  report.root = compiled.root_timing_id;
  report.elapsed_seconds = exec.elapsed_seconds;
  report.result_rows = exec.rows.size();
  return report;
}

/// \brief RAII janitor for one execution's temporary tables (§3.2: "the
/// table must be dropped at the end of the query").
///
/// Drops happen in reverse creation order (later tables may only exist
/// because earlier ones do), each drop is retried on transient failures,
/// and every outcome is counted — a failed drop is a recorded leak, never a
/// silent one. The guard ignores the query's own cancellation token:
/// cleanup must run precisely when the query is dying.
class TempTableGuard {
 public:
  TempTableGuard(dbms::Connection* conn, std::vector<std::string> tables,
                 RetryPolicy policy, RecoveryCounters* counters)
      : conn_(conn),
        tables_(std::move(tables)),
        policy_(policy),
        counters_(counters) {}

  ~TempTableGuard() { DropAll(); }

  TempTableGuard(const TempTableGuard&) = delete;
  TempTableGuard& operator=(const TempTableGuard&) = delete;

  /// Idempotent; the destructor is only the backstop for early returns.
  /// Returns the first permanent drop failure.
  Status DropAll() {
    if (done_) return first_failure_;
    done_ = true;
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
      const Status s = DropOne(*it);
      if (!s.ok() && first_failure_.ok()) first_failure_ = s;
    }
    return first_failure_;
  }

 private:
  Status DropOne(const std::string& table) {
    RetryState retry(policy_);
    while (true) {
      const Status s = conn_->Execute("DROP TABLE " + table).status();
      if (s.ok()) {
        ++counters_->temp_tables_dropped;
        return Status::OK();
      }
      // Never created (the fault hit before its CREATE): nothing to leak.
      if (s.code() == StatusCode::kNotFound) return Status::OK();
      if (retry.ShouldRetry(s)) {
        ++counters_->drop_retries;
        if (retry.Backoff(nullptr).ok()) continue;
      }
      ++counters_->temp_table_drop_failures;
      ++counters_->temp_tables_leaked;
      return Status(s.code(),
                    "temp table " + table + " could not be dropped: " +
                        s.message());
    }
  }

  dbms::Connection* conn_;
  std::vector<std::string> tables_;
  RetryPolicy policy_;
  RecoveryCounters* counters_;
  bool done_ = false;
  Status first_failure_;
};

}  // namespace

Status Middleware::CollectStatistics(const std::vector<std::string>& tables) {
  for (const std::string& t : tables) {
    TANGO_ASSIGN_OR_RETURN(dbms::TableStats raw,
                           connection_.GetTableStats(t));
    TANGO_ASSIGN_OR_RETURN(Schema schema, connection_.GetTableSchema(t));
    stats::RelStats rel = stats::FromTableStats(raw, schema);
    if (!config_.use_histograms) rel = StripHistograms(std::move(rel));
    table_stats_[ToUpper(t)] = std::move(rel);
  }
  // The stats cached plans were costed under are gone; drop those plans.
  plan_cache_.InvalidateTables(tables);
  return Status::OK();
}

stats::RelStats Middleware::StripHistograms(stats::RelStats rel) const {
  for (stats::ColumnInfo& c : rel.columns) c.histogram = stats::Histogram();
  return rel;
}

Result<stats::RelStats> Middleware::TableStatistics(const std::string& table) {
  const auto it = table_stats_.find(ToUpper(table));
  if (it == table_stats_.end()) {
    return Status::NotFound("no statistics collected for " + ToUpper(table));
  }
  return it->second;
}

Result<Middleware::Prepared> Middleware::Prepare(const std::string& tsql_text) {
  // Schema provider backed by the DBMS catalog (and implicit statistics
  // collection so the optimizer can cost scans of every referenced table).
  tsql::Parser::SchemaProvider provider =
      [this](const std::string& table) -> Result<Schema> {
    if (table_stats_.find(ToUpper(table)) == table_stats_.end()) {
      TANGO_RETURN_IF_ERROR(CollectStatistics({table}));
    }
    return connection_.GetTableSchema(table);
  };
  TANGO_ASSIGN_OR_RETURN(algebra::OpPtr initial,
                         tsql::Parser::Parse(tsql_text, provider));
  return PrepareLogical(initial);
}

Result<Middleware::Prepared> Middleware::PrepareLogical(
    const algebra::OpPtr& initial_plan,
    optimizer::SiteRestriction restriction) {
  if (!config_.plan_cache.enable) {
    return OptimizeLogical(initial_plan, restriction, nullptr);
  }
  // Parameterize: literal sites become ordered slots (Expr::param_id) while
  // keeping their values in place, so optimization sees true selectivities
  // and the produced plan can be rebound to other literals of the same
  // shape.
  obs::ScopedSpan lookup_span(trace_, "adapt.lookup", "adapt");
  const adapt::ParameterizedQuery pq = adapt::ParameterizeQuery(initial_plan);
  adapt::PlanKey key;
  key.fingerprint = pq.hash;
  key.canon = pq.canon;
  key.config_key = PlanConfigKey(restriction);
  const std::vector<double> factors = FactorSnapshot();

  adapt::PlanCache::EntryPtr entry = plan_cache_.Lookup(key, factors);
  if (entry != nullptr) {
    const std::shared_ptr<const adapt::CachedPlan> cached = entry->plan();
    if (cached != nullptr && !entry->stale.load(std::memory_order_acquire)) {
      Prepared prepared;
      prepared.initial_plan =
          adapt::BindLogicalParams(cached->initial_plan, pq.params);
      prepared.plan = adapt::BindPhysParams(cached->plan, pq.params);
      prepared.num_classes = cached->num_classes;
      prepared.num_elements = cached->num_elements;
      prepared.num_physical = cached->num_physical;
      prepared.source = Prepared::Source::kCached;
      prepared.fingerprint = pq.hash;
      prepared.cache_entry = entry;
      return prepared;
    }
  }

  // Miss, or a stale entry (an execution's Q-error exceeded the bound):
  // optimize the tagged plan — with the observed cardinalities injected
  // over the §3.3 estimates when this fingerprint has executed before —
  // and (re)install the result.
  const bool reoptimizing = entry != nullptr;
  const std::map<uint64_t, double> overrides = feedback_.OverridesFor(pq.hash);
  Result<Prepared> fresh_or = [&] {
    if (!reoptimizing) {
      return OptimizeLogical(pq.plan, restriction,
                             overrides.empty() ? nullptr : &overrides);
    }
    obs::ScopedSpan reoptimize_span(trace_, "adapt.reoptimize", "adapt");
    ++metrics_->counter("reoptimize.count");
    return OptimizeLogical(pq.plan, restriction,
                           overrides.empty() ? nullptr : &overrides);
  }();
  TANGO_RETURN_IF_ERROR(fresh_or.status());
  Prepared fresh = fresh_or.MoveValueOrDie();

  adapt::CachedPlan payload;
  payload.initial_plan = pq.plan;
  payload.plan = fresh.plan;
  payload.num_classes = fresh.num_classes;
  payload.num_elements = fresh.num_elements;
  payload.num_physical = fresh.num_physical;
  payload.tables = adapt::ReferencedTables(pq.plan);
  payload.factor_snapshot = FactorSnapshot();
  if (reoptimizing) {
    entry->Refresh(std::move(payload));
    fresh.source = Prepared::Source::kReoptimized;
  } else {
    entry = plan_cache_.Insert(key, std::move(payload));
    fresh.source = Prepared::Source::kFresh;
  }
  fresh.fingerprint = pq.hash;
  fresh.cache_entry = entry;
  return fresh;
}

Result<Middleware::Prepared> Middleware::OptimizeLogical(
    const algebra::OpPtr& initial_plan, optimizer::SiteRestriction restriction,
    const std::map<uint64_t, double>* overrides) {
  obs::ScopedSpan optimize_span(trace_, "optimize", "query");
  optimizer::Optimizer::Options opts;
  opts.semantic_temporal_selectivity = config_.semantic_temporal_selectivity;
  opts.site_restriction = restriction;
  opts.cardinality_overrides = overrides;
  optimizer::Optimizer opt(&cost_model_, opts);
  opt.set_scan_stats_provider(
      [this](const std::string& table) -> Result<stats::RelStats> {
        auto it = table_stats_.find(ToUpper(table));
        if (it == table_stats_.end()) {
          TANGO_RETURN_IF_ERROR(CollectStatistics({table}));
          it = table_stats_.find(ToUpper(table));
        }
        return it->second;
      });
  TANGO_ASSIGN_OR_RETURN(optimizer::Optimizer::Optimized result,
                         opt.Optimize(initial_plan));
  Prepared prepared;
  prepared.initial_plan = initial_plan;
  prepared.plan = std::move(result.plan);
  prepared.num_classes = result.num_classes;
  prepared.num_elements = result.num_elements;
  prepared.num_physical = result.num_physical;
  return prepared;
}

Result<Middleware::Execution> Middleware::ExecuteOnce(
    const optimizer::PhysPlanPtr& plan, const QueryControlPtr& control,
    obs::AnalyzeReport* report, const Prepared* provenance) {
  // Declared first so the span closes after every other interval of this
  // execution (compile, operators, retries, pool/prefetch threads).
  obs::ScopedSpan execute_span(trace_, "execute", "query");
  obs::Gauge& active =
      metrics_->gauge("query.active", /*expect_zero_at_exit=*/true);
  active.Increment();
  struct ActiveGuard {
    obs::Gauge* gauge;
    ~ActiveGuard() { gauge->Decrement(); }
  } active_guard{&active};
  ++metrics_->counter("query.executions");

  PlanCompiler compiler(&connection_);
  compiler.set_share_common_transfers(config_.share_common_transfers);
  compiler.set_sort_memory_budget(config_.sort_memory_budget_bytes);
  compiler.set_batch_size(config_.batch_size);
  compiler.set_dop(config_.dop);
  compiler.set_query_control(control);
  compiler.set_retry_policy(config_.retry);
  compiler.set_recovery_counters(&recovery_);
  compiler.set_temp_prefix("TANGO_TMP_" + std::to_string(++exec_seq_) + "_");
  compiler.set_metrics(metrics_);
  compiler.set_trace(trace_, execute_span.id());
  Result<CompiledPlan> compiled_or = [&] {
    obs::ScopedSpan compile_span(trace_, "compile", "query",
                                 execute_span.id());
    return compiler.Compile(plan);
  }();
  if (!compiled_or.ok()) {
    ++metrics_->counter("query.failures");
    return compiled_or.status();
  }
  CompiledPlan compiled = compiled_or.MoveValueOrDie();

  // The temporary tables must be dropped at the end of the query (§3.2) no
  // matter how execution ends — the guard's destructor covers every exit.
  TempTableGuard janitor(&connection_, compiled.temp_tables, config_.retry,
                         &recovery_);

  const auto start = std::chrono::steady_clock::now();
  Result<std::vector<Tuple>> rows = MaterializeAll(compiled.root.get());
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Tear the cursor tree down before cleanup: after a cancelled or failed
  // materialization the prefetch producers may still be mid-fetch, and
  // their destructors are what joins them. Past this point the timing sink
  // is quiescent and the janitor's DROPs cannot race an in-flight fetch.
  const Schema schema = compiled.root->schema();
  compiled.root.reset();

  const Status cleanup = janitor.DropAll();
  if (!rows.ok()) {
    ++metrics_->counter("query.failures");
    return rows.status();
  }

  Execution exec;
  exec.schema = schema;
  exec.rows = rows.MoveValueOrDie();
  exec.elapsed_seconds = std::chrono::duration<double>(elapsed).count();
  exec.timings = *compiled.timings;
  exec.sql_statements = compiled.sql_statements;
  exec.cleanup_status = cleanup;
  metrics_->histogram("query.latency_seconds").Record(exec.elapsed_seconds);
  // Vectorization observability: rows that reached the (batched) root drain
  // and RowBlocks produced across all operators of this plan.
  metrics_->counter("exec.batch.rows").Increment(exec.rows.size());
  uint64_t plan_batches = 0;
  for (const exec::AlgorithmTiming& t : exec.timings) plan_batches += t.batches;
  metrics_->counter("exec.batch.blocks").Increment(plan_batches);

  if (config_.adapt) ApplyFeedback(compiled, exec.timings);
  if (provenance != nullptr && provenance->cache_entry != nullptr) {
    RecordCardinalityFeedback(compiled, exec.timings, *provenance);
  }
  if (report != nullptr) *report = BuildReport(compiled, exec);
  return exec;
}

void Middleware::RecordCardinalityFeedback(const CompiledPlan& compiled,
                                           const exec::TimingSink& timings,
                                           const Prepared& provenance) {
  std::vector<adapt::Observation> observations;
  observations.reserve(compiled.nodes.size());
  for (const CompiledNode& node : compiled.nodes) {
    const optimizer::PhysPlan& p = *node.plan;
    // TRANSFER^D sinks rows into a temp table; its timing does not observe
    // the group's output cardinality. Synthetic nodes carry no key.
    if (p.feedback_key == 0 ||
        p.algorithm == optimizer::Algorithm::kTransferD ||
        node.timing_id >= timings.size()) {
      continue;
    }
    observations.push_back(
        {p.feedback_key, p.est_cardinality, timings[node.timing_id].rows});
  }
  const double worst =
      feedback_.Record(provenance.fingerprint, observations);
  adapt::PlanCache::Entry& entry = *provenance.cache_entry;
  entry.executions.fetch_add(1, std::memory_order_relaxed);
  if (worst > config_.plan_cache.q_error_bound &&
      !entry.stale.exchange(true, std::memory_order_acq_rel)) {
    ++metrics_->counter("reoptimize.stale_marks");
  }
}

Result<Middleware::Execution> Middleware::Execute(
    const optimizer::PhysPlanPtr& plan, const QueryControlPtr& control) {
  return ExecuteOnce(plan, control);
}

Result<Middleware::Execution> Middleware::Execute(
    const Prepared& prepared, const QueryControlPtr& control) {
  Result<Execution> first =
      ExecuteOnce(prepared.plan, control, nullptr, &prepared);
  if (first.ok() || !config_.degrade_on_failure) return first;
  // Degrade only on an exhausted retry budget (kUnavailable). kTimeout and
  // kAborted mean the query's deadline/cancellation governs — re-running a
  // bigger plan cannot help a dead query.
  const Status& failure = first.status();
  if (failure.code() != StatusCode::kUnavailable) return first;
  if (control != nullptr && !control->Check().ok()) return first;

  // A failing T^D direction means the DBMS cannot accept middleware data:
  // plan middleware-only (no temp tables at all). Anything else is T^M /
  // statement trouble on the result path: fall back to the paper's initial
  // shape, everything in the DBMS with one T^M on top.
  using optimizer::SiteRestriction;
  const bool td_failed =
      failure.message().find("TRANSFER^D") != std::string::npos;
  const SiteRestriction preferred = td_failed
                                        ? SiteRestriction::kMiddlewareOnly
                                        : SiteRestriction::kDbmsOnly;
  const SiteRestriction alternate = td_failed
                                        ? SiteRestriction::kDbmsOnly
                                        : SiteRestriction::kMiddlewareOnly;
  Result<Prepared> fallback =
      PrepareLogical(prepared.initial_plan, preferred);
  if (!fallback.ok()) {
    // E.g. COALESCE/DIFF queries cannot be planned DBMS-only.
    fallback = PrepareLogical(prepared.initial_plan, alternate);
  }
  if (!fallback.ok()) return first;

  ++recovery_.downgrades;
  Result<Execution> second = ExecuteOnce(fallback.ValueOrDie().plan, control,
                                         nullptr, &fallback.ValueOrDie());
  if (!second.ok()) return second;
  Execution degraded = second.MoveValueOrDie();
  degraded.degraded = true;
  return degraded;
}

Status Middleware::SweepOrphanTempTables() {
  TANGO_ASSIGN_OR_RETURN(std::vector<std::string> orphans,
                         connection_.ListTables("TANGO_TMP_"));
  Status first_failure;
  for (const std::string& t : orphans) {
    const Status s = connection_.Execute("DROP TABLE " + t).status();
    if (s.ok() || s.code() == StatusCode::kNotFound) {
      ++recovery_.orphans_swept;
    } else if (first_failure.ok()) {
      first_failure = s;
    }
  }
  // Durable garbage: WAL segments and snapshot files wholly covered by the
  // latest checkpoint. Best effort, like the drops — a crashed engine (or a
  // volatile one, which reclaims nothing) must not fail the sweep.
  const Result<size_t> reclaimed = connection_.ReclaimWalSegments();
  if (reclaimed.ok() && reclaimed.ValueOrDie() > 0) {
    recovery_.wal_segments_reclaimed.Increment(reclaimed.ValueOrDie());
  }
  return first_failure;
}

Result<size_t> Middleware::RefreshStatisticsIfStale(
    const std::vector<std::string>& tables, bool analyze_first) {
  size_t refreshed = 0;
  std::vector<std::string> stale;
  for (const std::string& t : tables) {
    const std::string key = ToUpper(t);
    const auto it = table_stats_.find(key);
    if (it != table_stats_.end()) {
      TANGO_ASSIGN_OR_RETURN(const dbms::TableStats live,
                             connection_.GetTableStats(key));
      if (live.epoch == it->second.source_epoch) continue;  // still fresh
    }
    if (analyze_first) {
      TANGO_RETURN_IF_ERROR(
          connection_.Execute("ANALYZE " + key).status());
    }
    stale.push_back(key);
    ++refreshed;
  }
  // CollectStatistics re-pulls and invalidates cached plans; untouched
  // tables keep their statistics and plans.
  if (!stale.empty()) TANGO_RETURN_IF_ERROR(CollectStatistics(stale));
  return refreshed;
}

Result<std::string> Middleware::Explain(const Prepared& prepared) {
  PlanCompiler compiler(&connection_);
  compiler.set_share_common_transfers(config_.share_common_transfers);
  TANGO_ASSIGN_OR_RETURN(CompiledPlan compiled, compiler.Compile(prepared.plan));
  // Compilation creates the T^D temporaries' names only; nothing executed —
  // but any temp tables were not created either (that happens in Init), so
  // there is nothing to drop.
  std::string out = ProvenanceLine(prepared);
  out += "initial plan:\n" + prepared.initial_plan->ToString();
  out += "\nchosen physical plan (" + std::to_string(prepared.num_classes) +
         " classes, " + std::to_string(prepared.num_elements) +
         " elements, " + std::to_string(prepared.num_physical) +
         " physical combinations):\n";
  out += prepared.plan->ToString();
  out += "\nSQL sent to the DBMS:\n";
  for (const std::string& sql : compiled.sql_statements) {
    out += "  " + sql + "\n";
  }
  return out;
}

Result<Middleware::Execution> Middleware::Query(const std::string& tsql_text,
                                                const QueryControlPtr& control) {
  TANGO_ASSIGN_OR_RETURN(Prepared prepared, Prepare(tsql_text));
  return Execute(prepared, control);
}

Result<obs::AnalyzeReport> Middleware::Analyze(const Prepared& prepared,
                                               const QueryControlPtr& control) {
  obs::AnalyzeReport report;
  TANGO_RETURN_IF_ERROR(
      ExecuteOnce(prepared.plan, control, &report, &prepared).status());
  return report;
}

Result<std::string> Middleware::ExplainAnalyze(const Prepared& prepared,
                                               const QueryControlPtr& control) {
  TANGO_ASSIGN_OR_RETURN(obs::AnalyzeReport report, Analyze(prepared, control));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "elapsed=%.3fms",
                report.elapsed_seconds * 1e3);
  std::string out = "EXPLAIN ANALYZE rows=" +
                    std::to_string(report.result_rows) + " " + buf + "\n";
  out += ProvenanceLine(prepared);
  out += obs::RenderAnalyzeTree(report);
  return out;
}

void Middleware::ApplyFeedback(const CompiledPlan& compiled,
                               const exec::TimingSink& timings) {
  cost::CostFactors& f = cost_model_.factors();
  const double alpha = config_.feedback_alpha;
  for (const CompiledNode& node : compiled.nodes) {
    const optimizer::PhysPlan& p = *node.plan;
    const double self_us = exec::SelfSeconds(timings, node.timing_id) * 1e6;
    if (self_us <= 1) continue;
    // The size basis of each factor, per the Figure 6 formulas. For
    // TRANSFER^M the measured time includes the DBMS fragment's work — the
    // paper notes dividing it is an open challenge; attributing it to p_tm
    // makes the factor absorb the DBMS cost observed for similar fragments.
    double in_bytes = 0;
    for (const auto& c : p.children) in_bytes += c->est_bytes;
    switch (p.algorithm) {
      case optimizer::Algorithm::kTransferM: {
        // The measured time covers the transfer AND the DBMS fragment below
        // it. The paper leaves dividing it among the DBMS algorithms as
        // future work; we implement the natural split: attribute the
        // observed time proportionally to each part's estimated cost and
        // scale every involved factor toward the observed ratio. A fragment
        // that ran 10x over its estimate thus makes all its DBMS factors
        // ~10x larger, repartitioning subsequent queries.
        std::vector<const optimizer::PhysPlan*> fragment;
        std::function<void(const optimizer::PhysPlan&)> collect =
            [&](const optimizer::PhysPlan& n) {
              if (n.algorithm == optimizer::Algorithm::kTransferD) return;
              fragment.push_back(&n);
              for (const auto& c : n.children) collect(*c);
            };
        collect(*p.children[0]);
        auto self_est = [](const optimizer::PhysPlan& n) {
          double est = n.cost;
          for (const auto& c : n.children) est -= c->cost;
          return est < 0 ? 0 : est;
        };
        // Trust the simple, calibration-pinned parts (the round trip, the
        // per-byte transfer, the scans); the remainder of the observed time
        // belongs to the complex operators, whose factors are scaled toward
        // the observed ratio.
        double trusted = f.stmt + f.tm * p.est_bytes;
        double adjustable_est = 0;
        for (const optimizer::PhysPlan* n : fragment) {
          if (n->algorithm == optimizer::Algorithm::kScanD) {
            trusted += self_est(*n);
          } else {
            adjustable_est += self_est(*n);
          }
        }
        if (adjustable_est < 1) {
          // Nothing adjustable in the fragment: the time is the transfer's.
          cost::CostModel::Feedback(&f.tm, self_us - f.stmt, p.est_bytes,
                                    alpha);
          break;
        }
        const double leftover = std::max(0.0, self_us - trusted);
        const double ratio = std::clamp(leftover / adjustable_est, 0.05, 20.0);
        const double scale = (1 - alpha) + alpha * ratio;
        for (const optimizer::PhysPlan* n : fragment) {
          switch (n->algorithm) {
            case optimizer::Algorithm::kSortD:
            case optimizer::Algorithm::kDistinctD:
              f.sortd *= scale;
              break;
            case optimizer::Algorithm::kJoinD:
            case optimizer::Algorithm::kTJoinD:
              f.joind *= scale;
              f.joindout *= scale;
              break;
            case optimizer::Algorithm::kProductD:
              f.prodd *= scale;
              break;
            case optimizer::Algorithm::kTAggrD:
              f.taggd1 *= scale;
              f.taggd2 *= scale;
              break;
            default:
              break;  // scans handled above; selection/projection are free
          }
        }
        break;
      }
      case optimizer::Algorithm::kTransferD:
        cost::CostModel::Feedback(&f.td, self_us - f.stmt, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kFilterM: {
        const double coef =
            cost::CostModel::PredicateCoefficient(p.op->predicate);
        cost::CostModel::Feedback(&f.sem, self_us, coef * in_bytes, alpha);
        break;
      }
      case optimizer::Algorithm::kProjectM:
        cost::CostModel::Feedback(&f.projm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kSortM: {
        // At DOP > 1 the run generation ran on `dop` workers, so the wall
        // time observed here is the serial work divided by the effective
        // DOP; using the same discounted basis as the formula keeps the
        // factor comparable across DOP settings.
        const double card = p.est_cardinality < 2 ? 2 : p.est_cardinality;
        cost::CostModel::Feedback(
            &f.sortm, self_us,
            p.est_bytes * std::log2(card) / cost_model_.EffectiveDop(),
            alpha);
        break;
      }
      case optimizer::Algorithm::kMergeJoinM:
        cost::CostModel::Feedback(&f.mjm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kTJoinM:
        cost::CostModel::Feedback(&f.tjm, self_us,
                                  in_bytes / cost_model_.EffectiveDop(),
                                  alpha);
        break;
      case optimizer::Algorithm::kTAggrM:
        // Two factors share the observation; scale both by the ratio of
        // observed to estimated time.
        if (in_bytes > 0) {
          const double est =
              f.taggm1 * in_bytes + f.taggm2 * p.est_bytes;
          if (est > 1) {
            const double ratio = self_us / est;
            f.taggm1 *= (1 - alpha) + alpha * ratio;
            f.taggm2 *= (1 - alpha) + alpha * ratio;
          }
        }
        break;
      case optimizer::Algorithm::kDupElimM:
        cost::CostModel::Feedback(&f.dupm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kCoalesceM:
        cost::CostModel::Feedback(&f.coalm, self_us, in_bytes, alpha);
        break;
      case optimizer::Algorithm::kDiffM:
        cost::CostModel::Feedback(&f.diffm, self_us, in_bytes, alpha);
        break;
      default:
        break;
    }
  }
}

std::vector<double> Middleware::FactorSnapshot() const {
  const cost::CostFactors& f = cost_model_.factors();
  return {f.tm,    f.td,    f.sem,   f.taggm1, f.taggm2, f.taggd1,
          f.taggd2, f.sortm, f.projm, f.mjm,    f.mjout,  f.tjm,
          f.dupm,   f.coalm, f.diffm, f.scand,  f.sortd,  f.joind,
          f.joindout, f.prodd, f.idxd, f.stmt};
}

std::string Middleware::PlanConfigKey(
    optimizer::SiteRestriction restriction) const {
  return "dop=" + std::to_string(config_.dop) +
         "|hist=" + (config_.use_histograms ? "1" : "0") +
         "|sem=" + (config_.semantic_temporal_selectivity ? "1" : "0") +
         "|restrict=" + std::to_string(static_cast<int>(restriction));
}

}  // namespace tango
