#ifndef TANGO_TANGO_COMPILER_H_
#define TANGO_TANGO_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "dbms/connection.h"
#include "exec/instrument.h"
#include "exec/transfer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/phys.h"

namespace tango {

/// Association of an executed algorithm with its plan node, for the
/// performance-feedback loop.
struct CompiledNode {
  size_t timing_id = 0;
  const optimizer::PhysPlan* plan = nullptr;
  /// The SELECT this node issues (TRANSFER^M only; empty otherwise).
  std::string sql;
};

/// An execution-ready plan (Figure 5): a cursor tree whose DBMS-resident
/// fragments have been rendered to SQL, plus the temporary tables to drop
/// when the query finishes.
struct CompiledPlan {
  std::shared_ptr<exec::TimingSink> timings;
  std::vector<std::string> temp_tables;
  std::vector<CompiledNode> nodes;
  /// Timing id of the plan root (the last id assigned — EXPLAIN ANALYZE
  /// renders the observation tree from here).
  size_t root_timing_id = 0;
  /// The SQL statements issued by TRANSFER^M nodes (observability/EXPLAIN).
  std::vector<std::string> sql_statements;
  /// Shared store for identical TRANSFER^M statements (§7 refinement).
  std::shared_ptr<exec::TransferCache> transfer_cache;
  /// Worker pool shared by the plan's parallel operators (null at DOP 1).
  common::ThreadPoolPtr pool;
  /// Declared last on purpose: members destruct in reverse declaration
  /// order, and destroying the cursor tree is what joins the plan's worker
  /// threads (prefetch producers, pool tasks). On a cancelled/failed
  /// execution those threads can still be recording into `timings` and
  /// using `pool`/`transfer_cache`, so `root` must be destroyed first.
  CursorPtr root;
};

/// \brief Builds the execution-ready plan from an optimized physical plan:
/// middleware algorithms become exec:: cursors, maximal DBMS fragments are
/// rendered to SQL behind TRANSFER^M cursors, and TRANSFER^D nodes get
/// unique temporary table names ("the name of the table created must be
/// unique, and the table must be dropped at the end of the query", §3.2).
class PlanCompiler {
 public:
  explicit PlanCompiler(dbms::Connection* conn) : conn_(conn) {}

  /// Off disables the §7 shared-transfer refinement (ablation/testing).
  void set_share_common_transfers(bool share) { share_transfers_ = share; }

  /// Memory budget for each SORT^M before it spills runs to disk (the
  /// paper's "support very large relations" enhancement).
  void set_sort_memory_budget(size_t bytes) { sort_budget_ = bytes; }

  /// Rows per RowBlock on the batched execution path (the prefetch drain's
  /// block granularity).
  void set_batch_size(size_t rows) { batch_size_ = rows == 0 ? 1 : rows; }

  /// Degree of parallelism for the middleware algorithms. At 1 (default)
  /// the serial cursors are compiled; above 1 the plan gets a shared
  /// ThreadPool and SORT^M / TJOIN^M / the T^M drain use their parallel
  /// variants.
  void set_dop(size_t dop) { dop_ = dop == 0 ? 1 : dop; }

  /// Cancellation/deadline token threaded into every compiled transfer and
  /// prefetch cursor (null = never cancelled).
  void set_query_control(QueryControlPtr control) {
    control_ = std::move(control);
  }
  /// Retry discipline for the transfer operators.
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  /// Recovery observability shared with the transfer operators (may be
  /// null; not owned).
  void set_recovery_counters(RecoveryCounters* counters) {
    counters_ = counters;
  }
  /// Name prefix for TRANSFER^D temporary tables. The middleware passes a
  /// per-execution prefix so a table leaked by a crashed run can never
  /// collide with a later query's temp names.
  void set_temp_prefix(std::string prefix) { temp_prefix_ = std::move(prefix); }

  /// Registry the compiled plan's transfer/cache/pool metrics land in (may
  /// be null; not owned).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  /// Trace recorder for the compiled plan: every instrumented operator gets
  /// a pre-allocated span (begun at its Init), parented under `parent` or —
  /// for non-root operators — its parent operator's span.
  void set_trace(obs::TraceRecorder* trace, obs::SpanId parent) {
    trace_ = trace;
    trace_parent_ = parent;
  }

  Result<CompiledPlan> Compile(const optimizer::PhysPlanPtr& plan);

  /// Column names used for a TRANSFER^D temporary table (unique-ified
  /// algebra schema names; shared with the Translator-To-SQL).
  static std::vector<std::string> TempTableColumns(const Schema& schema);

 private:
  Result<CursorPtr> CompileNode(const optimizer::PhysPlan& node,
                                CompiledPlan* out, size_t* timing_id);
  Result<CursorPtr> CompileTransferM(const optimizer::PhysPlan& node,
                                     CompiledPlan* out, size_t* timing_id);

  CursorPtr Instrument(CursorPtr cursor, const optimizer::PhysPlan& node,
                       std::vector<size_t> child_ids, CompiledPlan* out,
                       size_t* timing_id);

  /// Metric/trace hooks for a transfer cursor whose operator span is
  /// `span`; all-null when neither metrics nor trace are attached.
  exec::TransferObservability TransferHooks(obs::SpanId span) const;

  dbms::Connection* conn_;
  int temp_counter_ = 0;
  bool share_transfers_ = true;
  size_t sort_budget_ = 32 << 20;
  size_t batch_size_ = RowBlock::kDefaultCapacity;
  size_t dop_ = 1;
  QueryControlPtr control_;
  RetryPolicy retry_;
  RecoveryCounters* counters_ = nullptr;
  std::string temp_prefix_ = "TANGO_TMP_";
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::SpanId trace_parent_ = obs::kNoSpan;
  /// Operator span of each timing id in the plan being compiled (parallel
  /// to the timing sink; kNoSpan when tracing is off).
  std::vector<obs::SpanId> span_of_timing_;
};

}  // namespace tango

#endif  // TANGO_TANGO_COMPILER_H_
