#ifndef TANGO_TANGO_MIDDLEWARE_H_
#define TANGO_TANGO_MIDDLEWARE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "dbms/connection.h"
#include "optimizer/optimizer.h"
#include "stats/stats.h"
#include "tango/compiler.h"
#include "tsql/tsql.h"

namespace tango {

/// \brief TANGO: the temporal middleware (Figure 1).
///
/// Wires together the components of the paper's architecture: the temporal
/// SQL parser, the Statistics Collector, the Cost Estimator, the optimizer,
/// the Translator-To-SQL, and the Execution Engine — all talking to the
/// conventional DBMS through one connection.
class Middleware {
 public:
  struct Config {
    dbms::WireConfig wire;
    /// Use histograms from the DBMS catalog in selectivity estimation; off
    /// reproduces the paper's histogram-less optimizer runs (Query 2).
    bool use_histograms = true;
    /// §3.3 semantic temporal selectivity (off = straightforward method).
    bool semantic_temporal_selectivity = true;
    /// Update cost factors from measured execution times (the "adaptable"
    /// feedback loop).
    bool adapt = true;
    double feedback_alpha = 0.3;
    /// §7 refinement: identical TRANSFER^M statements within one plan are
    /// issued once and shared.
    bool share_common_transfers = true;
    /// Memory each SORT^M may use before spilling runs to tmpfiles.
    size_t sort_memory_budget_bytes = 32 << 20;
    /// Degree of parallelism of the middleware execution engine: 1 runs the
    /// serial algorithms; above 1 SORT^M, TJOIN^M, and the T^M drain use
    /// their parallel variants on a `dop`-worker pool, and the Figure-6 cost
    /// formulas discount the parallelized CPU terms accordingly.
    size_t dop = 1;
    /// Fraction of each extra worker the cost model credits (parallel
    /// efficiency: skew, serial merge phases, pool overhead).
    double parallel_efficiency = 0.7;
  };

  explicit Middleware(dbms::Engine* engine) : Middleware(engine, Config()) {}
  Middleware(dbms::Engine* engine, Config config)
      : config_(config), connection_(engine, config.wire) {
    cost_model_.set_parallelism(config_.dop, config_.parallel_efficiency);
  }

  dbms::Connection& connection() { return connection_; }
  cost::CostModel& cost_model() { return cost_model_; }
  const Config& config() const { return config_; }

  /// Statistics Collector: pulls base-relation statistics from the DBMS
  /// catalog for the given tables (or re-pulls everything already known).
  Status CollectStatistics(const std::vector<std::string>& tables);

  /// Access to collected statistics (tests, benches).
  Result<stats::RelStats> TableStatistics(const std::string& table);

  /// A fully optimized query, ready to execute.
  struct Prepared {
    algebra::OpPtr initial_plan;
    optimizer::PhysPlanPtr plan;
    size_t num_classes = 0;
    size_t num_elements = 0;
    size_t num_physical = 0;
  };

  /// Parses, plans, and optimizes a temporal-SQL query.
  Result<Prepared> Prepare(const std::string& tsql_text);

  /// Optimizes an already-built initial logical plan (benches use this to
  /// study specific algebra shapes).
  Result<Prepared> PrepareLogical(const algebra::OpPtr& initial_plan);

  /// Result of executing a plan.
  struct Execution {
    Schema schema;
    std::vector<Tuple> rows;
    double elapsed_seconds = 0;
    exec::TimingSink timings;
    std::vector<std::string> sql_statements;
  };

  /// Compiles and executes a physical plan: runs the cursor tree, drops the
  /// temporary tables, and (when configured) feeds measured times back into
  /// the cost factors.
  Result<Execution> Execute(const optimizer::PhysPlanPtr& plan);

  /// Prepare + Execute in one call.
  Result<Execution> Query(const std::string& tsql_text);

  /// Human-readable explanation of a prepared query: the initial algebra,
  /// the chosen physical plan with estimated costs, and the SQL each
  /// TRANSFER^M would send — without executing anything.
  Result<std::string> Explain(const Prepared& prepared);

 private:
  /// Applies the performance feedback of one execution to the cost factors.
  void ApplyFeedback(const CompiledPlan& compiled,
                     const exec::TimingSink& timings);

  stats::RelStats StripHistograms(stats::RelStats rel) const;

  Config config_;
  dbms::Connection connection_;
  cost::CostModel cost_model_;
  std::map<std::string, stats::RelStats> table_stats_;
};

}  // namespace tango

#endif  // TANGO_TANGO_MIDDLEWARE_H_
