#ifndef TANGO_TANGO_MIDDLEWARE_H_
#define TANGO_TANGO_MIDDLEWARE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/feedback.h"
#include "adapt/plan_cache.h"
#include "common/cancel.h"
#include "common/retry.h"
#include "cost/cost_model.h"
#include "dbms/connection.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "stats/stats.h"
#include "tango/compiler.h"
#include "tsql/tsql.h"

namespace tango {

/// \brief TANGO: the temporal middleware (Figure 1).
///
/// Wires together the components of the paper's architecture: the temporal
/// SQL parser, the Statistics Collector, the Cost Estimator, the optimizer,
/// the Translator-To-SQL, and the Execution Engine — all talking to the
/// conventional DBMS through one connection.
class Middleware {
 public:
  struct Config {
    dbms::WireConfig wire;
    /// Use histograms from the DBMS catalog in selectivity estimation; off
    /// reproduces the paper's histogram-less optimizer runs (Query 2).
    bool use_histograms = true;
    /// §3.3 semantic temporal selectivity (off = straightforward method).
    bool semantic_temporal_selectivity = true;
    /// Update cost factors from measured execution times (the "adaptable"
    /// feedback loop).
    bool adapt = true;
    double feedback_alpha = 0.3;
    /// §7 refinement: identical TRANSFER^M statements within one plan are
    /// issued once and shared.
    bool share_common_transfers = true;
    /// Memory each SORT^M may use before spilling runs to tmpfiles.
    size_t sort_memory_budget_bytes = 32 << 20;
    /// Rows per RowBlock in the vectorized execution path; governs the
    /// prefetch drain's block granularity (operators size their internal
    /// blocks from their consumer's block, so this is the system-wide
    /// default the benches sweep).
    size_t batch_size = RowBlock::kDefaultCapacity;
    /// Degree of parallelism of the middleware execution engine: 1 runs the
    /// serial algorithms; above 1 SORT^M, TJOIN^M, and the T^M drain use
    /// their parallel variants on a `dop`-worker pool, and the Figure-6 cost
    /// formulas discount the parallelized CPU terms accordingly.
    size_t dop = 1;
    /// Fraction of each extra worker the cost model credits (parallel
    /// efficiency: skew, serial merge phases, pool overhead).
    double parallel_efficiency = 0.7;
    /// Retry discipline for transient wire/DBMS failures inside the
    /// transfer operators and the temp-table janitor.
    RetryPolicy retry;
    /// When a transfer exhausts its retry budget, re-plan the query with
    /// the failing transfer direction forbidden (degraded mode) instead of
    /// failing outright. Only Execute(Prepared)/Query can do this — they
    /// hold the logical plan needed for re-planning.
    bool degrade_on_failure = true;
    /// Drop orphaned TANGO_TMP_* tables (leaked by a crashed earlier run)
    /// when the middleware starts.
    bool sweep_orphans_on_start = true;
    /// Registry this middleware's metrics land in (wire, transfer, retry,
    /// janitor, query series). Null (default) = a private per-instance
    /// registry; pass obs::MetricsRegistry::Global() (or any shared
    /// registry) to aggregate across middleware instances. Not owned.
    obs::MetricsRegistry* metrics = nullptr;
    /// Adaptive plan management: the fingerprinted plan cache and the
    /// cardinality-feedback re-optimization loop (see DESIGN.md §10).
    adapt::PlanCacheConfig plan_cache;
  };

  explicit Middleware(dbms::Engine* engine) : Middleware(engine, Config()) {}
  Middleware(dbms::Engine* engine, Config config)
      : config_(config),
        owned_metrics_(config.metrics == nullptr
                           ? std::make_unique<obs::MetricsRegistry>()
                           : nullptr),
        metrics_(config.metrics != nullptr ? config.metrics
                                           : owned_metrics_.get()),
        connection_(engine, config.wire),
        recovery_(metrics_),
        plan_cache_(config.plan_cache, metrics_) {
    connection_.set_metrics(metrics_);
    cost_model_.set_parallelism(config_.dop, config_.parallel_efficiency);
    cost_model_.set_batch_size(config_.batch_size);
    // Best-effort: an unreachable DBMS at startup must not prevent the
    // middleware from coming up (the sweep reruns on the next start).
    if (config_.sweep_orphans_on_start) (void)SweepOrphanTempTables();
  }

  dbms::Connection& connection() { return connection_; }
  cost::CostModel& cost_model() { return cost_model_; }
  const Config& config() const { return config_; }
  /// How often the recovery machinery ran (retries, drops, leaks,
  /// downgrades); shared with the transfer operators and the janitor.
  const RecoveryCounters& recovery_counters() const { return recovery_; }

  /// The registry all of this middleware's metrics land in (per-instance by
  /// default; Config::metrics overrides).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// The fingerprinted plan cache (counters, invalidation — tests/benches).
  adapt::PlanCache& plan_cache() { return plan_cache_; }
  /// Observed per-node cardinalities recorded by instrumented executions.
  adapt::FeedbackStore& feedback_store() { return feedback_; }

  /// Attaches a span recorder: every subsequent execution records
  /// optimize/compile/execute spans, per-operator spans, transfer retries
  /// and pool/prefetch thread activity into it. Null detaches. Not owned;
  /// must outlive any execution started while attached.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Drops TANGO_TMP_* tables left behind by a previous run that died
  /// before its janitor could clean up, then asks the DBMS to reclaim WAL
  /// segments and snapshots superseded by the latest checkpoint (orphaned
  /// durable garbage after a crash). Returns the first drop failure
  /// (already-swept tables stay counted in recovery_counters).
  Status SweepOrphanTempTables();

  /// Statistics Collector: pulls base-relation statistics from the DBMS
  /// catalog for the given tables (or re-pulls everything already known).
  Status CollectStatistics(const std::vector<std::string>& tables);

  /// Write-churn staleness check: compares each table's live modification
  /// epoch (bumped by every INSERT/UPDATE/bulk load on the DBMS side)
  /// against the epoch its cached statistics were collected at. Only drifted
  /// tables are touched: they are re-ANALYZEd on the DBMS (unless
  /// `analyze_first` is false), re-collected, and their cached plans
  /// invalidated. Tables with no cached statistics are collected fresh.
  /// Returns the number of tables refreshed.
  Result<size_t> RefreshStatisticsIfStale(
      const std::vector<std::string>& tables, bool analyze_first = true);

  /// Access to collected statistics (tests, benches).
  Result<stats::RelStats> TableStatistics(const std::string& table);

  /// A fully optimized query, ready to execute.
  struct Prepared {
    algebra::OpPtr initial_plan;
    optimizer::PhysPlanPtr plan;
    size_t num_classes = 0;
    size_t num_elements = 0;
    size_t num_physical = 0;
    /// Where the plan came from: kUncached = cache disabled, kFresh =
    /// optimized and inserted, kCached = rebound from a cached entry,
    /// kReoptimized = the entry was stale (Q-error exceeded the bound) and
    /// was re-optimized with observed cardinalities injected.
    enum class Source { kUncached, kFresh, kCached, kReoptimized };
    Source source = Source::kUncached;
    /// Parameterized-query fingerprint (0 when the cache is disabled).
    uint64_t fingerprint = 0;
    /// The cache entry backing this plan; executions record cardinality
    /// feedback against it. Null when the cache is disabled.
    adapt::PlanCache::EntryPtr cache_entry;
  };

  /// Parses, plans, and optimizes a temporal-SQL query.
  Result<Prepared> Prepare(const std::string& tsql_text);

  /// Optimizes an already-built initial logical plan (benches use this to
  /// study specific algebra shapes). `restriction` confines processing to
  /// one site — used internally for degraded fallback plans.
  Result<Prepared> PrepareLogical(
      const algebra::OpPtr& initial_plan,
      optimizer::SiteRestriction restriction = optimizer::SiteRestriction::kNone);

  /// Result of executing a plan.
  struct Execution {
    Schema schema;
    std::vector<Tuple> rows;
    double elapsed_seconds = 0;
    exec::TimingSink timings;
    std::vector<std::string> sql_statements;
    /// True when the result came from a degraded (site-restricted) fallback
    /// plan after the chosen plan exhausted its retry budget.
    bool degraded = false;
    /// Non-OK when a temp table could not be dropped even with retries (the
    /// rows are still valid; the leak is also counted and the startup sweep
    /// will reclaim the table).
    Status cleanup_status;
  };

  /// Compiles and executes a physical plan: runs the cursor tree, drops the
  /// temporary tables (guaranteed — retried, in reverse creation order,
  /// even when execution failed), and (when configured) feeds measured
  /// times back into the cost factors. `control` carries the query's
  /// deadline/cancellation token.
  Result<Execution> Execute(const optimizer::PhysPlanPtr& plan,
                            const QueryControlPtr& control = nullptr);

  /// Like above, but can also degrade: when the plan fails with an
  /// exhausted transient error, the query is re-planned with the failing
  /// transfer direction forbidden (DBMS-only for T^M trouble, middleware-
  /// only for T^D trouble) and re-executed once; the downgrade is recorded
  /// in recovery_counters and Execution::degraded.
  Result<Execution> Execute(const Prepared& prepared,
                            const QueryControlPtr& control = nullptr);

  /// Prepare + Execute in one call (with degradation).
  Result<Execution> Query(const std::string& tsql_text,
                          const QueryControlPtr& control = nullptr);

  /// Human-readable explanation of a prepared query: the initial algebra,
  /// the chosen physical plan with estimated costs, and the SQL each
  /// TRANSFER^M would send — without executing anything.
  Result<std::string> Explain(const Prepared& prepared);

  /// EXPLAIN ANALYZE's data form: executes the prepared plan (no
  /// degradation — the report must describe the chosen plan) and returns
  /// the per-operator estimate-vs-actual observation tree.
  Result<obs::AnalyzeReport> Analyze(const Prepared& prepared,
                                     const QueryControlPtr& control = nullptr);

  /// EXPLAIN ANALYZE: executes the prepared plan and renders the
  /// per-operator tree — est vs actual rows, Q-error, estimated cost vs
  /// measured self/inclusive/worker time, site — plus query totals.
  Result<std::string> ExplainAnalyze(const Prepared& prepared,
                                     const QueryControlPtr& control = nullptr);

 private:
  /// One compile-and-run of a physical plan, with the janitor guarding its
  /// temp tables. No degradation (that is the Prepared overload's job).
  /// `report` (optional) receives the EXPLAIN ANALYZE observation tree;
  /// `provenance` (optional) identifies the cache entry and fingerprint the
  /// execution's observed cardinalities are recorded against.
  Result<Execution> ExecuteOnce(const optimizer::PhysPlanPtr& plan,
                                const QueryControlPtr& control,
                                obs::AnalyzeReport* report = nullptr,
                                const Prepared* provenance = nullptr);

  /// The optimization pipeline proper (what PrepareLogical was before the
  /// plan cache): memo + top-down physical planning, with `overrides`
  /// (observed cardinalities by memo group key) injected over the §3.3
  /// estimates when non-null.
  Result<Prepared> OptimizeLogical(const algebra::OpPtr& initial_plan,
                                   optimizer::SiteRestriction restriction,
                                   const std::map<uint64_t, double>* overrides);

  /// Records one execution's per-node estimate-vs-actual cardinalities
  /// against the provenance's fingerprint and marks the cache entry stale
  /// when the worst Q-error exceeds the configured bound.
  void RecordCardinalityFeedback(const CompiledPlan& compiled,
                                 const exec::TimingSink& timings,
                                 const Prepared& provenance);

  /// Cost factors in a fixed order, for the cache's drift detection.
  std::vector<double> FactorSnapshot() const;
  /// Plan-relevant configuration dimensions of the cache key.
  std::string PlanConfigKey(optimizer::SiteRestriction restriction) const;

  /// Applies the performance feedback of one execution to the cost factors.
  void ApplyFeedback(const CompiledPlan& compiled,
                     const exec::TimingSink& timings);

  stats::RelStats StripHistograms(stats::RelStats rel) const;

  Config config_;
  /// Owns the per-instance registry when Config::metrics is null; declared
  /// before every member that holds counters from it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  dbms::Connection connection_;
  cost::CostModel cost_model_;
  std::map<std::string, stats::RelStats> table_stats_;
  RecoveryCounters recovery_;
  adapt::PlanCache plan_cache_;
  adapt::FeedbackStore feedback_;
  obs::TraceRecorder* trace_ = nullptr;
  /// Per-execution sequence number: each execution's temp tables get a
  /// unique prefix, so names can never collide with tables leaked earlier.
  uint64_t exec_seq_ = 0;
};

}  // namespace tango

#endif  // TANGO_TANGO_MIDDLEWARE_H_
