#include "tango/compiler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "exec/basic.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/sort.h"
#include "exec/taggr.h"
#include "exec/transfer.h"
#include "sqlgen/translator.h"

namespace tango {

namespace {

using optimizer::Algorithm;
using optimizer::PhysPlan;

/// Collects the TRANSFER^D nodes inside a DBMS fragment (not descending
/// into their middleware subtrees).
void CollectTransferDs(const PhysPlan& node,
                       std::vector<const PhysPlan*>* out) {
  if (node.algorithm == Algorithm::kTransferD) {
    out->push_back(&node);
    return;
  }
  for (const auto& c : node.children) CollectTransferDs(*c, out);
}

Result<std::vector<size_t>> ResolveAll(const Schema& schema,
                                       const std::vector<std::string>& attrs) {
  std::vector<size_t> out;
  for (const std::string& a : attrs) {
    TANGO_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(a));
    out.push_back(idx);
  }
  return out;
}

}  // namespace

std::vector<std::string> PlanCompiler::TempTableColumns(const Schema& schema) {
  // Must stay consistent with sqlgen's alias generation so the SQL that
  // reads the temp table uses the right column names.
  std::vector<std::string> names;
  std::set<std::string> used;
  for (const Column& c : schema.columns()) {
    std::string base;
    for (char ch : c.name) {
      base += (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_')
                  ? ch
                  : '_';
    }
    if (base.empty() || std::isdigit(static_cast<unsigned char>(base[0]))) {
      base = "C_" + base;
    }
    std::string name = base;
    int k = 1;
    while (used.count(name) != 0) name = base + "_" + std::to_string(++k);
    used.insert(name);
    names.push_back(name);
  }
  return names;
}

CursorPtr PlanCompiler::Instrument(CursorPtr cursor, const PhysPlan& node,
                                   std::vector<size_t> child_ids,
                                   CompiledPlan* out, size_t* timing_id) {
  obs::SpanId span = obs::kNoSpan;
  if (trace_ != nullptr) {
    // The timing id this cursor is about to get (sink ids are sequential).
    const size_t next_id = out->timings->size();
    span = trace_->Allocate(optimizer::AlgorithmName(node.algorithm),
                            "operator", trace_parent_,
                            static_cast<int64_t>(next_id));
    // Compiled bottom-up: re-parent the children's spans (allocated against
    // the execute span) under this operator so spans mirror the plan tree.
    for (size_t child : child_ids) {
      if (child < span_of_timing_.size()) {
        trace_->SetParent(span_of_timing_[child], span);
      }
    }
  }
  auto instrumented = std::make_unique<exec::InstrumentedCursor>(
      std::move(cursor), optimizer::AlgorithmName(node.algorithm),
      out->timings.get(), std::move(child_ids));
  *timing_id = instrumented->id();
  if (span_of_timing_.size() <= *timing_id) {
    span_of_timing_.resize(*timing_id + 1, obs::kNoSpan);
  }
  span_of_timing_[*timing_id] = span;
  instrumented->set_trace(trace_, span);
  out->nodes.push_back({*timing_id, &node, /*sql=*/""});
  return instrumented;
}

exec::TransferObservability PlanCompiler::TransferHooks(
    obs::SpanId span) const {
  exec::TransferObservability hooks;
  if (metrics_ != nullptr) {
    hooks.rows_to_middleware = &metrics_->counter("transfer.rows_to_middleware");
    hooks.rows_to_dbms = &metrics_->counter("transfer.rows_to_dbms");
    hooks.cache_hits = &metrics_->counter("transfer_cache.hits");
    hooks.cache_misses = &metrics_->counter("transfer_cache.misses");
  }
  hooks.trace = trace_;
  hooks.span = span;
  return hooks;
}

Result<CompiledPlan> PlanCompiler::Compile(const optimizer::PhysPlanPtr& plan) {
  CompiledPlan out;
  out.timings = std::make_shared<exec::TimingSink>();
  out.transfer_cache = std::make_shared<exec::TransferCache>();
  span_of_timing_.clear();
  if (dop_ > 1) {
    // The pool's observability hooks must be installed at construction
    // (workers read them unlocked); pool.queue_depth must drain back to
    // zero by plan teardown, so it is registered leak-checked.
    out.pool = std::make_shared<common::ThreadPool>(
        dop_,
        metrics_ != nullptr
            ? &metrics_->gauge("pool.queue_depth", /*expect_zero_at_exit=*/true)
            : nullptr,
        trace_, trace_parent_);
  }
  size_t timing_id = 0;
  TANGO_ASSIGN_OR_RETURN(out.root, CompileNode(*plan, &out, &timing_id));
  out.root_timing_id = timing_id;
  // §7 refinement: a statement occurring more than once in the plan is
  // transferred once and served from the shared store afterwards.
  if (share_transfers_) {
    std::map<std::string, int> counts;
    for (const std::string& sql : out.sql_statements) counts[sql] += 1;
    for (const auto& [sql, n] : counts) {
      if (n > 1) out.transfer_cache->MarkShared(sql);
    }
  }
  return out;
}

Result<CursorPtr> PlanCompiler::CompileTransferM(const PhysPlan& node,
                                                 CompiledPlan* out,
                                                 size_t* timing_id) {
  const PhysPlan& fragment = *node.children[0];

  // Compile the middleware subtrees feeding the fragment's TRANSFER^D
  // leaves, assigning each a unique temp table.
  std::vector<const PhysPlan*> tds;
  CollectTransferDs(fragment, &tds);
  std::map<const PhysPlan*, std::string> td_tables;
  std::vector<CursorPtr> dependencies;
  std::vector<size_t> dep_ids;
  for (const PhysPlan* td : tds) {
    const std::string name = temp_prefix_ + std::to_string(++temp_counter_);
    td_tables[td] = name;
    out->temp_tables.push_back(name);
    size_t child_id = 0;
    TANGO_ASSIGN_OR_RETURN(CursorPtr child,
                           CompileNode(*td->children[0], out, &child_id));
    auto cursor = std::make_unique<exec::TransferDCursor>(
        conn_, name, TempTableColumns(td->op->schema), std::move(child),
        control_, retry_, counters_);
    exec::TransferDCursor* raw_td = cursor.get();
    size_t td_id = 0;
    dependencies.push_back(
        Instrument(std::move(cursor), *td, {child_id}, out, &td_id));
    raw_td->set_observability(TransferHooks(span_of_timing_[td_id]));
    dep_ids.push_back(td_id);
  }

  sqlgen::Translator translator(td_tables);
  TANGO_ASSIGN_OR_RETURN(sqlgen::RenderedSql rendered,
                         translator.Render(fragment));
  out->sql_statements.push_back(rendered.sql);

  auto cursor = std::make_unique<exec::TransferMCursor>(
      conn_, rendered.sql, node.op->schema, std::move(dependencies),
      out->transfer_cache, control_, retry_, counters_);
  exec::TransferMCursor* raw_tm = cursor.get();
  CursorPtr instrumented =
      Instrument(std::move(cursor), node, dep_ids, out, timing_id);
  raw_tm->set_observability(TransferHooks(span_of_timing_[*timing_id]));
  out->nodes.back().sql = rendered.sql;
  if (dop_ > 1) {
    // Parallel T^M drain: a prefetch thread decodes wire chunks ahead of
    // the consumer. The prefetch wrapper is transparent to the timing tree
    // (the TRANSFER^M entry keeps measuring the real transfer work, now on
    // the producer thread).
    auto prefetch = std::make_unique<exec::PrefetchCursor>(
        std::move(instrumented), batch_size_,
        /*max_batches=*/4, control_);
    // The producer span parents to the execute span (not the operator): the
    // producer thread outlives the operator's Init interval.
    prefetch->set_trace(trace_, trace_parent_);
    return CursorPtr(std::move(prefetch));
  }
  return instrumented;
}

Result<CursorPtr> PlanCompiler::CompileNode(const PhysPlan& node,
                                            CompiledPlan* out,
                                            size_t* timing_id) {
  if (node.algorithm == Algorithm::kTransferM) {
    return CompileTransferM(node, out, timing_id);
  }
  if (optimizer::IsDbmsAlgorithm(node.algorithm) ||
      node.algorithm == Algorithm::kTransferD) {
    return Status::Internal(
        std::string("DBMS algorithm outside a TRANSFER^M fragment: ") +
        optimizer::AlgorithmName(node.algorithm));
  }

  // Middleware algorithms: compile children first.
  std::vector<CursorPtr> children;
  std::vector<size_t> child_ids;
  for (const auto& c : node.children) {
    size_t id = 0;
    TANGO_ASSIGN_OR_RETURN(CursorPtr cursor, CompileNode(*c, out, &id));
    children.push_back(std::move(cursor));
    child_ids.push_back(id);
  }
  const Schema& child_schema =
      node.children.empty() ? node.op->schema : node.children[0]->op->schema;

  CursorPtr cursor;
  switch (node.algorithm) {
    case Algorithm::kFilterM: {
      TANGO_ASSIGN_OR_RETURN(ExprPtr pred,
                             Bind(node.op->predicate, child_schema));
      cursor = std::make_unique<exec::FilterCursor>(std::move(children[0]),
                                                    std::move(pred));
      break;
    }
    case Algorithm::kProjectM: {
      std::vector<ExprPtr> exprs;
      for (const algebra::ProjectItem& item : node.op->items) {
        TANGO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(item.expr, child_schema));
        exprs.push_back(std::move(bound));
      }
      cursor = std::make_unique<exec::ProjectCursor>(
          std::move(children[0]), std::move(exprs), node.op->schema);
      break;
    }
    case Algorithm::kSortM: {
      std::vector<SortKey> keys;
      for (const algebra::SortSpec& s : node.op->sort_keys) {
        TANGO_ASSIGN_OR_RETURN(size_t idx, child_schema.IndexOf(s.attr));
        keys.push_back({idx, s.ascending});
      }
      if (dop_ > 1) {
        cursor = std::make_unique<exec::ParallelSortCursor>(
            std::move(children[0]), std::move(keys), out->pool, sort_budget_,
            dop_);
      } else {
        cursor = std::make_unique<exec::SortCursor>(std::move(children[0]),
                                                    std::move(keys),
                                                    sort_budget_);
      }
      break;
    }
    case Algorithm::kMergeJoinM: {
      const Schema& ls = node.children[0]->op->schema;
      const Schema& rs = node.children[1]->op->schema;
      std::vector<size_t> lkeys, rkeys;
      for (const auto& [l, r] : node.op->join_attrs) {
        TANGO_ASSIGN_OR_RETURN(size_t li, ls.IndexOf(l));
        TANGO_ASSIGN_OR_RETURN(size_t ri, rs.IndexOf(r));
        lkeys.push_back(li);
        rkeys.push_back(ri);
      }
      cursor = std::make_unique<exec::MergeJoinCursor>(
          std::move(children[0]), std::move(children[1]), std::move(lkeys),
          std::move(rkeys));
      break;
    }
    case Algorithm::kTJoinM: {
      const Schema& ls = node.children[0]->op->schema;
      const Schema& rs = node.children[1]->op->schema;
      std::vector<size_t> lkeys, rkeys;
      for (const auto& [l, r] : node.op->join_attrs) {
        TANGO_ASSIGN_OR_RETURN(size_t li, ls.IndexOf(l));
        TANGO_ASSIGN_OR_RETURN(size_t ri, rs.IndexOf(r));
        lkeys.push_back(li);
        rkeys.push_back(ri);
      }
      TANGO_ASSIGN_OR_RETURN(size_t lt1, algebra::T1Index(ls));
      TANGO_ASSIGN_OR_RETURN(size_t lt2, algebra::T2Index(ls));
      TANGO_ASSIGN_OR_RETURN(size_t rt1, algebra::T1Index(rs));
      TANGO_ASSIGN_OR_RETURN(size_t rt2, algebra::T2Index(rs));
      std::vector<size_t> left_out, right_out;
      for (size_t i = 0; i < ls.num_columns(); ++i) {
        if (i != lt1 && i != lt2) left_out.push_back(i);
      }
      std::vector<size_t> excluded = {rt1, rt2};
      excluded.insert(excluded.end(), rkeys.begin(), rkeys.end());
      for (size_t i = 0; i < rs.num_columns(); ++i) {
        if (std::find(excluded.begin(), excluded.end(), i) == excluded.end()) {
          right_out.push_back(i);
        }
      }
      if (dop_ > 1) {
        cursor = std::make_unique<exec::ParallelTemporalJoinCursor>(
            std::move(children[0]), std::move(children[1]), std::move(lkeys),
            std::move(rkeys), lt1, lt2, rt1, rt2, std::move(left_out),
            std::move(right_out), node.op->schema, out->pool, dop_);
      } else {
        cursor = std::make_unique<exec::TemporalJoinCursor>(
            std::move(children[0]), std::move(children[1]), std::move(lkeys),
            std::move(rkeys), lt1, lt2, rt1, rt2, std::move(left_out),
            std::move(right_out), node.op->schema);
      }
      break;
    }
    case Algorithm::kTAggrM: {
      TANGO_ASSIGN_OR_RETURN(std::vector<size_t> group_cols,
                             ResolveAll(child_schema, node.op->group_by));
      TANGO_ASSIGN_OR_RETURN(size_t t1, algebra::T1Index(child_schema));
      TANGO_ASSIGN_OR_RETURN(size_t t2, algebra::T2Index(child_schema));
      std::vector<exec::TAggrSpec> specs;
      for (const algebra::AggItem& a : node.op->aggs) {
        exec::TAggrSpec spec;
        spec.func = a.func;
        spec.star = a.arg.empty();
        if (!spec.star) {
          TANGO_ASSIGN_OR_RETURN(spec.arg, child_schema.IndexOf(a.arg));
        }
        specs.push_back(spec);
      }
      cursor = std::make_unique<exec::TemporalAggregationCursor>(
          std::move(children[0]), std::move(group_cols), t1, t2,
          std::move(specs), node.op->schema);
      break;
    }
    case Algorithm::kDupElimM:
      cursor = std::make_unique<exec::DupElimCursor>(std::move(children[0]));
      break;
    case Algorithm::kCoalesceM: {
      TANGO_ASSIGN_OR_RETURN(size_t t1, algebra::T1Index(child_schema));
      TANGO_ASSIGN_OR_RETURN(size_t t2, algebra::T2Index(child_schema));
      cursor = std::make_unique<exec::CoalesceCursor>(std::move(children[0]),
                                                      t1, t2);
      break;
    }
    case Algorithm::kDiffM:
      cursor = std::make_unique<exec::DifferenceCursor>(std::move(children[0]),
                                                        std::move(children[1]));
      break;
    default:
      return Status::Internal(
          std::string("unexpected algorithm in middleware part: ") +
          optimizer::AlgorithmName(node.algorithm));
  }
  return Instrument(std::move(cursor), node, std::move(child_ids), out,
                    timing_id);
}

}  // namespace tango
