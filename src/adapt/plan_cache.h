#ifndef TANGO_ADAPT_PLAN_CACHE_H_
#define TANGO_ADAPT_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "obs/metrics.h"
#include "optimizer/phys.h"

namespace tango {
namespace adapt {

/// Middleware::Config::plan_cache knobs.
struct PlanCacheConfig {
  /// Master switch: off reproduces the pre-adaptive behavior (every Query
  /// re-optimizes from scratch).
  bool enable = true;
  /// Total cached plans across all shards; least-recently-used entries are
  /// evicted per shard.
  size_t capacity = 128;
  size_t shards = 4;
  /// A node whose estimate-vs-actual Q-error exceeds this bound marks its
  /// entry stale; the next lookup re-optimizes with observed cardinalities.
  double q_error_bound = 4.0;
  /// Maximum relative drift of any cost factor from the snapshot taken at
  /// optimization time before the entry is invalidated (the cached plan was
  /// chosen under prices that no longer hold).
  double cost_drift_threshold = 0.5;
};

/// The plan payload of one cache entry. Both plans are parameterized
/// (literal sites tagged with Expr::param_id) so a hit rebinds fresh
/// literals without re-optimizing.
struct CachedPlan {
  algebra::OpPtr initial_plan;
  optimizer::PhysPlanPtr plan;
  size_t num_classes = 0;
  size_t num_elements = 0;
  size_t num_physical = 0;
  /// Base relations the plan reads — invalidation targets.
  std::vector<std::string> tables;
  /// Cost factors at optimization time, for drift detection.
  std::vector<double> factor_snapshot;
};

/// Cache key: the query fingerprint plus every plan-relevant config
/// dimension (dop, histogram flags, SiteRestriction, ...). Degraded
/// fallback plans thus live under their restricted key only — a transient
/// outage cannot poison the primary entry.
struct PlanKey {
  uint64_t fingerprint = 0;
  /// Canonical form, kept as a hash-collision guard.
  std::string canon;
  /// Encoded plan-relevant configuration.
  std::string config_key;

  bool operator==(const PlanKey&) const = default;
};

/// \brief Thread-safe sharded LRU of optimized plans with hit/miss/
/// eviction/invalidation accounting, mirrored into a MetricsRegistry as the
/// plancache.* series when one is attached.
class PlanCache {
 public:
  /// One cached fingerprint. The payload swaps atomically under `Refresh`
  /// (re-optimization); execution and staleness bookkeeping are lock-free.
  class Entry {
   public:
    std::shared_ptr<const CachedPlan> plan() const {
      std::lock_guard<std::mutex> lock(mu_);
      return plan_;
    }

    /// Swaps in a re-optimized payload, clears staleness, and counts the
    /// re-optimization. Execution counters survive — EXPLAIN's
    /// "executions=N, reoptimized=K" provenance reads them.
    void Refresh(CachedPlan updated) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        plan_ = std::make_shared<const CachedPlan>(std::move(updated));
      }
      reoptimized.fetch_add(1, std::memory_order_relaxed);
      stale.store(false, std::memory_order_relaxed);
    }

    std::atomic<uint64_t> executions{0};
    std::atomic<uint64_t> reoptimized{0};
    /// Set when an execution's worst Q-error exceeded the bound; the next
    /// lookup re-optimizes instead of reusing the payload.
    std::atomic<bool> stale{false};

   private:
    friend class PlanCache;
    mutable std::mutex mu_;
    std::shared_ptr<const CachedPlan> plan_;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// `metrics` may be null (standalone/unit-test use); counters are then
  /// kept locally only.
  explicit PlanCache(const PlanCacheConfig& config,
                     obs::MetricsRegistry* metrics = nullptr);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry for `key`, or nullptr on a miss. An entry whose cost
  /// factors drifted past the threshold is invalidated and reported as a
  /// miss. A stale entry IS returned (counted as plancache.stale_hit) — the
  /// caller re-optimizes and Refreshes it in place.
  EntryPtr Lookup(const PlanKey& key,
                  const std::vector<double>& current_factors);

  /// Inserts (or replaces) the entry for `key`, evicting the shard's least
  /// recently used entry beyond capacity. Returns the inserted entry.
  EntryPtr Insert(const PlanKey& key, CachedPlan plan);

  /// Drops every entry reading one of `tables` (CollectStatistics / schema
  /// change ran — the stats the plans were costed under are gone).
  void InvalidateTables(const std::vector<std::string>& tables);

  /// Drops everything (tests; full statistics refresh).
  void Clear();

  size_t size() const;

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_hits = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };
  Counters counters() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most recently used at the front.
    std::list<std::pair<PlanKey, EntryPtr>> lru;
    std::map<std::string, std::list<std::pair<PlanKey, EntryPtr>>::iterator>
        index;
  };

  Shard& ShardOf(const PlanKey& key);
  static std::string IndexKey(const PlanKey& key);
  bool Drifted(const CachedPlan& plan,
               const std::vector<double>& current_factors) const;

  const PlanCacheConfig config_;
  const size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_hits_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};

  // Mirrored registry instruments (null when no registry is attached).
  obs::Counter* m_hit_ = nullptr;
  obs::Counter* m_miss_ = nullptr;
  obs::Counter* m_stale_hit_ = nullptr;
  obs::Counter* m_insert_ = nullptr;
  obs::Counter* m_eviction_ = nullptr;
  obs::Counter* m_invalidation_ = nullptr;
  obs::Gauge* m_entries_ = nullptr;
};

}  // namespace adapt
}  // namespace tango

#endif  // TANGO_ADAPT_PLAN_CACHE_H_
