#include "adapt/fingerprint.h"

#include <algorithm>
#include <functional>
#include <memory>

namespace tango {
namespace adapt {

namespace {

/// Typed placeholder for a literal: tagged sites render their parameter
/// slot (positionally stable within a fingerprint), untagged ones just the
/// type, so an int -> string change always changes the canon.
std::string LiteralCanon(const Expr& e) {
  char type = 'n';
  if (e.literal.is_int()) type = 'i';
  else if (e.literal.is_double()) type = 'd';
  else if (e.literal.is_string()) type = 's';
  std::string out = "?";
  if (e.param_id >= 0) out += std::to_string(e.param_id);
  out += ':';
  out += type;
  return out;
}

std::string ExprCanon(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kColumn: {
      std::string q = e.table.empty() ? e.name : e.table + "." + e.name;
      if (q.empty()) q = "$" + std::to_string(e.index);
      return q;
    }
    case Expr::Kind::kLiteral:
      return LiteralCanon(e);
    case Expr::Kind::kUnary: {
      const char* op = "NOT";
      switch (e.unary_op) {
        case UnaryOp::kNot: op = "NOT"; break;
        case UnaryOp::kNeg: op = "NEG"; break;
        case UnaryOp::kIsNull: op = "ISNULL"; break;
        case UnaryOp::kIsNotNull: op = "ISNOTNULL"; break;
      }
      return std::string(op) + "(" + ExprCanon(*e.children[0]) + ")";
    }
    case Expr::Kind::kBinary:
      return "(" + ExprCanon(*e.children[0]) + " " +
             BinaryOpName(e.binary_op) + " " + ExprCanon(*e.children[1]) + ")";
    case Expr::Kind::kFunction: {
      std::string out = e.function + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ",";
        out += ExprCanon(*e.children[i]);
      }
      return out + ")";
    }
    case Expr::Kind::kAggregate: {
      std::string out = AggFuncName(e.agg);
      out += "(";
      out += e.agg_star ? "*" : ExprCanon(*e.children[0]);
      return out + ")";
    }
  }
  return "?";
}

/// Canon of one node's own parameters — Describe() with expressions
/// literal-lifted and, for scans, the catalog schema signature embedded so
/// a schema change is a new fingerprint (invalidation for free).
std::string NodeCanon(const algebra::Op& op) {
  std::string out = algebra::OpKindName(op.kind);
  switch (op.kind) {
    case algebra::OpKind::kScan: {
      out += " " + op.table;
      if (op.alias != op.table) out += " AS " + op.alias;
      out += " {";
      for (size_t i = 0; i < op.schema.num_columns(); ++i) {
        if (i > 0) out += ",";
        const Column& c = op.schema.column(i);
        out += c.name;
        out += ':';
        out += DataTypeName(c.type);
      }
      out += "}";
      break;
    }
    case algebra::OpKind::kSelect:
      out += " [" + ExprCanon(*op.predicate) + "]";
      break;
    case algebra::OpKind::kProject: {
      out += " [";
      for (size_t i = 0; i < op.items.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprCanon(*op.items[i].expr) + " AS " + op.items[i].name;
      }
      out += "]";
      break;
    }
    case algebra::OpKind::kSort: {
      out += " [";
      for (size_t i = 0; i < op.sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += op.sort_keys[i].attr;
        if (!op.sort_keys[i].ascending) out += " DESC";
      }
      out += "]";
      break;
    }
    case algebra::OpKind::kJoin:
    case algebra::OpKind::kTJoin: {
      out += " [";
      for (size_t i = 0; i < op.join_attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += op.join_attrs[i].first + "=" + op.join_attrs[i].second;
      }
      out += "]";
      break;
    }
    case algebra::OpKind::kTAggregate: {
      out += " [";
      for (size_t i = 0; i < op.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += op.group_by[i];
      }
      out += "; ";
      for (size_t i = 0; i < op.aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += AggFuncName(op.aggs[i].func);
        out += "(" + (op.aggs[i].arg.empty() ? "*" : op.aggs[i].arg) + ")";
        out += " AS " + op.aggs[i].name;
      }
      out += "]";
      break;
    }
    default:
      break;  // transfers / dupelim / coalesce / difference / product: kind only
  }
  return out;
}

std::string PlanCanon(const algebra::Op& op) {
  std::string out = NodeCanon(op);
  out += "(";
  for (size_t i = 0; i < op.children.size(); ++i) {
    if (i > 0) out += ",";
    out += PlanCanon(*op.children[i]);
  }
  out += ")";
  return out;
}

ExprPtr TagExpr(const ExprPtr& e, std::vector<Value>* params) {
  auto out = std::make_shared<Expr>(*e);
  if (e->kind == Expr::Kind::kLiteral) {
    out->param_id = static_cast<int>(params->size());
    params->push_back(e->literal);
    return out;
  }
  out->children.clear();
  for (const ExprPtr& c : e->children) {
    out->children.push_back(TagExpr(c, params));
  }
  return out;
}

algebra::OpPtr TagOp(const algebra::OpPtr& op, std::vector<Value>* params) {
  auto out = std::make_shared<algebra::Op>(*op);
  if (out->predicate != nullptr) out->predicate = TagExpr(out->predicate, params);
  for (algebra::ProjectItem& item : out->items) {
    item.expr = TagExpr(item.expr, params);
  }
  out->children.clear();
  for (const algebra::OpPtr& c : op->children) {
    out->children.push_back(TagOp(c, params));
  }
  return out;
}

ExprPtr SubstituteExpr(const ExprPtr& e, const std::vector<Value>& params) {
  if (e->kind == Expr::Kind::kLiteral) {
    if (e->param_id < 0 ||
        static_cast<size_t>(e->param_id) >= params.size()) {
      return e;
    }
    auto out = std::make_shared<Expr>(*e);
    out->literal = params[static_cast<size_t>(e->param_id)];
    return out;
  }
  auto out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const ExprPtr& c : e->children) {
    out->children.push_back(SubstituteExpr(c, params));
  }
  return out;
}

/// Copies one operator substituting its own expressions only (children are
/// handled by the caller — the logical walk recurses, the physical walk
/// leaves the memo's placeholder children untouched).
std::shared_ptr<algebra::Op> SubstituteOpParams(const algebra::Op& op,
                                                const std::vector<Value>& params) {
  auto out = std::make_shared<algebra::Op>(op);
  if (out->predicate != nullptr) {
    out->predicate = SubstituteExpr(out->predicate, params);
  }
  for (algebra::ProjectItem& item : out->items) {
    item.expr = SubstituteExpr(item.expr, params);
  }
  return out;
}

}  // namespace

uint64_t Fingerprint64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;  // FNV prime
  }
  return h == 0 ? 1 : h;
}

ParameterizedQuery ParameterizeQuery(const algebra::OpPtr& plan) {
  ParameterizedQuery out;
  if (plan == nullptr) return out;
  out.plan = TagOp(plan, &out.params);
  out.canon = PlanCanon(*out.plan);
  out.hash = Fingerprint64(out.canon);
  return out;
}

algebra::OpPtr BindLogicalParams(const algebra::OpPtr& plan,
                                 const std::vector<Value>& params) {
  if (plan == nullptr) return plan;
  auto out = SubstituteOpParams(*plan, params);
  out->children.clear();
  for (const algebra::OpPtr& c : plan->children) {
    out->children.push_back(BindLogicalParams(c, params));
  }
  return out;
}

optimizer::PhysPlanPtr BindPhysParams(const optimizer::PhysPlanPtr& plan,
                                      const std::vector<Value>& params) {
  if (plan == nullptr) return plan;
  auto out = std::make_shared<optimizer::PhysPlan>(*plan);
  if (out->op != nullptr) {
    auto op = SubstituteOpParams(*out->op, params);
    op->children = out->op->children;  // placeholders carry no literals
    out->op = op;
  }
  out->children.clear();
  for (const optimizer::PhysPlanPtr& c : plan->children) {
    out->children.push_back(BindPhysParams(c, params));
  }
  return out;
}

uint64_t NodeKey(const algebra::Op& op,
                 const std::vector<uint64_t>& child_keys) {
  std::string s = NodeCanon(op);
  for (const uint64_t k : child_keys) {
    s += "|" + std::to_string(k);
  }
  return Fingerprint64(s);
}

std::vector<std::string> ReferencedTables(const algebra::OpPtr& plan) {
  std::vector<std::string> out;
  std::function<void(const algebra::Op&)> walk = [&](const algebra::Op& op) {
    if (op.kind == algebra::OpKind::kScan) out.push_back(ToUpper(op.table));
    for (const algebra::OpPtr& c : op.children) walk(*c);
  };
  if (plan != nullptr) walk(*plan);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace adapt
}  // namespace tango
