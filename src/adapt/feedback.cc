#include "adapt/feedback.h"

#include "obs/explain.h"

namespace tango {
namespace adapt {

double FeedbackStore::Record(uint64_t fingerprint,
                             const std::vector<Observation>& observations) {
  double worst = 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint64_t, double>& per_node = observed_[fingerprint];
  for (const Observation& o : observations) {
    if (o.node_key == 0) continue;
    per_node[o.node_key] = static_cast<double>(o.act_rows);
    const double q = obs::QError(o.est_rows, static_cast<double>(o.act_rows));
    if (q > worst) worst = q;
  }
  return worst;
}

std::map<uint64_t, double> FeedbackStore::OverridesFor(
    uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = observed_.find(fingerprint);
  if (it == observed_.end()) return {};
  return it->second;
}

void FeedbackStore::Forget(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  observed_.erase(fingerprint);
}

size_t FeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_.size();
}

}  // namespace adapt
}  // namespace tango
