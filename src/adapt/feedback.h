#ifndef TANGO_ADAPT_FEEDBACK_H_
#define TANGO_ADAPT_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace tango {
namespace adapt {

/// One plan node's estimate-vs-actual cardinality from an instrumented
/// execution. `node_key` is the memo group key (optimizer::PhysPlan::
/// feedback_key) — stable across re-optimizations and literal variants of
/// the same fingerprint, which is exactly what lets an observation recorded
/// under one plan shape steer the next optimization of the query.
struct Observation {
  uint64_t node_key = 0;
  double est_rows = 0;
  uint64_t act_rows = 0;
};

/// \brief Per-fingerprint store of observed cardinalities (the feedback half
/// of the adaptive loop; the plan cache holds the plans).
///
/// Thread-safe: pool workers finishing concurrent queries may record while
/// a re-optimization reads overrides.
class FeedbackStore {
 public:
  /// Records one execution's observations (last write wins per node) and
  /// returns the worst Q-error among them (1.0 when empty).
  double Record(uint64_t fingerprint,
                const std::vector<Observation>& observations);

  /// Observed cardinalities for a fingerprint, keyed by memo group key —
  /// injected over the §3.3 estimates on re-optimization. Empty when the
  /// fingerprint has never executed.
  std::map<uint64_t, double> OverridesFor(uint64_t fingerprint) const;

  /// Drops a fingerprint's observations (statistics were re-collected; the
  /// estimates may be right now).
  void Forget(uint64_t fingerprint);

  /// Number of fingerprints with recorded observations.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::map<uint64_t, double>> observed_;
};

}  // namespace adapt
}  // namespace tango

#endif  // TANGO_ADAPT_FEEDBACK_H_
