#include "adapt/plan_cache.h"

#include <algorithm>
#include <cmath>

namespace tango {
namespace adapt {

PlanCache::PlanCache(const PlanCacheConfig& config,
                     obs::MetricsRegistry* metrics)
    : config_(config),
      per_shard_capacity_(std::max<size_t>(
          1, (std::max<size_t>(1, config.capacity) +
              std::max<size_t>(1, config.shards) - 1) /
                 std::max<size_t>(1, config.shards))) {
  const size_t n = std::max<size_t>(1, config.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  if (metrics != nullptr) {
    m_hit_ = &metrics->counter("plancache.hit");
    m_miss_ = &metrics->counter("plancache.miss");
    m_stale_hit_ = &metrics->counter("plancache.stale_hit");
    m_insert_ = &metrics->counter("plancache.insert");
    m_eviction_ = &metrics->counter("plancache.eviction");
    m_invalidation_ = &metrics->counter("plancache.invalidation");
    m_entries_ = &metrics->gauge("plancache.entries");
  }
}

PlanCache::Shard& PlanCache::ShardOf(const PlanKey& key) {
  // Splash the fingerprint so nearby hashes land on different shards.
  const uint64_t h = key.fingerprint * 0x9e3779b97f4a7c15ull;
  return *shards_[(h >> 32) % shards_.size()];
}

std::string PlanCache::IndexKey(const PlanKey& key) {
  return std::to_string(key.fingerprint) + "|" + key.config_key + "|" +
         key.canon;
}

bool PlanCache::Drifted(const CachedPlan& plan,
                        const std::vector<double>& current_factors) const {
  if (plan.factor_snapshot.size() != current_factors.size()) {
    return !plan.factor_snapshot.empty() || !current_factors.empty();
  }
  for (size_t i = 0; i < current_factors.size(); ++i) {
    const double old_f = plan.factor_snapshot[i];
    const double denom = std::max(std::abs(old_f), 1e-12);
    if (std::abs(current_factors[i] - old_f) / denom >
        config_.cost_drift_threshold) {
      return true;
    }
  }
  return false;
}

PlanCache::EntryPtr PlanCache::Lookup(
    const PlanKey& key, const std::vector<double>& current_factors) {
  Shard& shard = ShardOf(key);
  const std::string ik = IndexKey(key);
  EntryPtr entry;
  bool drifted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(ik);
    if (it != shard.index.end()) {
      entry = it->second->second;
      const auto plan = entry->plan();
      if (plan != nullptr && Drifted(*plan, current_factors)) {
        shard.lru.erase(it->second);
        shard.index.erase(it);
        drifted = true;
        entry = nullptr;
      } else {
        // Touch: move to the front of the shard's LRU list.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      }
    }
  }
  if (drifted) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (m_invalidation_ != nullptr) m_invalidation_->Increment();
    if (m_entries_ != nullptr) m_entries_->Decrement();
  }
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (m_miss_ != nullptr) m_miss_->Increment();
    return nullptr;
  }
  if (entry->stale.load(std::memory_order_relaxed)) {
    stale_hits_.fetch_add(1, std::memory_order_relaxed);
    if (m_stale_hit_ != nullptr) m_stale_hit_->Increment();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (m_hit_ != nullptr) m_hit_->Increment();
  }
  return entry;
}

PlanCache::EntryPtr PlanCache::Insert(const PlanKey& key, CachedPlan plan) {
  Shard& shard = ShardOf(key);
  const std::string ik = IndexKey(key);
  auto entry = std::make_shared<Entry>();
  entry->plan_ = std::make_shared<const CachedPlan>(std::move(plan));
  size_t evicted = 0;
  bool replaced = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(ik);
    if (it != shard.index.end()) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      replaced = true;
    }
    shard.lru.emplace_front(key, entry);
    shard.index[ik] = shard.lru.begin();
    while (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(IndexKey(shard.lru.back().first));
      shard.lru.pop_back();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (m_insert_ != nullptr) m_insert_->Increment();
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (m_eviction_ != nullptr) m_eviction_->Increment(evicted);
  }
  const int64_t delta = 1 - static_cast<int64_t>(replaced ? 1 : 0) -
                        static_cast<int64_t>(evicted);
  if (m_entries_ != nullptr && delta != 0) m_entries_->Increment(delta);
  return entry;
}

void PlanCache::InvalidateTables(const std::vector<std::string>& tables) {
  if (tables.empty()) return;
  std::vector<std::string> upper;
  upper.reserve(tables.size());
  for (const std::string& t : tables) upper.push_back(ToUpper(t));
  size_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      const auto plan = it->second->plan();
      const bool reads_one =
          plan != nullptr &&
          std::any_of(upper.begin(), upper.end(), [&](const std::string& t) {
            return std::find(plan->tables.begin(), plan->tables.end(), t) !=
                   plan->tables.end();
          });
      if (reads_one) {
        shard->index.erase(IndexKey(it->first));
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    if (m_invalidation_ != nullptr) m_invalidation_->Increment(dropped);
    if (m_entries_ != nullptr) {
      m_entries_->Decrement(static_cast<int64_t>(dropped));
    }
  }
}

void PlanCache::Clear() {
  size_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    if (m_invalidation_ != nullptr) m_invalidation_->Increment(dropped);
    if (m_entries_ != nullptr) {
      m_entries_->Decrement(static_cast<int64_t>(dropped));
    }
  }
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

PlanCache::Counters PlanCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.invalidations = invalidations_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace adapt
}  // namespace tango
