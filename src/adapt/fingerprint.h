#ifndef TANGO_ADAPT_FINGERPRINT_H_
#define TANGO_ADAPT_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "optimizer/phys.h"

namespace tango {
namespace adapt {

/// \brief A query canonicalized for the plan cache: literals lifted into an
/// ordered parameter vector so `WHERE Amount > 1200` and `... > 1300` share
/// one fingerprint.
///
/// `plan` is a tagged copy of the input: every literal site carries its
/// parameter slot in Expr::param_id while keeping the original value in
/// place, so the first optimization of a fingerprint still sees real
/// selectivities and the physical plan it produces stays rebindable
/// (BindPhysParams) for later parameter sets.
struct ParameterizedQuery {
  algebra::OpPtr plan;
  std::vector<Value> params;
  /// Stable FNV-1a hash of `canon` (never 0 for a non-null plan).
  uint64_t hash = 0;
  /// The canonical parameterized form; cache keys carry it verbatim as a
  /// collision guard, and scans embed their schema signature so a schema
  /// change yields a new fingerprint.
  std::string canon;
};

/// Canonicalizes `plan` (literals -> ordered typed placeholders, stable
/// 64-bit hash). Traversal is preorder: a node's own expressions (predicate,
/// then projection items) before its children, left to right — the same
/// order BindLogicalParams/BindPhysParams substitute in.
ParameterizedQuery ParameterizeQuery(const algebra::OpPtr& plan);

/// Deep-copies a parameterized logical plan substituting `params` at the
/// tagged literal sites. Schemas are preserved: placeholders are typed, so a
/// type change produces a different fingerprint, never a rebind.
algebra::OpPtr BindLogicalParams(const algebra::OpPtr& plan,
                                 const std::vector<Value>& params);

/// Like BindLogicalParams for a cached physical plan: copies the node spine
/// and each node's parameter-carrying operator, substituting `params` into
/// predicates and projection items. Structure, sites, orders, and cost
/// estimates are untouched.
optimizer::PhysPlanPtr BindPhysParams(const optimizer::PhysPlanPtr& plan,
                                      const std::vector<Value>& params);

/// Stable key of one memo node: hash of the node's literal-lifted canon
/// combined with its child group keys. Cardinality feedback is recorded and
/// re-injected under these keys, so they must not depend on literal values
/// (tagged literals render as their parameter slot, which is positionally
/// stable across executions of the same fingerprint). Never returns 0 — 0
/// means "no key" downstream.
uint64_t NodeKey(const algebra::Op& op, const std::vector<uint64_t>& child_keys);

/// Base relations referenced by a plan (uppercased, deduplicated) — the
/// plan cache invalidates by these on CollectStatistics/schema change.
std::vector<std::string> ReferencedTables(const algebra::OpPtr& plan);

/// FNV-1a over a string (exposed for tests).
uint64_t Fingerprint64(const std::string& s);

}  // namespace adapt
}  // namespace tango

#endif  // TANGO_ADAPT_FINGERPRINT_H_
