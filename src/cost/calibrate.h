#ifndef TANGO_COST_CALIBRATE_H_
#define TANGO_COST_CALIBRATE_H_

#include <cstdint>
#include <string>

#include "cost/cost_model.h"
#include "dbms/connection.h"

namespace tango {
namespace cost {

/// What calibration measured (for reports and tests).
struct CalibrationReport {
  CostFactors before;
  CostFactors after;
  double probe_seconds = 0;

  std::string ToString() const;
};

/// \brief The Cost Estimator component (Figure 1): determines the cost
/// factors by running sample queries, following Du et al.'s calibration
/// approach (§5.1) — but, as the paper notes, without assuming knowledge of
/// the specific algorithms the DBMS uses.
///
/// Creates temporary probe relations in the DBMS, runs each middleware
/// algorithm and each "generic" DBMS operation on probes of two sizes, and
/// fits the per-byte factors (two-point fits where a formula has two terms).
/// All probe tables are dropped afterwards.
class Calibrator {
 public:
  struct Options {
    size_t probe_rows = 16384;
    uint64_t seed = 99;
  };

  Calibrator(dbms::Connection* conn, Options options)
      : conn_(conn), options_(options) {}
  explicit Calibrator(dbms::Connection* conn)
      : Calibrator(conn, Options()) {}

  /// Runs the probes and updates `model`'s factors in place.
  Result<CalibrationReport> Calibrate(CostModel* model);

 private:
  Status SetUpProbes();
  void TearDownProbes();

  dbms::Connection* conn_;
  Options options_;
};

}  // namespace cost
}  // namespace tango

#endif  // TANGO_COST_CALIBRATE_H_
