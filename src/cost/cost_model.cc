#include "cost/cost_model.h"

#include <cmath>
#include <cstdio>

namespace tango {
namespace cost {

std::string CostFactors::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "p_tm=%.4g p_td=%.4g p_tmblk=%.4g p_tdblk=%.4g p_sem=%.4g "
                "p_taggm1=%.4g p_taggm2=%.4g "
                "p_taggd1=%.4g p_taggd2=%.4g p_sortm=%.4g p_sortd=%.4g "
                "p_mjm=%.4g p_tjm=%.4g p_scand=%.4g p_joind=%.4g p_stmt=%.4g",
                tm, td, tmblk, tdblk, sem, taggm1, taggm2, taggd1, taggd2,
                sortm, sortd, mjm, tjm, scand, joind, stmt);
  return buf;
}

double CostModel::PredicateCoefficient(const ExprPtr& predicate) {
  if (predicate == nullptr) return 0;
  double n = 0;
  if (predicate->kind == Expr::Kind::kBinary) {
    switch (predicate->binary_op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        return PredicateCoefficient(predicate->children[0]) +
               PredicateCoefficient(predicate->children[1]);
      default:
        return 1;
    }
  }
  for (const ExprPtr& c : predicate->children) n += PredicateCoefficient(c);
  return n < 1 ? 1 : n;
}

void CostModel::Feedback(double* factor, double observed_us, double size,
                         double alpha) {
  if (size <= 0 || observed_us <= 0) return;
  const double observed_factor = observed_us / size;
  *factor = (1 - alpha) * *factor + alpha * observed_factor;
}

}  // namespace cost
}  // namespace tango
