#include "cost/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/rng.h"
#include "exec/basic.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "exec/taggr.h"

namespace tango {
namespace cost {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Wall-clock microseconds of draining a cursor.
Result<double> TimeCursor(Cursor* cursor, size_t* rows_out = nullptr) {
  const auto start = Clock::now();
  TANGO_RETURN_IF_ERROR(cursor->Init());
  Tuple t;
  size_t rows = 0;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, cursor->Next(&t));
    if (!more) break;
    ++rows;
  }
  if (rows_out != nullptr) *rows_out = rows;
  return SecondsSince(start) * 1e6;
}

/// Total encoded bytes of a rowset (the size(r) the formulas weigh).
double RowBytes(const std::vector<Tuple>& rows) {
  double bytes = 0;
  for (const Tuple& t : rows) bytes += static_cast<double>(TupleByteSize(t));
  return bytes;
}

/// Solves t = p * s for one factor from two probes by least squares through
/// the origin; keeps the old factor if the probes were degenerate.
void FitOne(double* factor, double t1, double s1, double t2, double s2) {
  const double denom = s1 * s1 + s2 * s2;
  if (denom <= 0) return;
  const double p = (t1 * s1 + t2 * s2) / denom;
  if (p > 0 && std::isfinite(p)) *factor = p;
}

/// Solves t_i = a*in_i + b*out_i from two probes (2x2 linear system).
void FitTwo(double* a, double* b, double t1, double in1, double out1,
            double t2, double in2, double out2) {
  const double det = in1 * out2 - in2 * out1;
  if (std::abs(det) < 1e-9) {
    // Degenerate: attribute everything to the input term.
    FitOne(a, t1, in1, t2, in2);
    return;
  }
  const double na = (t1 * out2 - t2 * out1) / det;
  const double nb = (in1 * t2 - in2 * t1) / det;
  if (na > 0 && std::isfinite(na)) *a = na;
  if (nb > 0 && std::isfinite(nb)) *b = nb;
}

Schema ProbeSchema() {
  return Schema({{"", "ID", DataType::kInt},
                 {"", "K", DataType::kInt},
                 {"", "PAD", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

std::vector<Tuple> ProbeRows(size_t n, uint64_t seed, int64_t distinct_k) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, 5000);
    rows.push_back({Value(static_cast<int64_t>(i)),
                    Value(rng.Uniform(0, distinct_k - 1)),
                    Value(rng.Identifier(16)), Value(t1),
                    Value(t1 + rng.Uniform(1, 200))});
  }
  return rows;
}

std::vector<Tuple> SortedBy(std::vector<Tuple> rows,
                            std::vector<SortKey> keys) {
  TupleComparator cmp(std::move(keys));
  std::stable_sort(rows.begin(), rows.end(), cmp);
  return rows;
}

}  // namespace

std::string CalibrationReport::ToString() const {
  return "calibration (" + std::to_string(probe_seconds) + "s)\n  before: " +
         before.ToString() + "\n  after:  " + after.ToString();
}

Status Calibrator::SetUpProbes() {
  TANGO_RETURN_IF_ERROR(
      conn_->Execute("CREATE TABLE CALIB_PROBE (ID INT, K INT, "
                     "PAD VARCHAR(16), T1 INT, T2 INT)")
          .status());
  TANGO_RETURN_IF_ERROR(conn_->BulkLoad(
      "CALIB_PROBE", ProbeRows(options_.probe_rows, options_.seed, 64)));
  return conn_->Execute("ANALYZE CALIB_PROBE").status();
}

void Calibrator::TearDownProbes() {
  (void)conn_->Execute("DROP TABLE CALIB_PROBE");
}

Result<CalibrationReport> Calibrator::Calibrate(CostModel* model) {
  CalibrationReport report;
  report.before = model->factors();
  const auto start = Clock::now();

  TANGO_RETURN_IF_ERROR(SetUpProbes());
  CostFactors& f = model->factors();
  const size_t n = options_.probe_rows;

  // ---- TRANSFER^M: fetch full and half probes, fit per-byte factor. ----
  {
    double t[2], s[2];
    const char* queries[2] = {
        "SELECT ID, K, PAD, T1, T2 FROM CALIB_PROBE",
        "SELECT ID, K, PAD, T1, T2 FROM CALIB_PROBE WHERE ID < %HALF%"};
    for (int i = 0; i < 2; ++i) {
      std::string sql = queries[i];
      const size_t pos = sql.find("%HALF%");
      if (pos != std::string::npos) {
        sql.replace(pos, 6, std::to_string(n / 2));
      }
      const uint64_t bytes_before = conn_->counters().bytes_to_client;
      TANGO_ASSIGN_OR_RETURN(CursorPtr cur, conn_->ExecuteQuery(sql));
      TANGO_ASSIGN_OR_RETURN(t[i], TimeCursor(cur.get()));
      s[i] = static_cast<double>(conn_->counters().bytes_to_client -
                                 bytes_before);
      t[i] = std::max(0.0, t[i] - f.stmt);
    }
    FitOne(&f.tm, t[0], s[0], t[1], s[1]);
  }

  // Local probe data for the middleware algorithms (no wire involved).
  std::vector<Tuple> full = ProbeRows(n, options_.seed + 1, 64);
  std::vector<Tuple> half(full.begin(), full.begin() + n / 2);
  const double full_bytes = RowBytes(full);
  const double half_bytes = RowBytes(half);

  // ---- TRANSFER^D: create + bulk load two sizes. ----
  {
    double t[2];
    const double s[2] = {full_bytes, half_bytes};
    const std::vector<Tuple>* data[2] = {&full, &half};
    for (int i = 0; i < 2; ++i) {
      TANGO_RETURN_IF_ERROR(
          conn_->Execute("CREATE TABLE CALIB_TD (ID INT, K INT, "
                         "PAD VARCHAR(16), T1 INT, T2 INT)")
              .status());
      const auto t0 = Clock::now();
      TANGO_RETURN_IF_ERROR(conn_->BulkLoad("CALIB_TD", *data[i]));
      t[i] = std::max(0.0, SecondsSince(t0) * 1e6 - f.stmt);
      TANGO_RETURN_IF_ERROR(conn_->Execute("DROP TABLE CALIB_TD").status());
    }
    FitOne(&f.td, t[0], s[0], t[1], s[1]);
  }

  // ---- SORT^M (per byte per log2 n). ----
  {
    double t[2], s[2];
    const std::vector<Tuple>* data[2] = {&full, &half};
    const double bytes[2] = {full_bytes, half_bytes};
    for (int i = 0; i < 2; ++i) {
      exec::SortCursor sort(
          std::make_unique<VectorCursor>(ProbeSchema(), *data[i]),
          {{1, true}, {3, true}});
      TANGO_ASSIGN_OR_RETURN(t[i], TimeCursor(&sort));
      s[i] = bytes[i] * std::log2(static_cast<double>(data[i]->size()));
    }
    FitOne(&f.sortm, t[0], s[0], t[1], s[1]);
  }

  // ---- FILTER^M (per byte, one comparison). ----
  {
    auto pred = Bind(Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("ID"),
                                  Expr::Int(static_cast<int64_t>(n / 2))),
                     ProbeSchema())
                    .ValueOrDie();
    double t[2], s[2] = {full_bytes, half_bytes};
    const std::vector<Tuple>* data[2] = {&full, &half};
    for (int i = 0; i < 2; ++i) {
      exec::FilterCursor filter(
          std::make_unique<VectorCursor>(ProbeSchema(), *data[i]), pred);
      TANGO_ASSIGN_OR_RETURN(t[i], TimeCursor(&filter));
    }
    FitOne(&f.sem, t[0], s[0], t[1], s[1]);
  }

  // ---- TAGGR^M: two group cardinalities give two output sizes. ----
  {
    Schema out({{"", "K", DataType::kInt},
                {"", "T1", DataType::kInt},
                {"", "T2", DataType::kInt},
                {"", "C", DataType::kInt}});
    double t[2], in_b[2], out_b[2];
    const int64_t distinct[2] = {16, 512};
    for (int i = 0; i < 2; ++i) {
      auto rows = SortedBy(ProbeRows(n, options_.seed + 2, distinct[i]),
                           {{1, true}, {3, true}});
      in_b[i] = RowBytes(rows);
      exec::TemporalAggregationCursor agg(
          std::make_unique<VectorCursor>(ProbeSchema(), rows), {1}, 3, 4,
          {{AggFunc::kCount, 0, false}}, out);
      size_t out_rows = 0;
      TANGO_ASSIGN_OR_RETURN(t[i], TimeCursor(&agg, &out_rows));
      out_b[i] = static_cast<double>(out_rows) * 40.0;
    }
    FitTwo(&f.taggm1, &f.taggm2, t[0], in_b[0], out_b[0], t[1], in_b[1],
           out_b[1]);
  }

  // ---- MERGEJOIN^M and TJOIN^M: two key cardinalities give two output
  // sizes, so both the per-input and per-output factors can be fitted. ----
  {
    Schema tout({{"", "ID", DataType::kInt},
                 {"", "K", DataType::kInt},
                 {"", "PAD", DataType::kString},
                 {"", "ID_2", DataType::kInt},
                 {"", "PAD_2", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
    double tm[2], tt[2], in_b[2], mout_b[2], tout_b[2];
    const int64_t distinct[2] = {1024, 128};
    const size_t probe_n = n / 4;
    for (int i = 0; i < 2; ++i) {
      auto left = SortedBy(ProbeRows(probe_n, options_.seed + 4, distinct[i]),
                           {{1, true}});
      auto right = SortedBy(
          ProbeRows(probe_n / 2, options_.seed + 5, distinct[i]), {{1, true}});
      in_b[i] = RowBytes(left) + RowBytes(right);
      const double out_tuple =
          2.0 * RowBytes(left) / static_cast<double>(left.size());
      {
        exec::MergeJoinCursor join(
            std::make_unique<VectorCursor>(ProbeSchema(), left),
            std::make_unique<VectorCursor>(ProbeSchema(), right), {1}, {1});
        size_t rows = 0;
        TANGO_ASSIGN_OR_RETURN(tm[i], TimeCursor(&join, &rows));
        mout_b[i] = static_cast<double>(rows) * out_tuple;
      }
      {
        exec::TemporalJoinCursor tjoin(
            std::make_unique<VectorCursor>(ProbeSchema(), left),
            std::make_unique<VectorCursor>(ProbeSchema(), right), {1}, {1}, 3,
            4, 3, 4, {0, 1, 2}, {0, 2}, tout);
        size_t rows = 0;
        TANGO_ASSIGN_OR_RETURN(tt[i], TimeCursor(&tjoin, &rows));
        tout_b[i] = static_cast<double>(rows) * out_tuple;
      }
    }
    FitTwo(&f.mjm, &f.mjout, tm[0], in_b[0], mout_b[0], tm[1], in_b[1],
           mout_b[1]);
    // The temporal join shares the output-emission path; fit its input
    // factor against the already-fitted output factor.
    double tj_out = f.mjout;
    FitTwo(&f.tjm, &tj_out, tt[0], in_b[0], tout_b[0], tt[1], in_b[1],
           tout_b[1]);
  }

  // ---- Generic DBMS operations. ----
  {
    // Full scan (no rows transferred: impossible predicate after the scan).
    TANGO_ASSIGN_OR_RETURN(
        CursorPtr cur,
        conn_->ExecuteQuery("SELECT ID FROM CALIB_PROBE WHERE PAD = ''"));
    TANGO_ASSIGN_OR_RETURN(double t, TimeCursor(cur.get()));
    t = std::max(0.0, t - f.stmt);
    FitOne(&f.scand, t, full_bytes, t, full_bytes);
  }
  {
    // DBMS sort: ORDER BY over the impossible-filter scan isolates the sort
    // from transfer; subtract the scan time just measured.
    TANGO_ASSIGN_OR_RETURN(
        CursorPtr cur,
        conn_->ExecuteQuery(
            "SELECT ID, K, PAD, T1, T2 FROM CALIB_PROBE ORDER BY K, T1"));
    const uint64_t bytes_before = conn_->counters().bytes_to_client;
    TANGO_ASSIGN_OR_RETURN(double t, TimeCursor(cur.get()));
    const double transferred = static_cast<double>(
        conn_->counters().bytes_to_client - bytes_before);
    t = std::max(1.0, t - f.stmt - f.scand * full_bytes - f.tm * transferred);
    FitOne(&f.sortd, t, full_bytes * std::log2(static_cast<double>(n)), t,
           full_bytes * std::log2(static_cast<double>(n)));
  }
  {
    // DBMS join with empty output (impossible residual on the join result).
    TANGO_ASSIGN_OR_RETURN(
        CursorPtr cur,
        conn_->ExecuteQuery("SELECT A.ID FROM CALIB_PROBE A, CALIB_PROBE B "
                            "WHERE A.K = B.K AND A.ID + B.ID < 0"));
    TANGO_ASSIGN_OR_RETURN(double t, TimeCursor(cur.get()));
    // Join output (before residual) is n*n/64 rows of ~2x tuple size.
    const double out_bytes = static_cast<double>(n) * static_cast<double>(n) /
                             64.0 * 2.0 * (full_bytes / static_cast<double>(n));
    t = std::max(1.0, t - f.stmt - 2 * f.scand * full_bytes);
    // One formula covers both terms; attribute half to each basis.
    FitTwo(&f.joind, &f.joindout, t, 2 * full_bytes + out_bytes, out_bytes,
           t * 1.05, (2 * full_bytes + out_bytes) * 1.05, out_bytes * 1.05);
  }
  {
    // TAGGR^D: the nested SQL on two group cardinalities.
    double t0 = 0, in0 = 0, out0 = 0;
    for (int probe = 0; probe < 2; ++probe) {
      const int64_t distinct = probe == 0 ? 512 : 2048;
      TANGO_RETURN_IF_ERROR(
          conn_->Execute("CREATE TABLE CALIB_TAGG (ID INT, K INT, "
                         "PAD VARCHAR(16), T1 INT, T2 INT)")
              .status());
      TANGO_RETURN_IF_ERROR(conn_->BulkLoad(
          "CALIB_TAGG", ProbeRows(n / 4, options_.seed + 3, distinct)));
      const std::string inst =
          "SELECT K AS G, T1 AS T FROM CALIB_TAGG "
          "UNION SELECT K AS G, T2 AS T FROM CALIB_TAGG";
      const std::string pairs =
          "SELECT A.G AS G, A.T AS T1, MIN(B.T) AS T2 FROM (" + inst +
          ") A, (" + inst + ") B WHERE A.G = B.G AND A.T < B.T GROUP BY A.G, A.T";
      const std::string sql =
          "SELECT R.K AS K, P.T1 AS T1, P.T2 AS T2, COUNT(*) AS C "
          "FROM CALIB_TAGG R, (" + pairs + ") P "
          "WHERE R.K = P.G AND R.T1 <= P.T1 AND P.T2 <= R.T2 "
          "GROUP BY R.K, P.T1, P.T2";
      TANGO_ASSIGN_OR_RETURN(CursorPtr cur, conn_->ExecuteQuery(sql));
      size_t out_rows = 0;
      TANGO_ASSIGN_OR_RETURN(double t, TimeCursor(cur.get(), &out_rows));
      TANGO_RETURN_IF_ERROR(conn_->Execute("DROP TABLE CALIB_TAGG").status());
      const double in_bytes = full_bytes / 4;
      const double out_bytes = static_cast<double>(out_rows) * 40.0;
      if (probe == 0) {
        t0 = t;
        in0 = in_bytes;
        out0 = out_bytes;
      } else {
        FitTwo(&f.taggd1, &f.taggd2, t0, in0, out0, t, in_bytes, out_bytes);
      }
    }
  }

  TearDownProbes();
  report.after = model->factors();
  report.probe_seconds = SecondsSince(start);
  return report;
}

}  // namespace cost
}  // namespace tango
