#ifndef TANGO_COST_COST_MODEL_H_
#define TANGO_COST_COST_MODEL_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "expr/expr.h"

namespace tango {
namespace cost {

/// \brief Cost factors `p_*` weighing the statistics in the cost formulas
/// (Figure 6 plus the additional formulas of the technical report).
///
/// Units: microseconds per byte (per-statement overheads in microseconds).
/// Defaults are reasonable for the in-process substrate; the Cost Estimator
/// calibrates them by running probe queries (Du et al.'s mechanism), and the
/// feedback loop keeps refining them from measured execution times.
struct CostFactors {
  // Figure 6, recalibrated for block-framed transfer: the per-byte factors
  // drop (column-packed blocks amortize the per-tuple marshalling the old
  // factors folded in) and the overhead that remains per prefetch batch /
  // bulk-load chunk is charged explicitly per block below.
  double tm = 0.04;       // TRANSFER^M, per byte
  double td = 0.065;      // TRANSFER^D, per byte
  double tmblk = 60;      // TRANSFER^M, per block frame (microseconds;
                          // matches WireConfig::per_batch_seconds)
  double tdblk = 40;      // TRANSFER^D, per block frame (microseconds)
  double sem = 0.01;      // FILTER^M, per byte (x f(P))
  double taggm1 = 0.02;   // TAGGR^M, per input byte
  double taggm2 = 0.02;   // TAGGR^M, per output byte
  double taggd1 = 0.50;   // TAGGR^D, per input byte
  double taggd2 = 0.20;   // TAGGR^D, per output byte

  // Middleware algorithms (technical report [20]).
  double sortm = 0.004;   // SORT^M, per byte per log2(card)
  double projm = 0.008;   // PROJECT^M, per byte
  double mjm = 0.015;     // MERGEJOIN^M, per input byte
  double mjout = 0.01;    // MERGEJOIN^M / TJOIN^M, per output byte
  double tjm = 0.02;      // TJOIN^M, per input byte
  double dupm = 0.01;     // DUPELIM^M, per byte
  double coalm = 0.01;    // COALESCE^M, per byte
  double diffm = 0.012;   // DIFF^M, per input byte

  // Generic DBMS implementations (the middleware does not know the DBMS's
  // actual algorithms; one formula per operation).
  double scand = 0.004;   // full scan, per byte
  double sortd = 0.003;   // sort, per byte per log2(card)
  double joind = 0.012;   // join, per input byte
  double joindout = 0.008;  // join, per output byte
  double prodd = 0.02;    // Cartesian product, per output byte
  double idxd = 0.02;     // index scan, per output byte

  // Per-statement round-trip overhead (microseconds).
  double stmt = 400;

  std::string ToString() const;
};

/// \brief TANGO's cost model: initialization + per-tuple processing +
/// output-forming costs, simplified as the paper argues (§3.1).
///
/// `size` arguments are the paper's size(r) = cardinality x average tuple
/// bytes; returned values are estimated microseconds.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostFactors factors) : f_(factors) {}

  CostFactors& factors() { return f_; }
  const CostFactors& factors() const { return f_; }

  /// Degree of parallelism of the middleware execution engine, with the
  /// efficiency discount applied to the extra workers (partition skew,
  /// merge/concatenate serial phases, pool overhead). The CPU terms of the
  /// parallelized algorithms — SORT^M run generation and TJOIN^M partition
  /// joins — divide by the effective DOP, which shifts the optimizer's
  /// middleware-vs-DBMS placement toward the middleware as DOP grows.
  void set_parallelism(size_t dop, double efficiency = 0.7) {
    dop_ = dop == 0 ? 1 : dop;
    efficiency_ = efficiency < 0 ? 0 : (efficiency > 1 ? 1 : efficiency);
  }
  size_t dop() const { return dop_; }
  double EffectiveDop() const {
    return 1.0 + (static_cast<double>(dop_) - 1.0) * efficiency_;
  }

  /// Rows per RowBlock on the wire; determines how many per-block overheads
  /// a transfer of a given cardinality pays.
  void set_batch_size(size_t rows) { batch_rows_ = rows == 0 ? 1 : rows; }
  size_t batch_size() const { return batch_rows_; }

  // ---- Figure 6 ----
  /// `cardinality` <= 0 charges a single block (unknown-cardinality callers
  /// keep the old stmt + per-byte shape).
  double TransferM(double size, double cardinality = 0) const {
    return f_.stmt + f_.tm * size + f_.tmblk * Blocks(cardinality);
  }
  double TransferD(double size, double cardinality = 0) const {
    return f_.stmt + f_.td * size + f_.tdblk * Blocks(cardinality);
  }
  /// `predicate_coefficient` is the paper's f(P) (see PredicateCoefficient).
  double FilterM(double predicate_coefficient, double size) const {
    return f_.sem * predicate_coefficient * size;
  }
  /// TAGGR^M cost *excluding* the external sort of its argument (the
  /// optimizer charges the child sort separately, as the formula does by
  /// adding cost(SORT)); the internal T2-sort is folded into taggm1.
  double TAggrM(double in_size, double out_size) const {
    return f_.taggm1 * in_size + f_.taggm2 * out_size;
  }
  double TAggrD(double in_size, double out_size) const {
    return f_.taggd1 * in_size + f_.taggd2 * out_size;
  }

  // ---- middleware algorithms ----
  double SortM(double size, double cardinality) const {
    return f_.sortm * size * Log2(cardinality) / EffectiveDop();
  }
  double ProjectM(double size) const { return f_.projm * size; }
  double MergeJoinM(double left_size, double right_size,
                    double out_size) const {
    return f_.mjm * (left_size + right_size) + f_.mjout * out_size;
  }
  /// The per-input term parallelizes across range partitions; the
  /// output-forming term stays serial (concatenation + emission).
  double TJoinM(double left_size, double right_size, double out_size) const {
    return f_.tjm * (left_size + right_size) / EffectiveDop() +
           f_.mjout * out_size;
  }
  double DupElimM(double size) const { return f_.dupm * size; }
  double CoalesceM(double size) const { return f_.coalm * size; }
  double DifferenceM(double left_size, double right_size) const {
    return f_.diffm * (left_size + right_size);
  }

  // ---- generic DBMS implementations ----
  double ScanD(double size) const { return f_.scand * size; }
  double SortD(double size, double cardinality) const {
    return f_.sortd * size * Log2(cardinality);
  }
  double JoinD(double left_size, double right_size, double out_size) const {
    return f_.joind * (left_size + right_size) + f_.joindout * out_size;
  }
  double ProductD(double out_size) const { return f_.prodd * out_size; }
  /// Selection and projection in the DBMS are free (§3.1).
  double SelectD() const { return 0; }
  double ProjectD() const { return 0; }

  /// The paper's f(P): a coefficient representing the selection condition;
  /// we use the number of comparison nodes in the predicate.
  static double PredicateCoefficient(const ExprPtr& predicate);

  /// Exponential-smoothing update of one factor from an observed execution:
  /// `observed_us` microseconds were actually spent on `size` bytes (the
  /// paper's performance-feedback adaptation). `alpha` is the smoothing
  /// weight of the new observation.
  static void Feedback(double* factor, double observed_us, double size,
                       double alpha = 0.3);

 private:
  static double Log2(double card) {
    return card < 2 ? 1 : std::log2(card);
  }

  /// Block frames a transfer of `cardinality` rows crosses the wire in.
  double Blocks(double cardinality) const {
    if (cardinality <= 0) return 1;
    return std::ceil(cardinality / static_cast<double>(batch_rows_));
  }

  CostFactors f_;
  size_t dop_ = 1;
  double efficiency_ = 0.7;
  size_t batch_rows_ = 1024;
};

}  // namespace cost
}  // namespace tango

#endif  // TANGO_COST_COST_MODEL_H_
