#ifndef TANGO_EXPR_EXPR_H_
#define TANGO_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace tango {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators; comparison operators follow SQL three-valued logic
/// (any NULL operand yields NULL, which behaves as false in predicates).
enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv,
};

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

/// Aggregate functions supported by both aggregation implementations.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* BinaryOpName(BinaryOp op);   // SQL spelling, e.g. "<="
const char* AggFuncName(AggFunc f);      // "COUNT", ...

/// \brief Node of the expression tree shared by the SQL frontend, the
/// temporal algebra, the middleware executor, and the DBMS executor.
///
/// Trees are immutable; `Bind` produces a new tree with column references
/// resolved to positional indexes for evaluation.
struct Expr {
  enum class Kind { kColumn, kLiteral, kUnary, kBinary, kFunction, kAggregate };

  Kind kind = Kind::kLiteral;

  // kColumn: reference by (table, name); `index` >= 0 once bound.
  std::string table;
  std::string name;
  int index = -1;

  // kLiteral
  Value literal;
  /// Plan-cache parameter slot this literal was lifted into (adapt::
  /// ParameterizeQuery tags literal sites in preorder); -1 = untagged.
  /// Ignored by Equals/ToString — it is bookkeeping, not semantics.
  int param_id = -1;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;

  // kFunction: scalar functions, currently GREATEST and LEAST.
  std::string function;

  // kAggregate
  AggFunc agg = AggFunc::kCount;
  bool agg_star = false;  // COUNT(*)

  std::vector<ExprPtr> children;

  // ---- construction helpers ----
  static ExprPtr Column(std::string table, std::string name);
  static ExprPtr ColumnRef(const std::string& reference);  // "T.A" or "A"
  static ExprPtr BoundColumn(int index, std::string name = "");
  static ExprPtr Literal(Value v);
  static ExprPtr Int(int64_t v) { return Literal(Value(v)); }
  static ExprPtr Real(double v) { return Literal(Value(v)); }
  static ExprPtr Str(std::string v) { return Literal(Value(std::move(v))); }
  static ExprPtr Unary(UnaryOp op, ExprPtr child);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args);
  static ExprPtr Aggregate(AggFunc f, ExprPtr arg, bool star = false);

  static ExprPtr And(ExprPtr a, ExprPtr b) {
    return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
  }
  /// Conjunction of a list; returns nullptr for an empty list.
  static ExprPtr AndAll(std::vector<ExprPtr> conjuncts);

  /// SQL rendering (used by the Translator-To-SQL and plan printers).
  std::string ToString() const;

  /// Structural equality (used for memo deduplication).
  bool Equals(const Expr& other) const;
};

/// Resolves every column reference in `expr` against `schema`, returning a
/// bound copy. Fails with kNotFound / kInvalidArgument on bad references.
Result<ExprPtr> Bind(const ExprPtr& expr, const Schema& schema);

/// Evaluates a bound expression against a tuple. Aggregate nodes are not
/// evaluable here (they are handled by the aggregation operators).
Value Eval(const Expr& expr, const Tuple& tuple);

/// Evaluates a bound predicate; NULL results count as false (SQL WHERE).
bool EvalPredicate(const Expr& expr, const Tuple& tuple);

/// Splits a predicate into its top-level AND conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& predicate);

/// Collects the (possibly qualified) column references in an expression;
/// this is the paper's `attr(P)` used in rule pre-conditions.
void CollectColumns(const ExprPtr& expr, std::vector<std::string>* out);

/// True when every column reference in `expr` resolves in `schema`
/// (the `attr(P) ⊆ Ω_r` pre-condition of rules E1/E5).
bool ColumnsResolveIn(const ExprPtr& expr, const Schema& schema);

/// True if the expression contains an aggregate node.
bool ContainsAggregate(const ExprPtr& expr);

/// Computes the result type of a bound expression given the input schema.
Result<DataType> InferType(const ExprPtr& expr, const Schema& schema);

}  // namespace tango

#endif  // TANGO_EXPR_EXPR_H_
