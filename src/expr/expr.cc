#include "expr/expr.h"

#include <algorithm>

namespace tango {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

ExprPtr Expr::Column(std::string table, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kColumn;
  e->table = ToUpper(table);
  e->name = ToUpper(name);
  return e;
}

ExprPtr Expr::ColumnRef(const std::string& reference) {
  const size_t dot = reference.find('.');
  if (dot == std::string::npos) return Column("", reference);
  return Column(reference.substr(0, dot), reference.substr(dot + 1));
}

ExprPtr Expr::BoundColumn(int index, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kColumn;
  e->name = ToUpper(name);
  e->index = index;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kFunction;
  e->function = ToUpper(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Aggregate(AggFunc f, ExprPtr arg, bool star) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = f;
  e->agg_star = star;
  if (arg != nullptr) e->children.push_back(std::move(arg));
  return e;
}

ExprPtr Expr::AndAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr out = nullptr;
  for (auto& c : conjuncts) {
    if (c == nullptr) continue;
    out = (out == nullptr) ? c : And(out, c);
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn: {
      std::string q = table.empty() ? name : table + "." + name;
      if (q.empty()) q = "$" + std::to_string(index);
      return q;
    }
    case Kind::kLiteral:
      return literal.ToSqlLiteral();
    case Kind::kUnary:
      switch (unary_op) {
        case UnaryOp::kNot:
          return "NOT (" + children[0]->ToString() + ")";
        case UnaryOp::kNeg:
          return "-(" + children[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + children[0]->ToString() + ") IS NULL";
        case UnaryOp::kIsNotNull:
          return "(" + children[0]->ToString() + ") IS NOT NULL";
      }
      return "?";
    case Kind::kBinary: {
      const bool bare = binary_op == BinaryOp::kAnd || binary_op == BinaryOp::kOr;
      std::string l = children[0]->ToString();
      std::string r = children[1]->ToString();
      if (bare) return "(" + l + " " + BinaryOpName(binary_op) + " " + r + ")";
      return l + " " + BinaryOpName(binary_op) + " " + r;
    }
    case Kind::kFunction: {
      std::string out = function + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kAggregate: {
      std::string out = AggFuncName(agg);
      out += "(";
      out += agg_star ? "*" : children[0]->ToString();
      return out + ")";
    }
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kColumn:
      // Bound columns compare by index; unbound by qualified name.
      if (index >= 0 || other.index >= 0) return index == other.index;
      return table == other.table && name == other.name;
    case Kind::kLiteral:
      if (literal.is_null() != other.literal.is_null()) return false;
      return literal.is_null() || literal == other.literal;
    case Kind::kUnary:
      if (unary_op != other.unary_op) return false;
      break;
    case Kind::kBinary:
      if (binary_op != other.binary_op) return false;
      break;
    case Kind::kFunction:
      if (function != other.function) return false;
      break;
    case Kind::kAggregate:
      if (agg != other.agg || agg_star != other.agg_star) return false;
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

Result<ExprPtr> Bind(const ExprPtr& expr, const Schema& schema) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  auto out = std::make_shared<Expr>(*expr);
  if (expr->kind == Expr::Kind::kColumn) {
    TANGO_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(expr->table, expr->name));
    out->index = static_cast<int>(idx);
    return ExprPtr(out);
  }
  out->children.clear();
  for (const ExprPtr& child : expr->children) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(child, schema));
    out->children.push_back(std::move(bound));
  }
  return ExprPtr(out);
}

namespace {

Value EvalBinary(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return Value::Null();
      const int c = l.Compare(r);
      bool b = false;
      switch (op) {
        case BinaryOp::kEq: b = c == 0; break;
        case BinaryOp::kNe: b = c != 0; break;
        case BinaryOp::kLt: b = c < 0; break;
        case BinaryOp::kLe: b = c <= 0; break;
        case BinaryOp::kGt: b = c > 0; break;
        case BinaryOp::kGe: b = c >= 0; break;
        default: break;
      }
      return Value(static_cast<int64_t>(b ? 1 : 0));
    }
    case BinaryOp::kAnd: {
      // Three-valued logic: FALSE AND x = FALSE even for NULL x.
      const bool lf = !l.is_null() && l.AsDouble() == 0.0;
      const bool rf = !r.is_null() && r.AsDouble() == 0.0;
      if (lf || rf) return Value(static_cast<int64_t>(0));
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(static_cast<int64_t>(1));
    }
    case BinaryOp::kOr: {
      const bool lt = !l.is_null() && l.AsDouble() != 0.0;
      const bool rt = !r.is_null() && r.AsDouble() != 0.0;
      if (lt || rt) return Value(static_cast<int64_t>(1));
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(static_cast<int64_t>(0));
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (l.is_int() && r.is_int() && op != BinaryOp::kDiv) {
        const int64_t a = l.AsInt(), b = r.AsInt();
        switch (op) {
          case BinaryOp::kAdd: return Value(a + b);
          case BinaryOp::kSub: return Value(a - b);
          case BinaryOp::kMul: return Value(a * b);
          default: break;
        }
      }
      const double a = l.AsDouble(), b = r.AsDouble();
      switch (op) {
        case BinaryOp::kAdd: return Value(a + b);
        case BinaryOp::kSub: return Value(a - b);
        case BinaryOp::kMul: return Value(a * b);
        case BinaryOp::kDiv: return b == 0.0 ? Value::Null() : Value(a / b);
        default: break;
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

}  // namespace

Value Eval(const Expr& expr, const Tuple& tuple) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      return tuple[static_cast<size_t>(expr.index)];
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kUnary: {
      Value v = Eval(*expr.children[0], tuple);
      switch (expr.unary_op) {
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value(static_cast<int64_t>(v.AsDouble() == 0.0 ? 1 : 0));
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.is_int()) return Value(-v.AsInt());
          return Value(-v.AsDouble());
        case UnaryOp::kIsNull:
          return Value(static_cast<int64_t>(v.is_null() ? 1 : 0));
        case UnaryOp::kIsNotNull:
          return Value(static_cast<int64_t>(v.is_null() ? 0 : 1));
      }
      return Value::Null();
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr.binary_op,
                        Eval(*expr.children[0], tuple),
                        Eval(*expr.children[1], tuple));
    case Expr::Kind::kFunction: {
      // GREATEST / LEAST: NULL if any argument is NULL (Oracle semantics).
      Value best;
      bool first = true;
      const bool greatest = expr.function == "GREATEST";
      for (const ExprPtr& c : expr.children) {
        Value v = Eval(*c, tuple);
        if (v.is_null()) return Value::Null();
        if (first || (greatest ? v > best : v < best)) best = v;
        first = false;
      }
      return best;
    }
    case Expr::Kind::kAggregate:
      // Aggregates are computed by aggregation operators, never inline.
      return Value::Null();
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& expr, const Tuple& tuple) {
  const Value v = Eval(expr, tuple);
  return !v.is_null() && v.AsDouble() != 0.0;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& predicate) {
  std::vector<ExprPtr> out;
  if (predicate == nullptr) return out;
  if (predicate->kind == Expr::Kind::kBinary &&
      predicate->binary_op == BinaryOp::kAnd) {
    for (const ExprPtr& c : predicate->children) {
      auto sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(predicate);
  return out;
}

void CollectColumns(const ExprPtr& expr, std::vector<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kColumn) {
    out->push_back(expr->table.empty() ? expr->name
                                       : expr->table + "." + expr->name);
    return;
  }
  for (const ExprPtr& c : expr->children) CollectColumns(c, out);
}

bool ColumnsResolveIn(const ExprPtr& expr, const Schema& schema) {
  std::vector<std::string> cols;
  CollectColumns(expr, &cols);
  return std::all_of(cols.begin(), cols.end(), [&](const std::string& c) {
    return schema.Contains(c);
  });
}

bool ContainsAggregate(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind == Expr::Kind::kAggregate) return true;
  return std::any_of(expr->children.begin(), expr->children.end(),
                     [](const ExprPtr& c) { return ContainsAggregate(c); });
}

Result<DataType> InferType(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind) {
    case Expr::Kind::kColumn: {
      if (expr->index >= 0) {
        if (static_cast<size_t>(expr->index) >= schema.num_columns()) {
          return Status::Internal("bound column index out of range");
        }
        return schema.column(static_cast<size_t>(expr->index)).type;
      }
      TANGO_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(expr->table, expr->name));
      return schema.column(idx).type;
    }
    case Expr::Kind::kLiteral:
      if (expr->literal.is_double()) return DataType::kDouble;
      if (expr->literal.is_string()) return DataType::kString;
      return DataType::kInt;
    case Expr::Kind::kUnary:
      if (expr->unary_op == UnaryOp::kNeg)
        return InferType(expr->children[0], schema);
      return DataType::kInt;  // boolean-as-int
    case Expr::Kind::kBinary:
      switch (expr->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          TANGO_ASSIGN_OR_RETURN(DataType l, InferType(expr->children[0], schema));
          TANGO_ASSIGN_OR_RETURN(DataType r, InferType(expr->children[1], schema));
          if (l == DataType::kDouble || r == DataType::kDouble)
            return DataType::kDouble;
          return DataType::kInt;
        }
        case BinaryOp::kDiv:
          return DataType::kDouble;
        default:
          return DataType::kInt;  // comparisons / logic
      }
    case Expr::Kind::kFunction: {
      DataType out = DataType::kInt;
      for (const ExprPtr& c : expr->children) {
        TANGO_ASSIGN_OR_RETURN(DataType t, InferType(c, schema));
        if (t == DataType::kDouble) out = DataType::kDouble;
        if (t == DataType::kString) return DataType::kString;
      }
      return out;
    }
    case Expr::Kind::kAggregate:
      if (expr->agg == AggFunc::kCount) return DataType::kInt;
      if (expr->agg == AggFunc::kAvg) return DataType::kDouble;
      return InferType(expr->children[0], schema);
  }
  return Status::Internal("unreachable");
}

}  // namespace tango
