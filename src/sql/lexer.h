#ifndef TANGO_SQL_LEXER_H_
#define TANGO_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tango {
namespace sql {

/// Token categories produced by the lexer. Keywords are returned as kKeyword
/// with the upper-cased text in `text`; identifiers likewise upper-cased.
enum class TokenType {
  kEnd,
  kIdentifier,
  kKeyword,
  kInteger,
  kFloat,
  kString,     // 'quoted', quotes stripped, '' unescaped
  kSymbol,     // one of ( ) , . * + - / = < > <= >= <> ;
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // canonical text (upper-cased for ident/keyword)
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;    // byte offset in the input, for error messages
};

/// \brief Hand-written SQL lexer shared by the SQL and temporal-SQL parsers.
///
/// `--` line comments are skipped. Date literals are handled by the parsers
/// (DATE '1997-02-01'), not the lexer.
class Lexer {
 public:
  /// Tokenizes the whole input; fails on unterminated strings or stray bytes.
  static Result<std::vector<Token>> Tokenize(const std::string& input);
};

/// \brief Token cursor with the conveniences both parsers need.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  /// True and consumes when the next token is the given keyword.
  bool AcceptKeyword(const std::string& kw);
  /// True and consumes when the next token is the given symbol.
  bool AcceptSymbol(const std::string& sym);
  /// True without consuming.
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const;
  bool PeekSymbol(const std::string& sym, size_t ahead = 0) const;

  /// Errors mentioning what was expected and what was found.
  Status ExpectKeyword(const std::string& kw);
  Status ExpectSymbol(const std::string& sym);
  Result<std::string> ExpectIdentifier();

  Status ErrorHere(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sql
}  // namespace tango

#endif  // TANGO_SQL_LEXER_H_
