#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/schema.h"

namespace tango {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "ASC", "DESC",
      "AND", "OR", "NOT", "AS", "DISTINCT", "ALL", "UNION", "CREATE",
      "TABLE", "INSERT", "INTO", "VALUES", "DROP", "ANALYZE", "NULL",
      "INT", "INTEGER", "DOUBLE", "FLOAT", "VARCHAR", "DATE", "IS",
      "COUNT", "SUM", "MIN", "MAX", "AVG", "GREATEST", "LEAST",
      "HAVING", "BETWEEN", "IN", "EXISTS", "JOIN", "ON", "INNER",
      // Temporal-SQL extensions (shared lexer).
      "TEMPORAL", "OVERLAPS", "PERIOD", "OVER", "TIME", "COALESCE",
      "CONTAINS", "EXCEPT", "INDEX",
      // Durable write path.
      "UPDATE", "SET", "BEGIN", "COMMIT", "ROLLBACK", "CHECKPOINT",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lexer::Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      tok.text = ToUpper(input.substr(i, j - i));
      tok.type = Keywords().count(tok.text) ? TokenType::kKeyword
                                            : TokenType::kIdentifier;
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      tok.text = input.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      i = j;
    } else if (c == '\'') {
      std::string s;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            s.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        s.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      i = j;
    } else {
      // Symbols, including two-character comparison operators.
      static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
      std::string sym(1, c);
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        for (const char* t : kTwoChar) {
          if (two == t) {
            sym = two;
            break;
          }
        }
      }
      if (sym == "!=") sym = "<>";
      static const std::string kSingles = "(),.*+-/=<>;";
      if (sym.size() == 1 && kSingles.find(sym[0]) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      tok.type = TokenType::kSymbol;
      tok.text = sym;
      i += sym.size();
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

bool TokenStream::AcceptKeyword(const std::string& kw) {
  if (PeekKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::AcceptSymbol(const std::string& sym) {
  if (PeekSymbol(sym)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::PeekKeyword(const std::string& kw, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.type == TokenType::kKeyword && t.text == kw;
}

bool TokenStream::PeekSymbol(const std::string& sym, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.type == TokenType::kSymbol && t.text == sym;
}

Status TokenStream::ExpectKeyword(const std::string& kw) {
  if (AcceptKeyword(kw)) return Status::OK();
  return ErrorHere("expected " + kw);
}

Status TokenStream::ExpectSymbol(const std::string& sym) {
  if (AcceptSymbol(sym)) return Status::OK();
  return ErrorHere("expected '" + sym + "'");
}

Result<std::string> TokenStream::ExpectIdentifier() {
  const Token& t = Peek();
  if (t.type != TokenType::kIdentifier) {
    return ErrorHere("expected identifier");
  }
  Next();
  return t.text;
}

Status TokenStream::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string found;
  switch (t.type) {
    case TokenType::kEnd:
      found = "end of input";
      break;
    case TokenType::kString:
      found = "'" + t.text + "'";
      break;
    default:
      found = "\"" + t.text + "\"";
  }
  return Status::ParseError(message + ", found " + found + " at offset " +
                            std::to_string(t.offset));
}

}  // namespace sql
}  // namespace tango
