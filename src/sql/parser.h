#ifndef TANGO_SQL_PARSER_H_
#define TANGO_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace tango {
namespace sql {

/// \brief Recursive-descent parser for the SQL subset the middleware
/// generates and the DBMS executes.
///
/// Grammar (informally):
///
///     statement     := select | create_table | create_index | insert
///                    | drop | analyze
///     select        := SELECT [DISTINCT] items FROM refs [WHERE expr]
///                      [GROUP BY exprs] [HAVING expr]
///                      [UNION [ALL] select] [ORDER BY order_items]
///     refs          := ref ("," ref)*           -- comma joins
///     ref           := ident [alias] | "(" select ")" alias
///     expr          := standard precedence climbing with OR < AND < NOT
///                      < comparison/BETWEEN < +- < */ < unary
///     literals      := integers, floats, 'strings', DATE 'YYYY-MM-DD', NULL
///     functions     := GREATEST, LEAST; aggregates COUNT/SUM/MIN/MAX/AVG
class Parser {
 public:
  /// Parses a single statement (a trailing ';' is allowed).
  static Result<Statement> Parse(const std::string& input);

  /// Parses a SELECT statement only.
  static Result<std::shared_ptr<SelectStmt>> ParseSelect(
      const std::string& input);

  // ---- components reused by the temporal-SQL parser ----
  static Result<ExprPtr> ParseExpression(TokenStream* ts);
  static Result<std::shared_ptr<SelectStmt>> ParseSelectStmt(TokenStream* ts);
  static Result<ExprPtr> ParseComparison(TokenStream* ts);

 private:
  static Result<Statement> ParseStatement(TokenStream* ts);
  static Result<std::shared_ptr<SelectStmt>> ParseSelectCore(TokenStream* ts);
  static Result<SelectItem> ParseSelectItem(TokenStream* ts);
  static Result<TableRef> ParseTableRef(TokenStream* ts);
  static Result<ExprPtr> ParseOr(TokenStream* ts);
  static Result<ExprPtr> ParseAnd(TokenStream* ts);
  static Result<ExprPtr> ParseNot(TokenStream* ts);
  static Result<ExprPtr> ParseAdditive(TokenStream* ts);
  static Result<ExprPtr> ParseMultiplicative(TokenStream* ts);
  static Result<ExprPtr> ParseUnary(TokenStream* ts);
  static Result<ExprPtr> ParsePrimary(TokenStream* ts);
  static Result<Column> ParseColumnDef(TokenStream* ts);
};

}  // namespace sql
}  // namespace tango

#endif  // TANGO_SQL_PARSER_H_
