#include "sql/parser.h"

#include "common/date.h"

namespace tango {
namespace sql {

Result<Statement> Parser::Parse(const std::string& input) {
  TANGO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(input));
  TokenStream ts(std::move(tokens));
  TANGO_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(&ts));
  ts.AcceptSymbol(";");
  if (!ts.AtEnd()) return ts.ErrorHere("unexpected trailing input");
  return stmt;
}

Result<std::shared_ptr<SelectStmt>> Parser::ParseSelect(
    const std::string& input) {
  TANGO_ASSIGN_OR_RETURN(Statement stmt, Parse(input));
  if (stmt.select == nullptr) {
    return Status::ParseError("expected a SELECT statement");
  }
  return stmt.select;
}

Result<Statement> Parser::ParseStatement(TokenStream* ts) {
  Statement stmt;
  if (ts->PeekKeyword("SELECT")) {
    TANGO_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt(ts));
    return stmt;
  }
  if (ts->AcceptKeyword("CREATE")) {
    if (ts->AcceptKeyword("INDEX")) {
      auto ci = std::make_shared<CreateIndexStmt>();
      TANGO_ASSIGN_OR_RETURN(ci->name, ts->ExpectIdentifier());
      TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("ON"));
      TANGO_ASSIGN_OR_RETURN(ci->table, ts->ExpectIdentifier());
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
      TANGO_ASSIGN_OR_RETURN(ci->column, ts->ExpectIdentifier());
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
      stmt.create_index = std::move(ci);
      return stmt;
    }
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("TABLE"));
    auto ct = std::make_shared<CreateTableStmt>();
    TANGO_ASSIGN_OR_RETURN(ct->name, ts->ExpectIdentifier());
    if (ts->AcceptKeyword("AS")) {
      TANGO_ASSIGN_OR_RETURN(ct->as_select, ParseSelectStmt(ts));
    } else {
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
      do {
        TANGO_ASSIGN_OR_RETURN(Column col, ParseColumnDef(ts));
        ct->columns.push_back(std::move(col));
      } while (ts->AcceptSymbol(","));
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
    }
    stmt.create_table = std::move(ct);
    return stmt;
  }
  if (ts->AcceptKeyword("INSERT")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("INTO"));
    auto ins = std::make_shared<InsertStmt>();
    TANGO_ASSIGN_OR_RETURN(ins->table, ts->ExpectIdentifier());
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("VALUES"));
    do {
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        TANGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(ts));
        row.push_back(std::move(e));
      } while (ts->AcceptSymbol(","));
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
      ins->rows.push_back(std::move(row));
    } while (ts->AcceptSymbol(","));
    stmt.insert = std::move(ins);
    return stmt;
  }
  if (ts->AcceptKeyword("DROP")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("TABLE"));
    auto drop = std::make_shared<DropTableStmt>();
    TANGO_ASSIGN_OR_RETURN(drop->table, ts->ExpectIdentifier());
    stmt.drop_table = std::move(drop);
    return stmt;
  }
  if (ts->AcceptKeyword("UPDATE")) {
    auto upd = std::make_shared<UpdateStmt>();
    TANGO_ASSIGN_OR_RETURN(upd->table, ts->ExpectIdentifier());
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("SET"));
    do {
      std::string column;
      TANGO_ASSIGN_OR_RETURN(column, ts->ExpectIdentifier());
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("="));
      TANGO_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression(ts));
      upd->sets.emplace_back(std::move(column), std::move(value));
    } while (ts->AcceptSymbol(","));
    if (ts->AcceptKeyword("WHERE")) {
      TANGO_ASSIGN_OR_RETURN(upd->where, ParseExpression(ts));
    }
    stmt.update = std::move(upd);
    return stmt;
  }
  if (ts->PeekKeyword("BEGIN") || ts->PeekKeyword("COMMIT") ||
      ts->PeekKeyword("ROLLBACK") || ts->PeekKeyword("CHECKPOINT")) {
    auto txn = std::make_shared<TxnStmt>();
    if (ts->AcceptKeyword("BEGIN")) {
      txn->kind = TxnStmt::Kind::kBegin;
    } else if (ts->AcceptKeyword("COMMIT")) {
      txn->kind = TxnStmt::Kind::kCommit;
    } else if (ts->AcceptKeyword("ROLLBACK")) {
      txn->kind = TxnStmt::Kind::kRollback;
    } else {
      TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("CHECKPOINT"));
      txn->kind = TxnStmt::Kind::kCheckpoint;
    }
    stmt.txn = std::move(txn);
    return stmt;
  }
  if (ts->AcceptKeyword("ANALYZE")) {
    auto an = std::make_shared<AnalyzeStmt>();
    if (ts->Peek().type == TokenType::kIdentifier) {
      TANGO_ASSIGN_OR_RETURN(an->table, ts->ExpectIdentifier());
    }
    stmt.analyze = std::move(an);
    return stmt;
  }
  return ts->ErrorHere("expected a statement");
}

Result<std::shared_ptr<SelectStmt>> Parser::ParseSelectStmt(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> head, ParseSelectCore(ts));
  // UNION chain.
  SelectStmt* tail = head.get();
  while (ts->AcceptKeyword("UNION")) {
    const bool all = ts->AcceptKeyword("ALL");
    TANGO_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> next,
                           ParseSelectCore(ts));
    tail->union_next = next;
    tail->union_all = all;
    tail = next.get();
  }
  // ORDER BY binds to the whole chain and lives on the head.
  if (ts->AcceptKeyword("ORDER")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("BY"));
    do {
      OrderItem item;
      TANGO_ASSIGN_OR_RETURN(item.expr, ParseExpression(ts));
      if (ts->AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        ts->AcceptKeyword("ASC");
      }
      head->order_by.push_back(std::move(item));
    } while (ts->AcceptSymbol(","));
  }
  return head;
}

Result<std::shared_ptr<SelectStmt>> Parser::ParseSelectCore(TokenStream* ts) {
  TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("SELECT"));
  auto stmt = std::make_shared<SelectStmt>();
  if (ts->AcceptKeyword("DISTINCT")) stmt->distinct = true;
  do {
    TANGO_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem(ts));
    stmt->items.push_back(std::move(item));
  } while (ts->AcceptSymbol(","));
  TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("FROM"));
  do {
    TANGO_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef(ts));
    stmt->from.push_back(std::move(ref));
  } while (ts->AcceptSymbol(","));
  if (ts->AcceptKeyword("WHERE")) {
    TANGO_ASSIGN_OR_RETURN(stmt->where, ParseExpression(ts));
  }
  if (ts->AcceptKeyword("GROUP")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("BY"));
    do {
      TANGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(ts));
      stmt->group_by.push_back(std::move(e));
    } while (ts->AcceptSymbol(","));
  }
  if (ts->AcceptKeyword("HAVING")) {
    TANGO_ASSIGN_OR_RETURN(stmt->having, ParseExpression(ts));
  }
  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem(TokenStream* ts) {
  SelectItem item;
  if (ts->AcceptSymbol("*")) {
    item.star = true;
    return item;
  }
  // "A.*"
  if (ts->Peek().type == TokenType::kIdentifier && ts->PeekSymbol(".", 1) &&
      ts->PeekSymbol("*", 2)) {
    item.star = true;
    item.star_qualifier = ts->Next().text;
    ts->Next();  // .
    ts->Next();  // *
    return item;
  }
  TANGO_ASSIGN_OR_RETURN(item.expr, ParseExpression(ts));
  if (ts->AcceptKeyword("AS")) {
    TANGO_ASSIGN_OR_RETURN(item.alias, ts->ExpectIdentifier());
  } else if (ts->Peek().type == TokenType::kIdentifier) {
    // Bare alias (Oracle style): SELECT A.PosID PosID ...
    item.alias = ts->Next().text;
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef(TokenStream* ts) {
  TableRef ref;
  if (ts->AcceptSymbol("(")) {
    TANGO_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt(ts));
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
    // Alias is mandatory for subqueries (as in Oracle / standard SQL).
    if (ts->Peek().type == TokenType::kIdentifier) {
      ref.alias = ts->Next().text;
    } else if (ts->AcceptKeyword("AS")) {
      TANGO_ASSIGN_OR_RETURN(ref.alias, ts->ExpectIdentifier());
    } else {
      return ts->ErrorHere("subquery in FROM requires an alias");
    }
    return ref;
  }
  TANGO_ASSIGN_OR_RETURN(ref.table, ts->ExpectIdentifier());
  if (ts->AcceptKeyword("AS")) {
    TANGO_ASSIGN_OR_RETURN(ref.alias, ts->ExpectIdentifier());
  } else if (ts->Peek().type == TokenType::kIdentifier) {
    ref.alias = ts->Next().text;
  }
  return ref;
}

Result<ExprPtr> Parser::ParseExpression(TokenStream* ts) { return ParseOr(ts); }

Result<ExprPtr> Parser::ParseOr(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(ts));
  while (ts->AcceptKeyword("OR")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(ts));
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot(ts));
  while (ts->AcceptKeyword("AND")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot(ts));
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot(TokenStream* ts) {
  if (ts->AcceptKeyword("NOT")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr e, ParseNot(ts));
    return Expr::Unary(UnaryOp::kNot, std::move(e));
  }
  return ParseComparison(ts);
}

Result<ExprPtr> Parser::ParseComparison(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive(ts));
  if (ts->AcceptKeyword("IS")) {
    const bool negated = ts->AcceptKeyword("NOT");
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("NULL"));
    return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(lhs));
  }
  if (ts->AcceptKeyword("BETWEEN")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive(ts));
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("AND"));
    TANGO_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive(ts));
    return Expr::And(Expr::Binary(BinaryOp::kGe, lhs, std::move(lo)),
                     Expr::Binary(BinaryOp::kLe, lhs, std::move(hi)));
  }
  static const struct {
    const char* sym;
    BinaryOp op;
  } kOps[] = {
      {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNe},
      {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
  };
  for (const auto& o : kOps) {
    if (ts->AcceptSymbol(o.sym)) {
      TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive(ts));
      return Expr::Binary(o.op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative(ts));
  while (true) {
    if (ts->AcceptSymbol("+")) {
      TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(ts));
      lhs = Expr::Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
    } else if (ts->AcceptSymbol("-")) {
      TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(ts));
      lhs = Expr::Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary(ts));
  while (true) {
    if (ts->AcceptSymbol("*")) {
      TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(ts));
      lhs = Expr::Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
    } else if (ts->AcceptSymbol("/")) {
      TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(ts));
      lhs = Expr::Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary(TokenStream* ts) {
  if (ts->AcceptSymbol("-")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary(ts));
    if (e->kind == Expr::Kind::kLiteral && e->literal.is_int()) {
      return Expr::Int(-e->literal.AsInt());
    }
    if (e->kind == Expr::Kind::kLiteral && e->literal.is_double()) {
      return Expr::Real(-e->literal.AsDouble());
    }
    return Expr::Unary(UnaryOp::kNeg, std::move(e));
  }
  return ParsePrimary(ts);
}

Result<ExprPtr> Parser::ParsePrimary(TokenStream* ts) {
  const Token& t = ts->Peek();
  switch (t.type) {
    case TokenType::kInteger: {
      ts->Next();
      return Expr::Int(t.int_value);
    }
    case TokenType::kFloat: {
      ts->Next();
      return Expr::Real(t.float_value);
    }
    case TokenType::kString: {
      ts->Next();
      return Expr::Str(t.text);
    }
    case TokenType::kKeyword: {
      if (t.text == "NULL") {
        ts->Next();
        return Expr::Literal(Value::Null());
      }
      if (t.text == "DATE") {
        ts->Next();
        const Token& lit = ts->Peek();
        if (lit.type != TokenType::kString) {
          return ts->ErrorHere("expected date string after DATE");
        }
        ts->Next();
        TANGO_ASSIGN_OR_RETURN(int64_t days, date::Parse(lit.text));
        return Expr::Int(days);
      }
      // Aggregates.
      static const struct {
        const char* name;
        AggFunc f;
      } kAggs[] = {{"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
                   {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
                   {"AVG", AggFunc::kAvg}};
      for (const auto& a : kAggs) {
        if (t.text == a.name) {
          ts->Next();
          TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
          if (ts->AcceptSymbol("*")) {
            TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
            return Expr::Aggregate(a.f, nullptr, /*star=*/true);
          }
          TANGO_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression(ts));
          TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
          return Expr::Aggregate(a.f, std::move(arg));
        }
      }
      if (t.text == "GREATEST" || t.text == "LEAST") {
        ts->Next();
        TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
        std::vector<ExprPtr> args;
        do {
          TANGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(ts));
          args.push_back(std::move(e));
        } while (ts->AcceptSymbol(","));
        TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
        return Expr::Function(t.text, std::move(args));
      }
      return ts->ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      ts->Next();
      if (ts->AcceptSymbol(".")) {
        TANGO_ASSIGN_OR_RETURN(std::string col, ts->ExpectIdentifier());
        return Expr::Column(t.text, col);
      }
      return Expr::Column("", t.text);
    }
    case TokenType::kSymbol:
      if (t.text == "(") {
        ts->Next();
        TANGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(ts));
        TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
        return e;
      }
      return ts->ErrorHere("unexpected symbol in expression");
    case TokenType::kEnd:
      return ts->ErrorHere("unexpected end of input in expression");
  }
  return ts->ErrorHere("unexpected token");
}

Result<Column> Parser::ParseColumnDef(TokenStream* ts) {
  Column col;
  TANGO_ASSIGN_OR_RETURN(col.name, ts->ExpectIdentifier());
  const Token& t = ts->Peek();
  if (t.type != TokenType::kKeyword) return ts->ErrorHere("expected a type");
  if (t.text == "INT" || t.text == "INTEGER" || t.text == "DATE") {
    col.type = DataType::kInt;
  } else if (t.text == "DOUBLE" || t.text == "FLOAT") {
    col.type = DataType::kDouble;
  } else if (t.text == "VARCHAR") {
    col.type = DataType::kString;
  } else {
    return ts->ErrorHere("unknown type " + t.text);
  }
  ts->Next();
  // Optional "(n)" length, accepted and ignored (VARCHAR(32)).
  if (ts->AcceptSymbol("(")) {
    if (ts->Peek().type != TokenType::kInteger) {
      return ts->ErrorHere("expected a length");
    }
    ts->Next();
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
  }
  return col;
}

}  // namespace sql
}  // namespace tango
