#ifndef TANGO_SQL_AST_H_
#define TANGO_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "expr/expr.h"

namespace tango {
namespace sql {

struct SelectStmt;

/// One entry of a SELECT list: an expression with an optional alias, or `*`
/// (optionally qualified, `A.*`).
struct SelectItem {
  ExprPtr expr;       // null for star
  std::string alias;  // upper-cased, may be empty
  bool star = false;
  std::string star_qualifier;  // for "A.*"
};

/// One entry of a FROM list: a base table or a parenthesized subquery, with
/// an optional range-variable alias.
struct TableRef {
  std::string table;  // empty for subqueries
  std::string alias;  // empty when none given
  std::shared_ptr<SelectStmt> subquery;
};

/// One ORDER BY criterion.
struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A SELECT statement (possibly the head of a UNION chain; ORDER BY applies
/// to the whole chain and is only populated on the head).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                    // null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;                   // null when absent
  std::vector<OrderItem> order_by;
  std::shared_ptr<SelectStmt> union_next;  // next arm of the UNION chain
  bool union_all = false;                   // modifies the link to union_next
};

/// CREATE TABLE name (col type, ...)  or  CREATE TABLE name AS select.
struct CreateTableStmt {
  std::string name;
  std::vector<Column> columns;             // empty for AS form
  std::shared_ptr<SelectStmt> as_select;   // null for column-list form
};

/// INSERT INTO name VALUES (...), (...).
struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;
};

struct DropTableStmt {
  std::string table;
};

/// ANALYZE [table]: recompute catalog statistics.
struct AnalyzeStmt {
  std::string table;  // empty = all tables
};

/// CREATE INDEX name ON table (column).
struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::string column;
};

/// UPDATE table SET col = expr, ... [WHERE pred] — the temporal-update
/// pattern closes the current version (SET T2 = now) before a new version
/// is inserted.
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;  // column -> new value
  ExprPtr where;  // null = all rows
};

/// BEGIN / COMMIT / ROLLBACK / CHECKPOINT.
struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback, kCheckpoint };
  Kind kind = Kind::kBegin;
};

/// A parsed SQL statement (exactly one member is set).
struct Statement {
  std::shared_ptr<SelectStmt> select;
  std::shared_ptr<CreateTableStmt> create_table;
  std::shared_ptr<InsertStmt> insert;
  std::shared_ptr<DropTableStmt> drop_table;
  std::shared_ptr<AnalyzeStmt> analyze;
  std::shared_ptr<CreateIndexStmt> create_index;
  std::shared_ptr<UpdateStmt> update;
  std::shared_ptr<TxnStmt> txn;
};

}  // namespace sql
}  // namespace tango

#endif  // TANGO_SQL_AST_H_
