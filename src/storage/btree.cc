#include "storage/btree.h"

#include <algorithm>

namespace tango {
namespace storage {

void BPlusTree::Insert(const Value& key, const Rid& rid) {
  if (root_->keys.size() >= kMaxEntries) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
  ++size_;
}

void BPlusTree::SplitChild(Node* parent, size_t i) {
  Node* child = parent->children[i].get();
  auto sibling = std::make_unique<Node>(child->leaf);
  const size_t mid = child->keys.size() / 2;

  if (child->leaf) {
    // Right half moves to the sibling; the separator is the first key of the
    // sibling (B+-tree style: separators duplicate leaf keys).
    sibling->keys.assign(child->keys.begin() + mid, child->keys.end());
    sibling->rids.assign(child->rids.begin() + mid, child->rids.end());
    child->keys.resize(mid);
    child->rids.resize(mid);
    sibling->next = child->next;
    child->next = sibling.get();
    parent->keys.insert(parent->keys.begin() + i, sibling->keys.front());
  } else {
    // The middle key moves up; children split around it.
    const Value up = child->keys[mid];
    sibling->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t j = mid + 1; j < child->children.size(); ++j) {
      sibling->children.push_back(std::move(child->children[j]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + i, up);
  }
  parent->children.insert(parent->children.begin() + i + 1, std::move(sibling));
}

void BPlusTree::InsertNonFull(Node* node, const Value& key, const Rid& rid) {
  if (node->leaf) {
    // upper_bound keeps duplicate keys in insertion order.
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->rids.insert(node->rids.begin() + pos, rid);
    return;
  }
  size_t i = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  if (node->children[i]->keys.size() >= kMaxEntries) {
    SplitChild(node, i);
    if (key >= node->keys[i]) ++i;
  }
  InsertNonFull(node->children[i].get(), key, rid);
}

bool BPlusTree::Remove(const Value& key, const Rid& rid) {
  // Descend with lower_bound (mirrors FindLeaf) to the leftmost leaf that can
  // hold `key`, then walk the duplicate run along the leaf chain. Lazy
  // deletion: the entry is erased but nodes are never merged; empty leaves
  // stay on the chain and iterators skip them.
  Node* n = root_.get();
  while (!n->leaf) {
    const size_t i = static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[i].get();
  }
  while (n != nullptr) {
    const auto first =
        std::lower_bound(n->keys.begin(), n->keys.end(), key);
    size_t i = static_cast<size_t>(first - n->keys.begin());
    if (i < n->keys.size() && key < n->keys[i]) return false;  // past the run
    for (; i < n->keys.size() && !(key < n->keys[i]); ++i) {
      if (n->rids[i] == rid) {
        n->keys.erase(n->keys.begin() + i);
        n->rids.erase(n->rids.begin() + i);
        --size_;
        return true;
      }
    }
    if (i < n->keys.size()) return false;  // run ended inside this leaf
    n = n->next;  // run (or empty leaf) continues on the chain
  }
  return false;
}

size_t BPlusTree::height() const {
  size_t h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[0].get();
    ++h;
  }
  return h;
}

const BPlusTree::Node* BPlusTree::LeftmostLeaf() const {
  const Node* n = root_.get();
  while (!n->leaf) n = n->children[0].get();
  return n;
}

const BPlusTree::Node* BPlusTree::FindLeaf(const Value& key) const {
  // Descend with lower_bound so that duplicates of a separator key that live
  // in the left subtree are not skipped; the leaf chain walk in the iterator
  // then covers the duplicates that went right.
  const Node* n = root_.get();
  while (!n->leaf) {
    const size_t i = static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[i].get();
  }
  return n;
}

bool BPlusTree::Iterator::Valid() const {
  return leaf_ != nullptr;
}

bool BPlusTree::Iterator::Next(Value* key, Rid* rid) {
  const auto* leaf = static_cast<const Node*>(leaf_);
  while (leaf != nullptr && pos_ >= leaf->keys.size()) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
  if (leaf == nullptr) return false;
  *key = leaf->keys[pos_];
  *rid = leaf->rids[pos_];
  ++pos_;
  return true;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  Iterator it;
  it.leaf_ = LeftmostLeaf();
  it.pos_ = 0;
  return it;
}

BPlusTree::Iterator BPlusTree::SeekGE(const Value& key) const {
  Iterator it;
  const Node* leaf = FindLeaf(key);
  const size_t pos = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  it.leaf_ = leaf;
  it.pos_ = pos;
  return it;
}

BPlusTree::Iterator BPlusTree::SeekGT(const Value& key) const {
  // Descend with upper_bound to reach the *rightmost* leaf that can contain
  // `key`, so all duplicates are behind the returned position.
  const Node* n = root_.get();
  while (!n->leaf) {
    const size_t i = static_cast<size_t>(
        std::upper_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[i].get();
  }
  Iterator it;
  it.leaf_ = n;
  it.pos_ = static_cast<size_t>(
      std::upper_bound(n->keys.begin(), n->keys.end(), key) - n->keys.begin());
  return it;
}

std::vector<Rid> BPlusTree::Lookup(const Value& key) const {
  std::vector<Rid> out;
  Iterator it = SeekGE(key);
  Value k;
  Rid rid;
  while (it.Next(&k, &rid)) {
    if (k != key) break;
    out.push_back(rid);
  }
  return out;
}

size_t BPlusTree::LeafDepth() const {
  size_t d = 0;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[0].get();
    ++d;
  }
  return d;
}

bool BPlusTree::CheckNode(const Node* node, const Value* lo, const Value* hi,
                          size_t depth, size_t leaf_depth,
                          std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  // Keys sorted and within (lo, hi] bounds.
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (i + 1 < node->keys.size() && node->keys[i] > node->keys[i + 1]) {
      return fail("unsorted keys in node");
    }
    if (lo != nullptr && node->keys[i] < *lo) return fail("key below bound");
    if (hi != nullptr && node->keys[i] > *hi) return fail("key above bound");
  }
  if (node->leaf) {
    if (depth != leaf_depth) return fail("leaves at different depths");
    if (node->keys.size() != node->rids.size()) {
      return fail("leaf key/rid size mismatch");
    }
    return true;
  }
  if (node->children.size() != node->keys.size() + 1) {
    return fail("internal child count mismatch");
  }
  // Fill bound: every non-root node must be at least ~1/3 full after splits.
  if (node != root_.get() && node->keys.size() < kMaxEntries / 4) {
    return fail("underfull internal node");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Value* clo = (i == 0) ? lo : &node->keys[i - 1];
    const Value* chi = (i == node->keys.size()) ? hi : &node->keys[i];
    if (!CheckNode(node->children[i].get(), clo, chi, depth + 1, leaf_depth,
                   error)) {
      return false;
    }
  }
  return true;
}

bool BPlusTree::CheckInvariants(std::string* error) const {
  if (!CheckNode(root_.get(), nullptr, nullptr, 0, LeafDepth(), error)) {
    return false;
  }
  // Leaf chain must visit exactly `size_` entries in nondecreasing order.
  size_t count = 0;
  const Node* leaf = LeftmostLeaf();
  const Value* prev = nullptr;
  while (leaf != nullptr) {
    for (const Value& k : leaf->keys) {
      if (prev != nullptr && *prev > k) {
        if (error != nullptr) *error = "leaf chain out of order";
        return false;
      }
      prev = &k;
      ++count;
    }
    leaf = leaf->next;
  }
  if (count != size_) {
    if (error != nullptr) *error = "leaf chain entry count mismatch";
    return false;
  }
  return true;
}

}  // namespace storage
}  // namespace tango
