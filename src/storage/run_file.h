#ifndef TANGO_STORAGE_RUN_FILE_H_
#define TANGO_STORAGE_RUN_FILE_H_

#include <cstdio>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace tango {
namespace storage {

/// \brief Spill file holding one sorted run of an external sort.
///
/// Tuples are appended via the wire codec and read back sequentially. The
/// backing file is an anonymous tmpfile, deleted automatically on close —
/// this is what lets the middleware algorithms "support very large
/// relations" (the paper's future-work item).
class RunFile {
 public:
  RunFile() = default;
  ~RunFile() { Close(); }

  RunFile(const RunFile&) = delete;
  RunFile& operator=(const RunFile&) = delete;
  RunFile(RunFile&& other) noexcept { *this = std::move(other); }
  RunFile& operator=(RunFile&& other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      count_ = other.count_;
      other.file_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }

  /// Opens the backing tmpfile for writing.
  Status Open();

  /// Appends one tuple (write phase only).
  Status Append(const Tuple& tuple);

  /// Switches from writing to reading (rewinds).
  Status Rewind();

  /// Reads the next tuple; returns false at end of run.
  Result<bool> Next(Tuple* tuple);

  size_t count() const { return count_; }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  std::FILE* file_ = nullptr;
  size_t count_ = 0;
};

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_RUN_FILE_H_
