#ifndef TANGO_STORAGE_BTREE_H_
#define TANGO_STORAGE_BTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/page.h"

namespace tango {
namespace storage {

/// \brief In-memory B+-tree secondary index over one attribute.
///
/// Keys are attribute `Value`s (duplicates allowed); payloads are record ids
/// into the owning heap file. Supports point and range scans; the DBMS
/// planner uses it for indexed selections and index-nested-loop joins, and
/// the catalog derives the "clustering" statistic by comparing leaf order
/// with heap order.
class BPlusTree {
 public:
  BPlusTree() { root_ = std::make_unique<Node>(/*leaf=*/true); }

  /// Inserts a (key, rid) entry; duplicate keys are kept in insert order.
  void Insert(const Value& key, const Rid& rid);

  /// Removes the entry matching (key, rid) exactly; false if absent.
  /// Deletion is lazy: entries leave their leaf but nodes never merge, so a
  /// leaf may become empty (iterators skip empty leaves on the chain).
  bool Remove(const Value& key, const Rid& rid);

  size_t size() const { return size_; }
  size_t height() const;

  /// \brief Forward scan over (key, rid) entries in key order.
  class Iterator {
   public:
    /// False when exhausted.
    bool Next(Value* key, Rid* rid);
    bool Valid() const;

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // current leaf node
    size_t pos_ = 0;
  };

  /// Iterator positioned at the smallest key.
  Iterator Begin() const;

  /// Iterator positioned at the first entry with key >= `key`.
  Iterator SeekGE(const Value& key) const;

  /// Iterator positioned at the first entry with key > `key`.
  Iterator SeekGT(const Value& key) const;

  /// Collects the rids of all entries with exactly this key.
  std::vector<Rid> Lookup(const Value& key) const;

  /// Internal invariant check used by the property tests: sorted leaves,
  /// linked leaf chain consistent, separator keys correct, node fill bounds.
  bool CheckInvariants(std::string* error = nullptr) const;

 private:
  static constexpr size_t kMaxEntries = 64;  // fan-out

  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Value> keys;
    // Leaf payloads (parallel to keys).
    std::vector<Rid> rids;
    // Internal children: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    Node* next = nullptr;  // leaf chain
  };

  // Splits `child` (the i-th child of `parent`) in half.
  void SplitChild(Node* parent, size_t i);
  void InsertNonFull(Node* node, const Value& key, const Rid& rid);
  const Node* LeftmostLeaf() const;
  const Node* FindLeaf(const Value& key) const;
  bool CheckNode(const Node* node, const Value* lo, const Value* hi,
                 size_t depth, size_t leaf_depth, std::string* error) const;
  size_t LeafDepth() const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_BTREE_H_
