#ifndef TANGO_STORAGE_WAL_H_
#define TANGO_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/page.h"

namespace tango {
namespace storage {

/// Log sequence number: 1 + the logical byte offset of the record's frame in
/// the (segment-spanning) log stream. 0 means "no record".
using Lsn = uint64_t;
constexpr Lsn kNoLsn = 0;

/// Record types. Two families:
///  * transactional (kInsert/kUpdate/kClr*/kCommit/kEnd): carry a txn id;
///    their effects are undone at recovery unless the txn's kCommit record
///    is durable;
///  * system (the rest, txn = 0): self-committing — the record is forced to
///    disk *before* the operation is applied, so a durable record means the
///    operation happened and an absent one means it never did. DDL, ANALYZE,
///    direct-path loads and checkpoints are system records; this keeps undo
///    to exactly the two row-level operations that have before-images.
enum class WalRecordType : uint8_t {
  kCommit = 1,
  kEnd = 2,         // txn fully resolved (post-commit / post-rollback)
  kInsert = 3,      // rows = {after}
  kUpdate = 4,      // rows = {before, after}
  kClrInsert = 5,   // compensation: the insert at `rid` was marked dead
  kClrUpdate = 6,   // compensation: rows = {restored before-image}
  kCreateTable = 7,
  kDropTable = 8,
  kCreateIndex = 9,  // aux = column index
  kAnalyze = 10,     // aux = histogram buckets (replayed for stats identity)
  kBulkLoad = 11,    // rows = the whole direct-path batch
  kCheckpoint = 12,  // aux = snapshot lsn; active_txns = fuzzy txn table
};

const char* WalRecordTypeName(WalRecordType type);

/// One log record. A fat struct: every field is encoded unconditionally
/// (empty vectors cost four bytes), which keeps the codec trivial and the
/// torn-tail scanner honest — there is exactly one frame layout.
struct WalRecord {
  WalRecordType type = WalRecordType::kEnd;
  /// Assigned by Wal::Append.
  Lsn lsn = kNoLsn;
  /// 0 for system records.
  uint64_t txn = 0;
  /// Previous record of the same txn (undo chain); kNoLsn for the first.
  Lsn prev_lsn = kNoLsn;
  /// CLRs only: next record of this txn still to undo (the undone record's
  /// prev_lsn) — recovery resumes an interrupted rollback from here instead
  /// of undoing anything twice.
  Lsn undo_next = kNoLsn;
  std::string table;
  Rid rid;
  /// Row images; meaning depends on `type` (see the enum).
  std::vector<Tuple> rows;
  /// Multi-purpose scalar: histogram buckets (kAnalyze), indexed column
  /// (kCreateIndex), snapshot lsn (kCheckpoint).
  uint64_t aux = 0;
  /// kCreateTable: the new table's columns.
  std::vector<Column> schema_columns;
  /// kCheckpoint: (txn id, first lsn) of every txn active at the checkpoint;
  /// log truncation must keep everything from min(first lsn) onward.
  std::vector<std::pair<uint64_t, Lsn>> active_txns;

  std::vector<uint8_t> Encode() const;
  static Result<WalRecord> Decode(const uint8_t* data, size_t size);
};

/// Injected misbehavior of the log device, decided per append/sync by the
/// installed hook (the DBMS adapts its FaultInjector into this shape; the
/// storage layer stays independent of dbms/).
struct WalFault {
  enum class Action : uint8_t {
    kNone,
    /// Process dies before the bytes reach the log buffer.
    kCrash,
    /// The tail record is torn: only `keep_bytes` of its frame persist.
    kTorn,
    /// fsync lies: only `keep_bytes` of the pending buffer persist.
    kPartialFsync,
  };
  Action action = Action::kNone;
  uint64_t keep_bytes = 0;
};

/// (is_sync, lsn, bytes): lsn is the record's lsn for appends and the log
/// end for syncs; bytes is the frame / pending-buffer size.
using WalFaultHook = std::function<WalFault(bool, Lsn, size_t)>;

/// \brief Append-only write-ahead log over CRC-framed segment files.
///
/// Records are buffered in memory by Append and hit the disk on Sync — the
/// durability point (a transaction is committed exactly when the Sync after
/// its kCommit record returns). Each record crosses into a segment file as a
/// `[u32 len][u32 crc32]` WireFrame, so the recovery scanner detects a torn
/// tail (partial frame or CRC mismatch) as the clean end of the log rather
/// than decoding garbage. Segment files are named `wal-<start offset>.seg`
/// and roll over at `segment_bytes`; a frame never spans segments.
///
/// After an injected fault fires the log is `crashed()`: every operation
/// fails kUnavailable, modeling a halted server. Tests then open a fresh
/// Wal (and Engine) over the same directory and recover.
class Wal {
 public:
  Wal(std::string dir, size_t segment_bytes = 1 << 20)
      : dir_(std::move(dir)), segment_bytes_(segment_bytes) {}

  /// Creates the directory if needed and positions the append point after
  /// the last complete frame already on disk.
  Status Open();

  /// Buffers one record, assigning record.lsn. Not yet durable.
  Result<Lsn> Append(WalRecord* record);

  /// Flushes the pending buffer to the current segment and fsyncs it.
  Status Sync();

  /// Removes every segment that ends strictly before `lsn` (and any
  /// snapshot file older than `keep_snapshot`); returns how many files were
  /// reclaimed. Safe to call on a live log — the current segment survives.
  Result<size_t> TruncateBefore(Lsn lsn, Lsn keep_snapshot);

  bool crashed() const { return crashed_; }
  /// End of the log including pending bytes (the next record's lsn).
  Lsn end_lsn() const { return end_ + 1; }
  /// End of the durable prefix.
  Lsn durable_lsn() const { return durable_ + 1; }
  uint64_t appends() const { return appends_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  size_t num_segments() const { return segments_.size(); }
  const std::string& dir() const { return dir_; }

  void set_fault_hook(WalFaultHook hook) { fault_hook_ = std::move(hook); }

  // ---- snapshot (fuzzy checkpoint) files ----
  /// `snap-<lsn>.ckpt` in `dir`.
  static std::string SnapshotPath(const std::string& dir, Lsn lsn);
  /// Writes a CRC-framed file atomically (tmp file + rename).
  static Status WriteSealedFile(const std::string& path,
                                const std::vector<uint8_t>& payload);
  /// Reads and verifies a CRC-framed file.
  static Result<std::vector<uint8_t>> ReadSealedFile(const std::string& path);
  /// Snapshot lsns present in `dir`, ascending.
  static std::vector<Lsn> ListSnapshots(const std::string& dir);

 private:
  struct Segment {
    uint64_t start = 0;  // logical offset of the segment's first byte
    uint64_t size = 0;   // durable bytes in the file
  };

  std::string SegmentPath(uint64_t start) const;
  /// Appends `data` to the last segment (rolling over first if it is full),
  /// fsyncs, and advances durable_.
  Status WriteDurable(const std::vector<uint8_t>& data);

  std::string dir_;
  size_t segment_bytes_;
  std::vector<Segment> segments_;
  std::vector<uint8_t> pending_;  // appended, not yet synced
  uint64_t end_ = 0;              // logical offset incl. pending
  uint64_t durable_ = 0;          // logical offset synced to disk
  bool crashed_ = false;
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
  uint64_t bytes_appended_ = 0;
  WalFaultHook fault_hook_;
};

/// What a full scan of the durable log found.
struct WalScan {
  std::vector<WalRecord> records;
  /// First retained lsn (after truncation); kNoLsn+1 when the log starts at
  /// its very beginning.
  Lsn start_lsn = 1;
  /// True when the scan stopped at a damaged/short frame (torn tail).
  bool torn_tail = false;
  /// Bytes discarded at the tail.
  uint64_t torn_bytes = 0;
};

/// Reads every complete, checksummed record from the segments in `dir`.
/// A damaged frame ends the scan: with real torn writes only the tail can
/// be damaged, and everything after it is by definition not durable.
Result<WalScan> ReadWal(const std::string& dir);

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_WAL_H_
