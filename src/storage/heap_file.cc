#include "storage/heap_file.h"

namespace tango {
namespace storage {

Rid HeapFile::Append(const Tuple& tuple) {
  WireWriter writer;
  writer.PutTuple(tuple);
  const std::vector<uint8_t>& encoded = writer.buffer();
  if (pages_.empty()) pages_.emplace_back(page_size_);
  int slot = pages_.back().Append(encoded);
  if (slot < 0) {
    pages_.emplace_back(page_size_);
    slot = pages_.back().Append(encoded);
  }
  ++num_tuples_;
  total_bytes_ += encoded.size();
  return Rid{static_cast<uint32_t>(pages_.size() - 1),
             static_cast<uint32_t>(slot)};
}

Result<Tuple> HeapFile::Get(const Rid& rid) const {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  return pages_[rid.page].Read(rid.slot);
}

bool HeapFile::Iterator::Next(Tuple* tuple, Rid* rid) {
  while (page_ < file_->pages_.size()) {
    const Page& p = file_->pages_[page_];
    if (slot_ < p.num_slots()) {
      Result<Tuple> t = p.Read(slot_);
      if (!t.ok()) return false;  // pages are never corrupt in-memory
      *tuple = t.MoveValueOrDie();
      if (rid != nullptr) {
        *rid = Rid{static_cast<uint32_t>(page_), static_cast<uint32_t>(slot_)};
      }
      ++slot_;
      return true;
    }
    ++page_;
    slot_ = 0;
  }
  return false;
}

}  // namespace storage
}  // namespace tango
