#include "storage/heap_file.h"

namespace tango {
namespace storage {

Rid HeapFile::AppendStamped(const Tuple& tuple, uint64_t lsn) {
  WireWriter writer;
  writer.PutTuple(tuple);
  const std::vector<uint8_t>& encoded = writer.buffer();
  if (pages_.empty()) pages_.emplace_back(page_size_);
  int slot = pages_.back().Append(encoded);
  if (slot < 0) {
    pages_.emplace_back(page_size_);
    slot = pages_.back().Append(encoded);
  }
  pages_.back().StampLsn(lsn);
  ++num_tuples_;
  total_bytes_ += encoded.size();
  return Rid{static_cast<uint32_t>(pages_.size() - 1),
             static_cast<uint32_t>(slot)};
}

Status HeapFile::Update(const Rid& rid, const Tuple& tuple, uint64_t lsn) {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  Page& page = pages_[rid.page];
  if (rid.slot >= page.num_slots()) return Status::NotFound("bad slot");
  const uint32_t old_len = page.SlotLength(rid.slot);
  WireWriter writer;
  writer.PutTuple(tuple);
  TANGO_RETURN_IF_ERROR(page.Rewrite(rid.slot, writer.buffer()));
  page.StampLsn(lsn);
  if (!page.dead(rid.slot)) {
    total_bytes_ += writer.buffer().size();
    total_bytes_ -= old_len;
  }
  return Status::OK();
}

Status HeapFile::MarkDeleted(const Rid& rid, uint64_t lsn) {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  Page& page = pages_[rid.page];
  if (rid.slot >= page.num_slots()) return Status::NotFound("bad slot");
  if (!page.dead(rid.slot)) {
    page.MarkDead(rid.slot);
    --num_tuples_;
    total_bytes_ -= page.SlotLength(rid.slot);
  }
  page.StampLsn(lsn);
  return Status::OK();
}

Result<Tuple> HeapFile::Get(const Rid& rid) const {
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  return pages_[rid.page].Read(rid.slot);
}

bool HeapFile::IsDead(const Rid& rid) const {
  if (rid.page >= pages_.size()) return true;
  const Page& page = pages_[rid.page];
  if (rid.slot >= page.num_slots()) return true;
  return page.dead(rid.slot);
}

bool HeapFile::Iterator::Next(Tuple* tuple, Rid* rid) {
  while (page_ < file_->pages_.size()) {
    const Page& p = file_->pages_[page_];
    if (slot_ < p.num_slots()) {
      if (p.dead(slot_)) {
        ++slot_;
        continue;
      }
      Result<Tuple> t = p.Read(slot_);
      if (!t.ok()) return false;  // pages are never corrupt in-memory
      *tuple = t.MoveValueOrDie();
      if (rid != nullptr) {
        *rid = Rid{static_cast<uint32_t>(page_), static_cast<uint32_t>(slot_)};
      }
      ++slot_;
      return true;
    }
    ++page_;
    slot_ = 0;
  }
  return false;
}

void HeapFile::SerializeTo(WireWriter* w) const {
  w->PutU32(static_cast<uint32_t>(pages_.size()));
  for (const Page& page : pages_) {
    w->PutI64(static_cast<int64_t>(page.lsn()));
    w->PutU32(static_cast<uint32_t>(page.num_slots()));
    for (size_t s = 0; s < page.num_slots(); ++s) {
      w->PutU8(page.dead(s) ? 1 : 0);
      const auto [bytes, len] = page.SlotBytes(s);
      w->PutU32(len);
      for (uint32_t i = 0; i < len; ++i) w->PutU8(bytes[i]);
    }
  }
}

Status HeapFile::SerializeFrom(WireReader* r) {
  pages_.clear();
  num_tuples_ = 0;
  total_bytes_ = 0;
  TANGO_ASSIGN_OR_RETURN(const uint32_t npages, r->GetU32());
  for (uint32_t p = 0; p < npages; ++p) {
    pages_.emplace_back(page_size_);
    Page& page = pages_.back();
    TANGO_ASSIGN_OR_RETURN(const int64_t lsn, r->GetI64());
    page.StampLsn(static_cast<uint64_t>(lsn));
    TANGO_ASSIGN_OR_RETURN(const uint32_t nslots, r->GetU32());
    for (uint32_t s = 0; s < nslots; ++s) {
      TANGO_ASSIGN_OR_RETURN(const uint8_t dead, r->GetU8());
      TANGO_ASSIGN_OR_RETURN(const uint32_t len, r->GetU32());
      std::vector<uint8_t> bytes(len);
      for (uint32_t i = 0; i < len; ++i) {
        TANGO_ASSIGN_OR_RETURN(bytes[i], r->GetU8());
      }
      // Force: reconstruction must restore the exact page boundaries even
      // where rewrites grew a page past its nominal capacity.
      page.AppendForce(bytes);
      if (dead != 0) {
        page.MarkDead(s);
      } else {
        ++num_tuples_;
        total_bytes_ += len;
      }
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace tango
