#include "storage/run_file.h"

#include <vector>

#include "common/wire.h"

namespace tango {
namespace storage {

Status RunFile::Open() {
  Close();
  file_ = std::tmpfile();
  if (file_ == nullptr) return Status::IOError("tmpfile() failed");
  count_ = 0;
  return Status::OK();
}

Status RunFile::Append(const Tuple& tuple) {
  WireWriter writer;
  writer.PutTuple(tuple);
  const uint32_t n = static_cast<uint32_t>(writer.size());
  if (std::fwrite(&n, sizeof(n), 1, file_) != 1 ||
      std::fwrite(writer.buffer().data(), 1, n, file_) != n) {
    return Status::IOError("run file write failed");
  }
  ++count_;
  return Status::OK();
}

Status RunFile::Rewind() {
  if (file_ == nullptr) return Status::IOError("run file not open");
  std::rewind(file_);
  return Status::OK();
}

Result<bool> RunFile::Next(Tuple* tuple) {
  uint32_t n = 0;
  const size_t got = std::fread(&n, sizeof(n), 1, file_);
  if (got != 1) return false;  // end of run
  std::vector<uint8_t> buf(n);
  if (std::fread(buf.data(), 1, n, file_) != n) {
    return Status::IOError("truncated run file");
  }
  WireReader reader(buf);
  TANGO_ASSIGN_OR_RETURN(*tuple, reader.GetTuple());
  return true;
}

}  // namespace storage
}  // namespace tango
