#ifndef TANGO_STORAGE_PAGE_H_
#define TANGO_STORAGE_PAGE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "common/wire.h"

namespace tango {
namespace storage {

/// Default page size; 8 KiB like most disk-based engines. Block counts
/// derived from it feed the catalog statistics (`blocks(r)`).
constexpr size_t kDefaultPageSize = 8192;

/// \brief A slotted page holding serialized tuples.
///
/// Tuples are appended at the front of free space; a slot directory at the
/// logical end records (offset, length) pairs. The write path adds in-place
/// rewrites (temporal updates timestamp the current version's T2), a dead
/// mark per slot (transaction undo never compacts — it tombstones, like a
/// real slotted page's delete), and a page LSN: the LSN of the last logged
/// change applied to the page, which makes recovery's redo idempotent
/// (redo skips any record whose LSN the page has already seen).
class Page {
 public:
  explicit Page(size_t capacity = kDefaultPageSize) : capacity_(capacity) {}

  /// Appends an encoded tuple; returns the slot index, or -1 if it no longer
  /// fits (caller then allocates a fresh page).
  int Append(const std::vector<uint8_t>& encoded) {
    if (used_ + encoded.size() + kSlotOverhead > capacity_ && !slots_.empty()) {
      return -1;
    }
    return AppendForce(encoded);
  }

  /// Appends without the capacity check — snapshot reconstruction must
  /// restore the original page boundaries even for pages that grew past
  /// capacity through rewrites.
  int AppendForce(const std::vector<uint8_t>& encoded) {
    Slot s;
    s.offset = static_cast<uint32_t>(data_.size());
    s.length = static_cast<uint32_t>(encoded.size());
    data_.insert(data_.end(), encoded.begin(), encoded.end());
    slots_.push_back(s);
    dead_.push_back(0);
    used_ += encoded.size() + kSlotOverhead;
    return static_cast<int>(slots_.size() - 1);
  }

  /// Replaces the tuple in `slot`: in place when the new image fits the old
  /// footprint, otherwise the bytes move to the end of the data area and the
  /// slot is repointed (the page may then exceed its nominal capacity; the
  /// append path never chooses it again once full, so the overflow is
  /// bounded by one tuple's growth per rewrite).
  Status Rewrite(size_t slot, const std::vector<uint8_t>& encoded) {
    if (slot >= slots_.size()) return Status::NotFound("bad slot");
    Slot& s = slots_[slot];
    if (encoded.size() <= s.length) {
      std::copy(encoded.begin(), encoded.end(), data_.begin() + s.offset);
      used_ -= s.length - encoded.size();
      s.length = static_cast<uint32_t>(encoded.size());
      return Status::OK();
    }
    used_ += encoded.size() - s.length;
    s.offset = static_cast<uint32_t>(data_.size());
    s.length = static_cast<uint32_t>(encoded.size());
    data_.insert(data_.end(), encoded.begin(), encoded.end());
    return Status::OK();
  }

  size_t num_slots() const { return slots_.size(); }
  size_t used_bytes() const { return used_; }

  /// Decodes the tuple in the given slot (dead or alive — undo and
  /// diagnostics read tombstoned rows; scans skip them via `dead()`).
  Result<Tuple> Read(size_t slot) const {
    if (slot >= slots_.size()) return Status::NotFound("bad slot");
    const Slot& s = slots_[slot];
    WireReader reader(data_.data() + s.offset, s.length);
    return reader.GetTuple();
  }

  /// Raw encoded bytes of a slot (snapshot serialization).
  std::pair<const uint8_t*, uint32_t> SlotBytes(size_t slot) const {
    const Slot& s = slots_[slot];
    return {data_.data() + s.offset, s.length};
  }
  uint32_t SlotLength(size_t slot) const { return slots_[slot].length; }

  bool dead(size_t slot) const { return dead_[slot] != 0; }
  void MarkDead(size_t slot) { dead_[slot] = 1; }

  /// LSN of the last logged change applied to this page; redo of any record
  /// with lsn <= page lsn is skipped (idempotence).
  uint64_t lsn() const { return lsn_; }
  void StampLsn(uint64_t lsn) {
    if (lsn > lsn_) lsn_ = lsn;
  }

 private:
  struct Slot {
    uint32_t offset;
    uint32_t length;
  };
  static constexpr size_t kSlotOverhead = sizeof(Slot);

  size_t capacity_;
  size_t used_ = 0;
  uint64_t lsn_ = 0;
  std::vector<uint8_t> data_;
  std::vector<Slot> slots_;
  std::vector<uint8_t> dead_;  // parallel to slots_
};

/// Record identifier: page number and slot within the page.
struct Rid {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid&) const = default;
};

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_PAGE_H_
