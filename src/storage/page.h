#ifndef TANGO_STORAGE_PAGE_H_
#define TANGO_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "common/wire.h"

namespace tango {
namespace storage {

/// Default page size; 8 KiB like most disk-based engines. Block counts
/// derived from it feed the catalog statistics (`blocks(r)`).
constexpr size_t kDefaultPageSize = 8192;

/// \brief A slotted page holding serialized tuples.
///
/// Tuples are appended at the front of free space; a slot directory at the
/// logical end records (offset, length) pairs. There is no delete/compact
/// support — the middleware's `T^D` tables are write-once, matching the
/// paper's "blocks of the new table do not have to contain any free space
/// because the table will never be updated".
class Page {
 public:
  explicit Page(size_t capacity = kDefaultPageSize) : capacity_(capacity) {}

  /// Appends an encoded tuple; returns the slot index, or -1 if it no longer
  /// fits (caller then allocates a fresh page).
  int Append(const std::vector<uint8_t>& encoded) {
    if (used_ + encoded.size() + kSlotOverhead > capacity_ && !slots_.empty()) {
      return -1;
    }
    Slot s;
    s.offset = static_cast<uint32_t>(data_.size());
    s.length = static_cast<uint32_t>(encoded.size());
    data_.insert(data_.end(), encoded.begin(), encoded.end());
    slots_.push_back(s);
    used_ += encoded.size() + kSlotOverhead;
    return static_cast<int>(slots_.size() - 1);
  }

  size_t num_slots() const { return slots_.size(); }
  size_t used_bytes() const { return used_; }

  /// Decodes the tuple in the given slot.
  Result<Tuple> Read(size_t slot) const {
    if (slot >= slots_.size()) return Status::NotFound("bad slot");
    const Slot& s = slots_[slot];
    WireReader reader(data_.data() + s.offset, s.length);
    return reader.GetTuple();
  }

 private:
  struct Slot {
    uint32_t offset;
    uint32_t length;
  };
  static constexpr size_t kSlotOverhead = sizeof(Slot);

  size_t capacity_;
  size_t used_ = 0;
  std::vector<uint8_t> data_;
  std::vector<Slot> slots_;
};

/// Record identifier: page number and slot within the page.
struct Rid {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid&) const = default;
};

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_PAGE_H_
