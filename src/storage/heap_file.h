#ifndef TANGO_STORAGE_HEAP_FILE_H_
#define TANGO_STORAGE_HEAP_FILE_H_

#include <memory>
#include <vector>

#include "common/schema.h"
#include "common/wire.h"
#include "storage/page.h"

namespace tango {
namespace storage {

/// \brief Heap file of pages; the physical representation of every DBMS
/// table (base tables and the `T^D` temporaries alike).
///
/// The read path is append/scan only; the durable write path adds in-place
/// updates (the temporal-update pattern rewrites the current version's T2),
/// tombstone deletes (transaction undo marks inserted rows dead rather than
/// compacting), and LSN stamping so recovery's redo is idempotent. Scans and
/// statistics see live rows only.
class HeapFile {
 public:
  explicit HeapFile(Schema schema, size_t page_size = kDefaultPageSize)
      : schema_(std::move(schema)), page_size_(page_size) {}

  const Schema& schema() const { return schema_; }

  /// Appends a tuple, returning its record id.
  Rid Append(const Tuple& tuple) { return AppendStamped(tuple, 0); }

  /// Appends a tuple and stamps the target page with the logging LSN
  /// (0 = unlogged).
  Rid AppendStamped(const Tuple& tuple, uint64_t lsn);

  /// Replaces the tuple at `rid` in place, stamping the page.
  Status Update(const Rid& rid, const Tuple& tuple, uint64_t lsn);

  /// Tombstones the tuple at `rid` (idempotent), stamping the page.
  Status MarkDeleted(const Rid& rid, uint64_t lsn);

  /// Reads the tuple at `rid` (dead or alive — undo reads tombstones).
  Result<Tuple> Get(const Rid& rid) const;

  bool IsDead(const Rid& rid) const;
  uint64_t PageLsn(uint32_t page) const {
    return page < pages_.size() ? pages_[page].lsn() : 0;
  }
  /// Stamps a page after the fact — the DML path applies first (the rid is
  /// not known until then), appends the log record, and stamps the page with
  /// the record's lsn.
  void StampPageLsn(uint32_t page, uint64_t lsn) {
    if (page < pages_.size()) pages_[page].StampLsn(lsn);
  }

  /// Live tuples (dead rows are invisible to scans and statistics).
  size_t num_tuples() const { return num_tuples_; }
  size_t num_pages() const { return pages_.size(); }
  /// Total encoded bytes of live tuples — `size(r)` before averaging.
  size_t total_bytes() const { return total_bytes_; }
  double avg_tuple_bytes() const {
    return num_tuples_ == 0
               ? 0.0
               : static_cast<double>(total_bytes_) / static_cast<double>(num_tuples_);
  }

  /// \brief Sequential scan yielding live tuples (and their rids) page by
  /// page; tombstoned rows are skipped.
  class Iterator {
   public:
    explicit Iterator(const HeapFile* file) : file_(file) {}

    /// Advances to the next live tuple; false at end of file.
    bool Next(Tuple* tuple, Rid* rid = nullptr);

   private:
    const HeapFile* file_;
    size_t page_ = 0;
    size_t slot_ = 0;
  };

  Iterator Scan() const { return Iterator(this); }

  /// Serializes pages (boundaries, LSNs, dead marks, raw tuple bytes) for a
  /// checkpoint snapshot; SerializeFrom rebuilds the identical layout.
  void SerializeTo(WireWriter* w) const;
  Status SerializeFrom(WireReader* r);

 private:
  Schema schema_;
  size_t page_size_;
  std::vector<Page> pages_;
  size_t num_tuples_ = 0;
  size_t total_bytes_ = 0;
};

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_HEAP_FILE_H_
