#ifndef TANGO_STORAGE_HEAP_FILE_H_
#define TANGO_STORAGE_HEAP_FILE_H_

#include <memory>
#include <vector>

#include "common/schema.h"
#include "storage/page.h"

namespace tango {
namespace storage {

/// \brief Append-only heap file of pages; the physical representation of
/// every DBMS table (base tables and the `T^D` temporaries alike).
class HeapFile {
 public:
  explicit HeapFile(Schema schema, size_t page_size = kDefaultPageSize)
      : schema_(std::move(schema)), page_size_(page_size) {}

  const Schema& schema() const { return schema_; }

  /// Appends a tuple, returning its record id.
  Rid Append(const Tuple& tuple);

  /// Reads the tuple at `rid`.
  Result<Tuple> Get(const Rid& rid) const;

  size_t num_tuples() const { return num_tuples_; }
  size_t num_pages() const { return pages_.size(); }
  /// Total encoded bytes — the `size(r)` statistic before averaging.
  size_t total_bytes() const { return total_bytes_; }
  double avg_tuple_bytes() const {
    return num_tuples_ == 0
               ? 0.0
               : static_cast<double>(total_bytes_) / static_cast<double>(num_tuples_);
  }

  /// \brief Sequential scan yielding tuples (and their rids) page by page.
  class Iterator {
   public:
    explicit Iterator(const HeapFile* file) : file_(file) {}

    /// Advances to the next tuple; false at end of file.
    bool Next(Tuple* tuple, Rid* rid = nullptr);

   private:
    const HeapFile* file_;
    size_t page_ = 0;
    size_t slot_ = 0;
  };

  Iterator Scan() const { return Iterator(this); }

 private:
  Schema schema_;
  size_t page_size_;
  std::vector<Page> pages_;
  size_t num_tuples_ = 0;
  size_t total_bytes_ = 0;
};

}  // namespace storage
}  // namespace tango

#endif  // TANGO_STORAGE_HEAP_FILE_H_
