#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/wire.h"

namespace tango {
namespace storage {

namespace fs = std::filesystem;

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kEnd:
      return "end";
    case WalRecordType::kInsert:
      return "insert";
    case WalRecordType::kUpdate:
      return "update";
    case WalRecordType::kClrInsert:
      return "clr-insert";
    case WalRecordType::kClrUpdate:
      return "clr-update";
    case WalRecordType::kCreateTable:
      return "create-table";
    case WalRecordType::kDropTable:
      return "drop-table";
    case WalRecordType::kCreateIndex:
      return "create-index";
    case WalRecordType::kAnalyze:
      return "analyze";
    case WalRecordType::kBulkLoad:
      return "bulk-load";
    case WalRecordType::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

std::vector<uint8_t> WalRecord::Encode() const {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutI64(static_cast<int64_t>(txn));
  w.PutI64(static_cast<int64_t>(prev_lsn));
  w.PutI64(static_cast<int64_t>(undo_next));
  w.PutString(table);
  w.PutU32(rid.page);
  w.PutU32(rid.slot);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Tuple& t : rows) w.PutTuple(t);
  w.PutI64(static_cast<int64_t>(aux));
  w.PutU32(static_cast<uint32_t>(schema_columns.size()));
  for (const Column& c : schema_columns) {
    w.PutString(c.name);
    w.PutU8(static_cast<uint8_t>(c.type));
  }
  w.PutU32(static_cast<uint32_t>(active_txns.size()));
  for (const auto& [id, first] : active_txns) {
    w.PutI64(static_cast<int64_t>(id));
    w.PutI64(static_cast<int64_t>(first));
  }
  return w.Take();
}

Result<WalRecord> WalRecord::Decode(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  WalRecord rec;
  TANGO_ASSIGN_OR_RETURN(const uint8_t type, r.GetU8());
  if (type < static_cast<uint8_t>(WalRecordType::kCommit) ||
      type > static_cast<uint8_t>(WalRecordType::kCheckpoint)) {
    return Status::IOError("unknown wal record type " + std::to_string(type));
  }
  rec.type = static_cast<WalRecordType>(type);
  TANGO_ASSIGN_OR_RETURN(int64_t txn, r.GetI64());
  rec.txn = static_cast<uint64_t>(txn);
  TANGO_ASSIGN_OR_RETURN(int64_t prev, r.GetI64());
  rec.prev_lsn = static_cast<Lsn>(prev);
  TANGO_ASSIGN_OR_RETURN(int64_t un, r.GetI64());
  rec.undo_next = static_cast<Lsn>(un);
  TANGO_ASSIGN_OR_RETURN(rec.table, r.GetString());
  TANGO_ASSIGN_OR_RETURN(rec.rid.page, r.GetU32());
  TANGO_ASSIGN_OR_RETURN(rec.rid.slot, r.GetU32());
  TANGO_ASSIGN_OR_RETURN(const uint32_t nrows, r.GetU32());
  rec.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    TANGO_ASSIGN_OR_RETURN(Tuple t, r.GetTuple());
    rec.rows.push_back(std::move(t));
  }
  TANGO_ASSIGN_OR_RETURN(int64_t aux, r.GetI64());
  rec.aux = static_cast<uint64_t>(aux);
  TANGO_ASSIGN_OR_RETURN(const uint32_t ncols, r.GetU32());
  rec.schema_columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column c;
    TANGO_ASSIGN_OR_RETURN(c.name, r.GetString());
    TANGO_ASSIGN_OR_RETURN(const uint8_t dt, r.GetU8());
    c.type = static_cast<DataType>(dt);
    rec.schema_columns.push_back(std::move(c));
  }
  TANGO_ASSIGN_OR_RETURN(const uint32_t nactive, r.GetU32());
  rec.active_txns.reserve(nactive);
  for (uint32_t i = 0; i < nactive; ++i) {
    TANGO_ASSIGN_OR_RETURN(int64_t id, r.GetI64());
    TANGO_ASSIGN_OR_RETURN(int64_t first, r.GetI64());
    rec.active_txns.emplace_back(static_cast<uint64_t>(id),
                                 static_cast<Lsn>(first));
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in wal record");
  return rec;
}

namespace {

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".seg";
constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".ckpt";

/// Parses `<prefix><hex><suffix>`; returns false on mismatch.
bool ParseNumberedFile(const std::string& name, const char* prefix,
                       const char* suffix, uint64_t* value) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  const std::string hex = name.substr(plen, name.size() - plen - slen);
  char* end = nullptr;
  const uint64_t v = std::strtoull(hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return false;
  *value = v;
  return true;
}

std::string HexName(const char* prefix, uint64_t value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016llx%s", prefix,
                static_cast<unsigned long long>(value), suffix);
  return buf;
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(size < 0 ? 0 : static_cast<size_t>(size));
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return Status::IOError("short read from " + path);
  }
  std::fclose(f);
  return data;
}

/// Walks the frames in `data`; returns the offset of the first byte that is
/// not part of a complete, checksummed frame.
size_t GoodFramePrefix(const std::vector<uint8_t>& data) {
  size_t off = 0;
  while (off + WireFrame::kHeaderBytes <= data.size()) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data.data() + off, sizeof(len));
    std::memcpy(&crc, data.data() + off + 4, sizeof(crc));
    if (off + WireFrame::kHeaderBytes + len > data.size()) break;
    if (Crc32(data.data() + off + WireFrame::kHeaderBytes, len) != crc) break;
    off += WireFrame::kHeaderBytes + len;
  }
  return off;
}

struct SegmentFile {
  uint64_t start;
  std::string path;
  uint64_t size;
};

std::vector<SegmentFile> ListSegments(const std::string& dir) {
  std::vector<SegmentFile> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t start = 0;
    const std::string name = entry.path().filename().string();
    if (!ParseNumberedFile(name, kSegmentPrefix, kSegmentSuffix, &start)) {
      continue;
    }
    out.push_back({start, entry.path().string(),
                   static_cast<uint64_t>(fs::file_size(entry.path(), ec))});
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace

std::string Wal::SegmentPath(uint64_t start) const {
  return dir_ + "/" + HexName(kSegmentPrefix, start, kSegmentSuffix);
}

std::string Wal::SnapshotPath(const std::string& dir, Lsn lsn) {
  return dir + "/" + HexName(kSnapshotPrefix, lsn, kSnapshotSuffix);
}

Status Wal::Open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return Status::IOError("cannot create wal dir " + dir_);
  segments_.clear();
  pending_.clear();
  end_ = durable_ = 0;
  crashed_ = false;
  for (const SegmentFile& seg : ListSegments(dir_)) {
    // Trim a torn tail down to the last complete frame, so the append point
    // never lands in the middle of a damaged record.
    TANGO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadWholeFile(seg.path));
    const size_t good = GoodFramePrefix(data);
    if (good < data.size()) {
      fs::resize_file(seg.path, good, ec);
      if (ec) return Status::IOError("cannot trim torn tail of " + seg.path);
    }
    segments_.push_back({seg.start, good});
    end_ = durable_ = seg.start + good;
    if (good < data.size()) break;  // nothing after a torn segment is durable
  }
  return Status::OK();
}

Result<Lsn> Wal::Append(WalRecord* record) {
  if (crashed_) return Status::Unavailable("wal crashed; restart required");
  record->lsn = end_ + 1;
  const std::vector<uint8_t> framed = WireFrame::Seal(record->Encode());
  if (fault_hook_) {
    const WalFault fault = fault_hook_(false, record->lsn, framed.size());
    if (fault.action == WalFault::Action::kCrash) {
      crashed_ = true;
      return Status::Unavailable("injected wal fault: crash at lsn " +
                                 std::to_string(record->lsn));
    }
    if (fault.action == WalFault::Action::kTorn) {
      // The torn prefix of the frame did reach the platter before the
      // process died; persist it so recovery faces a genuinely damaged tail.
      const uint64_t keep =
          std::min<uint64_t>(fault.keep_bytes, framed.size() - 1);
      pending_.insert(pending_.end(), framed.begin(), framed.begin() + keep);
      crashed_ = true;
      (void)WriteDurable(pending_);
      pending_.clear();
      return Status::Unavailable("injected wal fault: torn write at lsn " +
                                 std::to_string(record->lsn));
    }
  }
  pending_.insert(pending_.end(), framed.begin(), framed.end());
  end_ += framed.size();
  ++appends_;
  bytes_appended_ += framed.size();
  return record->lsn;
}

Status Wal::Sync() {
  if (crashed_) return Status::Unavailable("wal crashed; restart required");
  if (pending_.empty()) return Status::OK();
  if (fault_hook_) {
    const WalFault fault = fault_hook_(true, end_ + 1, pending_.size());
    if (fault.action == WalFault::Action::kCrash) {
      crashed_ = true;
      pending_.clear();
      return Status::Unavailable("injected wal fault: crash during sync");
    }
    if (fault.action == WalFault::Action::kPartialFsync) {
      const uint64_t keep =
          std::min<uint64_t>(fault.keep_bytes, pending_.size());
      pending_.resize(keep);
      crashed_ = true;
      (void)WriteDurable(pending_);
      pending_.clear();
      return Status::Unavailable("injected wal fault: partial fsync");
    }
  }
  TANGO_RETURN_IF_ERROR(WriteDurable(pending_));
  pending_.clear();
  ++syncs_;
  return Status::OK();
}

Status Wal::WriteDurable(const std::vector<uint8_t>& data) {
  if (data.empty()) return Status::OK();
  if (segments_.empty() || segments_.back().size >= segment_bytes_) {
    segments_.push_back({durable_, 0});
  }
  Segment& seg = segments_.back();
  const std::string path = SegmentPath(seg.start);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IOError("cannot open wal segment " + path);
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fflush(f);
  ::fsync(fileno(f));
  std::fclose(f);
  if (written != data.size()) {
    return Status::IOError("short write to wal segment " + path);
  }
  seg.size += data.size();
  durable_ = seg.start + seg.size;
  return Status::OK();
}

Result<size_t> Wal::TruncateBefore(Lsn lsn, Lsn keep_snapshot) {
  if (lsn == kNoLsn) return size_t{0};
  const uint64_t cutoff = lsn - 1;
  size_t reclaimed = 0;
  std::error_code ec;
  // Keep the last segment unconditionally: it is the live append target.
  while (segments_.size() > 1 &&
         segments_.front().start + segments_.front().size <= cutoff) {
    fs::remove(SegmentPath(segments_.front().start), ec);
    segments_.erase(segments_.begin());
    ++reclaimed;
  }
  for (const Lsn snap : ListSnapshots(dir_)) {
    if (snap < keep_snapshot) {
      fs::remove(SnapshotPath(dir_, snap), ec);
      ++reclaimed;
    }
  }
  return reclaimed;
}

Status Wal::WriteSealedFile(const std::string& path,
                            const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> framed = WireFrame::Seal(payload);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + tmp);
  const size_t written = std::fwrite(framed.data(), 1, framed.size(), f);
  std::fflush(f);
  ::fsync(fileno(f));
  std::fclose(f);
  if (written != framed.size()) return Status::IOError("short write to " + tmp);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("cannot publish " + path);
  return Status::OK();
}

Result<std::vector<uint8_t>> Wal::ReadSealedFile(const std::string& path) {
  TANGO_ASSIGN_OR_RETURN(std::vector<uint8_t> framed, ReadWholeFile(path));
  const uint8_t* payload = nullptr;
  size_t len = 0;
  TANGO_RETURN_IF_ERROR(WireFrame::Check(framed, &payload, &len));
  return std::vector<uint8_t>(payload, payload + len);
}

std::vector<Lsn> Wal::ListSnapshots(const std::string& dir) {
  std::vector<Lsn> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t lsn = 0;
    if (ParseNumberedFile(entry.path().filename().string(), kSnapshotPrefix,
                          kSnapshotSuffix, &lsn)) {
      out.push_back(lsn);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<WalScan> ReadWal(const std::string& dir) {
  WalScan scan;
  bool first = true;
  for (const SegmentFile& seg : ListSegments(dir)) {
    if (first) {
      scan.start_lsn = seg.start + 1;
      first = false;
    }
    TANGO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadWholeFile(seg.path));
    size_t off = 0;
    while (off + WireFrame::kHeaderBytes <= data.size()) {
      uint32_t len = 0, crc = 0;
      std::memcpy(&len, data.data() + off, sizeof(len));
      std::memcpy(&crc, data.data() + off + 4, sizeof(crc));
      const uint8_t* payload = data.data() + off + WireFrame::kHeaderBytes;
      if (off + WireFrame::kHeaderBytes + len > data.size() ||
          Crc32(payload, len) != crc) {
        break;
      }
      Result<WalRecord> rec = WalRecord::Decode(payload, len);
      if (!rec.ok()) break;  // damaged payload that happens to checksum
      rec.ValueOrDie().lsn = seg.start + off + 1;
      scan.records.push_back(rec.MoveValueOrDie());
      off += WireFrame::kHeaderBytes + len;
    }
    if (off < data.size()) {
      scan.torn_tail = true;
      scan.torn_bytes = data.size() - off;
      break;  // nothing after a damaged frame is durable
    }
  }
  return scan;
}

}  // namespace storage
}  // namespace tango
