#ifndef TANGO_EXEC_JOIN_H_
#define TANGO_EXEC_JOIN_H_

#include <memory>
#include <vector>

#include "common/cursor.h"
#include "expr/expr.h"

namespace tango {
namespace exec {

/// \brief MERGEJOIN^M: middleware sort-merge equijoin.
///
/// Inputs must arrive sorted on their key columns; duplicate key groups are
/// buffered on the right side and replayed. Output: left columns then right.
/// Output order: the left keys (the algorithm is order preserving on them).
class MergeJoinCursor : public Cursor {
 public:
  MergeJoinCursor(CursorPtr left, CursorPtr right, std::vector<size_t> left_keys,
                  std::vector<size_t> right_keys);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return schema_; }

 protected:
  /// Hook for subclasses (the temporal join): accepts/reworks a candidate
  /// pair. Returns true and fills `out` when the pair joins.
  virtual bool EmitPair(const Tuple& left, const Tuple& right, Tuple* out);

 private:
  int CompareKeys(const Tuple& l, const Tuple& r) const;
  Result<bool> FillRightGroup();

  CursorPtr left_, right_;
  /// Batch-probe: both inputs are drained in whole blocks; the merge logic
  /// below reads rows out of the buffered blocks and stays bit-identical.
  BatchedReader left_reader_, right_reader_;
  std::vector<size_t> left_keys_, right_keys_;
  Schema schema_;

  Tuple left_row_;
  bool left_valid_ = false;
  Tuple right_pending_;
  bool right_pending_valid_ = false;
  std::vector<Tuple> right_group_;
  size_t group_pos_ = 0;
  bool group_matches_left_ = false;
};

/// \brief TJOIN^M: middleware temporal join (sort-merge).
///
/// Equijoin with the additional requirement that the two periods overlap;
/// the output carries the intersection GREATEST(T1), LEAST(T2). Output
/// schema follows the algebra: left columns without its period, right
/// columns without the join attrs and its period, then T1, T2.
class TemporalJoinCursor : public MergeJoinCursor {
 public:
  /// The index vectors address the respective child schemas; `schema` is the
  /// algebra-derived output schema.
  TemporalJoinCursor(CursorPtr left, CursorPtr right,
                     std::vector<size_t> left_keys, std::vector<size_t> right_keys,
                     size_t left_t1, size_t left_t2, size_t right_t1,
                     size_t right_t2, std::vector<size_t> left_out,
                     std::vector<size_t> right_out, Schema schema);

  const Schema& schema() const override { return schema_; }

 protected:
  bool EmitPair(const Tuple& left, const Tuple& right, Tuple* out) override;

 private:
  size_t left_t1_, left_t2_, right_t1_, right_t2_;
  std::vector<size_t> left_out_, right_out_;
  Schema schema_;
};

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_JOIN_H_
