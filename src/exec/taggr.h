#ifndef TANGO_EXEC_TAGGR_H_
#define TANGO_EXEC_TAGGR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cursor.h"
#include "expr/expr.h"

namespace tango {
namespace exec {

/// One aggregate computed by TAGGR^M: function, argument column in the child
/// schema (ignored for COUNT(*) where `star` is set).
struct TAggrSpec {
  AggFunc func = AggFunc::kCount;
  size_t arg = 0;
  bool star = false;
};

/// \brief TAGGR^M: the middleware temporal aggregation algorithm (§3.4).
///
/// The argument must arrive sorted on (group columns..., T1) — produced by
/// an external SORT^M or SORT^D, exactly as the paper requires. Internally,
/// a second copy of each group is sorted on T2, and the two copies are
/// traversed like a sort-merge join: a plane sweep over period endpoints
/// that maintains running aggregate state and emits one tuple per constant
/// period during which the group is non-empty.
///
/// COUNT/SUM/AVG use incrementally updatable counters; MIN/MAX keep a
/// multiset because tuple expiry is not invertible for them.
///
/// Output: group values, T1, T2, aggregate values — ordered on
/// (group columns..., T1), which is why "additional sorting is not needed"
/// after it (the paper's observation on Query 1).
class TemporalAggregationCursor : public Cursor {
 public:
  TemporalAggregationCursor(CursorPtr child, std::vector<size_t> group_cols,
                            size_t t1, size_t t2, std::vector<TAggrSpec> aggs,
                            Schema out_schema);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Batched emit: each call moves already-swept constant-interval tuples
  /// out in bulk, sweeping further groups as needed to fill the block. The
  /// child is drained in whole blocks either way.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

 private:
  // Running aggregate state for one spec within the sweep.
  struct AggState {
    int64_t count = 0;
    double sum = 0;
    bool sum_is_int = true;
    std::multiset<Value> values;  // only for MIN/MAX
  };

  /// Reads the next group (consecutive rows with equal group columns) into
  /// `group_rows_`; false when the input is exhausted.
  Result<bool> LoadNextGroup();

  /// Runs the sweep over the loaded group, filling `output_`.
  void SweepGroup();

  void Add(const Tuple& row);
  void Remove(const Tuple& row);
  Value CurrentValue(size_t agg_index) const;

  CursorPtr child_;
  BatchedReader reader_;
  std::vector<size_t> group_cols_;
  size_t t1_, t2_;
  std::vector<TAggrSpec> aggs_;
  Schema schema_;

  std::vector<Tuple> group_rows_;
  Tuple pending_;
  bool pending_valid_ = false;
  bool input_done_ = false;

  std::vector<AggState> states_;
  std::vector<Tuple> output_;
  size_t out_pos_ = 0;
};

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_TAGGR_H_
