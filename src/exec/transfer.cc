#include "exec/transfer.h"

#include <algorithm>

namespace tango {
namespace exec {

namespace {

/// Rows between control polls while draining middleware-side cursors.
constexpr size_t kControlPollStride = 1024;

/// Labels a transient failure with the operator that exhausted its budget
/// on it, so the middleware's degradation logic can tell a failed T^M from
/// a failed T^D. Non-transient failures pass through untouched.
Status TagTransient(const Status& s, const char* op, const std::string& what) {
  if (s.ok() || !s.IsTransient()) return s;
  return Status(s.code(), std::string(op) + " " + what + ": " + s.message());
}

}  // namespace

TransferMCursor::TransferMCursor(dbms::Connection* conn, std::string sql,
                                 Schema schema,
                                 std::vector<CursorPtr> dependencies,
                                 std::shared_ptr<TransferCache> cache,
                                 QueryControlPtr control, RetryPolicy retry,
                                 RecoveryCounters* counters)
    : conn_(conn),
      sql_(std::move(sql)),
      schema_(std::move(schema)),
      dependencies_(std::move(dependencies)),
      cache_(std::move(cache)),
      control_(std::move(control)),
      policy_(retry),
      counters_(counters) {}

Status TransferMCursor::TryOpen(size_t skip) {
  remote_.reset();
  TANGO_ASSIGN_OR_RETURN(remote_, conn_->ExecuteQuery(sql_, control_));
  TANGO_RETURN_IF_ERROR(remote_->Init());
  if (remote_->schema().num_columns() != schema_.num_columns()) {
    return Status::Internal("TRANSFER^M schema arity mismatch: SQL \"" + sql_ +
                            "\" returned " +
                            std::to_string(remote_->schema().num_columns()) +
                            " columns, plan expected " +
                            std::to_string(schema_.num_columns()));
  }
  // Reposition past rows already delivered downstream: the engine is
  // deterministic, so the re-issued SELECT reproduces the same sequence.
  Tuple t;
  for (size_t i = 0; i < skip; ++i) {
    TANGO_ASSIGN_OR_RETURN(bool more, remote_->Next(&t));
    if (!more) {
      return Status::Internal(
          "TRANSFER^M retry could not reposition: re-issued \"" + sql_ +
          "\" returned fewer rows than already delivered");
    }
  }
  if (counters_ != nullptr && skip > 0) counters_->rows_skipped.Increment(skip);
  return Status::OK();
}

Status TransferMCursor::Restore(size_t skip) {
  while (true) {
    Status s = TryOpen(skip);
    if (s.ok()) return s;
    if (!retry_->ShouldRetry(s)) return TagTransient(s, "TRANSFER^M", sql_);
    if (counters_ != nullptr) ++counters_->tm_retries;
    {
      obs::ScopedSpan backoff(obs_.trace, "retry.backoff", "retry", obs_.span);
      TANGO_RETURN_IF_ERROR(retry_->Backoff(control_));
    }
  }
}

Status TransferMCursor::Init() {
  // Execute dependencies first (TRANSFER^D loads happen in their Init).
  for (const CursorPtr& dep : dependencies_) {
    TANGO_RETURN_IF_ERROR(dep->Init());
    RowBlock block(kControlPollStride);
    while (true) {
      TANGO_ASSIGN_OR_RETURN(const size_t n, dep->NextBatch(&block));
      if (n == 0) break;
      TANGO_RETURN_IF_ERROR(CheckControl(control_));
    }
  }
  cached_rows_ = nullptr;
  cached_pos_ = 0;
  delivered_ = 0;
  // One retry budget for the cursor's whole open + drain.
  retry_ = std::make_unique<RetryState>(policy_);
  // §7 refinement: identical statements within one plan transfer once.
  if (cache_ != nullptr) {
    cached_rows_ = cache_->Get(sql_);
    if (cached_rows_ != nullptr) {
      if (obs_.cache_hits != nullptr) ++*obs_.cache_hits;
      return Status::OK();
    }
  }
  TANGO_RETURN_IF_ERROR(Restore(0));
  if (cache_ != nullptr && cache_->IsShared(sql_)) {
    // Shared but not yet cached: this occurrence pays the transfer.
    if (obs_.cache_misses != nullptr) ++*obs_.cache_misses;
    // Materialize once; this and every later occurrence serve locally. The
    // cache is only written after a complete drain — a transfer dying
    // mid-materialization (even past its retry budget) leaves no partial
    // result behind for the other occurrences.
    std::vector<Tuple> rows;
    Tuple t;
    while (true) {
      Result<bool> more = remote_->Next(&t);
      if (!more.ok()) {
        if (!retry_->ShouldRetry(more.status())) {
          return TagTransient(more.status(), "TRANSFER^M", sql_);
        }
        if (counters_ != nullptr) ++counters_->tm_retries;
        {
          obs::ScopedSpan backoff(obs_.trace, "retry.backoff", "retry",
                                  obs_.span);
          TANGO_RETURN_IF_ERROR(retry_->Backoff(control_));
        }
        TANGO_RETURN_IF_ERROR(Restore(rows.size()));
        continue;
      }
      if (!more.ValueOrDie()) break;
      if (obs_.rows_to_middleware != nullptr) ++*obs_.rows_to_middleware;
      rows.push_back(std::move(t));
    }
    remote_.reset();
    cache_->Put(sql_, std::move(rows));
    cached_rows_ = cache_->Get(sql_);
  }
  return Status::OK();
}

Result<bool> TransferMCursor::Next(Tuple* tuple) {
  if (cached_rows_ != nullptr) {
    if (cached_pos_ >= cached_rows_->size()) return false;
    *tuple = (*cached_rows_)[cached_pos_++];
    return true;
  }
  while (true) {
    Result<bool> r = remote_->Next(tuple);
    if (r.ok()) {
      if (r.ValueOrDie()) {
        ++delivered_;
        if (obs_.rows_to_middleware != nullptr) ++*obs_.rows_to_middleware;
      }
      return r;
    }
    if (!retry_->ShouldRetry(r.status())) {
      return TagTransient(r.status(), "TRANSFER^M", sql_);
    }
    if (counters_ != nullptr) ++counters_->tm_retries;
    {
      obs::ScopedSpan backoff(obs_.trace, "retry.backoff", "retry", obs_.span);
      TANGO_RETURN_IF_ERROR(retry_->Backoff(control_));
    }
    TANGO_RETURN_IF_ERROR(Restore(delivered_));
  }
}

Result<size_t> TransferMCursor::NextBatch(RowBlock* block) {
  if (cached_rows_ != nullptr) {
    block->Clear();
    while (cached_pos_ < cached_rows_->size() && !block->full()) {
      block->AppendRow((*cached_rows_)[cached_pos_++]);
    }
    return block->rows();
  }
  while (true) {
    Result<size_t> r = remote_->NextBatch(block);
    if (r.ok()) {
      const size_t n = r.ValueOrDie();
      delivered_ += n;
      if (obs_.rows_to_middleware != nullptr && n > 0) {
        obs_.rows_to_middleware->Increment(n);
      }
      return n;
    }
    if (!retry_->ShouldRetry(r.status())) {
      return TagTransient(r.status(), "TRANSFER^M", sql_);
    }
    if (counters_ != nullptr) ++counters_->tm_retries;
    {
      obs::ScopedSpan backoff(obs_.trace, "retry.backoff", "retry", obs_.span);
      TANGO_RETURN_IF_ERROR(retry_->Backoff(control_));
    }
    // The failed fetch delivered nothing (errors surface before any row
    // leaves the wire buffer), so `delivered_` is exact — and, because
    // fetches fail only between blocks, block-aligned.
    TANGO_RETURN_IF_ERROR(Restore(delivered_));
  }
}

TransferDCursor::TransferDCursor(dbms::Connection* conn,
                                 std::string table_name,
                                 std::vector<std::string> columns,
                                 CursorPtr child, QueryControlPtr control,
                                 RetryPolicy retry, RecoveryCounters* counters)
    : conn_(conn),
      table_name_(std::move(table_name)),
      columns_(std::move(columns)),
      child_(std::move(child)),
      control_(std::move(control)),
      policy_(retry),
      counters_(counters) {}

Status TransferDCursor::AttemptLoad(bool drop_first, const std::string& ddl,
                                    const std::vector<Tuple>& rows) {
  if (drop_first) {
    // Remove whatever the failed attempt left behind (half-created table,
    // partial load). A missing table is fine — the drop is idempotent.
    Status drop = conn_->Execute("DROP TABLE " + table_name_, control_).status();
    if (!drop.ok() && drop.code() != StatusCode::kNotFound) return drop;
  }
  TANGO_RETURN_IF_ERROR(conn_->Execute(ddl, control_).status());
  return conn_->BulkLoad(table_name_, rows, control_);
}

Status TransferDCursor::Init() {
  const Schema& in = child_->schema();
  if (columns_.size() != in.num_columns()) {
    return Status::Internal("TRANSFER^D column name count mismatch");
  }
  std::string ddl = "CREATE TABLE " + table_name_ + " (";
  for (size_t i = 0; i < in.num_columns(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += columns_[i];
    ddl += " ";
    ddl += DataTypeName(in.column(i).type);
  }
  ddl += ")";

  // Drain the argument first: buffering the rows before any DBMS statement
  // means a transient failure only ever interrupts the CREATE/load pair,
  // which a retry can redo from the buffer without re-running the
  // middleware subtree.
  TANGO_RETURN_IF_ERROR(child_->Init());
  std::vector<Tuple> rows;
  RowBlock block(kControlPollStride);
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(const size_t n, child_->NextBatch(&block));
    if (n == 0) break;
    if (rows.capacity() < rows.size() + n) {
      rows.reserve(std::max(rows.size() + n, rows.capacity() * 2));
    }
    for (size_t i = 0; i < n; ++i) {
      block.MoveRowTo(i, &t);
      rows.push_back(std::move(t));
    }
    TANGO_RETURN_IF_ERROR(CheckControl(control_));
  }
  rows_loaded_ = rows.size();

  RetryState retry(policy_);
  Status s = AttemptLoad(/*drop_first=*/false, ddl, rows);
  while (!s.ok()) {
    if (!retry.ShouldRetry(s)) return TagTransient(s, "TRANSFER^D", table_name_);
    if (counters_ != nullptr) ++counters_->td_retries;
    {
      obs::ScopedSpan backoff(obs_.trace, "retry.backoff", "retry", obs_.span);
      TANGO_RETURN_IF_ERROR(retry.Backoff(control_));
    }
    s = AttemptLoad(/*drop_first=*/true, ddl, rows);
  }
  if (obs_.rows_to_dbms != nullptr) obs_.rows_to_dbms->Increment(rows_loaded_);
  return Status::OK();
}

Result<bool> TransferDCursor::Next(Tuple* tuple) {
  (void)tuple;
  return false;
}

}  // namespace exec
}  // namespace tango
