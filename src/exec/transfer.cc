#include "exec/transfer.h"

namespace tango {
namespace exec {

TransferMCursor::TransferMCursor(dbms::Connection* conn, std::string sql,
                                 Schema schema,
                                 std::vector<CursorPtr> dependencies,
                                 std::shared_ptr<TransferCache> cache)
    : conn_(conn),
      sql_(std::move(sql)),
      schema_(std::move(schema)),
      dependencies_(std::move(dependencies)),
      cache_(std::move(cache)) {}

Status TransferMCursor::Init() {
  // Execute dependencies first (TRANSFER^D loads happen in their Init).
  for (const CursorPtr& dep : dependencies_) {
    TANGO_RETURN_IF_ERROR(dep->Init());
    Tuple t;
    while (true) {
      TANGO_ASSIGN_OR_RETURN(bool more, dep->Next(&t));
      if (!more) break;
    }
  }
  cached_rows_ = nullptr;
  cached_pos_ = 0;
  // §7 refinement: identical statements within one plan transfer once.
  if (cache_ != nullptr) {
    cached_rows_ = cache_->Get(sql_);
    if (cached_rows_ != nullptr) return Status::OK();
  }
  TANGO_ASSIGN_OR_RETURN(remote_, conn_->ExecuteQuery(sql_));
  TANGO_RETURN_IF_ERROR(remote_->Init());
  if (remote_->schema().num_columns() != schema_.num_columns()) {
    return Status::Internal("TRANSFER^M schema arity mismatch: SQL \"" + sql_ +
                            "\" returned " +
                            std::to_string(remote_->schema().num_columns()) +
                            " columns, plan expected " +
                            std::to_string(schema_.num_columns()));
  }
  if (cache_ != nullptr && cache_->IsShared(sql_)) {
    // Materialize once; this and every later occurrence serve locally.
    std::vector<Tuple> rows;
    Tuple t;
    while (true) {
      TANGO_ASSIGN_OR_RETURN(bool more, remote_->Next(&t));
      if (!more) break;
      rows.push_back(std::move(t));
    }
    remote_.reset();
    cache_->Put(sql_, std::move(rows));
    cached_rows_ = cache_->Get(sql_);
  }
  return Status::OK();
}

Result<bool> TransferMCursor::Next(Tuple* tuple) {
  if (cached_rows_ != nullptr) {
    if (cached_pos_ >= cached_rows_->size()) return false;
    *tuple = (*cached_rows_)[cached_pos_++];
    return true;
  }
  return remote_->Next(tuple);
}

TransferDCursor::TransferDCursor(dbms::Connection* conn,
                                 std::string table_name,
                                 std::vector<std::string> columns,
                                 CursorPtr child)
    : conn_(conn),
      table_name_(std::move(table_name)),
      columns_(std::move(columns)),
      child_(std::move(child)) {}

Status TransferDCursor::Init() {
  // CREATE TABLE with the argument's schema.
  const Schema& in = child_->schema();
  if (columns_.size() != in.num_columns()) {
    return Status::Internal("TRANSFER^D column name count mismatch");
  }
  std::string ddl = "CREATE TABLE " + table_name_ + " (";
  for (size_t i = 0; i < in.num_columns(); ++i) {
    if (i > 0) ddl += ", ";
    ddl += columns_[i];
    ddl += " ";
    ddl += DataTypeName(in.column(i).type);
  }
  ddl += ")";
  TANGO_RETURN_IF_ERROR(conn_->Execute(ddl).status());

  // Drain the argument and direct-path load it.
  TANGO_RETURN_IF_ERROR(child_->Init());
  std::vector<Tuple> rows;
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
    if (!more) break;
    rows.push_back(std::move(t));
  }
  rows_loaded_ = rows.size();
  return conn_->BulkLoad(table_name_, rows);
}

Result<bool> TransferDCursor::Next(Tuple* tuple) {
  (void)tuple;
  return false;
}

}  // namespace exec
}  // namespace tango
