#include "exec/basic.h"

namespace tango {
namespace exec {

namespace {

/// Whole-tuple three-way comparison (all columns, schema order).
int CompareTuples(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

/// Equality that distinguishes NULL from non-NULL but treats NULL == NULL
/// (duplicate elimination semantics, not predicate semantics).
bool TuplesEqual(const Tuple& a, const Tuple& b) {
  return a.size() == b.size() && CompareTuples(a, b) == 0;
}

}  // namespace

Result<bool> FilterCursor::Next(Tuple* tuple) {
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(tuple));
    if (!more) return false;
    if (EvalPredicate(*predicate_, *tuple)) return true;
  }
}

Result<size_t> FilterCursor::NextBatch(RowBlock* block) {
  block->Clear();
  in_block_.set_capacity(block->capacity());
  Tuple t;
  // Keep pulling child blocks until at least one row qualifies (or the
  // child is exhausted); survivors of one input block never exceed the
  // output capacity because the input block is sized to match.
  while (block->empty()) {
    TANGO_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(&in_block_));
    if (n == 0) return 0;
    for (size_t i = 0; i < n; ++i) {
      in_block_.MoveRowTo(i, &t);
      if (EvalPredicate(*predicate_, t)) block->AppendRow(std::move(t));
    }
  }
  return block->rows();
}

Result<bool> ProjectCursor::Next(Tuple* tuple) {
  Tuple in;
  TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  tuple->clear();
  tuple->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) tuple->push_back(Eval(*e, in));
  return true;
}

Result<size_t> ProjectCursor::NextBatch(RowBlock* block) {
  block->Clear();
  in_block_.set_capacity(block->capacity());
  TANGO_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(&in_block_));
  if (n == 0) return 0;
  Tuple in, out;
  for (size_t i = 0; i < n; ++i) {
    in_block_.MoveRowTo(i, &in);
    out.clear();
    out.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) out.push_back(Eval(*e, in));
    block->AppendRow(std::move(out));
  }
  return block->rows();
}

Result<bool> DupElimCursor::Next(Tuple* tuple) {
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, reader_.Next(&t));
    if (!more) return false;
    if (have_prev_ && TuplesEqual(t, prev_)) continue;
    prev_ = t;
    have_prev_ = true;
    *tuple = std::move(t);
    return true;
  }
}

Status DifferenceCursor::Init() {
  TANGO_RETURN_IF_ERROR(left_reader_.Init());
  TANGO_RETURN_IF_ERROR(right_reader_.Init());
  TANGO_ASSIGN_OR_RETURN(right_valid_, right_reader_.Next(&right_row_));
  return Status::OK();
}

Result<bool> DifferenceCursor::Next(Tuple* tuple) {
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, left_reader_.Next(&t));
    if (!more) return false;
    // Advance the right side past smaller tuples.
    while (right_valid_ && CompareTuples(right_row_, t) < 0) {
      TANGO_ASSIGN_OR_RETURN(right_valid_, right_reader_.Next(&right_row_));
    }
    if (right_valid_ && CompareTuples(right_row_, t) == 0) {
      // One right occurrence cancels one left occurrence.
      TANGO_ASSIGN_OR_RETURN(right_valid_, right_reader_.Next(&right_row_));
      continue;
    }
    *tuple = std::move(t);
    return true;
  }
}

Status CoalesceCursor::Init() {
  have_current_ = false;
  done_ = false;
  return reader_.Init();
}

Result<bool> CoalesceCursor::Next(Tuple* tuple) {
  if (done_) return false;
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, reader_.Next(&t));
    if (!more) {
      done_ = true;
      if (have_current_) {
        have_current_ = false;
        *tuple = std::move(current_);
        return true;
      }
      return false;
    }
    if (!have_current_) {
      current_ = std::move(t);
      have_current_ = true;
      continue;
    }
    // Value-equivalent (all columns except the period) and periods meet or
    // overlap? Input order guarantees current_.T1 <= t.T1.
    bool value_equal = true;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i == t1_ || i == t2_) continue;
      if (t[i].Compare(current_[i]) != 0) {
        value_equal = false;
        break;
      }
    }
    if (value_equal && t[t1_] <= current_[t2_]) {
      if (t[t2_] > current_[t2_]) current_[t2_] = t[t2_];
      continue;
    }
    Tuple out = std::move(current_);
    current_ = std::move(t);
    *tuple = std::move(out);
    return true;
  }
}

}  // namespace exec
}  // namespace tango
