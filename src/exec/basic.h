#ifndef TANGO_EXEC_BASIC_H_
#define TANGO_EXEC_BASIC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cursor.h"
#include "expr/expr.h"

namespace tango {
namespace exec {

/// \brief FILTER^M: middleware selection (§3.3). Needed when a selection
/// sits between two middleware-resident operators, where a round trip to the
/// DBMS just to select would be wasteful.
class FilterCursor : public Cursor {
 public:
  /// `predicate` must be bound against the child schema.
  FilterCursor(CursorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* tuple) override;
  /// Native batch path: pulls whole blocks from the child and appends the
  /// qualifying rows, so a selective filter costs one virtual call per input
  /// block instead of one per inspected row.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  ExprPtr predicate_;
  RowBlock in_block_{RowBlock::kDefaultCapacity};
};

/// \brief PROJECT^M: middleware projection with computed expressions.
class ProjectCursor : public Cursor {
 public:
  /// `exprs` must be bound against the child schema; `out_schema` parallel.
  ProjectCursor(CursorPtr child, std::vector<ExprPtr> exprs, Schema out_schema)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(out_schema)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* tuple) override;
  /// Native batch path: one child block in, one projected block out.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

 private:
  CursorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  RowBlock in_block_{RowBlock::kDefaultCapacity};
};

/// \brief DUPELIM^M: removes adjacent duplicates; input must be sorted on
/// all columns (the optimizer guarantees it). Reads its child in whole
/// blocks through a BatchedReader; the adjacency logic is untouched.
class DupElimCursor : public Cursor {
 public:
  explicit DupElimCursor(CursorPtr child)
      : child_(std::move(child)), reader_(child_.get()) {}

  Status Init() override {
    have_prev_ = false;
    return reader_.Init();
  }
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  BatchedReader reader_;
  Tuple prev_;
  bool have_prev_ = false;
};

/// \brief DIFF^M: multiset difference (left minus right); both inputs must
/// be sorted on all columns. Each right tuple cancels at most one left
/// duplicate, per multiset semantics.
class DifferenceCursor : public Cursor {
 public:
  DifferenceCursor(CursorPtr left, CursorPtr right)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_reader_(left_.get()),
        right_reader_(right_.get()) {}

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return left_->schema(); }

 private:
  CursorPtr left_, right_;
  BatchedReader left_reader_, right_reader_;
  Tuple right_row_;
  bool right_valid_ = false;
};

/// \brief COALESCE^M: merges value-equivalent tuples whose periods overlap
/// or meet. Input must be sorted on (all non-period columns..., T1).
class CoalesceCursor : public Cursor {
 public:
  /// `t1`/`t2` are the period column positions in the child schema.
  CoalesceCursor(CursorPtr child, size_t t1, size_t t2)
      : child_(std::move(child)), reader_(child_.get()), t1_(t1), t2_(t2) {}

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  CursorPtr child_;
  BatchedReader reader_;
  size_t t1_, t2_;
  Tuple current_;
  bool have_current_ = false;
  bool done_ = false;
};

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_BASIC_H_
