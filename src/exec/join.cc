#include "exec/join.h"

namespace tango {
namespace exec {

MergeJoinCursor::MergeJoinCursor(CursorPtr left, CursorPtr right,
                                 std::vector<size_t> left_keys,
                                 std::vector<size_t> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_reader_(left_.get()),
      right_reader_(right_.get()),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

bool MergeJoinCursor::EmitPair(const Tuple& left, const Tuple& right,
                               Tuple* out) {
  *out = left;
  out->insert(out->end(), right.begin(), right.end());
  return true;
}

int MergeJoinCursor::CompareKeys(const Tuple& l, const Tuple& r) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    const int c = l[left_keys_[i]].Compare(r[right_keys_[i]]);
    if (c != 0) return c;
  }
  return 0;
}

Status MergeJoinCursor::Init() {
  TANGO_RETURN_IF_ERROR(left_reader_.Init());
  TANGO_RETURN_IF_ERROR(right_reader_.Init());
  right_group_.clear();
  group_pos_ = 0;
  group_matches_left_ = false;
  TANGO_ASSIGN_OR_RETURN(left_valid_, left_reader_.Next(&left_row_));
  TANGO_ASSIGN_OR_RETURN(right_pending_valid_,
                         right_reader_.Next(&right_pending_));
  return Status::OK();
}

Result<bool> MergeJoinCursor::FillRightGroup() {
  right_group_.clear();
  if (!right_pending_valid_) return false;
  right_group_.push_back(right_pending_);
  while (true) {
    Tuple t;
    TANGO_ASSIGN_OR_RETURN(bool more, right_reader_.Next(&t));
    if (!more) {
      right_pending_valid_ = false;
      break;
    }
    bool same = true;
    for (size_t i = 0; i < right_keys_.size(); ++i) {
      if (t[right_keys_[i]].Compare(right_group_.front()[right_keys_[i]]) != 0) {
        same = false;
        break;
      }
    }
    if (same) {
      right_group_.push_back(std::move(t));
    } else {
      right_pending_ = std::move(t);
      right_pending_valid_ = true;
      break;
    }
  }
  return true;
}

Result<bool> MergeJoinCursor::Next(Tuple* tuple) {
  while (true) {
    if (group_matches_left_ && group_pos_ < right_group_.size()) {
      const Tuple& r = right_group_[group_pos_++];
      if (EmitPair(left_row_, r, tuple)) return true;
      continue;
    }
    if (group_matches_left_) {
      TANGO_ASSIGN_OR_RETURN(left_valid_, left_reader_.Next(&left_row_));
      group_pos_ = 0;
      if (!left_valid_) {
        // Drop the match flag so a post-exhaustion call cannot replay the
        // group against the stale left row — batch drains call Next again
        // after the first false and must keep seeing false.
        group_matches_left_ = false;
        return false;
      }
      if (!right_group_.empty() &&
          CompareKeys(left_row_, right_group_.front()) == 0) {
        continue;  // next left row shares the key: replay the group
      }
      group_matches_left_ = false;
    }
    if (!left_valid_) return false;
    // Advance the right group until its key is >= the left key.
    while (right_group_.empty() ||
           CompareKeys(left_row_, right_group_.front()) > 0) {
      TANGO_ASSIGN_OR_RETURN(bool filled, FillRightGroup());
      if (!filled) return false;  // right exhausted, no more matches possible
    }
    const int c = CompareKeys(left_row_, right_group_.front());
    if (c < 0) {
      TANGO_ASSIGN_OR_RETURN(left_valid_, left_reader_.Next(&left_row_));
      if (!left_valid_) return false;
      continue;
    }
    // Keys match; NULL keys never join.
    bool has_null = false;
    for (size_t k : left_keys_) {
      if (left_row_[k].is_null()) {
        has_null = true;
        break;
      }
    }
    if (has_null) {
      TANGO_ASSIGN_OR_RETURN(left_valid_, left_reader_.Next(&left_row_));
      if (!left_valid_) return false;
      continue;
    }
    group_matches_left_ = true;
    group_pos_ = 0;
  }
}

TemporalJoinCursor::TemporalJoinCursor(
    CursorPtr left, CursorPtr right, std::vector<size_t> left_keys,
    std::vector<size_t> right_keys, size_t left_t1, size_t left_t2,
    size_t right_t1, size_t right_t2, std::vector<size_t> left_out,
    std::vector<size_t> right_out, Schema schema)
    : MergeJoinCursor(std::move(left), std::move(right), std::move(left_keys),
                      std::move(right_keys)),
      left_t1_(left_t1),
      left_t2_(left_t2),
      right_t1_(right_t1),
      right_t2_(right_t2),
      left_out_(std::move(left_out)),
      right_out_(std::move(right_out)),
      schema_(std::move(schema)) {}

bool TemporalJoinCursor::EmitPair(const Tuple& left, const Tuple& right,
                                  Tuple* out) {
  // Overlap test on the closed-open periods: L.T1 < R.T2 AND L.T2 > R.T1.
  const Value& lt1 = left[left_t1_];
  const Value& lt2 = left[left_t2_];
  const Value& rt1 = right[right_t1_];
  const Value& rt2 = right[right_t2_];
  if (lt1.is_null() || lt2.is_null() || rt1.is_null() || rt2.is_null()) {
    return false;
  }
  if (!(lt1 < rt2 && lt2 > rt1)) return false;
  out->clear();
  out->reserve(left_out_.size() + right_out_.size() + 2);
  for (size_t i : left_out_) out->push_back(left[i]);
  for (size_t i : right_out_) out->push_back(right[i]);
  out->push_back(lt1 > rt1 ? lt1 : rt1);  // GREATEST(T1)
  out->push_back(lt2 < rt2 ? lt2 : rt2);  // LEAST(T2)
  return true;
}

}  // namespace exec
}  // namespace tango
