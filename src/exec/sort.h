#ifndef TANGO_EXEC_SORT_H_
#define TANGO_EXEC_SORT_H_

#include <memory>
#include <queue>
#include <vector>

#include "common/cursor.h"
#include "storage/run_file.h"

namespace tango {
namespace exec {

/// \brief SORT^M: external merge sort.
///
/// Consumes the child in Init; runs that fit in the memory budget are sorted
/// with std::sort, larger inputs spill sorted runs to tmpfiles and k-way
/// merge them — this is how the middleware "supports very large relations"
/// (the paper's future-work item, implemented here).
class SortCursor : public Cursor {
 public:
  static constexpr size_t kDefaultMemoryBudgetBytes = 32 << 20;

  SortCursor(CursorPtr child, std::vector<SortKey> keys,
             size_t memory_budget_bytes = kDefaultMemoryBudgetBytes)
      : child_(std::move(child)),
        cmp_(std::move(keys)),
        budget_(memory_budget_bytes) {}

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Batched emit: the in-memory path bulk-copies out of the sorted vector;
  /// the external path batches the k-way merge's output. Run generation in
  /// Init drains the child via NextBatch either way.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return child_->schema(); }

  /// Number of spilled runs (observability for tests; 0 = fully in memory).
  size_t spilled_runs() const { return runs_.size(); }

 private:
  Status SpillRun(std::vector<Tuple>* rows);

  CursorPtr child_;
  TupleComparator cmp_;
  size_t budget_;

  // In-memory path.
  std::vector<Tuple> rows_;
  size_t pos_ = 0;

  // External path: k-way merge over spilled runs.
  std::vector<storage::RunFile> runs_;
  struct HeapEntry {
    Tuple tuple;
    size_t run;
  };
  struct HeapCmp {
    const TupleComparator* cmp;
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      // priority_queue is a max-heap; invert for ascending output. Ties
      // break on the run index: runs are spilled in input order, so this
      // makes the merge reproduce a stable sort of the whole input —
      // bit-identical to the in-memory path and to the parallel sort.
      const int c = cmp->Compare(a.tuple, b.tuple);
      if (c != 0) return c > 0;
      return a.run > b.run;
    }
  };
  std::unique_ptr<std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp>>
      heap_;
};

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_SORT_H_
