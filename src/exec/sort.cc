#include "exec/sort.h"

#include <algorithm>

namespace tango {
namespace exec {

Status SortCursor::SpillRun(std::vector<Tuple>* rows) {
  std::stable_sort(rows->begin(), rows->end(), cmp_);
  storage::RunFile run;
  TANGO_RETURN_IF_ERROR(run.Open());
  for (const Tuple& t : *rows) {
    TANGO_RETURN_IF_ERROR(run.Append(t));
  }
  runs_.push_back(std::move(run));
  rows->clear();
  return Status::OK();
}

Status SortCursor::Init() {
  TANGO_RETURN_IF_ERROR(child_->Init());
  rows_.clear();
  runs_.clear();
  heap_.reset();
  pos_ = 0;

  // Run generation pulls the child in whole blocks; the per-row budget
  // accounting (and therefore where each run boundary falls) is unchanged.
  size_t bytes = 0;
  RowBlock block;
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(&block));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      block.MoveRowTo(i, &t);
      bytes += TupleByteSize(t);
      rows_.push_back(std::move(t));
      if (bytes > budget_) {
        TANGO_RETURN_IF_ERROR(SpillRun(&rows_));
        bytes = 0;
      }
    }
  }

  if (runs_.empty()) {
    // Everything fit: plain in-memory sort.
    std::stable_sort(rows_.begin(), rows_.end(), cmp_);
    return Status::OK();
  }

  // Spill the tail run and set up the k-way merge.
  if (!rows_.empty()) {
    TANGO_RETURN_IF_ERROR(SpillRun(&rows_));
  }
  heap_ = std::make_unique<
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp>>(
      HeapCmp{&cmp_});
  for (size_t i = 0; i < runs_.size(); ++i) {
    TANGO_RETURN_IF_ERROR(runs_[i].Rewind());
    Tuple head;
    TANGO_ASSIGN_OR_RETURN(bool more, runs_[i].Next(&head));
    if (more) heap_->push({std::move(head), i});
  }
  return Status::OK();
}

Result<bool> SortCursor::Next(Tuple* tuple) {
  if (heap_ == nullptr) {
    if (pos_ >= rows_.size()) return false;
    *tuple = rows_[pos_++];
    return true;
  }
  if (heap_->empty()) return false;
  HeapEntry top = heap_->top();
  heap_->pop();
  *tuple = std::move(top.tuple);
  Tuple next;
  TANGO_ASSIGN_OR_RETURN(bool more, runs_[top.run].Next(&next));
  if (more) heap_->push({std::move(next), top.run});
  return true;
}

Result<size_t> SortCursor::NextBatch(RowBlock* block) {
  if (heap_ == nullptr) {
    // In-memory path: bulk-copy straight out of the sorted vector (copies,
    // not moves — a prepared plan may re-Init and replay).
    block->Clear();
    while (pos_ < rows_.size() && !block->full()) {
      block->AppendRow(rows_[pos_++]);
    }
    return block->rows();
  }
  // Merge path: the k-way heap is inherently row-at-a-time; batch the emit
  // so downstream operators still get one virtual call per block.
  return Cursor::NextBatch(block);
}

}  // namespace exec
}  // namespace tango
