#include "exec/sort.h"

#include <algorithm>

namespace tango {
namespace exec {

Status SortCursor::SpillRun(std::vector<Tuple>* rows) {
  std::stable_sort(rows->begin(), rows->end(), cmp_);
  storage::RunFile run;
  TANGO_RETURN_IF_ERROR(run.Open());
  for (const Tuple& t : *rows) {
    TANGO_RETURN_IF_ERROR(run.Append(t));
  }
  runs_.push_back(std::move(run));
  rows->clear();
  return Status::OK();
}

Status SortCursor::Init() {
  TANGO_RETURN_IF_ERROR(child_->Init());
  rows_.clear();
  runs_.clear();
  heap_.reset();
  pos_ = 0;

  size_t bytes = 0;
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
    if (!more) break;
    bytes += TupleByteSize(t);
    rows_.push_back(std::move(t));
    if (bytes > budget_) {
      TANGO_RETURN_IF_ERROR(SpillRun(&rows_));
      bytes = 0;
    }
  }

  if (runs_.empty()) {
    // Everything fit: plain in-memory sort.
    std::stable_sort(rows_.begin(), rows_.end(), cmp_);
    return Status::OK();
  }

  // Spill the tail run and set up the k-way merge.
  if (!rows_.empty()) {
    TANGO_RETURN_IF_ERROR(SpillRun(&rows_));
  }
  heap_ = std::make_unique<
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp>>(
      HeapCmp{&cmp_});
  for (size_t i = 0; i < runs_.size(); ++i) {
    TANGO_RETURN_IF_ERROR(runs_[i].Rewind());
    Tuple head;
    TANGO_ASSIGN_OR_RETURN(bool more, runs_[i].Next(&head));
    if (more) heap_->push({std::move(head), i});
  }
  return Status::OK();
}

Result<bool> SortCursor::Next(Tuple* tuple) {
  if (heap_ == nullptr) {
    if (pos_ >= rows_.size()) return false;
    *tuple = rows_[pos_++];
    return true;
  }
  if (heap_->empty()) return false;
  HeapEntry top = heap_->top();
  heap_->pop();
  *tuple = std::move(top.tuple);
  Tuple next;
  TANGO_ASSIGN_OR_RETURN(bool more, runs_[top.run].Next(&next));
  if (more) heap_->push({std::move(next), top.run});
  return true;
}

}  // namespace exec
}  // namespace tango
