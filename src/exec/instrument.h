#ifndef TANGO_EXEC_INSTRUMENT_H_
#define TANGO_EXEC_INSTRUMENT_H_

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cursor.h"
#include "obs/trace.h"

namespace tango {
namespace exec {

/// Inclusive wall-clock timing of one algorithm in an executed plan; the
/// execution engine subtracts child times to obtain self times, which feed
/// the cost model's adaptation loop (the paper's "performance feedback").
struct AlgorithmTiming {
  std::string label;
  double inclusive_seconds = 0;
  /// CPU seconds spent inside pool workers on behalf of this algorithm
  /// (parallel operators only; 0 for serial ones). With DOP workers the
  /// wall-clock self time is roughly worker_seconds / DOP — the feedback
  /// loop uses the wall time against the DOP-discounted formulas, and this
  /// field lets tests/benches verify the per-worker times aggregate to the
  /// full serial work.
  double worker_seconds = 0;
  uint64_t rows = 0;
  /// Non-empty RowBlocks this algorithm produced via NextBatch (0 for a
  /// purely tuple-at-a-time drain); rows/batches is the realized batch size.
  uint64_t batches = 0;
  std::vector<size_t> child_ids;  // ids of wrapped children
};

/// Sink shared by all instrumented cursors of one plan execution.
using TimingSink = std::vector<AlgorithmTiming>;

/// Thread-safe accumulator a parallel cursor calls from pool workers to
/// report task durations; wired up by InstrumentedCursor::WorkerRecorder.
using WorkerTimeRecorder = std::function<void(double seconds)>;

/// Implemented by cursors that run work on pool threads and can report the
/// per-worker task times (the parallel sort / join / transfer drain).
class WorkerTimedCursor {
 public:
  virtual ~WorkerTimedCursor() = default;
  virtual void set_worker_time_recorder(WorkerTimeRecorder recorder) = 0;
};

/// \brief Decorator measuring the wall time spent inside a cursor (Init and
/// all Next calls) and the rows produced.
///
/// Recording is guarded by a per-cursor mutex: with the parallel transfer
/// drain, an inner cursor's Init/Next run on the prefetch thread while its
/// worker recorder may fire concurrently from pool tasks. Each sink entry is
/// written only through its owning InstrumentedCursor, so the per-cursor
/// lock fully serializes access to the entry.
class InstrumentedCursor : public Cursor {
 public:
  /// Registers a slot in `sink` and remembers its id.
  InstrumentedCursor(CursorPtr inner, std::string label, TimingSink* sink,
                     std::vector<size_t> child_ids)
      : inner_(std::move(inner)), sink_(sink) {
    AlgorithmTiming t;
    t.label = std::move(label);
    t.child_ids = std::move(child_ids);
    id_ = sink_->size();
    sink_->push_back(std::move(t));
    // Parallel cursors report their pool-task durations into this entry.
    if (auto* wt = dynamic_cast<WorkerTimedCursor*>(inner_.get())) {
      wt->set_worker_time_recorder([this](double seconds) {
        std::lock_guard<std::mutex> lock(mu_);
        (*sink_)[id_].worker_seconds += seconds;
      });
    }
  }

  /// Destroying the inner cursor joins any worker threads that may still be
  /// inside the recorder lambda (which locks mu_ and captures this), so it
  /// must happen before the remaining members are torn down — the implicit
  /// destructor would destroy mu_ first (reverse declaration order). Joining
  /// first also guarantees the operator span's End timestamp covers every
  /// thread that worked on this cursor.
  ~InstrumentedCursor() override {
    inner_.reset();
    if (trace_ != nullptr && span_begun_) trace_->End(span_);
  }

  size_t id() const { return id_; }

  /// Attributes this cursor's lifetime to `span` in `trace` (may be null):
  /// the span begins at the first Init call — stamping the initiating
  /// thread — and ends when the cursor is destroyed.
  void set_trace(obs::TraceRecorder* trace, obs::SpanId span) {
    trace_ = trace;
    span_ = span;
  }

  Status Init() override {
    if (trace_ != nullptr && !span_begun_) {
      trace_->Begin(span_);
      span_begun_ = true;
    }
    const auto start = Clock::now();
    Status s;
    {
      obs::ScopedSpan init_span(trace_, "init", "operator", span_,
                                static_cast<int64_t>(id_));
      s = inner_->Init();
    }
    Record(start);
    return s;
  }

  Result<bool> Next(Tuple* tuple) override {
    const auto start = Clock::now();
    Result<bool> r = inner_->Next(tuple);
    Record(start, r.ok() && r.ValueOrDie() ? 1 : 0, /*batches=*/0);
    return r;
  }

  /// Forwards the batch path to the wrapped cursor — without this override
  /// every instrumented plan would fall back to the tuple-at-a-time default
  /// and vectorization would die at each wrapper.
  Result<size_t> NextBatch(RowBlock* block) override {
    const auto start = Clock::now();
    Result<size_t> r = inner_->NextBatch(block);
    const uint64_t n = r.ok() ? r.ValueOrDie() : 0;
    Record(start, n, n > 0 ? 1 : 0);
    return r;
  }

  const Schema& schema() const override { return inner_->schema(); }

 private:
  using Clock = std::chrono::steady_clock;

  void Record(Clock::time_point start, uint64_t produced_rows = 0,
              uint64_t produced_batches = 0) {
    const auto elapsed = Clock::now() - start;
    std::lock_guard<std::mutex> lock(mu_);
    (*sink_)[id_].inclusive_seconds +=
        std::chrono::duration<double>(elapsed).count();
    (*sink_)[id_].rows += produced_rows;
    (*sink_)[id_].batches += produced_batches;
  }

  CursorPtr inner_;
  TimingSink* sink_;
  size_t id_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::SpanId span_ = obs::kNoSpan;
  bool span_begun_ = false;
  std::mutex mu_;
};

/// Self time of algorithm `id` (inclusive minus children's inclusive).
///
/// With the parallel transfer drain a child runs concurrently with its
/// parent, so the child's inclusive time is no longer strictly nested in the
/// parent's; the subtraction can undershoot and is clamped at zero.
inline double SelfSeconds(const TimingSink& sink, size_t id) {
  double t = sink[id].inclusive_seconds;
  for (size_t c : sink[id].child_ids) t -= sink[c].inclusive_seconds;
  return t < 0 ? 0 : t;
}

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_INSTRUMENT_H_
