#ifndef TANGO_EXEC_INSTRUMENT_H_
#define TANGO_EXEC_INSTRUMENT_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/cursor.h"

namespace tango {
namespace exec {

/// Inclusive wall-clock timing of one algorithm in an executed plan; the
/// execution engine subtracts child times to obtain self times, which feed
/// the cost model's adaptation loop (the paper's "performance feedback").
struct AlgorithmTiming {
  std::string label;
  double inclusive_seconds = 0;
  uint64_t rows = 0;
  std::vector<size_t> child_ids;  // ids of wrapped children
};

/// Sink shared by all instrumented cursors of one plan execution.
using TimingSink = std::vector<AlgorithmTiming>;

/// \brief Decorator measuring the wall time spent inside a cursor (Init and
/// all Next calls) and the rows produced.
class InstrumentedCursor : public Cursor {
 public:
  /// Registers a slot in `sink` and remembers its id.
  InstrumentedCursor(CursorPtr inner, std::string label, TimingSink* sink,
                     std::vector<size_t> child_ids)
      : inner_(std::move(inner)), sink_(sink) {
    AlgorithmTiming t;
    t.label = std::move(label);
    t.child_ids = std::move(child_ids);
    id_ = sink_->size();
    sink_->push_back(std::move(t));
  }

  size_t id() const { return id_; }

  Status Init() override {
    const auto start = Clock::now();
    Status s = inner_->Init();
    Record(start);
    return s;
  }

  Result<bool> Next(Tuple* tuple) override {
    const auto start = Clock::now();
    Result<bool> r = inner_->Next(tuple);
    Record(start);
    if (r.ok() && r.ValueOrDie()) (*sink_)[id_].rows += 1;
    return r;
  }

  const Schema& schema() const override { return inner_->schema(); }

 private:
  using Clock = std::chrono::steady_clock;

  void Record(Clock::time_point start) {
    const auto elapsed = Clock::now() - start;
    (*sink_)[id_].inclusive_seconds +=
        std::chrono::duration<double>(elapsed).count();
  }

  CursorPtr inner_;
  TimingSink* sink_;
  size_t id_;
};

/// Self time of algorithm `id` (inclusive minus children's inclusive).
inline double SelfSeconds(const TimingSink& sink, size_t id) {
  double t = sink[id].inclusive_seconds;
  for (size_t c : sink[id].child_ids) t -= sink[c].inclusive_seconds;
  return t < 0 ? 0 : t;
}

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_INSTRUMENT_H_
