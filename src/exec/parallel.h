#ifndef TANGO_EXEC_PARALLEL_H_
#define TANGO_EXEC_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/cursor.h"
#include "common/thread_pool.h"
#include "exec/instrument.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "storage/run_file.h"

namespace tango {
namespace exec {

/// \brief Parallel SORT^M: concurrent sorted-run generation, serial k-way
/// merge.
///
/// The input is consumed sequentially and cut into chunks of roughly
/// `budget / dop` bytes; each chunk is stable-sorted by a pool task. The
/// first `dop` chunks stay in memory (together they fill the budget, like
/// the serial sort's in-memory array); later chunks spill to run files
/// inside the task. The merge breaks ties on the chunk index — chunks are
/// cut in input order, so the output is bit-identical to a stable sort of
/// the whole input, and therefore to SortCursor's output.
class ParallelSortCursor : public Cursor, public WorkerTimedCursor {
 public:
  /// `dop` = 0 means "use the pool's thread count". A null pool (or dop 1)
  /// degrades to running the chunk sorts inline, which keeps the cursor
  /// usable in single-threaded contexts (and differential tests cheap).
  ParallelSortCursor(CursorPtr child, std::vector<SortKey> keys,
                     common::ThreadPoolPtr pool,
                     size_t memory_budget_bytes =
                         SortCursor::kDefaultMemoryBudgetBytes,
                     size_t dop = 0);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Batched emit: the single-run fast path bulk-moves out of the in-memory
  /// run; the k-way merge batches its output. Chunk generation in Init
  /// drains the child via NextBatch.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return child_->schema(); }

  void set_worker_time_recorder(WorkerTimeRecorder recorder) override {
    recorder_ = std::move(recorder);
  }

  /// Number of runs that spilled to disk (observability for tests).
  size_t spilled_runs() const { return spilled_; }
  /// Total sorted runs (in-memory + spilled) of the last Init.
  size_t total_runs() const { return runs_.size(); }

 private:
  /// One sorted run: either still in memory or spilled to a file.
  struct Run {
    std::vector<Tuple> mem;
    std::optional<storage::RunFile> file;
    size_t pos = 0;  // read cursor for the in-memory case

    Result<bool> Next(Tuple* tuple);
  };

  CursorPtr child_;
  TupleComparator cmp_;
  common::ThreadPoolPtr pool_;
  size_t budget_;
  size_t dop_;
  WorkerTimeRecorder recorder_;

  std::vector<Run> runs_;
  size_t spilled_ = 0;

  // K-way merge state (same shape as SortCursor's).
  struct HeapEntry {
    Tuple tuple;
    size_t run;
  };
  struct HeapCmp {
    const TupleComparator* cmp;
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      const int c = cmp->Compare(a.tuple, b.tuple);
      if (c != 0) return c > 0;
      return a.run > b.run;  // stable across chunks (input order)
    }
  };
  std::vector<HeapEntry> heap_;
  bool merging_ = false;
};

/// \brief Parallel TJOIN^M: range-partitioned temporal join.
///
/// Both (key-sorted) inputs are materialized and range-partitioned on the
/// period start T1 into `dop` equal-width partitions; a tuple whose period
/// crosses partition boundaries is replicated into every partition its
/// period overlaps (the overlap-spill rule). Each partition runs the serial
/// sort-merge temporal join concurrently — partitioning preserves the key
/// order — and a pair is emitted only in the partition containing the
/// intersection start GREATEST(L.T1, R.T1), so replicated tuples never
/// produce duplicate results. Output is the concatenation of the partition
/// outputs; it is set-equal (not order-equal) to the serial join's output.
///
/// Falls back to the serial join when the pool is null, dop < 2, an input is
/// tiny, or a period attribute is not an integer (periods are day numbers).
class ParallelTemporalJoinCursor : public Cursor, public WorkerTimedCursor {
 public:
  ParallelTemporalJoinCursor(CursorPtr left, CursorPtr right,
                             std::vector<size_t> left_keys,
                             std::vector<size_t> right_keys, size_t left_t1,
                             size_t left_t2, size_t right_t1, size_t right_t2,
                             std::vector<size_t> left_out,
                             std::vector<size_t> right_out, Schema schema,
                             common::ThreadPoolPtr pool, size_t dop = 0);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Bulk-moves out of the materialized result (rebuilt on every Init).
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

  void set_worker_time_recorder(WorkerTimeRecorder recorder) override {
    recorder_ = std::move(recorder);
  }

  /// Partitions actually joined in the last Init (1 = serial fallback).
  size_t partitions_used() const { return partitions_used_; }

 private:
  CursorPtr MakeSerialJoin(std::vector<Tuple> left_rows,
                           std::vector<Tuple> right_rows) const;

  CursorPtr left_, right_;
  std::vector<size_t> left_keys_, right_keys_;
  size_t left_t1_, left_t2_, right_t1_, right_t2_;
  std::vector<size_t> left_out_, right_out_;
  Schema schema_;
  common::ThreadPoolPtr pool_;
  size_t dop_;
  WorkerTimeRecorder recorder_;

  std::vector<Tuple> out_rows_;
  size_t pos_ = 0;
  size_t partitions_used_ = 1;
};

/// \brief Parallel T^M drain: a prefetch thread runs the wrapped cursor
/// (typically TRANSFER^M — wire pacing plus chunk decoding) ahead of the
/// consumer through a bounded SPSC batch queue, overlapping the transfer
/// with the middleware operators above it.
///
/// Both sides watch `control`: a cancelled or expired query unblocks the
/// producer even when the queue is full and the consumer even when the
/// queue is empty, so teardown can never deadlock on the SPSC handshake.
class PrefetchCursor : public Cursor, public WorkerTimedCursor {
 public:
  explicit PrefetchCursor(CursorPtr inner, size_t batch_rows = 256,
                          size_t max_batches = 4,
                          QueryControlPtr control = nullptr);
  ~PrefetchCursor() override;

  PrefetchCursor(const PrefetchCursor&) = delete;
  PrefetchCursor& operator=(const PrefetchCursor&) = delete;

  /// Starts (or restarts) the producer thread; the inner cursor's Init runs
  /// on that thread, so the wire drain begins immediately.
  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Hands a whole producer-filled block across the SPSC queue per call —
  /// the handoff cost is paid once per block instead of once per tuple.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

  void set_worker_time_recorder(WorkerTimeRecorder recorder) override {
    recorder_ = std::move(recorder);
  }

  /// Records the producer thread's drain as a "prefetch.producer" span
  /// under `parent`. Call before Init (the producer reads these unlocked).
  void set_trace(obs::TraceRecorder* trace, obs::SpanId parent) {
    trace_ = trace;
    trace_parent_ = parent;
  }

 private:
  void ProducerLoop();
  void StopProducer();
  /// Blocks until the next producer block is available in batch_; false when
  /// the stream is exhausted (or surfaces the producer's error).
  Result<bool> PopBlock();

  CursorPtr inner_;
  Schema schema_;  // copied so schema() never races with the producer
  size_t batch_rows_;
  size_t max_batches_;
  QueryControlPtr control_;
  WorkerTimeRecorder recorder_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::SpanId trace_parent_ = obs::kNoSpan;

  std::thread producer_;
  std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<RowBlock> queue_;  // producer fills whole blocks
  Status producer_status_;
  bool finished_ = false;  // producer pushed everything (or failed)
  bool cancel_ = false;    // consumer tears down early

  RowBlock batch_;  // consumer-local, being drained
  size_t batch_pos_ = 0;
  bool saw_error_ = false;
};

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_PARALLEL_H_
