#include "exec/parallel.h"

#include <algorithm>
#include <chrono>
#include <future>

namespace tango {
namespace exec {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// ParallelSortCursor
// ---------------------------------------------------------------------------

ParallelSortCursor::ParallelSortCursor(CursorPtr child,
                                       std::vector<SortKey> keys,
                                       common::ThreadPoolPtr pool,
                                       size_t memory_budget_bytes, size_t dop)
    : child_(std::move(child)),
      cmp_(std::move(keys)),
      pool_(std::move(pool)),
      budget_(memory_budget_bytes),
      dop_(dop) {}

Result<bool> ParallelSortCursor::Run::Next(Tuple* tuple) {
  if (file.has_value()) return file->Next(tuple);
  if (pos >= mem.size()) return false;
  // Runs are rebuilt from the child on every Init, so moving out is safe.
  *tuple = std::move(mem[pos++]);
  return true;
}

Status ParallelSortCursor::Init() {
  TANGO_RETURN_IF_ERROR(child_->Init());
  runs_.clear();
  heap_.clear();
  merging_ = false;
  spilled_ = 0;

  const size_t dop =
      dop_ != 0 ? dop_ : (pool_ != nullptr ? pool_->num_threads() : 1);
  const size_t chunk_bytes = std::max<size_t>(budget_ / std::max<size_t>(dop, 1), 1);

  // Each task stable-sorts one chunk; chunks at index >= dop spill so the
  // in-memory footprint of finished runs stays around one budget.
  const WorkerTimeRecorder recorder = recorder_;  // copied before any task runs
  const TupleComparator* cmp = &cmp_;
  auto sort_chunk = [recorder, cmp](std::vector<Tuple> rows,
                                    bool spill) -> Result<Run> {
    const auto start = Clock::now();
    std::stable_sort(rows.begin(), rows.end(), *cmp);
    Run run;
    if (spill) {
      storage::RunFile file;
      TANGO_RETURN_IF_ERROR(file.Open());
      for (const Tuple& t : rows) {
        TANGO_RETURN_IF_ERROR(file.Append(t));
      }
      run.file.emplace(std::move(file));
    } else {
      run.mem = std::move(rows);
    }
    if (recorder) recorder(SecondsSince(start));
    return run;
  };

  std::vector<std::future<Result<Run>>> futures;
  std::vector<Result<Run>> inline_runs;
  const bool pooled = pool_ != nullptr && dop > 1;
  auto submit = [&](std::vector<Tuple> rows, size_t index) {
    const bool spill = index >= dop;
    if (pooled) {
      futures.push_back(pool_->Submit(
          [rows = std::move(rows), spill, &sort_chunk]() mutable {
            return sort_chunk(std::move(rows), spill);
          }));
    } else {
      inline_runs.push_back(sort_chunk(std::move(rows), spill));
    }
  };

  // Sequential consumption, chunking in input order. A child error must not
  // return before every outstanding task is collected below — the tasks
  // reference this stack frame.
  Status first_error = Status::OK();
  std::vector<Tuple> chunk;
  size_t bytes = 0;
  size_t index = 0;
  RowBlock block;
  Tuple t;
  while (first_error.ok()) {
    Result<size_t> batched = child_->NextBatch(&block);
    if (!batched.ok()) {
      first_error = batched.status();
      break;
    }
    const size_t n = batched.ValueOrDie();
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      block.MoveRowTo(i, &t);
      bytes += TupleByteSize(t);
      chunk.push_back(std::move(t));
      if (bytes > chunk_bytes) {
        submit(std::move(chunk), index++);
        chunk = {};
        bytes = 0;
      }
    }
  }
  if (first_error.ok() && !chunk.empty()) submit(std::move(chunk), index++);
  auto absorb = [&](Result<Run> r) {
    if (!r.ok()) {
      if (first_error.ok()) first_error = r.status();
      return;
    }
    Run run = r.MoveValueOrDie();
    if (run.file.has_value()) ++spilled_;
    runs_.push_back(std::move(run));
  };
  for (auto& f : futures) {
    try {
      absorb(f.get());
    } catch (const std::exception& e) {
      if (first_error.ok()) {
        first_error = Status::Internal(std::string("sort task failed: ") +
                                       e.what());
      }
    }
  }
  for (auto& r : inline_runs) absorb(std::move(r));
  TANGO_RETURN_IF_ERROR(first_error);

  if (runs_.size() <= 1) return Status::OK();  // single-run fast path

  // K-way merge setup; spilled runs rewind to read mode.
  merging_ = true;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].file.has_value()) {
      TANGO_RETURN_IF_ERROR(runs_[i].file->Rewind());
    }
    Tuple head;
    TANGO_ASSIGN_OR_RETURN(bool more, runs_[i].Next(&head));
    if (more) heap_.push_back({std::move(head), i});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapCmp{&cmp_});
  return Status::OK();
}

Result<bool> ParallelSortCursor::Next(Tuple* tuple) {
  if (!merging_) {
    if (runs_.empty()) return false;
    return runs_[0].Next(tuple);
  }
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{&cmp_});
  HeapEntry top = std::move(heap_.back());
  heap_.pop_back();
  *tuple = std::move(top.tuple);
  Tuple next;
  TANGO_ASSIGN_OR_RETURN(bool more, runs_[top.run].Next(&next));
  if (more) {
    heap_.push_back({std::move(next), top.run});
    std::push_heap(heap_.begin(), heap_.end(), HeapCmp{&cmp_});
  }
  return true;
}

Result<size_t> ParallelSortCursor::NextBatch(RowBlock* block) {
  if (!merging_) {
    block->Clear();
    if (runs_.empty()) return 0;
    std::vector<Tuple>& mem = runs_[0].mem;
    if (!runs_[0].file.has_value()) {
      while (runs_[0].pos < mem.size() && !block->full()) {
        block->AppendRow(std::move(mem[runs_[0].pos++]));
      }
      return block->rows();
    }
  }
  return Cursor::NextBatch(block);
}

// ---------------------------------------------------------------------------
// ParallelTemporalJoinCursor
// ---------------------------------------------------------------------------

namespace {

/// Serial temporal join restricted to pairs whose intersection start falls
/// in [lo, hi) — the dedup rule that makes overlap-spill replication safe.
class WindowedTemporalJoinCursor : public TemporalJoinCursor {
 public:
  WindowedTemporalJoinCursor(CursorPtr left, CursorPtr right,
                             std::vector<size_t> left_keys,
                             std::vector<size_t> right_keys, size_t left_t1,
                             size_t left_t2, size_t right_t1, size_t right_t2,
                             std::vector<size_t> left_out,
                             std::vector<size_t> right_out, Schema schema,
                             int64_t lo, int64_t hi)
      : TemporalJoinCursor(std::move(left), std::move(right),
                           std::move(left_keys), std::move(right_keys),
                           left_t1, left_t2, right_t1, right_t2,
                           std::move(left_out), std::move(right_out),
                           std::move(schema)),
        lo_(lo),
        hi_(hi) {}

 protected:
  bool EmitPair(const Tuple& left, const Tuple& right, Tuple* out) override {
    if (!TemporalJoinCursor::EmitPair(left, right, out)) return false;
    // The output carries GREATEST(T1) as its second-to-last column; the
    // partitioning phase guarantees it is a non-null integer.
    const int64_t start = (*out)[out->size() - 2].AsInt();
    return start >= lo_ && start < hi_;
  }

 private:
  int64_t lo_, hi_;
};

}  // namespace

ParallelTemporalJoinCursor::ParallelTemporalJoinCursor(
    CursorPtr left, CursorPtr right, std::vector<size_t> left_keys,
    std::vector<size_t> right_keys, size_t left_t1, size_t left_t2,
    size_t right_t1, size_t right_t2, std::vector<size_t> left_out,
    std::vector<size_t> right_out, Schema schema, common::ThreadPoolPtr pool,
    size_t dop)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_t1_(left_t1),
      left_t2_(left_t2),
      right_t1_(right_t1),
      right_t2_(right_t2),
      left_out_(std::move(left_out)),
      right_out_(std::move(right_out)),
      schema_(std::move(schema)),
      pool_(std::move(pool)),
      dop_(dop) {}

CursorPtr ParallelTemporalJoinCursor::MakeSerialJoin(
    std::vector<Tuple> left_rows, std::vector<Tuple> right_rows) const {
  // The child schemas are only needed for arity; reuse the inputs' schemas.
  // The fallback join is drained exactly once, so the partitions' cursors
  // move their rows out instead of deep-copying each tuple.
  auto lv = std::make_unique<VectorCursor>(left_->schema(),
                                           std::move(left_rows),
                                           VectorCursor::Drain::kOneShot);
  auto rv = std::make_unique<VectorCursor>(right_->schema(),
                                           std::move(right_rows),
                                           VectorCursor::Drain::kOneShot);
  return std::make_unique<TemporalJoinCursor>(
      std::move(lv), std::move(rv), left_keys_, right_keys_, left_t1_,
      left_t2_, right_t1_, right_t2_, left_out_, right_out_, schema_);
}

Status ParallelTemporalJoinCursor::Init() {
  out_rows_.clear();
  pos_ = 0;
  partitions_used_ = 1;

  TANGO_ASSIGN_OR_RETURN(std::vector<Tuple> lrows,
                         MaterializeAll(left_.get()));
  TANGO_ASSIGN_OR_RETURN(std::vector<Tuple> rrows,
                         MaterializeAll(right_.get()));

  const size_t dop =
      dop_ != 0 ? dop_ : (pool_ != nullptr ? pool_->num_threads() : 1);

  // Find the T1 range; a non-integer period attribute (or any input too
  // small to be worth partitioning) falls back to the serial join.
  bool partitionable = pool_ != nullptr && dop > 1 && !lrows.empty() &&
                       !rrows.empty();
  int64_t smin = 0, smax = 0;
  bool have_range = false;
  auto scan_range = [&](const std::vector<Tuple>& rows, size_t t1, size_t t2) {
    for (const Tuple& t : rows) {
      const Value& v1 = t[t1];
      const Value& v2 = t[t2];
      if (v1.is_null() || v2.is_null()) continue;  // never joins; droppable
      if (!v1.is_int() || !v2.is_int()) {
        partitionable = false;
        return;
      }
      const int64_t s = v1.AsInt();
      if (!have_range) {
        smin = smax = s;
        have_range = true;
      } else {
        smin = std::min(smin, s);
        smax = std::max(smax, s);
      }
    }
  };
  if (partitionable) scan_range(lrows, left_t1_, left_t2_);
  if (partitionable) scan_range(rrows, right_t1_, right_t2_);
  const int64_t span = have_range ? smax - smin + 1 : 0;
  if (!partitionable || !have_range ||
      span < static_cast<int64_t>(2 * dop)) {
    CursorPtr serial = MakeSerialJoin(std::move(lrows), std::move(rrows));
    TANGO_ASSIGN_OR_RETURN(out_rows_, MaterializeAll(serial.get()));
    return Status::OK();
  }

  // Equal-width partitions of [smin, smax + 1); every intersection start is
  // some input tuple's T1, so each emitted pair lands in exactly one window.
  const size_t parts = dop;
  const int64_t width = (span + static_cast<int64_t>(parts) - 1) /
                        static_cast<int64_t>(parts);
  auto window_lo = [&](size_t p) {
    return smin + static_cast<int64_t>(p) * width;
  };

  // Overlap-spill: a tuple joins partners whose intersection start lies in
  // [T1, max(T1 + 1, T2)), so it is replicated into every partition that
  // range overlaps.
  std::vector<std::vector<Tuple>> lparts(parts), rparts(parts);
  auto scatter = [&](std::vector<Tuple> rows, size_t t1, size_t t2,
                     std::vector<std::vector<Tuple>>* out) {
    for (Tuple& row : rows) {
      const Value& v1 = row[t1];
      const Value& v2 = row[t2];
      if (v1.is_null() || v2.is_null()) continue;  // cannot join
      const int64_t start = v1.AsInt();
      const int64_t reach = std::max(start + 1, v2.AsInt());
      size_t first = static_cast<size_t>((start - smin) / width);
      for (size_t p = first; p < parts && window_lo(p) < reach; ++p) {
        (*out)[p].push_back(row);
      }
    }
  };
  scatter(std::move(lrows), left_t1_, left_t2_, &lparts);
  scatter(std::move(rrows), right_t1_, right_t2_, &rparts);

  const WorkerTimeRecorder recorder = recorder_;
  auto join_partition = [this, recorder](std::vector<Tuple> lp,
                                         std::vector<Tuple> rp, int64_t lo,
                                         int64_t hi) -> Result<std::vector<Tuple>> {
    const auto start = Clock::now();
    auto lv = std::make_unique<VectorCursor>(left_->schema(), std::move(lp),
                                             VectorCursor::Drain::kOneShot);
    auto rv = std::make_unique<VectorCursor>(right_->schema(), std::move(rp),
                                             VectorCursor::Drain::kOneShot);
    WindowedTemporalJoinCursor join(
        std::move(lv), std::move(rv), left_keys_, right_keys_, left_t1_,
        left_t2_, right_t1_, right_t2_, left_out_, right_out_, schema_, lo,
        hi);
    Result<std::vector<Tuple>> rows = MaterializeAll(&join);
    if (recorder) recorder(SecondsSince(start));
    return rows;
  };

  std::vector<std::future<Result<std::vector<Tuple>>>> futures;
  futures.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    const int64_t lo = window_lo(p);
    const int64_t hi = p + 1 == parts ? smax + 1 : window_lo(p + 1);
    futures.push_back(pool_->Submit(
        [lp = std::move(lparts[p]), rp = std::move(rparts[p]), lo, hi,
         &join_partition]() mutable {
          return join_partition(std::move(lp), std::move(rp), lo, hi);
        }));
  }

  Status first_error = Status::OK();
  std::vector<std::vector<Tuple>> outputs(parts);
  for (size_t p = 0; p < parts; ++p) {
    try {
      Result<std::vector<Tuple>> r = futures[p].get();
      if (!r.ok()) {
        if (first_error.ok()) first_error = r.status();
      } else {
        outputs[p] = r.MoveValueOrDie();
      }
    } catch (const std::exception& e) {
      if (first_error.ok()) {
        first_error = Status::Internal(std::string("join task failed: ") +
                                       e.what());
      }
    }
  }
  TANGO_RETURN_IF_ERROR(first_error);

  partitions_used_ = parts;
  size_t total = 0;
  for (const auto& o : outputs) total += o.size();
  out_rows_.reserve(total);
  for (auto& o : outputs) {
    out_rows_.insert(out_rows_.end(), std::make_move_iterator(o.begin()),
                     std::make_move_iterator(o.end()));
  }
  return Status::OK();
}

Result<bool> ParallelTemporalJoinCursor::Next(Tuple* tuple) {
  if (pos_ >= out_rows_.size()) return false;
  // out_rows_ is rebuilt on every Init, so moving out is safe.
  *tuple = std::move(out_rows_[pos_++]);
  return true;
}

Result<size_t> ParallelTemporalJoinCursor::NextBatch(RowBlock* block) {
  block->Clear();
  while (pos_ < out_rows_.size() && !block->full()) {
    block->AppendRow(std::move(out_rows_[pos_++]));
  }
  return block->rows();
}

// ---------------------------------------------------------------------------
// PrefetchCursor
// ---------------------------------------------------------------------------

PrefetchCursor::PrefetchCursor(CursorPtr inner, size_t batch_rows,
                               size_t max_batches, QueryControlPtr control)
    : inner_(std::move(inner)),
      schema_(inner_->schema()),
      batch_rows_(batch_rows == 0 ? 1 : batch_rows),
      max_batches_(max_batches == 0 ? 1 : max_batches),
      control_(std::move(control)) {}

PrefetchCursor::~PrefetchCursor() { StopProducer(); }

void PrefetchCursor::StopProducer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_ = true;
  }
  not_full_.notify_all();
  if (producer_.joinable()) producer_.join();
}

Status PrefetchCursor::Init() {
  StopProducer();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();
    producer_status_ = Status::OK();
    finished_ = false;
    cancel_ = false;
  }
  batch_.Clear();
  batch_pos_ = 0;
  saw_error_ = false;
  producer_ = std::thread([this]() { ProducerLoop(); });
  return Status::OK();
}

void PrefetchCursor::ProducerLoop() {
  obs::ScopedSpan span(trace_, "prefetch.producer", "prefetch", trace_parent_);
  const WorkerTimeRecorder recorder = recorder_;
  const auto started = Clock::now();
  double active_seconds = 0;

  // kConsumerGone: the consumer tore the cursor down — exit silently (it
  // will never read again). kControlDead: the query was cancelled or timed
  // out — finish normally with the control's status so a consumer that IS
  // still reading sees a clean transient error.
  enum class PushOutcome { kPushed, kConsumerGone, kControlDead };
  auto push = [this](RowBlock block) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (cancel_) return PushOutcome::kConsumerGone;
      if (control_ != nullptr &&
          (control_->cancelled() || control_->expired())) {
        return PushOutcome::kControlDead;
      }
      if (queue_.size() < max_batches_) break;
      // Bounded wait: a dying query must unblock this thread even if the
      // consumer never drains another batch.
      not_full_.wait_for(lock, std::chrono::milliseconds(5));
    }
    queue_.push_back(std::move(block));
    not_empty_.notify_one();
    return PushOutcome::kPushed;
  };

  Status status = inner_->Init();
  if (status.ok()) {
    // The producer fills whole blocks: one virtual call into the inner
    // cursor and one queue handoff per block. A batched inner cursor (the
    // wire drain) may return partial blocks; each is pushed as-is so the
    // consumer never waits on a block the wire has already delivered.
    RowBlock block(batch_rows_);
    while (true) {
      Result<size_t> batched = inner_->NextBatch(&block);
      if (!batched.ok()) {
        status = batched.status();
        break;
      }
      if (batched.ValueOrDie() == 0) break;
      active_seconds = SecondsSince(started);
      const PushOutcome out = push(std::move(block));
      if (out == PushOutcome::kConsumerGone) return;
      if (out == PushOutcome::kControlDead) {
        status = CheckControl(control_);
        break;
      }
      block = RowBlock(batch_rows_);
    }
  }

  active_seconds = SecondsSince(started);
  if (recorder) recorder(active_seconds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    producer_status_ = status;
    finished_ = true;
  }
  not_empty_.notify_all();
}

Result<bool> PrefetchCursor::Next(Tuple* tuple) {
  if (saw_error_) return producer_status_;
  while (true) {
    if (batch_pos_ < batch_.rows()) {
      batch_.MoveRowTo(batch_pos_++, tuple);
      return true;
    }
    TANGO_ASSIGN_OR_RETURN(bool popped, PopBlock());
    if (!popped) return false;
  }
}

Result<size_t> PrefetchCursor::NextBatch(RowBlock* block) {
  if (saw_error_) return producer_status_;
  block->Clear();
  // Serve any rows left over from a Next-drained block first, then hand the
  // next producer block across wholesale (capacity stays the consumer's).
  if (batch_pos_ >= batch_.rows()) {
    TANGO_ASSIGN_OR_RETURN(bool popped, PopBlock());
    if (!popped) return 0;
  }
  if (batch_pos_ == 0) {
    const size_t cap = block->capacity();
    *block = std::move(batch_);
    block->set_capacity(cap);
    batch_ = RowBlock();
    return block->rows();
  }
  while (batch_pos_ < batch_.rows() && !block->full()) {
    Tuple t;
    batch_.MoveRowTo(batch_pos_++, &t);
    block->AppendRow(std::move(t));
  }
  return block->rows();
}

/// Pops the next producer block into batch_; false when the stream is done.
/// Returns the producer's error once the queue is drained.
Result<bool> PrefetchCursor::PopBlock() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    while (!finished_ && queue_.empty()) {
      if (control_ != nullptr) {
        // A dying query unblocks the consumer even if the producer is
        // wedged inside a wire wait; the producer is joined at teardown.
        TANGO_RETURN_IF_ERROR(control_->Check());
      }
      not_empty_.wait_for(lock, std::chrono::milliseconds(5));
    }
    if (!queue_.empty()) {
      batch_ = std::move(queue_.front());
      queue_.pop_front();
      batch_pos_ = 0;
      not_full_.notify_one();
      return true;
    }
    // Producer finished and the queue is drained.
    if (!producer_status_.ok()) {
      saw_error_ = true;
      return producer_status_;
    }
    return false;
  }
}

}  // namespace exec
}  // namespace tango
