#ifndef TANGO_EXEC_TRANSFER_H_
#define TANGO_EXEC_TRANSFER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/cursor.h"
#include "common/retry.h"
#include "dbms/connection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tango {
namespace exec {

/// \brief Optional observability hooks for the transfer cursors.
///
/// All pointers may be null (that hook is skipped). `span` is the
/// operator span the cursor's retry backoffs nest under — NOT the span the
/// rows are attributed to; row counts go to the process-wide counters.
struct TransferObservability {
  obs::Counter* rows_to_middleware = nullptr;  // T^M rows delivered
  obs::Counter* rows_to_dbms = nullptr;        // T^D rows bulk-loaded
  obs::Counter* cache_hits = nullptr;          // shared-statement cache hits
  obs::Counter* cache_misses = nullptr;        // shared statements transferred
  obs::TraceRecorder* trace = nullptr;
  obs::SpanId span = obs::kNoSpan;
};

/// \brief Shared result store for identical TRANSFER^M statements within
/// one query execution.
///
/// The paper's §7 refinement: "if a query is to access the same DBMS
/// relation twice (even if the projected attributes are different), it
/// would be beneficial to issue only one T^M operation." The plan compiler
/// marks SQL statements that occur more than once in a plan; the first
/// TRANSFER^M to execute such a statement materializes the rows here, and
/// later occurrences are served locally without a second round trip.
/// Only complete result sets are ever stored: a transfer that fails
/// mid-materialization (even after exhausting retries) must not poison the
/// cache with a partial result for the other occurrences.
/// Thread-safe: with the parallel transfer drain, TRANSFER^M cursors of one
/// plan run their Inits on different prefetch threads concurrently.
class TransferCache {
 public:
  /// Marks `sql` as occurring multiple times in the plan (worth caching).
  /// Called during compilation (single-threaded), before any execution.
  void MarkShared(const std::string& sql) { shared_.insert(sql); }
  bool IsShared(const std::string& sql) const {
    return shared_.count(sql) != 0;
  }

  std::shared_ptr<const std::vector<Tuple>> Get(const std::string& sql) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = results_.find(sql);
    return it == results_.end() ? nullptr : it->second;
  }
  void Put(const std::string& sql, std::vector<Tuple> rows) {
    std::lock_guard<std::mutex> lock(mu_);
    results_[sql] = std::make_shared<const std::vector<Tuple>>(std::move(rows));
  }

 private:
  std::set<std::string> shared_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const std::vector<Tuple>>> results_;
};

/// \brief TRANSFER^M: issues an SQL SELECT to the DBMS and streams the
/// result tuples into the middleware (§3.2).
///
/// `dependencies` are cursors that must be fully executed before the SELECT
/// is issued — the dashed "algorithm sequence" arrows of Figure 5: a
/// TRANSFER^D that loads a temporary the SELECT reads from.
///
/// Transient wire/DBMS failures (kUnavailable/kAborted) are retried under
/// `retry`: the SELECT is idempotent and the engine deterministic, so the
/// statement is simply re-issued and rows already delivered downstream are
/// skipped before streaming resumes. One retry budget covers the cursor's
/// whole lifetime (open + drain); when it is exhausted the last transient
/// failure is returned tagged "TRANSFER^M" so the middleware can pick the
/// right degraded plan.
class TransferMCursor : public Cursor {
 public:
  TransferMCursor(dbms::Connection* conn, std::string sql, Schema schema,
                  std::vector<CursorPtr> dependencies = {},
                  std::shared_ptr<TransferCache> cache = nullptr,
                  QueryControlPtr control = nullptr,
                  RetryPolicy retry = RetryPolicy(),
                  RecoveryCounters* counters = nullptr);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  /// Batched delivery: hands whole decoded wire blocks downstream (or
  /// copies a block's worth out of the shared cache). Remote fetch errors
  /// only surface at block boundaries, so `delivered_` — the restart-skip
  /// offset — stays block-aligned and a re-issued SELECT repositions on the
  /// same block grid.
  Result<size_t> NextBatch(RowBlock* block) override;
  const Schema& schema() const override { return schema_; }

  const std::string& sql() const { return sql_; }

  /// Installs the metric/trace hooks; call before Init.
  void set_observability(const TransferObservability& obs) { obs_ = obs; }

 private:
  /// One attempt: (re)issue the SELECT and skip `skip` already-delivered
  /// rows. Non-OK means the attempt failed (possibly transiently).
  Status TryOpen(size_t skip);
  /// Retry loop around TryOpen; consumes attempts from retry_ until open
  /// succeeds, the budget is exhausted, or the failure is not retryable.
  Status Restore(size_t skip);

  dbms::Connection* conn_;
  std::string sql_;
  Schema schema_;
  std::vector<CursorPtr> dependencies_;
  std::shared_ptr<TransferCache> cache_;
  QueryControlPtr control_;
  RetryPolicy policy_;
  RecoveryCounters* counters_;
  TransferObservability obs_;
  std::unique_ptr<RetryState> retry_;
  CursorPtr remote_;
  size_t delivered_ = 0;
  // Set when serving from (or populating) the shared cache.
  std::shared_ptr<const std::vector<Tuple>> cached_rows_;
  size_t cached_pos_ = 0;
};

/// \brief TRANSFER^D: creates a table in the DBMS and bulk-loads its
/// argument into it during Init (the paper: "it fetches all tuples of the
/// argument result set and copies them into the DBMS").
///
/// Produces no tuples itself; downstream DBMS SQL references `table_name`.
/// The table is created with an exact-size extent and no free space — the
/// write-once optimizations of §3.2 — and must be dropped when the query
/// ends (the execution engine does this).
///
/// The argument is drained (middleware side) before any DBMS statement, so
/// a transient failure only ever interrupts the CREATE/load pair; a retry
/// then drops whatever half-created table the failed attempt left behind
/// and recreates + reloads from the buffered rows — the load is made
/// idempotent by construction. Exhausted-budget failures are tagged
/// "TRANSFER^D" for the degradation logic.
class TransferDCursor : public Cursor {
 public:
  /// `columns` are the (unique) column names for the created table, parallel
  /// to the child schema.
  TransferDCursor(dbms::Connection* conn, std::string table_name,
                  std::vector<std::string> columns, CursorPtr child,
                  QueryControlPtr control = nullptr,
                  RetryPolicy retry = RetryPolicy(),
                  RecoveryCounters* counters = nullptr);

  Status Init() override;
  Result<bool> Next(Tuple* tuple) override;
  const Schema& schema() const override { return child_->schema(); }

  const std::string& table_name() const { return table_name_; }
  /// Number of tuples loaded (valid after Init).
  size_t rows_loaded() const { return rows_loaded_; }

  /// Installs the metric/trace hooks; call before Init.
  void set_observability(const TransferObservability& obs) { obs_ = obs; }

 private:
  /// One attempt at the DBMS side; `drop_first` makes a retry idempotent by
  /// removing whatever the failed attempt left behind.
  Status AttemptLoad(bool drop_first, const std::string& ddl,
                     const std::vector<Tuple>& rows);

  dbms::Connection* conn_;
  std::string table_name_;
  std::vector<std::string> columns_;
  CursorPtr child_;
  QueryControlPtr control_;
  RetryPolicy policy_;
  RecoveryCounters* counters_;
  TransferObservability obs_;
  size_t rows_loaded_ = 0;
};

}  // namespace exec
}  // namespace tango

#endif  // TANGO_EXEC_TRANSFER_H_
