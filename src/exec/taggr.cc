#include "exec/taggr.h"

#include <algorithm>

namespace tango {
namespace exec {

TemporalAggregationCursor::TemporalAggregationCursor(
    CursorPtr child, std::vector<size_t> group_cols, size_t t1, size_t t2,
    std::vector<TAggrSpec> aggs, Schema out_schema)
    : child_(std::move(child)),
      reader_(child_.get()),
      group_cols_(std::move(group_cols)),
      t1_(t1),
      t2_(t2),
      aggs_(std::move(aggs)),
      schema_(std::move(out_schema)) {}

Status TemporalAggregationCursor::Init() {
  TANGO_RETURN_IF_ERROR(reader_.Init());
  group_rows_.clear();
  pending_valid_ = false;
  input_done_ = false;
  output_.clear();
  out_pos_ = 0;
  return Status::OK();
}

Result<bool> TemporalAggregationCursor::LoadNextGroup() {
  group_rows_.clear();
  while (true) {
    Tuple row;
    bool more;
    if (pending_valid_) {
      row = std::move(pending_);
      pending_valid_ = false;
      more = true;
    } else if (input_done_) {
      more = false;
    } else {
      TANGO_ASSIGN_OR_RETURN(more, reader_.Next(&row));
      if (!more) input_done_ = true;
    }
    if (!more) return !group_rows_.empty();
    // Tuples with NULL bounds or empty periods [t, t) contribute nothing
    // and would confuse the sweep; drop them here.
    if (row[t1_].is_null() || row[t2_].is_null() || !(row[t1_] < row[t2_])) {
      continue;
    }
    if (group_rows_.empty()) {
      group_rows_.push_back(std::move(row));
      continue;
    }
    bool same = true;
    for (size_t c : group_cols_) {
      if (row[c].Compare(group_rows_.front()[c]) != 0) {
        same = false;
        break;
      }
    }
    if (same) {
      group_rows_.push_back(std::move(row));
    } else {
      pending_ = std::move(row);
      pending_valid_ = true;
      return true;
    }
  }
}

void TemporalAggregationCursor::Add(const Tuple& row) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const TAggrSpec& a = aggs_[i];
    AggState& st = states_[i];
    if (!a.star) {
      const Value& v = row[a.arg];
      if (v.is_null()) continue;  // aggregates skip NULLs
      switch (a.func) {
        case AggFunc::kCount:
          st.count += 1;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          st.count += 1;
          st.sum += v.AsDouble();
          if (!v.is_int()) st.sum_is_int = false;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          st.values.insert(v);
          break;
      }
    } else {
      st.count += 1;
    }
  }
}

void TemporalAggregationCursor::Remove(const Tuple& row) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const TAggrSpec& a = aggs_[i];
    AggState& st = states_[i];
    if (!a.star) {
      const Value& v = row[a.arg];
      if (v.is_null()) continue;
      switch (a.func) {
        case AggFunc::kCount:
          st.count -= 1;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          st.count -= 1;
          st.sum -= v.AsDouble();
          break;
        case AggFunc::kMin:
        case AggFunc::kMax: {
          const auto it = st.values.find(v);
          if (it != st.values.end()) st.values.erase(it);
          break;
        }
      }
    } else {
      st.count -= 1;
    }
  }
}

Value TemporalAggregationCursor::CurrentValue(size_t agg_index) const {
  const TAggrSpec& a = aggs_[agg_index];
  const AggState& st = states_[agg_index];
  switch (a.func) {
    case AggFunc::kCount:
      return Value(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      if (st.sum_is_int) return Value(static_cast<int64_t>(st.sum));
      return Value(st.sum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value(st.sum / static_cast<double>(st.count));
    case AggFunc::kMin:
      return st.values.empty() ? Value::Null() : *st.values.begin();
    case AggFunc::kMax:
      return st.values.empty() ? Value::Null() : *st.values.rbegin();
  }
  return Value::Null();
}

void TemporalAggregationCursor::SweepGroup() {
  // The group arrives sorted on T1 (the external sort); the second copy —
  // here a vector of row indices — is sorted on T2 (the internal sort the
  // paper's cost formula charges for).
  const size_t n = group_rows_.size();
  std::vector<size_t> by_t2(n);
  for (size_t i = 0; i < n; ++i) by_t2[i] = i;
  std::stable_sort(by_t2.begin(), by_t2.end(), [this](size_t a, size_t b) {
    return group_rows_[a][t2_] < group_rows_[b][t2_];
  });

  states_.assign(aggs_.size(), AggState{});
  // Count of tuples currently active (for "emit only non-empty periods").
  int64_t active = 0;

  size_t i = 0;  // next start event (rows sorted on T1)
  size_t j = 0;  // next end event (by_t2)
  bool have_prev = false;
  Value prev_t;

  while (j < n) {
    // Next event time: the smaller of the next start and the next end.
    Value t = group_rows_[by_t2[j]][t2_];
    if (i < n && group_rows_[i][t1_] < t) t = group_rows_[i][t1_];

    if (active > 0 && have_prev && prev_t < t) {
      // Emit the constant period [prev_t, t).
      Tuple out;
      out.reserve(group_cols_.size() + 2 + aggs_.size());
      for (size_t c : group_cols_) out.push_back(group_rows_.front()[c]);
      out.push_back(prev_t);
      out.push_back(t);
      for (size_t a = 0; a < aggs_.size(); ++a) out.push_back(CurrentValue(a));
      output_.push_back(std::move(out));
    }

    while (i < n && group_rows_[i][t1_].Compare(t) == 0) {
      Add(group_rows_[i]);
      ++active;
      ++i;
    }
    while (j < n && group_rows_[by_t2[j]][t2_].Compare(t) == 0) {
      Remove(group_rows_[by_t2[j]]);
      --active;
      ++j;
    }
    prev_t = t;
    have_prev = true;
  }
}

Result<bool> TemporalAggregationCursor::Next(Tuple* tuple) {
  while (out_pos_ >= output_.size()) {
    output_.clear();
    out_pos_ = 0;
    TANGO_ASSIGN_OR_RETURN(bool have_group, LoadNextGroup());
    if (!have_group) return false;
    SweepGroup();
  }
  *tuple = std::move(output_[out_pos_++]);
  return true;
}

Result<size_t> TemporalAggregationCursor::NextBatch(RowBlock* block) {
  block->Clear();
  while (!block->full()) {
    if (out_pos_ >= output_.size()) {
      output_.clear();
      out_pos_ = 0;
      TANGO_ASSIGN_OR_RETURN(bool have_group, LoadNextGroup());
      if (!have_group) break;
      SweepGroup();
    }
    while (out_pos_ < output_.size() && !block->full()) {
      block->AppendRow(std::move(output_[out_pos_++]));
    }
  }
  return block->rows();
}

}  // namespace exec
}  // namespace tango
