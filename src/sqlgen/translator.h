#ifndef TANGO_SQLGEN_TRANSLATOR_H_
#define TANGO_SQLGEN_TRANSLATOR_H_

#include <map>
#include <string>
#include <vector>

#include "optimizer/phys.h"

namespace tango {
namespace sqlgen {

/// Result of rendering one DBMS-resident plan fragment.
struct RenderedSql {
  /// A complete SELECT statement for the fragment.
  std::string sql;
  /// Emitted output column aliases, parallel to the fragment's algebra
  /// schema (the middleware relies on positional compatibility).
  std::vector<std::string> aliases;
  /// Non-empty when the fragment is a bare table access (a base-table scan
  /// or a TRANSFER^D temporary): parents then reference the table directly
  /// in FROM instead of nesting a subquery — yielding the flat SQL of
  /// Figure 5 and letting the DBMS planner use its index access paths.
  std::string base_table;
};

/// \brief The Translator-To-SQL component: renders the parts of a chosen
/// plan that occur in the DBMS into SQL (the parts below T^M's that either
/// reach the leaf level or T^D's — Section 2.1).
class Translator {
 public:
  /// `td_tables` maps each TRANSFER^D plan node inside fragments to the
  /// temporary table name the execution engine will create for it.
  explicit Translator(
      std::map<const optimizer::PhysPlan*, std::string> td_tables)
      : td_tables_(std::move(td_tables)) {}

  /// Renders a fragment rooted at a DBMS-site node. The fragment's leaves
  /// are base-table scans and TRANSFER^D nodes (emitted as references to
  /// their temporary tables).
  Result<RenderedSql> Render(const optimizer::PhysPlan& node);

 private:
  /// Allocates select-list aliases that are unique within one SELECT.
  std::vector<std::string> MakeAliases(const Schema& schema);

  std::string FreshSubqueryAlias() { return "S" + std::to_string(++alias_counter_); }

  /// Prints an algebra expression against a child whose algebra schema is
  /// `schema` and whose emitted aliases are `aliases`, qualifying column
  /// references with `qualifier` (empty = bare aliases).
  Result<std::string> RenderExpr(const ExprPtr& expr, const Schema& schema,
                                 const std::vector<std::string>& aliases,
                                 const std::string& qualifier);

  /// Renders the nested temporal-aggregation SQL (the "50-line SQL query").
  Result<RenderedSql> RenderTAggr(const optimizer::PhysPlan& node);

  std::map<const optimizer::PhysPlan*, std::string> td_tables_;
  int alias_counter_ = 0;
};

}  // namespace sqlgen
}  // namespace tango

#endif  // TANGO_SQLGEN_TRANSLATOR_H_
