#include "sqlgen/translator.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace tango {
namespace sqlgen {

namespace {

using optimizer::Algorithm;
using optimizer::PhysPlan;

std::string Sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "C_" + out;
  }
  return out;
}

/// FROM-clause item for a child fragment: bare table or subquery.
std::string FromItem(const RenderedSql& child, const std::string& alias) {
  if (!child.base_table.empty()) return child.base_table + " " + alias;
  return "(" + child.sql + ") " + alias;
}

}  // namespace

std::vector<std::string> Translator::MakeAliases(const Schema& schema) {
  std::vector<std::string> aliases;
  std::set<std::string> used;
  for (const Column& c : schema.columns()) {
    std::string base = Sanitize(c.name);
    std::string alias = base;
    int k = 1;
    while (used.count(alias) != 0) {
      alias = base + "_" + std::to_string(++k);
    }
    used.insert(alias);
    aliases.push_back(alias);
  }
  return aliases;
}

Result<std::string> Translator::RenderExpr(
    const ExprPtr& expr, const Schema& schema,
    const std::vector<std::string>& aliases, const std::string& qualifier) {
  switch (expr->kind) {
    case Expr::Kind::kColumn: {
      TANGO_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(expr->table, expr->name));
      return qualifier.empty() ? aliases[idx] : qualifier + "." + aliases[idx];
    }
    case Expr::Kind::kLiteral:
      return expr->literal.ToSqlLiteral();
    case Expr::Kind::kUnary: {
      TANGO_ASSIGN_OR_RETURN(
          std::string child,
          RenderExpr(expr->children[0], schema, aliases, qualifier));
      switch (expr->unary_op) {
        case UnaryOp::kNot:
          return "NOT (" + child + ")";
        case UnaryOp::kNeg:
          return "-(" + child + ")";
        case UnaryOp::kIsNull:
          return "(" + child + ") IS NULL";
        case UnaryOp::kIsNotNull:
          return "(" + child + ") IS NOT NULL";
      }
      return Status::Internal("bad unary op");
    }
    case Expr::Kind::kBinary: {
      TANGO_ASSIGN_OR_RETURN(
          std::string l, RenderExpr(expr->children[0], schema, aliases, qualifier));
      TANGO_ASSIGN_OR_RETURN(
          std::string r, RenderExpr(expr->children[1], schema, aliases, qualifier));
      return "(" + l + " " + BinaryOpName(expr->binary_op) + " " + r + ")";
    }
    case Expr::Kind::kFunction: {
      std::string out = expr->function + "(";
      for (size_t i = 0; i < expr->children.size(); ++i) {
        if (i > 0) out += ", ";
        TANGO_ASSIGN_OR_RETURN(
            std::string arg,
            RenderExpr(expr->children[i], schema, aliases, qualifier));
        out += arg;
      }
      return out + ")";
    }
    case Expr::Kind::kAggregate:
      return Status::NotSupported("aggregate in rendered expression");
  }
  return Status::Internal("unreachable");
}

Result<RenderedSql> Translator::Render(const PhysPlan& node) {
  switch (node.algorithm) {
    case Algorithm::kScanD: {
      RenderedSql out;
      out.aliases = MakeAliases(node.op->schema);
      out.sql = "SELECT ";
      for (size_t i = 0; i < out.aliases.size(); ++i) {
        if (i > 0) out.sql += ", ";
        out.sql += node.op->schema.column(i).name + " AS " + out.aliases[i];
      }
      out.sql += " FROM " + node.op->table;
      out.base_table = node.op->table;
      return out;
    }

    case Algorithm::kTransferD: {
      const auto it = td_tables_.find(&node);
      if (it == td_tables_.end()) {
        return Status::Internal("TRANSFER^D node without a temp table name");
      }
      RenderedSql out;
      out.aliases = MakeAliases(node.op->schema);
      out.sql = "SELECT ";
      for (size_t i = 0; i < out.aliases.size(); ++i) {
        if (i > 0) out.sql += ", ";
        out.sql += out.aliases[i] + " AS " + out.aliases[i];
      }
      out.sql += " FROM " + it->second;
      out.base_table = it->second;
      return out;
    }

    case Algorithm::kSelectD: {
      TANGO_ASSIGN_OR_RETURN(RenderedSql child, Render(*node.children[0]));
      const std::string s = FreshSubqueryAlias();
      TANGO_ASSIGN_OR_RETURN(
          std::string pred,
          RenderExpr(node.op->predicate, node.children[0]->op->schema,
                     child.aliases, s));
      RenderedSql out;
      out.aliases = child.aliases;
      out.sql = "SELECT ";
      for (size_t i = 0; i < out.aliases.size(); ++i) {
        if (i > 0) out.sql += ", ";
        out.sql += s + "." + child.aliases[i] + " AS " + out.aliases[i];
      }
      out.sql += " FROM " + FromItem(child, s) + " WHERE " + pred;
      return out;
    }

    case Algorithm::kProjectD: {
      TANGO_ASSIGN_OR_RETURN(RenderedSql child, Render(*node.children[0]));
      const std::string s = FreshSubqueryAlias();
      RenderedSql out;
      out.aliases = MakeAliases(node.op->schema);
      out.sql = "SELECT ";
      for (size_t i = 0; i < node.op->items.size(); ++i) {
        if (i > 0) out.sql += ", ";
        TANGO_ASSIGN_OR_RETURN(
            std::string e,
            RenderExpr(node.op->items[i].expr, node.children[0]->op->schema,
                       child.aliases, s));
        out.sql += e + " AS " + out.aliases[i];
      }
      out.sql += " FROM " + FromItem(child, s);
      return out;
    }

    case Algorithm::kSortD: {
      TANGO_ASSIGN_OR_RETURN(RenderedSql child, Render(*node.children[0]));
      RenderedSql out;
      out.aliases = child.aliases;
      out.sql = child.sql + " ORDER BY ";
      const Schema& cs = node.children[0]->op->schema;
      for (size_t i = 0; i < node.op->sort_keys.size(); ++i) {
        if (i > 0) out.sql += ", ";
        TANGO_ASSIGN_OR_RETURN(size_t idx, cs.IndexOf(node.op->sort_keys[i].attr));
        out.sql += child.aliases[idx];
        if (!node.op->sort_keys[i].ascending) out.sql += " DESC";
      }
      return out;
    }

    case Algorithm::kDistinctD: {
      TANGO_ASSIGN_OR_RETURN(RenderedSql child, Render(*node.children[0]));
      const std::string s = FreshSubqueryAlias();
      RenderedSql out;
      out.aliases = child.aliases;
      out.sql = "SELECT DISTINCT ";
      for (size_t i = 0; i < out.aliases.size(); ++i) {
        if (i > 0) out.sql += ", ";
        out.sql += s + "." + child.aliases[i] + " AS " + out.aliases[i];
      }
      out.sql += " FROM " + FromItem(child, s);
      return out;
    }

    case Algorithm::kJoinD:
    case Algorithm::kProductD: {
      TANGO_ASSIGN_OR_RETURN(RenderedSql left, Render(*node.children[0]));
      TANGO_ASSIGN_OR_RETURN(RenderedSql right, Render(*node.children[1]));
      const std::string a = FreshSubqueryAlias();
      const std::string b = FreshSubqueryAlias();
      RenderedSql out;
      out.aliases = MakeAliases(node.op->schema);
      out.sql = "SELECT ";
      const size_t lcols = left.aliases.size();
      for (size_t i = 0; i < out.aliases.size(); ++i) {
        if (i > 0) out.sql += ", ";
        if (i < lcols) {
          out.sql += a + "." + left.aliases[i];
        } else {
          out.sql += b + "." + right.aliases[i - lcols];
        }
        out.sql += " AS " + out.aliases[i];
      }
      out.sql += " FROM " + FromItem(left, a) + ", " + FromItem(right, b);
      if (node.algorithm == Algorithm::kJoinD) {
        out.sql += " WHERE ";
        const Schema& ls = node.children[0]->op->schema;
        const Schema& rs = node.children[1]->op->schema;
        for (size_t i = 0; i < node.op->join_attrs.size(); ++i) {
          if (i > 0) out.sql += " AND ";
          TANGO_ASSIGN_OR_RETURN(size_t li, ls.IndexOf(node.op->join_attrs[i].first));
          TANGO_ASSIGN_OR_RETURN(size_t ri, rs.IndexOf(node.op->join_attrs[i].second));
          out.sql += a + "." + left.aliases[li] + " = " + b + "." +
                     right.aliases[ri];
        }
      }
      return out;
    }

    case Algorithm::kTJoinD: {
      // The Figure 5 shape: equijoin + overlap condition, GREATEST/LEAST
      // for the intersected period.
      TANGO_ASSIGN_OR_RETURN(RenderedSql left, Render(*node.children[0]));
      TANGO_ASSIGN_OR_RETURN(RenderedSql right, Render(*node.children[1]));
      const std::string a = FreshSubqueryAlias();
      const std::string b = FreshSubqueryAlias();
      const Schema& ls = node.children[0]->op->schema;
      const Schema& rs = node.children[1]->op->schema;
      TANGO_ASSIGN_OR_RETURN(size_t lt1, algebra::T1Index(ls));
      TANGO_ASSIGN_OR_RETURN(size_t lt2, algebra::T2Index(ls));
      TANGO_ASSIGN_OR_RETURN(size_t rt1, algebra::T1Index(rs));
      TANGO_ASSIGN_OR_RETURN(size_t rt2, algebra::T2Index(rs));
      std::vector<size_t> r_excluded = {rt1, rt2};
      std::vector<std::pair<size_t, size_t>> equi;
      for (const auto& [l, r] : node.op->join_attrs) {
        TANGO_ASSIGN_OR_RETURN(size_t li, ls.IndexOf(l));
        TANGO_ASSIGN_OR_RETURN(size_t ri, rs.IndexOf(r));
        equi.emplace_back(li, ri);
        r_excluded.push_back(ri);
      }
      RenderedSql out;
      out.aliases = MakeAliases(node.op->schema);
      out.sql = "SELECT ";
      size_t pos = 0;
      for (size_t i = 0; i < ls.num_columns(); ++i) {
        if (i == lt1 || i == lt2) continue;
        if (pos > 0) out.sql += ", ";
        out.sql += a + "." + left.aliases[i] + " AS " + out.aliases[pos++];
      }
      for (size_t i = 0; i < rs.num_columns(); ++i) {
        if (std::find(r_excluded.begin(), r_excluded.end(), i) !=
            r_excluded.end()) {
          continue;
        }
        if (pos > 0) out.sql += ", ";
        out.sql += b + "." + right.aliases[i] + " AS " + out.aliases[pos++];
      }
      if (pos > 0) out.sql += ", ";
      out.sql += "GREATEST(" + a + "." + left.aliases[lt1] + ", " + b + "." +
                 right.aliases[rt1] + ") AS " + out.aliases[pos++];
      out.sql += ", LEAST(" + a + "." + left.aliases[lt2] + ", " + b + "." +
                 right.aliases[rt2] + ") AS " + out.aliases[pos++];
      out.sql += " FROM " + FromItem(left, a) + ", " + FromItem(right, b);
      out.sql += " WHERE ";
      for (const auto& [li, ri] : equi) {
        out.sql += a + "." + left.aliases[li] + " = " + b + "." +
                   right.aliases[ri] + " AND ";
      }
      out.sql += a + "." + left.aliases[lt1] + " < " + b + "." +
                 right.aliases[rt2];
      out.sql += " AND " + a + "." + left.aliases[lt2] + " > " + b + "." +
                 right.aliases[rt1];
      return out;
    }

    case Algorithm::kTAggrD:
      return RenderTAggr(node);

    default:
      return Status::Internal(std::string("algorithm not renderable to SQL: ") +
                              optimizer::AlgorithmName(node.algorithm));
  }
}

Result<RenderedSql> Translator::RenderTAggr(const PhysPlan& node) {
  TANGO_ASSIGN_OR_RETURN(RenderedSql child, Render(*node.children[0]));
  const Schema& cs = node.children[0]->op->schema;
  TANGO_ASSIGN_OR_RETURN(size_t t1, algebra::T1Index(cs));
  TANGO_ASSIGN_OR_RETURN(size_t t2, algebra::T2Index(cs));
  std::vector<size_t> group_cols;
  for (const std::string& g : node.op->group_by) {
    TANGO_ASSIGN_OR_RETURN(size_t idx, cs.IndexOf(g));
    group_cols.push_back(idx);
  }

  RenderedSql out;
  out.aliases = MakeAliases(node.op->schema);

  // Constant-period instants: start and end points per group.
  auto instants = [&](const std::string& x) {
    std::string sql = "SELECT ";
    for (size_t i = 0; i < group_cols.size(); ++i) {
      sql += x + "." + child.aliases[group_cols[i]] + " AS G" +
             std::to_string(i) + ", ";
    }
    sql += x + "." + child.aliases[t1] + " AS T FROM " + FromItem(child, x);
    sql += " UNION SELECT ";
    for (size_t i = 0; i < group_cols.size(); ++i) {
      sql += x + "2." + child.aliases[group_cols[i]] + " AS G" +
             std::to_string(i) + ", ";
    }
    sql += x + "2." + child.aliases[t2] + " AS T FROM " +
           FromItem(child, x + "2");
    return sql;
  };

  // Adjacent instants form the candidate constant periods.
  std::string pairs = "SELECT ";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    pairs += "A.G" + std::to_string(i) + " AS G" + std::to_string(i) + ", ";
  }
  pairs += "A.T AS T1, MIN(B.T) AS T2 FROM (" + instants("IA") + ") A, (" +
           instants("IB") + ") B WHERE ";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    pairs += "A.G" + std::to_string(i) + " = B.G" + std::to_string(i) + " AND ";
  }
  pairs += "A.T < B.T GROUP BY ";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    pairs += "A.G" + std::to_string(i) + ", ";
  }
  pairs += "A.T";

  // Aggregate the argument tuples covering each constant period.
  std::string sql = "SELECT ";
  size_t pos = 0;
  for (size_t i = 0; i < group_cols.size(); ++i) {
    sql += "R." + child.aliases[group_cols[i]] + " AS " + out.aliases[pos++] +
           ", ";
  }
  sql += "P.T1 AS " + out.aliases[pos++];
  sql += ", P.T2 AS " + out.aliases[pos++];
  for (const algebra::AggItem& agg : node.op->aggs) {
    sql += ", ";
    sql += AggFuncName(agg.func);
    sql += "(";
    if (agg.arg.empty()) {
      sql += "*";
    } else {
      TANGO_ASSIGN_OR_RETURN(size_t ai, cs.IndexOf(agg.arg));
      sql += "R." + child.aliases[ai];
    }
    sql += ") AS " + out.aliases[pos++];
  }
  sql += " FROM " + FromItem(child, "R") + ", (" + pairs + ") P WHERE ";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    sql += "R." + child.aliases[group_cols[i]] + " = P.G" + std::to_string(i) +
           " AND ";
  }
  sql += "R." + child.aliases[t1] + " <= P.T1 AND P.T2 <= R." +
         child.aliases[t2];
  sql += " GROUP BY ";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    sql += "R." + child.aliases[group_cols[i]] + ", ";
  }
  sql += "P.T1, P.T2";
  out.sql = std::move(sql);
  return out;
}

}  // namespace sqlgen
}  // namespace tango
