#ifndef TANGO_STATS_STATS_H_
#define TANGO_STATS_STATS_H_

#include <vector>

#include "algebra/algebra.h"
#include "common/schema.h"
#include "dbms/catalog.h"
#include "expr/expr.h"
#include "stats/histogram.h"

namespace tango {
namespace stats {

/// Per-attribute statistics as the middleware sees them (derived from the
/// DBMS catalog for base relations, propagated through operators for
/// intermediate relations).
struct ColumnInfo {
  bool numeric = false;
  double min = 0;
  double max = 0;
  double num_distinct = 1;
  double avg_width = 9;     // encoded bytes incl. tag
  Histogram histogram;      // may be empty
  /// Index availability and clustering (§3: "index availability for
  /// attributes; and clusterings for indexes"). The middleware's generic
  /// DBMS cost formulas deliberately do not depend on them — it cannot know
  /// which access path the DBMS picks — but the Statistics Collector
  /// surfaces them for diagnostics and future cost refinements.
  bool has_index = false;
  bool index_clustered = false;
};

/// Statistics of one (possibly intermediate) relation.
struct RelStats {
  double cardinality = 0;
  double avg_tuple_bytes = 0;
  std::vector<ColumnInfo> columns;  // parallel to the schema
  /// The table's modification epoch at collection time (base relations
  /// only; 0 for intermediates). The middleware compares it against the
  /// live epoch to decide whether these statistics are stale — see
  /// Middleware::RefreshStatisticsIfStale.
  uint64_t source_epoch = 0;

  /// The paper's size(r): total bytes = cardinality x average tuple size.
  double size() const { return cardinality * avg_tuple_bytes; }
};

/// Converts DBMS catalog statistics (ANALYZE output, fetched over the
/// connection by the Statistics Collector) into middleware statistics.
RelStats FromTableStats(const dbms::TableStats& table_stats,
                        const Schema& schema);

// ---- §3.3: temporal selectivity estimation ----

/// Paper's StartBefore(A, r): estimated number of tuples whose T1 < A.
/// Uses the T1 histogram when available, otherwise min/max interpolation.
double StartBefore(double a, const RelStats& rel, size_t t1_col);

/// Paper's EndBefore(A, r): estimated number of tuples whose T2 < A.
double EndBefore(double a, const RelStats& rel, size_t t2_col);

/// Estimated cardinality of σ_{Overlaps(A,B)}(r) — the semantic estimate
/// StartBefore(B) - EndBefore(A + 1) that exploits T1 <= T2.
double EstimateOverlapsCardinality(double a, double b, const RelStats& rel,
                                   size_t t1_col, size_t t2_col);

/// Estimated cardinality of the timeslice σ_{T1 <= A AND T2 > A}(r):
/// StartBefore(A + 1) - EndBefore(A + 1).
double EstimateTimesliceCardinality(double a, const RelStats& rel,
                                    size_t t1_col, size_t t2_col);

/// Standard (non-temporal) selectivity of a single `col op literal`
/// comparison; histogram interpolation when available.
double ComparisonSelectivity(const RelStats& rel, size_t column, BinaryOp op,
                             double literal);

/// Selectivity of an arbitrary predicate over `schema`/`rel`.
///
/// With `semantic_temporal` set (the default), conjunct pairs of the shape
/// (T1 < B, T2 > A) are recognized as Overlaps(A, B) and estimated with
/// StartBefore/EndBefore; otherwise every conjunct is estimated
/// independently — the paper's straightforward method that §3.3 shows is a
/// factor of ~40 off. Both modes are exposed so the experiment can compare
/// them.
double EstimateSelectivity(const ExprPtr& predicate, const Schema& schema,
                           const RelStats& rel, bool semantic_temporal = true);

// ---- §3.4: temporal aggregation cardinality ----

/// Result-cardinality bounds and the paper's 60%-of-max point estimate.
struct TAggrCardinality {
  double min = 1;
  double max = 0;
  double estimate = 1;
};

TAggrCardinality EstimateTAggrCardinality(const RelStats& child,
                                          const std::vector<size_t>& group_cols,
                                          size_t t1_col, size_t t2_col);

// ---- derived statistics for every algebra operator ----

/// Derives the output statistics of `op` from its children's statistics.
/// This is what lets the optimizer cost plans bottom-up.
Result<RelStats> Derive(const algebra::Op& op,
                        const std::vector<const RelStats*>& children,
                        bool semantic_temporal = true);

}  // namespace stats
}  // namespace tango

#endif  // TANGO_STATS_STATS_H_
