#include "stats/stats.h"

#include <algorithm>
#include <cmath>

namespace tango {
namespace stats {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

ColumnInfo SyntheticColumn(DataType type, double cardinality) {
  ColumnInfo c;
  c.numeric = type != DataType::kString;
  c.num_distinct = std::max(1.0, cardinality);
  c.avg_width = type == DataType::kString ? 12 : 9;
  return c;
}

}  // namespace

RelStats FromTableStats(const dbms::TableStats& ts, const Schema& schema) {
  RelStats rel;
  rel.cardinality = ts.cardinality;
  rel.avg_tuple_bytes = ts.avg_tuple_bytes;
  rel.source_epoch = ts.epoch;
  rel.columns.resize(schema.num_columns());
  // Distribute the average tuple size over the columns: fixed 9 bytes for
  // numerics (8 + wire tag), the remainder across the string columns.
  size_t string_cols = 0;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).type == DataType::kString) ++string_cols;
  }
  const double numeric_bytes =
      9.0 * static_cast<double>(schema.num_columns() - string_cols);
  const double string_share =
      string_cols == 0
          ? 0
          : std::max(3.0, (ts.avg_tuple_bytes - 4.0 - numeric_bytes) /
                              static_cast<double>(string_cols));
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    ColumnInfo& c = rel.columns[i];
    c.numeric = schema.column(i).type != DataType::kString;
    c.avg_width = c.numeric ? 9 : string_share;
    if (i < ts.columns.size()) {
      const dbms::ColumnStats& cs = ts.columns[i];
      c.num_distinct = std::max(1.0, cs.num_distinct);
      if (cs.min.is_numeric()) c.min = cs.min.AsDouble();
      if (cs.max.is_numeric()) c.max = cs.max.AsDouble();
      c.histogram = cs.histogram;
      c.has_index = cs.has_index;
      c.index_clustered = cs.index_clustered;
    }
  }
  return rel;
}

namespace {

/// Shared implementation of StartBefore/EndBefore: estimated number of
/// tuples whose attribute value is < a. With a histogram, the bucket
/// interpolation of §3.3; otherwise uniform min/max interpolation.
/// Histogram counts are normalized to the relation cardinality so sampled
/// histograms also work.
double CountBelow(double a, const RelStats& rel, size_t col) {
  const ColumnInfo& c = rel.columns[col];
  if (!c.histogram.empty() && c.histogram.total_count() > 0) {
    const double frac = c.histogram.EstimateLess(a) / c.histogram.total_count();
    return Clamp(frac, 0, 1) * rel.cardinality;
  }
  if (c.max <= c.min) return a > c.min ? rel.cardinality : 0;
  return Clamp((a - c.min) / (c.max - c.min), 0, 1) * rel.cardinality;
}

}  // namespace

double StartBefore(double a, const RelStats& rel, size_t t1_col) {
  return CountBelow(a, rel, t1_col);
}

double EndBefore(double a, const RelStats& rel, size_t t2_col) {
  return CountBelow(a, rel, t2_col);
}

double EstimateOverlapsCardinality(double a, double b, const RelStats& rel,
                                   size_t t1_col, size_t t2_col) {
  const double started = StartBefore(b, rel, t1_col);
  const double ended = EndBefore(a + 1, rel, t2_col);
  return Clamp(started - ended, 0, rel.cardinality);
}

double EstimateTimesliceCardinality(double a, const RelStats& rel,
                                    size_t t1_col, size_t t2_col) {
  const double started = StartBefore(a + 1, rel, t1_col);
  const double ended = EndBefore(a + 1, rel, t2_col);
  return Clamp(started - ended, 0, rel.cardinality);
}

double ComparisonSelectivity(const RelStats& rel, size_t column, BinaryOp op,
                             double literal) {
  if (rel.cardinality <= 0) return 1.0;
  const ColumnInfo& c = rel.columns[column];
  if (op == BinaryOp::kEq) {
    return 1.0 / std::max(1.0, c.num_distinct);
  }
  if (op == BinaryOp::kNe) {
    return 1.0 - 1.0 / std::max(1.0, c.num_distinct);
  }
  if (!c.numeric) return 1.0 / 3;
  double frac_less;
  if (!c.histogram.empty()) {
    frac_less = Clamp(c.histogram.EstimateLess(literal) / rel.cardinality, 0, 1);
  } else if (c.max > c.min) {
    frac_less = Clamp((literal - c.min) / (c.max - c.min), 0, 1);
  } else {
    return 1.0 / 3;
  }
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return frac_less;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 1.0 - frac_less;
    default:
      return 1.0 / 3;
  }
}

namespace {

/// A conjunct of the form `col op literal` (column on the left).
struct SimpleComparison {
  size_t column;
  BinaryOp op;
  double literal;
  bool literal_numeric;
};

BinaryOp Flip(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;
  }
}

bool MatchSimple(const ExprPtr& e, const Schema& schema, SimpleComparison* out) {
  if (e->kind != Expr::Kind::kBinary) return false;
  BinaryOp op = e->binary_op;
  if (op != BinaryOp::kEq && op != BinaryOp::kNe && op != BinaryOp::kLt &&
      op != BinaryOp::kLe && op != BinaryOp::kGt && op != BinaryOp::kGe) {
    return false;
  }
  ExprPtr col = e->children[0];
  ExprPtr lit = e->children[1];
  if (col->kind == Expr::Kind::kLiteral && lit->kind == Expr::Kind::kColumn) {
    std::swap(col, lit);
    op = Flip(op);
  }
  if (col->kind != Expr::Kind::kColumn || lit->kind != Expr::Kind::kLiteral) {
    return false;
  }
  auto idx = schema.IndexOf(col->table, col->name);
  if (!idx.ok()) return false;
  out->column = idx.ValueOrDie();
  out->op = op;
  out->literal_numeric = lit->literal.is_numeric();
  out->literal = out->literal_numeric ? lit->literal.AsDouble() : 0;
  return true;
}

/// True when `col` is the T1 (resp. T2) attribute of the schema.
bool IsTimeColumn(const Schema& schema, size_t column, const char* name) {
  return schema.column(column).name == name;
}

}  // namespace

double EstimateSelectivity(const ExprPtr& predicate, const Schema& schema,
                           const RelStats& rel, bool semantic_temporal) {
  if (predicate == nullptr) return 1.0;
  if (rel.cardinality <= 0) return 1.0;

  std::vector<ExprPtr> conjuncts = SplitConjuncts(predicate);
  std::vector<SimpleComparison> simple;
  std::vector<bool> consumed(conjuncts.size(), false);
  simple.resize(conjuncts.size());
  std::vector<bool> is_simple(conjuncts.size(), false);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    is_simple[i] = MatchSimple(conjuncts[i], schema, &simple[i]);
  }

  double selectivity = 1.0;

  if (semantic_temporal) {
    // Find an upper bound on T1 (T1 < B / T1 <= B-1) paired with a lower
    // bound on T2 (T2 > A / T2 >= A+1): the Overlaps(A, B) pattern. A
    // timeslice (T1 <= A AND T2 > A) is the special case B = A + 1.
    int t1_idx = -1, t2_idx = -1;
    double b_bound = 0, a_bound = 0;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!is_simple[i] || !simple[i].literal_numeric) continue;
      const SimpleComparison& sc = simple[i];
      if (IsTimeColumn(schema, sc.column, "T1") && t1_idx < 0 &&
          (sc.op == BinaryOp::kLt || sc.op == BinaryOp::kLe)) {
        t1_idx = static_cast<int>(i);
        // Integer day semantics: T1 <= X  <=>  T1 < X+1.
        b_bound = sc.op == BinaryOp::kLe ? sc.literal + 1 : sc.literal;
      } else if (IsTimeColumn(schema, sc.column, "T2") && t2_idx < 0 &&
                 (sc.op == BinaryOp::kGt || sc.op == BinaryOp::kGe)) {
        t2_idx = static_cast<int>(i);
        // T2 >= X  <=>  T2 > X-1; Overlaps' A satisfies T2 > A.
        a_bound = sc.op == BinaryOp::kGe ? sc.literal - 1 : sc.literal;
      }
    }
    if (t1_idx >= 0 && t2_idx >= 0) {
      const size_t t1_col = simple[static_cast<size_t>(t1_idx)].column;
      const size_t t2_col = simple[static_cast<size_t>(t2_idx)].column;
      const double card = EstimateOverlapsCardinality(a_bound, b_bound, rel,
                                                      t1_col, t2_col);
      selectivity *= Clamp(card / rel.cardinality, 0, 1);
      consumed[static_cast<size_t>(t1_idx)] = true;
      consumed[static_cast<size_t>(t2_idx)] = true;
    }
  }

  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (consumed[i]) continue;
    if (is_simple[i] && simple[i].literal_numeric) {
      selectivity *= ComparisonSelectivity(rel, simple[i].column, simple[i].op,
                                           simple[i].literal);
    } else if (is_simple[i]) {
      // String comparison: equality via distinct count, else default.
      selectivity *= simple[i].op == BinaryOp::kEq
                         ? 1.0 / std::max(1.0, rel.columns[simple[i].column]
                                                   .num_distinct)
                         : 1.0 / 3;
    } else {
      selectivity *= 1.0 / 3;  // unknown predicate shape
    }
  }
  return Clamp(selectivity, 0, 1);
}

TAggrCardinality EstimateTAggrCardinality(const RelStats& child,
                                          const std::vector<size_t>& group_cols,
                                          size_t t1_col, size_t t2_col) {
  TAggrCardinality out;
  const double card = child.cardinality;
  if (card <= 0) {
    out.min = out.max = out.estimate = 0;
    return out;
  }
  const double dt1 = child.columns[t1_col].num_distinct;
  const double dt2 = child.columns[t2_col].num_distinct;

  double min_card = std::min(dt1 + 1, dt2 + 1);
  double max_distinct_group = 0;
  for (size_t g : group_cols) {
    min_card = std::min(min_card, child.columns[g].num_distinct);
    max_distinct_group =
        std::max(max_distinct_group, child.columns[g].num_distinct);
  }
  min_card = std::max(1.0, min_card);

  double max_card;
  if (group_cols.empty()) {
    max_card = dt1 + dt2 + 1;
  } else {
    const double per_group = card / std::max(1.0, max_distinct_group);
    max_card = (per_group * 2 - 1) * max_distinct_group;
  }
  max_card = std::min(max_card, card * 2 - 1);
  max_card = std::max(max_card, min_card);

  out.min = min_card;
  out.max = max_card;
  // The paper: 60% of the max if that exceeds the min, else the min.
  const double sixty = 0.6 * max_card;
  out.estimate = sixty > min_card ? sixty : min_card;
  return out;
}

namespace {

/// Scales distinct counts after a cardinality-reducing operator using
/// Yao's approximation: picking new_card of old_card rows touches
/// d * (1 - (1 - new/old)^(old/d)) of the d distinct values. (Linear
/// scaling would badly underestimate the distinct keys that survive, which
/// in turn inflates downstream join estimates.)
double ScaleDistinct(double distinct, double old_card, double new_card) {
  if (old_card <= 0 || distinct <= 0) return 1;
  const double sel = std::clamp(new_card / old_card, 0.0, 1.0);
  const double rows_per_value = old_card / distinct;
  const double touched = distinct * (1.0 - std::pow(1.0 - sel, rows_per_value));
  return std::max(1.0, std::min({distinct, new_card, touched}));
}

}  // namespace

Result<RelStats> Derive(const algebra::Op& op,
                        const std::vector<const RelStats*>& children,
                        bool semantic_temporal) {
  using algebra::OpKind;
  switch (op.kind) {
    case OpKind::kScan:
      return Status::Internal("scan stats come from the Statistics Collector");

    case OpKind::kSelect: {
      const RelStats& in = *children[0];
      RelStats out = in;
      const double sel = EstimateSelectivity(op.predicate, op.schema, in,
                                             semantic_temporal);
      out.cardinality = in.cardinality * sel;
      for (ColumnInfo& c : out.columns) {
        c.num_distinct = ScaleDistinct(c.num_distinct, in.cardinality,
                                       out.cardinality);
      }
      // Tighten min/max for range predicates; drop histograms (they no
      // longer describe the filtered relation).
      for (const ExprPtr& conj : SplitConjuncts(op.predicate)) {
        SimpleComparison sc;
        if (!MatchSimple(conj, op.schema, &sc) || !sc.literal_numeric) continue;
        ColumnInfo& c = out.columns[sc.column];
        switch (sc.op) {
          case BinaryOp::kLt:
          case BinaryOp::kLe:
            c.max = std::min(c.max, sc.literal);
            break;
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            c.min = std::max(c.min, sc.literal);
            break;
          case BinaryOp::kEq:
            c.min = c.max = sc.literal;
            c.num_distinct = 1;
            break;
          default:
            break;
        }
        c.histogram = Histogram();
      }
      return out;
    }

    case OpKind::kProject: {
      const RelStats& in = *children[0];
      RelStats out;
      out.cardinality = in.cardinality;
      double bytes = 4;  // tuple header
      for (size_t i = 0; i < op.items.size(); ++i) {
        const ExprPtr& e = op.items[i].expr;
        ColumnInfo c;
        if (e->kind == Expr::Kind::kColumn) {
          auto idx = op.children[0]->schema.IndexOf(e->table, e->name);
          if (idx.ok()) {
            c = in.columns[idx.ValueOrDie()];
          } else {
            c = SyntheticColumn(op.schema.column(i).type, in.cardinality);
          }
        } else {
          c = SyntheticColumn(op.schema.column(i).type, in.cardinality);
        }
        bytes += c.avg_width;
        out.columns.push_back(std::move(c));
      }
      out.avg_tuple_bytes = bytes;
      return out;
    }

    case OpKind::kSort:
    case OpKind::kTransferM:
    case OpKind::kTransferD:
      return *children[0];

    case OpKind::kDupElim: {
      const RelStats& in = *children[0];
      RelStats out = in;
      // Distinct tuple count: bounded by the product of column distincts.
      double prod = 1;
      for (const ColumnInfo& c : in.columns) {
        prod *= std::max(1.0, c.num_distinct);
        if (prod > in.cardinality) {
          prod = in.cardinality;
          break;
        }
      }
      out.cardinality = std::min(in.cardinality, prod);
      return out;
    }

    case OpKind::kCoalesce: {
      const RelStats& in = *children[0];
      RelStats out = in;
      // Coalescing never grows the relation; assume moderate merging.
      out.cardinality = in.cardinality * 0.7;
      return out;
    }

    case OpKind::kDifference: {
      const RelStats& l = *children[0];
      const RelStats& r = *children[1];
      RelStats out = l;
      out.cardinality = std::max(0.0, l.cardinality - r.cardinality / 2);
      return out;
    }

    case OpKind::kProduct: {
      const RelStats& l = *children[0];
      const RelStats& r = *children[1];
      RelStats out;
      out.cardinality = l.cardinality * r.cardinality;
      out.avg_tuple_bytes = l.avg_tuple_bytes + r.avg_tuple_bytes;
      out.columns = l.columns;
      out.columns.insert(out.columns.end(), r.columns.begin(), r.columns.end());
      return out;
    }

    case OpKind::kJoin: {
      const RelStats& l = *children[0];
      const RelStats& r = *children[1];
      RelStats out;
      double card = l.cardinality * r.cardinality;
      for (const auto& [la, ra] : op.join_attrs) {
        TANGO_ASSIGN_OR_RETURN(size_t li, op.children[0]->schema.IndexOf(la));
        TANGO_ASSIGN_OR_RETURN(size_t ri, op.children[1]->schema.IndexOf(ra));
        const double d = std::max(
            {1.0, l.columns[li].num_distinct, r.columns[ri].num_distinct});
        card /= d;
      }
      out.cardinality = card;
      out.avg_tuple_bytes = l.avg_tuple_bytes + r.avg_tuple_bytes;
      out.columns = l.columns;
      out.columns.insert(out.columns.end(), r.columns.begin(), r.columns.end());
      for (ColumnInfo& c : out.columns) {
        c.num_distinct = std::min(c.num_distinct, std::max(1.0, card));
      }
      return out;
    }

    case OpKind::kTJoin: {
      const RelStats& l = *children[0];
      const RelStats& r = *children[1];
      const Schema& ls = op.children[0]->schema;
      const Schema& rs = op.children[1]->schema;
      double card = l.cardinality * r.cardinality;
      for (const auto& [la, ra] : op.join_attrs) {
        TANGO_ASSIGN_OR_RETURN(size_t li, ls.IndexOf(la));
        TANGO_ASSIGN_OR_RETURN(size_t ri, rs.IndexOf(ra));
        const double d = std::max(
            {1.0, l.columns[li].num_distinct, r.columns[ri].num_distinct});
        card /= d;
      }
      // Probability that two periods uniform over the common span overlap:
      // roughly (avg duration left + avg duration right) / span.
      TANGO_ASSIGN_OR_RETURN(size_t lt1, algebra::T1Index(ls));
      TANGO_ASSIGN_OR_RETURN(size_t lt2, algebra::T2Index(ls));
      TANGO_ASSIGN_OR_RETURN(size_t rt1, algebra::T1Index(rs));
      TANGO_ASSIGN_OR_RETURN(size_t rt2, algebra::T2Index(rs));
      const double span =
          std::max(l.columns[lt2].max, r.columns[rt2].max) -
          std::min(l.columns[lt1].min, r.columns[rt1].min);
      const double dur_l = std::max(
          1.0, (l.columns[lt2].max + l.columns[lt2].min) / 2 -
                   (l.columns[lt1].max + l.columns[lt1].min) / 2);
      const double dur_r = std::max(
          1.0, (r.columns[rt2].max + r.columns[rt2].min) / 2 -
                   (r.columns[rt1].max + r.columns[rt1].min) / 2);
      const double p_overlap =
          span > 0 ? std::min(1.0, (dur_l + dur_r) / span) : 1.0;
      card *= p_overlap;

      RelStats out;
      out.cardinality = card;
      // Columns per the TJoin schema: left minus period, right minus join
      // attrs and period, then T1, T2.
      std::vector<size_t> r_excluded = {rt1, rt2};
      for (const auto& [la, ra] : op.join_attrs) {
        TANGO_ASSIGN_OR_RETURN(size_t ri, rs.IndexOf(ra));
        r_excluded.push_back(ri);
      }
      double bytes = 4;
      for (size_t i = 0; i < ls.num_columns(); ++i) {
        if (i == lt1 || i == lt2) continue;
        out.columns.push_back(l.columns[i]);
        bytes += l.columns[i].avg_width;
      }
      for (size_t i = 0; i < rs.num_columns(); ++i) {
        if (std::find(r_excluded.begin(), r_excluded.end(), i) !=
            r_excluded.end()) {
          continue;
        }
        out.columns.push_back(r.columns[i]);
        bytes += r.columns[i].avg_width;
      }
      // Intersected period columns.
      ColumnInfo t1 = l.columns[lt1];
      t1.min = std::min(l.columns[lt1].min, r.columns[rt1].min);
      t1.max = std::max(l.columns[lt1].max, r.columns[rt1].max);
      t1.histogram = Histogram();
      ColumnInfo t2 = t1;
      out.columns.push_back(t1);
      out.columns.push_back(t2);
      bytes += 18;
      out.avg_tuple_bytes = bytes;
      for (ColumnInfo& c : out.columns) {
        c.num_distinct = std::min(c.num_distinct, std::max(1.0, card));
      }
      return out;
    }

    case OpKind::kTAggregate: {
      const RelStats& in = *children[0];
      const Schema& cs = op.children[0]->schema;
      TANGO_ASSIGN_OR_RETURN(size_t t1, algebra::T1Index(cs));
      TANGO_ASSIGN_OR_RETURN(size_t t2, algebra::T2Index(cs));
      std::vector<size_t> group_cols;
      for (const std::string& g : op.group_by) {
        TANGO_ASSIGN_OR_RETURN(size_t idx, cs.IndexOf(g));
        group_cols.push_back(idx);
      }
      const TAggrCardinality card =
          EstimateTAggrCardinality(in, group_cols, t1, t2);
      RelStats out;
      out.cardinality = card.estimate;
      double bytes = 4;
      for (size_t g : group_cols) {
        out.columns.push_back(in.columns[g]);
        bytes += in.columns[g].avg_width;
      }
      // T1/T2 of the constant periods.
      ColumnInfo tc = in.columns[t1];
      tc.min = std::min(in.columns[t1].min, in.columns[t2].min);
      tc.max = std::max(in.columns[t1].max, in.columns[t2].max);
      tc.num_distinct = std::min(
          card.estimate, in.columns[t1].num_distinct +
                             in.columns[t2].num_distinct);
      tc.histogram = Histogram();
      out.columns.push_back(tc);
      out.columns.push_back(tc);
      bytes += 18;
      for (const algebra::AggItem& a : op.aggs) {
        ColumnInfo c = SyntheticColumn(
            a.func == AggFunc::kAvg ? DataType::kDouble : DataType::kInt,
            card.estimate);
        bytes += c.avg_width;
        out.columns.push_back(std::move(c));
      }
      out.avg_tuple_bytes = bytes;
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace stats
}  // namespace tango
