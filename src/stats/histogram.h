#ifndef TANGO_STATS_HISTOGRAM_H_
#define TANGO_STATS_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace tango {
namespace stats {

/// \brief Equi-depth (height-balanced) histogram over one numeric attribute.
///
/// This is the DBMS-maintainable statistic the paper's selectivity
/// estimation relies on (§3.3): the functions b1(i,H), b2(i,H), bVal(i,H)
/// and bNo(A,H) are methods here. Buckets partition [min, max]; each bucket
/// stores its value count. Height-balanced construction makes all counts
/// (nearly) equal, matching Oracle's histograms.
class Histogram {
 public:
  Histogram() = default;

  /// Builds a height-balanced histogram with (up to) `num_buckets` buckets
  /// from a sample of attribute values. Values need not be sorted.
  static Histogram BuildEquiDepth(std::vector<double> values,
                                  size_t num_buckets);

  /// Builds a width-balanced (equal-length buckets) histogram; supported to
  /// show the formulas are valid for both kinds, as the paper notes.
  static Histogram BuildEquiWidth(std::vector<double> values,
                                  size_t num_buckets);

  /// One bucket's boundaries and count, exposed for checkpoint snapshots.
  struct BucketSpec {
    double lo = 0;
    double hi = 0;
    double count = 0;
  };

  /// Dumps the buckets for serialization; FromBuckets rebuilds the identical
  /// histogram (total = sum of counts).
  std::vector<BucketSpec> DumpBuckets() const;
  static Histogram FromBuckets(const std::vector<BucketSpec>& buckets);

  bool empty() const { return buckets_.empty(); }
  size_t num_buckets() const { return buckets_.size(); }

  /// Paper's b1(i, H): inclusive lower boundary of bucket i (0-based).
  double b1(size_t i) const { return buckets_[i].lo; }
  /// Paper's b2(i, H): upper boundary of bucket i.
  double b2(size_t i) const { return buckets_[i].hi; }
  /// Paper's bVal(i, H): number of values in bucket i.
  double bVal(size_t i) const { return buckets_[i].count; }
  /// Paper's bNo(A, H): index of the bucket containing value A
  /// (clamped to the first/last bucket outside the domain).
  size_t bNo(double a) const;

  double total_count() const { return total_; }
  double min() const { return empty() ? 0 : buckets_.front().lo; }
  double max() const { return empty() ? 0 : buckets_.back().hi; }

  /// Estimated number of values strictly below `a`: sum of the full buckets
  /// before bNo(a) plus the uniform-within-bucket fraction — exactly the
  /// paper's StartBefore/EndBefore interpolation.
  double EstimateLess(double a) const;

  std::string ToString() const;

 private:
  struct Bucket {
    double lo;
    double hi;
    double count;
  };
  std::vector<Bucket> buckets_;
  double total_ = 0;
};

}  // namespace stats
}  // namespace tango

#endif  // TANGO_STATS_HISTOGRAM_H_
