#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tango {
namespace stats {

Histogram Histogram::BuildEquiDepth(std::vector<double> values,
                                    size_t num_buckets) {
  Histogram h;
  if (values.empty() || num_buckets == 0) return h;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  const size_t buckets = std::min(num_buckets, n);
  h.total_ = static_cast<double>(n);
  size_t start = 0;
  for (size_t i = 0; i < buckets; ++i) {
    // Even split of the sorted values.
    size_t end = (i + 1) * n / buckets;
    if (end <= start) end = start + 1;
    if (i + 1 == buckets) end = n;
    Bucket b;
    b.lo = values[start];
    b.hi = values[end - 1];
    b.count = static_cast<double>(end - start);
    // Merge degenerate empty-range buckets into a single-point bucket; keep
    // boundaries monotone.
    if (!h.buckets_.empty() && b.lo < h.buckets_.back().hi) {
      b.lo = h.buckets_.back().hi;
      if (b.hi < b.lo) b.hi = b.lo;
    }
    h.buckets_.push_back(b);
    start = end;
    if (start >= n) break;
  }
  return h;
}

Histogram Histogram::BuildEquiWidth(std::vector<double> values,
                                    size_t num_buckets) {
  Histogram h;
  if (values.empty() || num_buckets == 0) return h;
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  h.total_ = static_cast<double>(values.size());
  if (mn == mx) {
    h.buckets_.push_back({mn, mx, h.total_});
    return h;
  }
  const double width = (mx - mn) / static_cast<double>(num_buckets);
  h.buckets_.resize(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    h.buckets_[i].lo = mn + width * static_cast<double>(i);
    h.buckets_[i].hi = (i + 1 == num_buckets) ? mx : mn + width * static_cast<double>(i + 1);
    h.buckets_[i].count = 0;
  }
  for (double v : values) {
    size_t i = width > 0 ? static_cast<size_t>((v - mn) / width) : 0;
    if (i >= num_buckets) i = num_buckets - 1;
    h.buckets_[i].count += 1;
  }
  return h;
}

size_t Histogram::bNo(double a) const {
  if (buckets_.empty()) return 0;
  if (a <= buckets_.front().lo) return 0;
  if (a >= buckets_.back().hi) return buckets_.size() - 1;
  // Binary search on bucket upper boundaries.
  size_t lo = 0, hi = buckets_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (a <= buckets_[mid].hi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double Histogram::EstimateLess(double a) const {
  if (buckets_.empty()) return 0;
  if (a <= min()) return 0;
  if (a > max()) return total_;
  const size_t i = bNo(a);
  double below = 0;
  for (size_t j = 0; j < i; ++j) below += buckets_[j].count;
  const Bucket& b = buckets_[i];
  const double span = b.hi - b.lo;
  const double frac = span > 0 ? (a - b.lo) / span : 1.0;
  return below + frac * b.count;
}

std::string Histogram::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s[%g,%g]:%g", i ? " " : "",
                  buckets_[i].lo, buckets_[i].hi, buckets_[i].count);
    out += buf;
  }
  out += "}";
  return out;
}

std::vector<Histogram::BucketSpec> Histogram::DumpBuckets() const {
  std::vector<BucketSpec> out;
  out.reserve(buckets_.size());
  for (const Bucket& b : buckets_) out.push_back({b.lo, b.hi, b.count});
  return out;
}

Histogram Histogram::FromBuckets(const std::vector<BucketSpec>& buckets) {
  Histogram h;
  for (const BucketSpec& b : buckets) {
    h.buckets_.push_back({b.lo, b.hi, b.count});
    h.total_ += b.count;
  }
  return h;
}

}  // namespace stats
}  // namespace tango
