#include "common/thread_pool.h"

namespace tango {
namespace common {

ThreadPool::ThreadPool(size_t num_threads, obs::Gauge* queue_depth,
                       obs::TraceRecorder* trace, obs::SpanId trace_parent)
    : queue_depth_(queue_depth), trace_(trace), trace_parent_(trace_parent) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
      if (queue_depth_ != nullptr) queue_depth_->Decrement();
    }
    {
      obs::ScopedSpan span(trace_, "pool.task", "pool", trace_parent_);
      task();  // packaged_task captures exceptions into the future
    }
  }
}

}  // namespace common
}  // namespace tango
