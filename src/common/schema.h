#ifndef TANGO_COMMON_SCHEMA_H_
#define TANGO_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace tango {

/// \brief One attribute of a relation schema.
///
/// `table` is the (optional) range-variable qualifier, e.g. in
/// `SELECT A.PosID FROM TMP A` the column is {table="A", name="POSID"}.
/// Identifiers are stored upper-cased (SQL identifiers are case-insensitive).
struct Column {
  std::string table;  // may be empty
  std::string name;
  DataType type = DataType::kInt;

  /// "T.NAME" or just "NAME" when unqualified.
  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
};

/// \brief Ordered list of columns describing a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Resolves a possibly-qualified attribute reference to a column index.
  ///
  /// An unqualified name matches any column with that name; it is an error
  /// (kInvalidArgument) if more than one column matches. A qualified name
  /// "T.A" requires the qualifier to match as well.
  Result<size_t> IndexOf(const std::string& table,
                         const std::string& name) const;

  /// Convenience overload accepting "A" or "T.A" in one string.
  Result<size_t> IndexOf(const std::string& reference) const;

  /// True when the reference resolves to exactly one column.
  bool Contains(const std::string& reference) const {
    return IndexOf(reference).ok();
  }

  /// Re-qualifies every column with the given range-variable alias
  /// (e.g. the schema of `TMP A` carries qualifier "A").
  Schema WithQualifier(const std::string& alias) const;

  /// Concatenation used by joins and products: left columns then right.
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(<qual>:<TYPE>, ...)" rendering used by plan printers and tests.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// One sort criterion: a column index and a direction.
struct SortKey {
  size_t column = 0;
  bool ascending = true;

  bool operator==(const SortKey&) const = default;
};

/// \brief Comparator over tuples for a list of sort keys; usable with
/// std::sort and the merge-based operators.
class TupleComparator {
 public:
  explicit TupleComparator(std::vector<SortKey> keys)
      : keys_(std::move(keys)) {}

  /// Three-way comparison on the sort keys only.
  int Compare(const Tuple& a, const Tuple& b) const {
    for (const SortKey& k : keys_) {
      int c = a[k.column].Compare(b[k.column]);
      if (c != 0) return k.ascending ? c : -c;
    }
    return 0;
  }

  bool operator()(const Tuple& a, const Tuple& b) const {
    return Compare(a, b) < 0;
  }

  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  std::vector<SortKey> keys_;
};

/// Upper-cases an identifier (ASCII), the canonical form used everywhere.
std::string ToUpper(const std::string& s);

}  // namespace tango

#endif  // TANGO_COMMON_SCHEMA_H_
