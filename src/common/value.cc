#include "common/value.h"

#include <cstdio>
#include <cstring>

namespace tango {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
  }
  return "?";
}

namespace {
// Rank used to order values of different kinds: NULL < numeric < string.
int KindRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const int lr = KindRank(*this);
  const int rr = KindRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  if (lr == 0) return 0;  // both NULL
  if (lr == 1) {
    // Compare in the integer domain when both are ints to avoid precision
    // loss on large day numbers and identifiers.
    if (is_int() && other.is_int()) {
      const int64_t a = AsInt();
      const int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
    return buf;
  }
  return AsString();
}

std::string Value::ToSqlLiteral() const {
  if (!is_string()) return ToString();
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_int() || is_double()) return 8;
  return AsString().size() + 2;  // length-prefixed
}

size_t Value::Hash() const {
  // FNV-1a over a kind tag plus the value bytes.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  if (is_null()) {
    const char tag = 0;
    mix(&tag, 1);
  } else if (is_numeric()) {
    // Hash ints and equal-valued doubles identically by hashing the double
    // image when the int is exactly representable; identifiers stay exact.
    const char tag = 1;
    mix(&tag, 1);
    if (is_int()) {
      const int64_t v = AsInt();
      mix(&v, sizeof(v));
    } else {
      const double d = AsDouble();
      const auto v = static_cast<int64_t>(d);
      if (static_cast<double>(v) == d) {
        mix(&v, sizeof(v));
      } else {
        mix(&d, sizeof(d));
      }
    }
  } else {
    const char tag = 2;
    mix(&tag, 1);
    mix(AsString().data(), AsString().size());
  }
  return static_cast<size_t>(h);
}

size_t TupleByteSize(const Tuple& tuple) {
  size_t n = 4;  // per-tuple header (slot bookkeeping)
  for (const Value& v : tuple) n += v.ByteSize();
  return n;
}

}  // namespace tango
