#ifndef TANGO_COMMON_CANCEL_H_
#define TANGO_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/status.h"

namespace tango {

/// \brief Query-wide deadline + cancellation token.
///
/// One QueryControl is created per query execution and threaded through the
/// cursor tree (transfers, the remote prefetch batches, and the parallel
/// drain's producer thread all poll it). Both signals are sticky: once
/// expired or cancelled, every subsequent Check() fails, so a query unwinds
/// cleanly from whatever thread notices first — no operator keeps issuing
/// statements after the query is dead.
class QueryControl {
 public:
  using Clock = std::chrono::steady_clock;

  /// Arms the deadline `seconds` from now; <= 0 disarms it.
  void SetDeadline(double seconds) {
    if (seconds <= 0) {
      deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
      return;
    }
    const int64_t now = Clock::now().time_since_epoch().count();
    deadline_ns_.store(
        now + static_cast<int64_t>(seconds * 1e9), std::memory_order_relaxed);
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  bool expired() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != kNoDeadline && Clock::now().time_since_epoch().count() >= d;
  }

  /// OK while the query may keep running; kAborted after Cancel(),
  /// kTimeout after the deadline.
  Status Check() const {
    if (cancelled()) return Status::Aborted("query cancelled");
    if (expired()) return Status::Timeout("query deadline exceeded");
    return Status::OK();
  }

  /// Seconds until the deadline (infinity when none armed); <= 0 when past.
  double RemainingSeconds() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return std::numeric_limits<double>::infinity();
    return static_cast<double>(d - Clock::now().time_since_epoch().count()) *
           1e-9;
  }

 private:
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

using QueryControlPtr = std::shared_ptr<QueryControl>;

/// Null-safe control poll for code holding an optional token.
inline Status CheckControl(const QueryControlPtr& control) {
  return control == nullptr ? Status::OK() : control->Check();
}

}  // namespace tango

#endif  // TANGO_COMMON_CANCEL_H_
