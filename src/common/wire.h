#ifndef TANGO_COMMON_WIRE_H_
#define TANGO_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/row_block.h"
#include "common/status.h"
#include "common/value.h"

namespace tango {

/// \brief Binary encoder for the simulated client/server wire.
///
/// Every tuple crossing the DBMS boundary (TRANSFER^M fetches, TRANSFER^D
/// bulk loads) is serialized through this codec, so transfer costs really are
/// proportional to `size(r)` as the paper's cost formulas assume.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);
  /// Block encoding: `[u32 rows][u32 cols]` then the values column-major.
  /// One of these per RowBlock replaces `rows` per-tuple headers, and the
  /// column-major layout keeps same-typed tag bytes adjacent.
  void PutRowBlock(const RowBlock& block);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<uint8_t> buf_;
};

/// CRC-32 (polynomial 0xEDB88320) over `n` bytes. The per-batch frame
/// checksum: CRC-32 detects every single-bit flip and every truncation, so
/// a corrupted batch is always recognized at the client instead of decoding
/// into garbage rows.
uint32_t Crc32(const uint8_t* data, size_t n);

/// \brief Batch framing for the simulated wire.
///
/// Every prefetch batch crosses the link as `[u32 payload_len][u32 crc32]
/// [payload]`. `CheckFrame` validates length and checksum before any tuple
/// is decoded; a failure means the link garbled the batch (or a fault was
/// injected) and the statement should be re-issued — it is reported as a
/// transient error by the connection layer, never as decoded data.
struct WireFrame {
  static constexpr size_t kHeaderBytes = 8;

  /// Wraps `payload` in a frame (length prefix + CRC-32).
  static std::vector<uint8_t> Seal(const std::vector<uint8_t>& payload);

  /// Validates a frame; on success points `payload`/`len` into `framed`.
  static Status Check(const std::vector<uint8_t>& framed,
                      const uint8_t** payload, size_t* len);
};

/// \brief Decoder matching WireWriter.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool AtEnd() const { return pos_ >= size_; }

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Tuple> GetTuple();
  /// Decodes one block written by PutRowBlock into `block` (replacing its
  /// contents; the block's capacity is not a decode limit). Returns the row
  /// count. A forged header cannot drive a large allocation: the declared
  /// rows×cols is checked against the bytes actually remaining (every value
  /// costs at least its tag byte) before anything is reserved.
  Result<size_t> GetRowBlock(RowBlock* block);

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) return Status::IOError("wire buffer underrun");
    return Status::OK();
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tango

#endif  // TANGO_COMMON_WIRE_H_
