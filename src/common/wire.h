#ifndef TANGO_COMMON_WIRE_H_
#define TANGO_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace tango {

/// \brief Binary encoder for the simulated client/server wire.
///
/// Every tuple crossing the DBMS boundary (TRANSFER^M fetches, TRANSFER^D
/// bulk loads) is serialized through this codec, so transfer costs really are
/// proportional to `size(r)` as the paper's cost formulas assume.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<uint8_t> buf_;
};

/// \brief Decoder matching WireWriter.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool AtEnd() const { return pos_ >= size_; }

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Tuple> GetTuple();

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) return Status::IOError("wire buffer underrun");
    return Status::OK();
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tango

#endif  // TANGO_COMMON_WIRE_H_
