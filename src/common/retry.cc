#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tango {

namespace {
uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

RetryState::RetryState(const RetryPolicy& policy, uint64_t salt)
    : policy_(policy),
      next_delay_(policy.initial_backoff_seconds),
      rng_state_(policy.seed ^ salt) {}

bool RetryState::ShouldRetry(const Status& last) const {
  return IsRetryable(last) && attempt_ < policy_.max_attempts;
}

Status RetryState::Backoff(const QueryControlPtr& control) {
  ++attempt_;
  double delay = next_delay_;
  next_delay_ = std::min(next_delay_ * policy_.backoff_multiplier,
                         policy_.max_backoff_seconds);
  if (policy_.jitter > 0) {
    const double u =
        static_cast<double>(SplitMix(&rng_state_) >> 11) / 9007199254740992.0;
    delay *= 1.0 + policy_.jitter * (u - 0.5);
  }
  if (control != nullptr) {
    TANGO_RETURN_IF_ERROR(control->Check());
    if (control->RemainingSeconds() <= delay) {
      return Status::Timeout("query deadline reached during retry backoff");
    }
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  return CheckControl(control);
}

}  // namespace tango
