#include "common/wire.h"

#include <algorithm>

namespace tango {

namespace {
enum WireTag : uint8_t { kTagNull = 0, kTagInt = 1, kTagDouble = 2, kTagString = 3 };

struct Crc32TableHolder {
  uint32_t entries[256];
  Crc32TableHolder() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};

const uint32_t* Crc32Table() {
  static const Crc32TableHolder holder;
  return holder.entries;
}
}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> WireFrame::Seal(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  const auto put_u32 = [&out](uint32_t v) {
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    out.insert(out.end(), p, p + 4);
  };
  put_u32(len);
  put_u32(crc);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status WireFrame::Check(const std::vector<uint8_t>& framed,
                        const uint8_t** payload, size_t* len) {
  if (framed.size() < kHeaderBytes) {
    return Status::IOError("wire frame truncated: no header");
  }
  uint32_t declared, crc;
  std::memcpy(&declared, framed.data(), 4);
  std::memcpy(&crc, framed.data() + 4, 4);
  if (framed.size() - kHeaderBytes != declared) {
    return Status::IOError("wire frame truncated: payload length mismatch");
  }
  const uint8_t* body = framed.data() + kHeaderBytes;
  if (Crc32(body, declared) != crc) {
    return Status::IOError("wire frame corrupt: checksum mismatch");
  }
  *payload = body;
  *len = declared;
  return Status::OK();
}

void WireWriter::PutValue(const Value& v) {
  if (v.is_null()) {
    PutU8(kTagNull);
  } else if (v.is_int()) {
    PutU8(kTagInt);
    PutI64(v.AsInt());
  } else if (v.is_double()) {
    PutU8(kTagDouble);
    PutDouble(v.AsDouble());
  } else {
    PutU8(kTagString);
    PutString(v.AsString());
  }
}

void WireWriter::PutTuple(const Tuple& t) {
  PutU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) PutValue(v);
}

void WireWriter::PutRowBlock(const RowBlock& block) {
  PutU32(static_cast<uint32_t>(block.rows()));
  PutU32(static_cast<uint32_t>(block.columns()));
  for (size_t c = 0; c < block.columns(); ++c) {
    const std::vector<Value>& col = block.column(c);
    for (size_t r = 0; r < block.rows(); ++r) PutValue(col[r]);
  }
}

Result<uint8_t> WireReader::GetU8() {
  TANGO_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> WireReader::GetU32() {
  TANGO_RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

Result<int64_t> WireReader::GetI64() {
  TANGO_RETURN_IF_ERROR(Need(8));
  int64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<double> WireReader::GetDouble() {
  TANGO_RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<std::string> WireReader::GetString() {
  TANGO_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  TANGO_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Value> WireReader::GetValue() {
  TANGO_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt: {
      TANGO_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value(v);
    }
    case kTagDouble: {
      TANGO_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value(v);
    }
    case kTagString: {
      TANGO_ASSIGN_OR_RETURN(std::string v, GetString());
      return Value(std::move(v));
    }
    default:
      return Status::IOError("bad wire value tag");
  }
}

Result<Tuple> WireReader::GetTuple() {
  TANGO_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  Tuple t;
  // A corrupted arity must not drive a huge up-front allocation; the loop
  // below fails on buffer underrun long before a real tuple gets this wide.
  t.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n; ++i) {
    TANGO_ASSIGN_OR_RETURN(Value v, GetValue());
    t.push_back(std::move(v));
  }
  return t;
}

Result<size_t> WireReader::GetRowBlock(RowBlock* block) {
  TANGO_ASSIGN_OR_RETURN(uint32_t rows, GetU32());
  TANGO_ASSIGN_OR_RETURN(uint32_t cols, GetU32());
  // Every encoded value costs at least one tag byte, so a genuine header can
  // never declare more cells than bytes remaining. Rejecting here keeps a
  // forged header from driving a huge up-front allocation.
  const uint64_t cells = static_cast<uint64_t>(rows) * cols;
  if (cells > size_ - pos_) {
    return Status::IOError("wire block header implausible: too many cells");
  }
  if (rows > 0 && cols == 0) {
    return Status::IOError("wire block header implausible: rows without columns");
  }
  block->Reset(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    std::vector<Value>& col = block->column(c);
    col.reserve(rows);
    for (uint32_t r = 0; r < rows; ++r) {
      TANGO_ASSIGN_OR_RETURN(Value v, GetValue());
      col.push_back(std::move(v));
    }
  }
  block->set_rows(rows);
  return static_cast<size_t>(rows);
}

}  // namespace tango
