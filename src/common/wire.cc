#include "common/wire.h"

namespace tango {

namespace {
enum WireTag : uint8_t { kTagNull = 0, kTagInt = 1, kTagDouble = 2, kTagString = 3 };
}  // namespace

void WireWriter::PutValue(const Value& v) {
  if (v.is_null()) {
    PutU8(kTagNull);
  } else if (v.is_int()) {
    PutU8(kTagInt);
    PutI64(v.AsInt());
  } else if (v.is_double()) {
    PutU8(kTagDouble);
    PutDouble(v.AsDouble());
  } else {
    PutU8(kTagString);
    PutString(v.AsString());
  }
}

void WireWriter::PutTuple(const Tuple& t) {
  PutU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) PutValue(v);
}

Result<uint8_t> WireReader::GetU8() {
  TANGO_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> WireReader::GetU32() {
  TANGO_RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

Result<int64_t> WireReader::GetI64() {
  TANGO_RETURN_IF_ERROR(Need(8));
  int64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<double> WireReader::GetDouble() {
  TANGO_RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<std::string> WireReader::GetString() {
  TANGO_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  TANGO_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Value> WireReader::GetValue() {
  TANGO_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt: {
      TANGO_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value(v);
    }
    case kTagDouble: {
      TANGO_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value(v);
    }
    case kTagString: {
      TANGO_ASSIGN_OR_RETURN(std::string v, GetString());
      return Value(std::move(v));
    }
    default:
      return Status::IOError("bad wire value tag");
  }
}

Result<Tuple> WireReader::GetTuple() {
  TANGO_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  Tuple t;
  t.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TANGO_ASSIGN_OR_RETURN(Value v, GetValue());
    t.push_back(std::move(v));
  }
  return t;
}

}  // namespace tango
