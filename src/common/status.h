#ifndef TANGO_COMMON_STATUS_H_
#define TANGO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace tango {

/// \brief Error category for a failed operation.
///
/// Modeled after the RocksDB `Status` idiom: cheap to construct and copy on
/// the success path, carries a code plus human-readable message on failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kNotSupported,
  kInternal,
  kIOError,
  // Transient environment failures (the middleware/DBMS boundary can
  // misbehave): the operation did not succeed but the query is not broken —
  // callers may retry (kUnavailable, kAborted) or must give up cleanly
  // because the query's deadline passed (kTimeout).
  kUnavailable,
  kTimeout,
  kAborted,
};

/// True for the environment-failure codes a caller may see when the wire,
/// the DBMS, or the query's own deadline misbehaved — as opposed to a bug
/// (kInternal) or a bad query. A clean failure of a fault-injected run must
/// carry one of these codes.
inline bool IsTransientCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout ||
         code == StatusCode::kAborted;
}

/// \brief Result of an operation that can fail.
///
/// Functions that cross module boundaries return `Status` (or `Result<T>`)
/// instead of throwing; exceptions are reserved for programming errors.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsTransient() const { return IsTransientCode(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<category>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// The value is accessed with `ValueOrDie()` after checking `ok()`, mirroring
/// Arrow's `Result<T>`.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }
  T& ValueOrDie() { return std::get<T>(data_); }
  const T& ValueOrDie() const { return std::get<T>(data_); }
  T MoveValueOrDie() { return std::move(std::get<T>(data_)); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK `Status` from the enclosing function.
#define TANGO_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::tango::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a `Result<T>` expression and assigns the value to `lhs`,
/// propagating the error status on failure.
#define TANGO_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto TANGO_CONCAT_(res_, __LINE__) = (rexpr);\
  if (!TANGO_CONCAT_(res_, __LINE__).ok())     \
    return TANGO_CONCAT_(res_, __LINE__).status(); \
  lhs = TANGO_CONCAT_(res_, __LINE__).MoveValueOrDie()

#define TANGO_CONCAT_(a, b) TANGO_CONCAT_IMPL_(a, b)
#define TANGO_CONCAT_IMPL_(a, b) a##b

}  // namespace tango

#endif  // TANGO_COMMON_STATUS_H_
