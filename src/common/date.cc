#include "common/date.h"

#include <cstdio>

namespace tango {
namespace date {

// Howard Hinnant's civil-calendar algorithms (public domain derivation).
int64_t FromYmd(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void ToYmd(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);      // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                              // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                      // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                           // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int64_t> Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char extra = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra) != 3 ||
      m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::ParseError("invalid date literal: " + text);
  }
  return FromYmd(y, m, d);
}

std::string Format(int64_t days) {
  int y, m, d;
  ToYmd(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace date
}  // namespace tango
