#include "common/rng.h"

#include <cmath>

namespace tango {

std::string Rng::Identifier(size_t length) {
  static const char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[Next() % 26]);
  }
  return out;
}

int64_t Rng::Skewed(int64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF of a power-law: small indices get most of the mass.
  const double u = NextDouble();
  const double x = std::pow(u, 1.0 / (1.0 - theta));
  auto v = static_cast<int64_t>(x * static_cast<double>(n));
  if (v >= n) v = n - 1;
  if (v < 0) v = 0;
  return v;
}

}  // namespace tango
