#ifndef TANGO_COMMON_ROW_BLOCK_H_
#define TANGO_COMMON_ROW_BLOCK_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/value.h"

namespace tango {

/// \brief A column-packed batch of tuples — the unit of vectorized execution.
///
/// Values are stored one vector per column, so a batch of N rows costs one
/// virtual `NextBatch` call instead of N virtual `Next` calls, and the wire
/// layer can frame a whole block behind a single length/CRC header. The
/// capacity is a *fill target* for producers (`full()` turns true at
/// capacity), not a hard bound: `AppendRow` past capacity still works, which
/// lets the wire decoder reconstitute whatever the sender framed.
///
/// All rows in a block share one arity; the first `AppendRow` after a
/// `Clear`/`Reset` fixes the shape.
class RowBlock {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBlock(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }
  /// Adjusts the fill target (operators size internal scratch blocks to
  /// match their consumer's block). Does not shrink existing rows.
  void set_capacity(size_t capacity) { capacity_ = capacity == 0 ? 1 : capacity; }
  size_t rows() const { return rows_; }
  size_t columns() const { return cols_.size(); }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ >= capacity_; }

  /// Removes all rows but keeps the column shape and their allocations, so
  /// a block reused across `NextBatch` calls settles into steady-state
  /// memory after the first fill.
  void Clear() {
    for (auto& col : cols_) col.clear();
    rows_ = 0;
  }

  /// Clears and re-shapes the block to `num_cols` empty columns.
  void Reset(size_t num_cols) {
    cols_.resize(num_cols);
    Clear();
  }

  void AppendRow(const Tuple& t) {
    EnsureShape(t.size());
    for (size_t c = 0; c < t.size(); ++c) cols_[c].push_back(t[c]);
    ++rows_;
  }

  void AppendRow(Tuple&& t) {
    EnsureShape(t.size());
    for (size_t c = 0; c < t.size(); ++c) cols_[c].push_back(std::move(t[c]));
    ++rows_;
  }

  const Value& At(size_t row, size_t col) const { return cols_[col][row]; }
  Value& At(size_t row, size_t col) { return cols_[col][row]; }

  /// Direct column access (vectorized operators, the wire codec).
  const std::vector<Value>& column(size_t c) const { return cols_[c]; }
  std::vector<Value>& column(size_t c) { return cols_[c]; }

  /// Reassembles row `row` as a Tuple (copying).
  void CopyRowTo(size_t row, Tuple* t) const {
    t->clear();
    t->reserve(cols_.size());
    for (const auto& col : cols_) t->push_back(col[row]);
  }

  /// Reassembles row `row` as a Tuple, moving the values out. The row's
  /// slots are left moved-from; each row may be taken at most once per fill.
  void MoveRowTo(size_t row, Tuple* t) {
    t->clear();
    t->reserve(cols_.size());
    for (auto& col : cols_) t->push_back(std::move(col[row]));
  }

  /// Codec hook: after writing columns directly via `column()`, declares the
  /// row count. Every column must hold exactly `n` values.
  void set_rows(size_t n) { rows_ = n; }

 private:
  void EnsureShape(size_t arity) {
    if (cols_.size() != arity) {
      // First row after Clear/Reset fixes the shape. (Rows within one fill
      // always share an arity in this engine; a late re-shape pads the new
      // columns with NULLs rather than corrupting row alignment.)
      cols_.resize(arity);
      for (auto& col : cols_) col.resize(rows_);
    }
  }

  size_t capacity_;
  size_t rows_ = 0;
  std::vector<std::vector<Value>> cols_;
};

}  // namespace tango

#endif  // TANGO_COMMON_ROW_BLOCK_H_
