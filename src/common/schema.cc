#include "common/schema.h"

#include <cctype>

namespace tango {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

Result<size_t> Schema::IndexOf(const std::string& table,
                               const std::string& name) const {
  const std::string t = ToUpper(table);
  const std::string n = ToUpper(name);
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != n) continue;
    if (!t.empty() && columns_[i].table != t) continue;
    if (found != columns_.size()) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     (t.empty() ? n : t + "." + n));
    }
    found = i;
  }
  if (found == columns_.size()) {
    return Status::NotFound("no such column: " + (t.empty() ? n : t + "." + n));
  }
  return found;
}

Result<size_t> Schema::IndexOf(const std::string& reference) const {
  const size_t dot = reference.find('.');
  if (dot == std::string::npos) return IndexOf("", reference);
  return IndexOf(reference.substr(0, dot), reference.substr(dot + 1));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  const std::string a = ToUpper(alias);
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.table = a;
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const Column& c : right.columns()) out.AddColumn(c);
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName();
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].table != other.columns_[i].table ||
        columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace tango
