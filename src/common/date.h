#ifndef TANGO_COMMON_DATE_H_
#define TANGO_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tango {

/// \brief Calendar-date <-> day-number conversions.
///
/// Time attributes in the paper denote days; relations store them as day
/// numbers counted from the civil epoch 1970-01-01 (negative before).
/// The closed-open period convention [T1, T2) is used throughout.
namespace date {

/// Days from 1970-01-01 to y-m-d (proleptic Gregorian calendar).
int64_t FromYmd(int year, int month, int day);

/// Inverse of FromYmd.
void ToYmd(int64_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD" into a day number.
Result<int64_t> Parse(const std::string& text);

/// Formats a day number as "YYYY-MM-DD".
std::string Format(int64_t days);

/// Day number of January 1 of the given year (common in the experiments,
/// e.g. "the time period between January 1, 1983 and January 1, 1984").
inline int64_t Jan1(int year) { return FromYmd(year, 1, 1); }

}  // namespace date
}  // namespace tango

#endif  // TANGO_COMMON_DATE_H_
