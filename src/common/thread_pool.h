#ifndef TANGO_COMMON_THREAD_POOL_H_
#define TANGO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tango {
namespace common {

/// \brief Fixed-size worker pool backing the parallel middleware operators.
///
/// Deliberately minimal: a shared FIFO of tasks, `Submit` returning a
/// `std::future` (exceptions thrown by a task surface when the future is
/// awaited), no work stealing — the operators submit a handful of
/// coarse-grained tasks (one per sorted run / join partition), so a single
/// queue is never the bottleneck.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one). The observability hooks
  /// are taken at construction — before any worker runs — so they are
  /// never mutated while a worker might read them: `queue_depth` (may be
  /// null) tracks tasks submitted but not yet picked up, and each executed
  /// task is recorded as a "pool.task" span under `trace_parent` when
  /// `trace` is non-null.
  explicit ThreadPool(size_t num_threads,
                      obs::Gauge* queue_depth = nullptr,
                      obs::TraceRecorder* trace = nullptr,
                      obs::SpanId trace_parent = obs::kNoSpan);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future yields its result (or rethrows the
  /// exception it raised). The pool stays usable after any number of
  /// submit/wait cycles.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task]() { (*task)(); });
      if (queue_depth_ != nullptr) queue_depth_->Increment();
    }
    cv_.notify_one();
    return result;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  obs::Gauge* queue_depth_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::SpanId trace_parent_ = obs::kNoSpan;
  std::vector<std::thread> workers_;
};

using ThreadPoolPtr = std::shared_ptr<ThreadPool>;

}  // namespace common
}  // namespace tango

#endif  // TANGO_COMMON_THREAD_POOL_H_
