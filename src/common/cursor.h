#ifndef TANGO_COMMON_CURSOR_H_
#define TANGO_COMMON_CURSOR_H_

#include <memory>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace tango {

/// \brief Pipelined iterator over tuples — the paper's result-set interface
/// with init() and getNext() (Figure 2).
///
/// Both the middleware execution engine (XXL-style algorithms) and the DBMS
/// physical operators implement this interface; `Init` may do real work
/// (e.g. TRANSFER^D loads its whole argument into the DBMS during init).
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Prepares the cursor; called once before the first Next.
  virtual Status Init() = 0;

  /// Produces the next tuple; returns false when exhausted.
  virtual Result<bool> Next(Tuple* tuple) = 0;

  /// Output schema; valid after construction.
  virtual const Schema& schema() const = 0;
};

using CursorPtr = std::unique_ptr<Cursor>;

/// \brief Cursor over an in-memory vector of tuples.
class VectorCursor : public Cursor {
 public:
  VectorCursor(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  Status Init() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Tuple* tuple) override {
    if (pos_ >= rows_.size()) return false;
    *tuple = rows_[pos_++];
    return true;
  }

  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// Drains a cursor into a vector (calls Init first).
inline Result<std::vector<Tuple>> MaterializeAll(Cursor* cursor) {
  TANGO_RETURN_IF_ERROR(cursor->Init());
  std::vector<Tuple> rows;
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(bool more, cursor->Next(&t));
    if (!more) break;
    rows.push_back(std::move(t));
  }
  return rows;
}

}  // namespace tango

#endif  // TANGO_COMMON_CURSOR_H_
