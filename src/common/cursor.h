#ifndef TANGO_COMMON_CURSOR_H_
#define TANGO_COMMON_CURSOR_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "common/row_block.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace tango {

/// \brief Pipelined iterator over tuples — the paper's result-set interface
/// with init() and getNext() (Figure 2), extended with a vectorized batch
/// path.
///
/// Both the middleware execution engine (XXL-style algorithms) and the DBMS
/// physical operators implement this interface; `Init` may do real work
/// (e.g. TRANSFER^D loads its whole argument into the DBMS during init).
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Prepares the cursor; called once before the first Next.
  virtual Status Init() = 0;

  /// Produces the next tuple; returns false when exhausted.
  virtual Result<bool> Next(Tuple* tuple) = 0;

  /// Vectorized variant: clears `block` and fills it with up to
  /// `block->capacity()` rows; returns the number appended. Zero means
  /// exhausted. A *partial* (non-zero, under-capacity) block does NOT imply
  /// exhaustion — producers such as the wire cursor surface one transfer
  /// batch per call — so consumers must keep calling until they see zero.
  ///
  /// The default implementation loops the legacy `Next`, so every cursor
  /// supports batching; hot operators override it natively. Mixing `Next`
  /// and `NextBatch` on one cursor between `Init`s is allowed — both drain
  /// the same underlying stream in order.
  virtual Result<size_t> NextBatch(RowBlock* block) {
    block->Clear();
    Tuple t;
    while (!block->full()) {
      TANGO_ASSIGN_OR_RETURN(bool more, Next(&t));
      if (!more) break;
      block->AppendRow(std::move(t));
    }
    return block->rows();
  }

  /// Output schema; valid after construction.
  virtual const Schema& schema() const = 0;
};

using CursorPtr = std::unique_ptr<Cursor>;

/// \brief Row-at-a-time view over a batched child.
///
/// Operators whose control flow is inherently tuple-oriented (merge join,
/// plane sweep, difference) read their children through this adapter: the
/// child is drained in whole blocks (one virtual call per block), and the
/// operator's own row logic stays bit-identical. `Next` here is non-virtual
/// and serves moves out of the buffered block.
class BatchedReader {
 public:
  explicit BatchedReader(Cursor* child,
                         size_t batch_rows = RowBlock::kDefaultCapacity)
      : child_(child), block_(batch_rows == 0 ? 1 : batch_rows) {}

  /// Re-initializes the child and rewinds the buffer.
  Status Init() {
    pos_ = 0;
    done_ = false;
    block_.Clear();
    return child_->Init();
  }

  Result<bool> Next(Tuple* tuple) {
    while (pos_ >= block_.rows()) {
      if (done_) return false;
      TANGO_ASSIGN_OR_RETURN(size_t n, child_->NextBatch(&block_));
      pos_ = 0;
      if (n == 0) {
        done_ = true;
        return false;
      }
    }
    block_.MoveRowTo(pos_++, tuple);
    return true;
  }

  Cursor* child() const { return child_; }

 private:
  Cursor* child_;
  RowBlock block_;
  size_t pos_ = 0;
  bool done_ = false;
};

/// \brief Cursor over an in-memory vector of tuples.
///
/// `Drain::kReusable` (default) copies rows out, so re-`Init` replays the
/// stream. `Drain::kOneShot` moves rows out — for the many places that build
/// a VectorCursor from a freshly materialized vector and drain it exactly
/// once (partitions, fallbacks); a one-shot cursor must not be re-`Init`ed
/// after draining.
class VectorCursor : public Cursor {
 public:
  enum class Drain { kReusable, kOneShot };

  VectorCursor(Schema schema, std::vector<Tuple> rows,
               Drain drain = Drain::kReusable)
      : schema_(std::move(schema)), rows_(std::move(rows)), drain_(drain) {}

  Status Init() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Tuple* tuple) override {
    if (pos_ >= rows_.size()) return false;
    if (drain_ == Drain::kOneShot) {
      *tuple = std::move(rows_[pos_++]);
    } else {
      *tuple = rows_[pos_++];
    }
    return true;
  }

  Result<size_t> NextBatch(RowBlock* block) override {
    block->Clear();
    while (pos_ < rows_.size() && !block->full()) {
      if (drain_ == Drain::kOneShot) {
        block->AppendRow(std::move(rows_[pos_++]));
      } else {
        block->AppendRow(rows_[pos_++]);
      }
    }
    return block->rows();
  }

  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  Drain drain_;
  size_t pos_ = 0;
};

/// Drains a cursor into a vector (calls Init first). Pulls whole blocks —
/// one virtual call per batch — and grows the result geometrically but never
/// by less than the incoming block, so materialization points (sort runs,
/// transfers, the root drain) avoid per-row virtual calls and reallocation
/// churn.
inline Result<std::vector<Tuple>> MaterializeAll(Cursor* cursor) {
  TANGO_RETURN_IF_ERROR(cursor->Init());
  std::vector<Tuple> rows;
  RowBlock block;
  Tuple t;
  while (true) {
    TANGO_ASSIGN_OR_RETURN(size_t n, cursor->NextBatch(&block));
    if (n == 0) break;
    if (rows.capacity() < rows.size() + n) {
      rows.reserve(std::max(rows.size() + n, rows.capacity() * 2));
    }
    for (size_t i = 0; i < n; ++i) {
      block.MoveRowTo(i, &t);
      rows.push_back(std::move(t));
    }
  }
  return rows;
}

}  // namespace tango

#endif  // TANGO_COMMON_CURSOR_H_
