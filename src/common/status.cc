#include "common/status.h"

namespace tango {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace tango
