#ifndef TANGO_COMMON_RETRY_H_
#define TANGO_COMMON_RETRY_H_

#include <cstdint>
#include <memory>

#include "common/cancel.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tango {

/// \brief Capped exponential backoff with seeded jitter and an attempt
/// budget — the recovery discipline for transient wire/DBMS failures.
///
/// Only idempotent work is retried, and each operator knows how to make its
/// retry idempotent: a TRANSFER^M SELECT is re-issued in place (the engine
/// is deterministic, so already-delivered rows are skipped), a TRANSFER^D
/// drops and recreates its temp table before reloading, and temp-table
/// drops are naturally idempotent.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  int max_attempts = 4;
  double initial_backoff_seconds = 200e-6;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 20e-3;
  /// Uniform jitter fraction applied to each delay (+/- jitter/2), seeded
  /// so fault-matrix runs are reproducible.
  double jitter = 0.5;
  uint64_t seed = 0x7e77e7;
};

/// Codes worth re-attempting. kTimeout is transient but NOT retryable: the
/// deadline that produced it governs the whole query, so re-running the
/// statement cannot help.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kAborted;
}

/// \brief Per-operation retry loop state (attempt counter + backoff RNG).
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy, uint64_t salt = 0);

  /// True while the budget allows another attempt for this failure.
  bool ShouldRetry(const Status& last) const;

  /// Sleeps the next backoff delay. Fails fast — without sleeping the full
  /// delay — when `control` is cancelled or the remaining deadline is
  /// shorter than the delay (kTimeout), so a dying query never sits in
  /// backoff.
  Status Backoff(const QueryControlPtr& control);

  int attempts_used() const { return attempt_; }

 private:
  RetryPolicy policy_;
  int attempt_ = 1;  // the first attempt has been made when Backoff is hit
  double next_delay_;
  uint64_t rng_state_;
};

/// \brief Wire/recovery observability: how often the failure machinery ran.
///
/// One instance lives in the Middleware and is shared (by pointer) with the
/// transfer operators and the temp-table janitor; the fields are metric
/// counters (atomic) because TRANSFER^M retries can fire on prefetch
/// threads. The counters live in an obs::MetricsRegistry under the
/// "retry.*" / "janitor.*" / "recovery.*" names, so they show up in the
/// registry's text dump alongside the wire and transfer series; a
/// default-constructed instance owns a private registry (unit tests).
class RecoveryCounters {
 private:
  // Declared (and therefore initialized) before the references below.
  std::shared_ptr<obs::MetricsRegistry> owned_;
  obs::MetricsRegistry& registry_;

 public:
  /// Binds the counters in `registry`; null = own a private registry.
  explicit RecoveryCounters(obs::MetricsRegistry* registry = nullptr)
      : owned_(registry == nullptr ? std::make_shared<obs::MetricsRegistry>()
                                   : nullptr),
        registry_(registry != nullptr ? *registry : *owned_),
        tm_retries(registry_.counter("retry.tm")),
        td_retries(registry_.counter("retry.td")),
        rows_skipped(registry_.counter("retry.rows_skipped")),
        drop_retries(registry_.counter("retry.drop")),
        temp_tables_dropped(registry_.counter("janitor.temp_tables_dropped")),
        temp_table_drop_failures(registry_.counter("janitor.drop_failures")),
        temp_tables_leaked(registry_.counter("janitor.temp_tables_leaked")),
        orphans_swept(registry_.counter("janitor.orphans_swept")),
        wal_segments_reclaimed(
            registry_.counter("janitor.wal_segments_reclaimed")),
        downgrades(registry_.counter("recovery.downgrades")) {}

  RecoveryCounters(const RecoveryCounters&) = delete;
  RecoveryCounters& operator=(const RecoveryCounters&) = delete;

  obs::Counter& tm_retries;
  obs::Counter& td_retries;
  /// Rows re-fetched and discarded to reposition a re-issued TRANSFER^M
  /// past what was already delivered downstream (restart-and-skip cost).
  obs::Counter& rows_skipped;
  obs::Counter& drop_retries;
  obs::Counter& temp_tables_dropped;
  obs::Counter& temp_table_drop_failures;
  obs::Counter& temp_tables_leaked;
  obs::Counter& orphans_swept;
  /// WAL segment/snapshot files reclaimed by the janitor's durable-garbage
  /// sweep (segments wholly covered by the latest checkpoint snapshot).
  obs::Counter& wal_segments_reclaimed;
  obs::Counter& downgrades;

  obs::MetricsRegistry& registry() { return registry_; }

  uint64_t transfer_retries() const {
    return tm_retries.load() + td_retries.load();
  }
};

}  // namespace tango

#endif  // TANGO_COMMON_RETRY_H_
