#ifndef TANGO_COMMON_RNG_H_
#define TANGO_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace tango {

/// \brief Deterministic PRNG (xorshift128+) used by the workload generator
/// and property tests so every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    s0_ = seed ? seed : 1;
    s1_ = SplitMix(&s0_);
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random fixed-length uppercase identifier, e.g. for name/address filler.
  std::string Identifier(size_t length);

  /// Zipf-like skew helper: returns a value in [0, n) where low values are
  /// more likely; `theta` in (0,1) controls skew strength.
  int64_t Skewed(int64_t n, double theta);

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  uint64_t s0_, s1_;
};

}  // namespace tango

#endif  // TANGO_COMMON_RNG_H_
