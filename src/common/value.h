#ifndef TANGO_COMMON_VALUE_H_
#define TANGO_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace tango {

/// \brief Column data types supported by the middleware and the DBMS.
///
/// Time attributes (T1, T2) are stored as `kInt` day numbers; the paper's
/// closed-open period representation `[T1, T2)` is preserved verbatim.
enum class DataType : uint8_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
};

/// Returns the SQL spelling of a type ("INT", "DOUBLE", "VARCHAR").
const char* DataTypeName(DataType type);

/// \brief A single attribute value: NULL, 64-bit integer, double, or string.
///
/// Ordering follows SQL semantics with NULLs sorting first; integers and
/// doubles compare numerically across types.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// True when the value is numeric (int or double).
  bool is_numeric() const { return is_int() || is_double(); }

  /// Three-way comparison with SQL NULLS FIRST total order:
  /// NULL < numbers < strings; numbers compare numerically across kinds.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Renders the value for plan printouts and test expectations; strings are
  /// not quoted.
  std::string ToString() const;

  /// Renders as a SQL literal (strings single-quoted with '' escaping).
  std::string ToSqlLiteral() const;

  /// The on-wire / in-page byte footprint used for `size(r)` statistics.
  size_t ByteSize() const;

  /// Hash usable in unordered containers (FNV-1a over the encoded value).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// A tuple is a row of values laid out in schema order.
using Tuple = std::vector<Value>;

/// Sum of the byte sizes of all values, plus a per-tuple header; this is the
/// quantity the cost formulas weigh via `size(r)`.
size_t TupleByteSize(const Tuple& tuple);

}  // namespace tango

#endif  // TANGO_COMMON_VALUE_H_
