#ifndef TANGO_OPTIMIZER_PHYS_H_
#define TANGO_OPTIMIZER_PHYS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"

namespace tango {
namespace optimizer {

/// Where a (sub)relation is produced — the property the transfer operators
/// T^M / T^D change. The paper encodes location with explicit transfer
/// operators inserted by rules T1–T8; this implementation realizes the same
/// plan space by treating location as a physical property whose enforcers
/// are the transfers (see DESIGN.md: rule T7/T8 redundancy elimination
/// corresponds to never stacking the two enforcers directly).
enum class Site { kDbms, kMiddleware };

const char* SiteName(Site site);

/// Required/delivered physical properties: the site and a sort order
/// (empty order = no requirement / no guarantee).
struct PhysProps {
  Site site = Site::kMiddleware;
  std::vector<algebra::SortSpec> order;

  /// Cache key for winner memoization.
  std::string Key() const;
};

/// True when an order requirement is satisfied by a delivered order: the
/// paper's IsPrefixOf (rule T10's pre-condition).
bool OrderSatisfies(const std::vector<algebra::SortSpec>& required,
                    const std::vector<algebra::SortSpec>& delivered);

/// Physical algorithms. ^M algorithms run in the middleware's execution
/// engine; ^D forms are rendered into SQL by the Translator-To-SQL.
enum class Algorithm {
  // DBMS side ("generic" implementations costed with one formula each).
  kScanD,
  kSelectD,
  kProjectD,
  kSortD,
  kJoinD,
  kTJoinD,
  kTAggrD,
  kDistinctD,
  kProductD,
  // Middleware side (the exec library).
  kFilterM,
  kProjectM,
  kSortM,
  kMergeJoinM,
  kTJoinM,
  kTAggrM,
  kDupElimM,
  kCoalesceM,
  kDiffM,
  // Transfers.
  kTransferM,
  kTransferD,
};

const char* AlgorithmName(Algorithm alg);

/// True for algorithms executed by the DBMS (below a TRANSFER^M).
bool IsDbmsAlgorithm(Algorithm alg);

struct PhysPlan;
using PhysPlanPtr = std::shared_ptr<const PhysPlan>;

/// \brief A physical query execution plan: every operation is specified by
/// an algorithm (the paper's "one best physical plan" per candidate).
struct PhysPlan {
  Algorithm algorithm = Algorithm::kScanD;
  /// Logical operator carrying the parameters (predicate, keys, attrs, ...)
  /// and the output schema. For enforcer-inserted sorts this is a synthetic
  /// sort node.
  algebra::OpPtr op;
  Site site = Site::kDbms;
  /// Order delivered to the parent.
  std::vector<algebra::SortSpec> order;
  /// Estimated total cost of the subtree, microseconds.
  double cost = 0;
  /// Estimated output cardinality and total bytes (from derived statistics).
  double est_cardinality = 0;
  double est_bytes = 0;
  /// Memo group key of the equivalence class this node computes (stable
  /// across re-optimizations of the same fingerprint; see adapt::NodeKey).
  /// Keys actual-vs-estimated cardinality feedback. 0 on synthetic nodes.
  uint64_t feedback_key = 0;

  std::vector<PhysPlanPtr> children;

  std::string ToString(int indent = 0) const;
};

}  // namespace optimizer
}  // namespace tango

#endif  // TANGO_OPTIMIZER_PHYS_H_
