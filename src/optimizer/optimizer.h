#ifndef TANGO_OPTIMIZER_OPTIMIZER_H_
#define TANGO_OPTIMIZER_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>

#include "cost/cost_model.h"
#include "optimizer/memo.h"
#include "optimizer/phys.h"

namespace tango {
namespace optimizer {

/// Confines processing to one site for degraded (fallback) plans.
///
/// When a transfer operator exhausts its retry budget at run time, the
/// middleware re-plans the query under a restriction that avoids the failed
/// transfer direction: kDbmsOnly is the paper's Figure 4a shape (everything
/// in the DBMS, one T^M on top) and needs no T^D; kMiddlewareOnly pulls
/// base relations up with T^M over plain scans and does all processing in
/// the middleware, so no temp tables are created in the DBMS.
enum class SiteRestriction {
  kNone,
  kDbmsOnly,
  kMiddlewareOnly,
};

/// \brief TANGO's query optimizer: Volcano-style exploration of the memo
/// followed by top-down physical planning with site and order properties.
///
/// The initial plan assigns all processing to the DBMS with a single T^M on
/// top (Figure 4a); here that is expressed as the root requirement
/// {site = middleware}. Transfers and sorts are property enforcers, which
/// realizes the paper's heuristics T1–T8 and the sort rules T10–T12 (see
/// DESIGN.md §5 for the mapping); the remaining rules (selection pushdown /
/// fusion, E1/E2, T9) run as memo transformations.
class Optimizer {
 public:
  struct Options {
    /// §3.3 semantic estimation of temporal predicates (off = the
    /// straightforward method the paper shows being ~40x off).
    bool semantic_temporal_selectivity = true;
    /// Skip memo exploration (cost the initial plan's shape only).
    bool enable_exploration = true;
    /// Confine processing to one site (degraded-mode planning). Queries
    /// using middleware-only algorithms (COALESCE, temporal DIFFERENCE)
    /// cannot be planned under kDbmsOnly; Optimize then fails cleanly and
    /// the caller may try the other restriction.
    SiteRestriction site_restriction = SiteRestriction::kNone;
    /// Observed cardinalities (memo group key -> rows) from the adaptive
    /// feedback loop, injected over the §3.3 estimates. Not owned; may be
    /// null (no feedback).
    const std::map<uint64_t, double>* cardinality_overrides = nullptr;
  };

  explicit Optimizer(const cost::CostModel* model)
      : Optimizer(model, Options()) {}
  Optimizer(const cost::CostModel* model, Options options)
      : model_(model), options_(options) {}

  /// Base-relation statistics source (the Statistics Collector).
  void set_scan_stats_provider(Memo::ScanStatsProvider provider) {
    scan_stats_ = std::move(provider);
  }

  struct Optimized {
    PhysPlanPtr plan;
    /// The paper reports these per query ("12 equivalence classes with 29
    /// class elements").
    size_t num_classes = 0;
    size_t num_elements = 0;
    /// Entries in the physical winner table — the (class, site, order)
    /// combinations the top-down search costed. The paper's element counts
    /// include transfer/sort placement variants, which this implementation
    /// explores here rather than in the memo.
    size_t num_physical = 0;
  };

  /// Optimizes an initial logical plan. A top-level T^M (Figure 4a) is
  /// accepted and stripped; the root is planned for {site = middleware}.
  Result<Optimized> Optimize(algebra::OpPtr initial_plan);

 private:
  struct CacheKey {
    size_t group;
    std::string props;
    bool no_tm;
    bool no_td;
    bool operator<(const CacheKey& other) const {
      return std::tie(group, props, no_tm, no_td) <
             std::tie(other.group, other.props, other.no_tm, other.no_td);
    }
  };

  /// Best plan for `group` under the required properties. `no_transfer_m` /
  /// `no_transfer_d` suppress the respective enforcer at this level only
  /// (rules T7/T8: a transfer pair in sequence is redundant).
  Result<PhysPlanPtr> FindBest(Memo* memo, size_t group,
                               const PhysProps& props, bool no_transfer_m,
                               bool no_transfer_d);

  /// Plans one memo element under the required properties; null when the
  /// element cannot satisfy them.
  Result<PhysPlanPtr> PlanExpr(Memo* memo, size_t group, const MExpr& expr,
                               const PhysProps& props);

  PhysPlanPtr MakeNode(Algorithm alg, algebra::OpPtr op, Site site,
                       std::vector<algebra::SortSpec> order, double self_cost,
                       const Group& group,
                       std::vector<PhysPlanPtr> children) const;

  const cost::CostModel* model_;
  Options options_;
  Memo::ScanStatsProvider scan_stats_;
  std::map<CacheKey, PhysPlanPtr> winners_;
  std::set<std::string> in_progress_;
};

}  // namespace optimizer
}  // namespace tango

#endif  // TANGO_OPTIMIZER_OPTIMIZER_H_
