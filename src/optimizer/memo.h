#ifndef TANGO_OPTIMIZER_MEMO_H_
#define TANGO_OPTIMIZER_MEMO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "stats/stats.h"

namespace tango {
namespace optimizer {

/// \brief One element of an equivalence class: a logical operator whose
/// children are equivalence classes (the Volcano structure the paper counts
/// per query: "the optimizer generated 12 equivalence classes with 29 class
/// elements").
struct MExpr {
  /// Parameter carrier: kind, predicate/items/keys/attrs/aggs and schema.
  /// Its `children` hold lightweight placeholders exposing only the child
  /// group schemas (needed by statistics derivation).
  algebra::OpPtr op;
  std::vector<size_t> children;  // group ids
};

/// \brief One equivalence class: multiset-equivalent expressions plus the
/// derived statistics the cost formulas consume.
struct Group {
  std::vector<MExpr> exprs;
  Schema schema;
  stats::RelStats stats;
  /// Stable identity for cardinality feedback (adapt::NodeKey over the
  /// literal-lifted canon of the group's first expression and its child
  /// group keys). Deterministic across optimizations of the same
  /// fingerprint, so observed actuals recorded under this key find the
  /// same group on re-optimization. 0 = unkeyed (should not happen).
  uint64_t key = 0;
};

/// \brief The Volcano memo: equivalence classes, their elements, and the
/// transformation-rule engine that saturates them.
class Memo {
 public:
  struct Options {
    /// Recognize the Overlaps/timeslice conjunct pairs during derivation
    /// (§3.3); off = the straightforward estimation the paper shows failing.
    bool semantic_temporal_selectivity = true;
    /// Upper bound on rule application passes (safety valve).
    size_t max_passes = 8;
  };

  Memo() : Memo(Options()) {}
  explicit Memo(Options options) : options_(options) {}

  /// Copies a logical operator tree into the memo, returning the root group.
  /// The tree must not contain transfer operators (location is a physical
  /// property here; the top-level T^M of the initial plan is expressed by
  /// the root requirement "site = middleware").
  Result<size_t> CopyIn(const algebra::OpPtr& plan,
                        const stats::RelStats& base_placeholder = {});

  /// Registers base-relation statistics for scan groups; must be called via
  /// the provider before CopyIn derives stats.
  using ScanStatsProvider =
      std::function<Result<stats::RelStats>(const std::string& table)>;
  void set_scan_stats_provider(ScanStatsProvider provider) {
    scan_stats_ = std::move(provider);
  }

  /// Observed cardinalities (group key -> rows) injected over the derived
  /// estimates at group creation — set before CopyIn so parents derive from
  /// the corrected child statistics. Not owned; may be null.
  void set_cardinality_overrides(const std::map<uint64_t, double>* overrides) {
    overrides_ = overrides;
  }

  /// Applies the transformation rules to saturation (bounded by
  /// options.max_passes). Returns the number of new elements generated.
  Result<size_t> Explore();

  size_t num_groups() const { return groups_.size(); }
  size_t num_exprs() const;

  const Group& group(size_t id) const { return groups_[id]; }
  Group& group(size_t id) { return groups_[id]; }

  /// Debug rendering of all classes and elements.
  std::string ToString() const;

 private:
  /// Inserts an expression (op params + child groups) into group `target`
  /// (or a fresh group when target == kNewGroup). Returns the group id, or
  /// SIZE_MAX if the expression was already present.
  static constexpr size_t kNewGroup = static_cast<size_t>(-1);
  Result<size_t> Insert(const algebra::OpPtr& op, std::vector<size_t> children,
                        size_t target);

  /// Builds the placeholder-children op used as the MExpr parameter carrier.
  algebra::OpPtr MakePatternOp(const algebra::OpPtr& op,
                               const std::vector<size_t>& children) const;

  /// Derives stats for an expression (children = group ids).
  Result<stats::RelStats> DeriveStats(const algebra::OpPtr& op,
                                      const std::vector<size_t>& children);

  // ---- transformation rules (heuristic groups 1-4 as applicable at the
  // logical level; see DESIGN.md for the mapping to the paper's T/E rules).
  Result<size_t> ApplyRulesToExpr(size_t group_id, size_t expr_index);
  Result<size_t> RuleSelectMerge(size_t group_id, const MExpr& e);
  Result<size_t> RuleSelectPushdownJoin(size_t group_id, const MExpr& e);
  Result<size_t> RuleSelectPushdownTAggr(size_t group_id, const MExpr& e);
  Result<size_t> RuleSelectProjectCommute(size_t group_id, const MExpr& e);
  Result<size_t> RuleSelectCoalesceCommute(size_t group_id, const MExpr& e);
  Result<size_t> RuleIdentityProjectCollapse(size_t group_id, const MExpr& e);
  Result<size_t> RuleJoinCommute(size_t group_id, const MExpr& e);

  Options options_;
  std::vector<Group> groups_;
  // Fingerprint -> group id, for new-group deduplication.
  std::map<std::string, size_t> expr_index_;
  // Fingerprints of commuted joins (rule E2 is applied once per join).
  std::set<std::string> commute_products_;
  size_t generated_ = 0;
  ScanStatsProvider scan_stats_;
  const std::map<uint64_t, double>* overrides_ = nullptr;
};

}  // namespace optimizer
}  // namespace tango

#endif  // TANGO_OPTIMIZER_MEMO_H_
