#include "optimizer/optimizer.h"

#include <algorithm>

namespace tango {
namespace optimizer {

namespace {

/// Normalizes an attribute reference for order comparison: qualifiers are
/// stripped, so "B.POSID" and "POSID" denote the same order column. (In a
/// self-join both sides carry the name; orders on such columns are treated
/// as interchangeable, a deliberate simplification.)
std::string BareName(const std::string& attr) {
  const size_t dot = attr.rfind('.');
  return dot == std::string::npos ? attr : attr.substr(dot + 1);
}

algebra::SortSpec Spec(const std::string& attr, bool asc = true) {
  return {BareName(ToUpper(attr)), asc};
}

std::vector<algebra::SortSpec> NormalizeOrder(
    const std::vector<algebra::SortSpec>& order) {
  std::vector<algebra::SortSpec> out;
  out.reserve(order.size());
  for (const algebra::SortSpec& s : order) out.push_back(Spec(s.attr, s.ascending));
  return out;
}

/// All columns of a schema as an ascending order (DUPELIM^M / DIFF^M inputs).
std::vector<algebra::SortSpec> AllColumnsOrder(const Schema& schema) {
  std::vector<algebra::SortSpec> out;
  for (const Column& c : schema.columns()) out.push_back({c.name, true});
  return out;
}

std::shared_ptr<algebra::Op> SyntheticOp(algebra::OpKind kind,
                                         const Schema& schema) {
  auto op = std::make_shared<algebra::Op>();
  op->kind = kind;
  op->schema = schema;
  return op;
}

}  // namespace

PhysPlanPtr Optimizer::MakeNode(Algorithm alg, algebra::OpPtr op, Site site,
                                std::vector<algebra::SortSpec> order,
                                double self_cost, const Group& group,
                                std::vector<PhysPlanPtr> children) const {
  auto node = std::make_shared<PhysPlan>();
  node->algorithm = alg;
  node->op = std::move(op);
  node->site = site;
  node->order = std::move(order);
  node->cost = self_cost;
  for (const PhysPlanPtr& c : children) node->cost += c->cost;
  node->est_cardinality = group.stats.cardinality;
  node->est_bytes = group.stats.size();
  node->feedback_key = group.key;
  node->children = std::move(children);
  return node;
}

Result<Optimizer::Optimized> Optimizer::Optimize(algebra::OpPtr initial_plan) {
  // The initial plan carries the Figure 4a top-level T^M; strip it — the
  // root requirement {site = middleware} expresses the same thing.
  while (initial_plan->kind == algebra::OpKind::kTransferM ||
         initial_plan->kind == algebra::OpKind::kTransferD) {
    initial_plan = initial_plan->children[0];
  }

  Memo::Options mopts;
  mopts.semantic_temporal_selectivity = options_.semantic_temporal_selectivity;
  Memo memo(mopts);
  memo.set_scan_stats_provider(scan_stats_);
  memo.set_cardinality_overrides(options_.cardinality_overrides);
  TANGO_ASSIGN_OR_RETURN(size_t root, memo.CopyIn(initial_plan));
  if (options_.enable_exploration) {
    TANGO_RETURN_IF_ERROR(memo.Explore().status());
  }

  winners_.clear();
  in_progress_.clear();
  PhysProps root_props;
  root_props.site = Site::kMiddleware;
  TANGO_ASSIGN_OR_RETURN(PhysPlanPtr plan,
                         FindBest(&memo, root, root_props, false, false));
  if (plan == nullptr) {
    return Status::Internal("no physical plan found for the query");
  }
  Optimized out;
  out.plan = std::move(plan);
  out.num_classes = memo.num_groups();
  out.num_elements = memo.num_exprs();
  out.num_physical = winners_.size();
  return out;
}

Result<PhysPlanPtr> Optimizer::FindBest(Memo* memo, size_t group,
                                        const PhysProps& props,
                                        bool no_transfer_m,
                                        bool no_transfer_d) {
  CacheKey key{group, props.Key(), no_transfer_m, no_transfer_d};
  const auto cached = winners_.find(key);
  if (cached != winners_.end()) return cached->second;
  const std::string progress_key = std::to_string(group) + "/" + props.Key() +
                                   (no_transfer_m ? "m" : "") +
                                   (no_transfer_d ? "d" : "");
  if (in_progress_.count(progress_key) != 0) {
    return PhysPlanPtr(nullptr);  // cycle: treat as unplannable here
  }
  in_progress_.insert(progress_key);

  const Group& g = memo->group(group);
  PhysPlanPtr best = nullptr;
  auto consider = [&best](const PhysPlanPtr& candidate) {
    if (candidate == nullptr) return;
    if (best == nullptr || candidate->cost < best->cost) best = candidate;
  };

  for (const MExpr& e : g.exprs) {
    TANGO_ASSIGN_OR_RETURN(PhysPlanPtr p, PlanExpr(memo, group, e, props));
    consider(p);
  }

  // ---- enforcers ----
  // Degraded-mode planning suppresses the enforcers that would move work to
  // the forbidden site: no SORT^M under kDbmsOnly, no SORT^D under
  // kMiddlewareOnly, and no TRANSFER^D under either (a restricted plan must
  // not depend on the failing transfer direction). TRANSFER^M is always
  // available — it is the only bridge to where the data lives.
  const SiteRestriction restriction = options_.site_restriction;
  if (props.site == Site::kMiddleware) {
    if (!props.order.empty() && restriction != SiteRestriction::kDbmsOnly) {
      // SORT^M over the unordered middleware winner (rules T1-T3 introduce
      // these sorts in the paper; T10/T11 remove them when redundant, which
      // here corresponds to an element above already delivering the order).
      PhysProps base{Site::kMiddleware, {}};
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr child,
          FindBest(memo, group, base, no_transfer_m, no_transfer_d));
      if (child != nullptr) {
        auto sort_op = SyntheticOp(algebra::OpKind::kSort, g.schema);
        sort_op->sort_keys = props.order;
        consider(MakeNode(Algorithm::kSortM, sort_op, Site::kMiddleware,
                          props.order,
                          model_->SortM(g.stats.size(), g.stats.cardinality),
                          g, {child}));
      }
    }
    if (!no_transfer_m) {
      // TRANSFER^M over the DBMS winner; preserves the fragment's order
      // (rule T6 is of type ->L). The immediate T^D enforcer is suppressed
      // below it (rule T7: T^M(T^D(r)) -> r).
      PhysProps inner{Site::kDbms, props.order};
      TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                             FindBest(memo, group, inner, false, true));
      if (child != nullptr) {
        consider(MakeNode(Algorithm::kTransferM,
                          SyntheticOp(algebra::OpKind::kTransferM, g.schema),
                          Site::kMiddleware, child->order,
                          model_->TransferM(g.stats.size(), g.stats.cardinality),
                          g, {child}));
      }
    }
  } else {
    if (!props.order.empty() && restriction != SiteRestriction::kMiddlewareOnly) {
      // SORT^D at the top of a DBMS fragment (rendered as ORDER BY).
      PhysProps base{Site::kDbms, {}};
      TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                             FindBest(memo, group, base, no_transfer_m, false));
      if (child != nullptr) {
        auto sort_op = SyntheticOp(algebra::OpKind::kSort, g.schema);
        sort_op->sort_keys = props.order;
        consider(MakeNode(Algorithm::kSortD, sort_op, Site::kDbms, props.order,
                          model_->SortD(g.stats.size(), g.stats.cardinality),
                          g, {child}));
      }
    } else if (!no_transfer_d && restriction == SiteRestriction::kNone) {
      // TRANSFER^D over the middleware winner; a loaded table carries no
      // order. The immediate T^M enforcer is suppressed below (rule T8).
      PhysProps inner{Site::kMiddleware, {}};
      TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                             FindBest(memo, group, inner, true, false));
      if (child != nullptr) {
        consider(MakeNode(Algorithm::kTransferD,
                          SyntheticOp(algebra::OpKind::kTransferD, g.schema),
                          Site::kDbms, {},
                          model_->TransferD(g.stats.size(), g.stats.cardinality),
                          g, {child}));
      }
    }
  }

  in_progress_.erase(progress_key);
  winners_[key] = best;
  return best;
}

Result<PhysPlanPtr> Optimizer::PlanExpr(Memo* memo, size_t group,
                                        const MExpr& e,
                                        const PhysProps& props) {
  // Degraded-mode planning: under kDbmsOnly no algorithm runs in the
  // middleware (the T^M enforcer alone satisfies the root requirement);
  // under kMiddlewareOnly the DBMS only scans base relations.
  if (options_.site_restriction == SiteRestriction::kDbmsOnly &&
      props.site == Site::kMiddleware) {
    return PhysPlanPtr(nullptr);
  }
  if (options_.site_restriction == SiteRestriction::kMiddlewareOnly &&
      props.site == Site::kDbms && e.op->kind != algebra::OpKind::kScan) {
    return PhysPlanPtr(nullptr);
  }
  const Group& g = memo->group(group);
  const auto child_stats = [&](size_t i) -> const stats::RelStats& {
    return memo->group(e.children[i]).stats;
  };

  switch (e.op->kind) {
    case algebra::OpKind::kScan: {
      if (props.site != Site::kDbms || !props.order.empty()) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kScanD, e.op, Site::kDbms, {},
                      model_->ScanD(g.stats.size()), g, {});
    }

    case algebra::OpKind::kSelect: {
      if (props.site == Site::kMiddleware) {
        PhysProps cp{Site::kMiddleware, props.order};  // filter preserves order
        TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                               FindBest(memo, e.children[0], cp, false, false));
        if (child == nullptr) return PhysPlanPtr(nullptr);
        const double coef = cost::CostModel::PredicateCoefficient(e.op->predicate);
        return MakeNode(Algorithm::kFilterM, e.op, Site::kMiddleware,
                        child->order,
                        model_->FilterM(coef, child_stats(0).size()), g,
                        {child});
      }
      if (!props.order.empty()) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr child,
          FindBest(memo, e.children[0], {Site::kDbms, {}}, false, false));
      if (child == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kSelectD, e.op, Site::kDbms, {},
                      model_->SelectD(), g, {child});
    }

    case algebra::OpKind::kProject: {
      if (props.site == Site::kMiddleware) {
        // Map the required order through the projection items to the child.
        std::vector<algebra::SortSpec> child_order;
        for (const algebra::SortSpec& s : props.order) {
          bool mapped = false;
          for (const algebra::ProjectItem& item : e.op->items) {
            if (BareName(item.name) == s.attr &&
                item.expr->kind == Expr::Kind::kColumn) {
              child_order.push_back(Spec(item.expr->name, s.ascending));
              mapped = true;
              break;
            }
          }
          if (!mapped) return PhysPlanPtr(nullptr);  // order on a computed column
        }
        PhysProps cp{Site::kMiddleware, child_order};
        TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                               FindBest(memo, e.children[0], cp, false, false));
        if (child == nullptr) return PhysPlanPtr(nullptr);
        return MakeNode(Algorithm::kProjectM, e.op, Site::kMiddleware,
                        props.order, model_->ProjectM(child_stats(0).size()),
                        g, {child});
      }
      if (!props.order.empty()) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr child,
          FindBest(memo, e.children[0], {Site::kDbms, {}}, false, false));
      if (child == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kProjectD, e.op, Site::kDbms, {},
                      model_->ProjectD(), g, {child});
    }

    case algebra::OpKind::kSort: {
      const std::vector<algebra::SortSpec> keys = NormalizeOrder(e.op->sort_keys);
      if (!OrderSatisfies(props.order, keys)) return PhysPlanPtr(nullptr);
      PhysPlanPtr best = nullptr;
      // Variant 1: actually sort (SORT^M / SORT^D) over an unordered child.
      {
        PhysProps cp{props.site, {}};
        TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                               FindBest(memo, e.children[0], cp, false, false));
        if (child != nullptr) {
          const bool mw = props.site == Site::kMiddleware;
          best = MakeNode(
              mw ? Algorithm::kSortM : Algorithm::kSortD, e.op, props.site,
              keys,
              mw ? model_->SortM(g.stats.size(), g.stats.cardinality)
                 : model_->SortD(g.stats.size(), g.stats.cardinality),
              g, {child});
        }
      }
      // Variant 2: sort elimination (rules T10/T11): the child already
      // delivers the keys.
      {
        PhysProps cp{props.site, keys};
        TANGO_ASSIGN_OR_RETURN(PhysPlanPtr child,
                               FindBest(memo, e.children[0], cp, false, false));
        if (child != nullptr && (best == nullptr || child->cost < best->cost)) {
          return child;
        }
      }
      return best;
    }

    case algebra::OpKind::kJoin:
    case algebra::OpKind::kTJoin: {
      const bool temporal = e.op->kind == algebra::OpKind::kTJoin;
      if (props.site == Site::kMiddleware) {
        std::vector<algebra::SortSpec> lorder, rorder;
        for (const auto& [l, r] : e.op->join_attrs) {
          lorder.push_back(Spec(l));
          rorder.push_back(Spec(r));
        }
        if (!OrderSatisfies(props.order, lorder)) return PhysPlanPtr(nullptr);
        TANGO_ASSIGN_OR_RETURN(
            PhysPlanPtr left,
            FindBest(memo, e.children[0], {Site::kMiddleware, lorder}, false,
                     false));
        TANGO_ASSIGN_OR_RETURN(
            PhysPlanPtr right,
            FindBest(memo, e.children[1], {Site::kMiddleware, rorder}, false,
                     false));
        if (left == nullptr || right == nullptr) return PhysPlanPtr(nullptr);
        const double self =
            temporal ? model_->TJoinM(child_stats(0).size(),
                                      child_stats(1).size(), g.stats.size())
                     : model_->MergeJoinM(child_stats(0).size(),
                                          child_stats(1).size(),
                                          g.stats.size());
        return MakeNode(temporal ? Algorithm::kTJoinM : Algorithm::kMergeJoinM,
                        e.op, Site::kMiddleware, lorder, self, g,
                        {left, right});
      }
      if (!props.order.empty()) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr left,
          FindBest(memo, e.children[0], {Site::kDbms, {}}, false, false));
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr right,
          FindBest(memo, e.children[1], {Site::kDbms, {}}, false, false));
      if (left == nullptr || right == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(temporal ? Algorithm::kTJoinD : Algorithm::kJoinD, e.op,
                      Site::kDbms, {},
                      model_->JoinD(child_stats(0).size(),
                                    child_stats(1).size(), g.stats.size()),
                      g, {left, right});
    }

    case algebra::OpKind::kTAggregate: {
      if (props.site == Site::kMiddleware) {
        std::vector<algebra::SortSpec> in_order, out_order;
        for (const std::string& gb : e.op->group_by) {
          in_order.push_back(Spec(gb));
          out_order.push_back(Spec(gb));
        }
        in_order.push_back(Spec("T1"));
        out_order.push_back(Spec("T1"));
        if (!OrderSatisfies(props.order, out_order)) return PhysPlanPtr(nullptr);
        TANGO_ASSIGN_OR_RETURN(
            PhysPlanPtr child,
            FindBest(memo, e.children[0], {Site::kMiddleware, in_order},
                     false, false));
        if (child == nullptr) return PhysPlanPtr(nullptr);
        return MakeNode(Algorithm::kTAggrM, e.op, Site::kMiddleware, out_order,
                        model_->TAggrM(child_stats(0).size(), g.stats.size()),
                        g, {child});
      }
      if (!props.order.empty()) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr child,
          FindBest(memo, e.children[0], {Site::kDbms, {}}, false, false));
      if (child == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kTAggrD, e.op, Site::kDbms, {},
                      model_->TAggrD(child_stats(0).size(), g.stats.size()), g,
                      {child});
    }

    case algebra::OpKind::kDupElim: {
      if (props.site == Site::kMiddleware) {
        const auto order = AllColumnsOrder(g.schema);
        if (!OrderSatisfies(props.order, order)) return PhysPlanPtr(nullptr);
        TANGO_ASSIGN_OR_RETURN(
            PhysPlanPtr child,
            FindBest(memo, e.children[0], {Site::kMiddleware, order}, false,
                     false));
        if (child == nullptr) return PhysPlanPtr(nullptr);
        return MakeNode(Algorithm::kDupElimM, e.op, Site::kMiddleware, order,
                        model_->DupElimM(child_stats(0).size()), g, {child});
      }
      if (!props.order.empty()) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr child,
          FindBest(memo, e.children[0], {Site::kDbms, {}}, false, false));
      if (child == nullptr) return PhysPlanPtr(nullptr);
      // Generic DISTINCT: costed like a DBMS sort.
      return MakeNode(Algorithm::kDistinctD, e.op, Site::kDbms, {},
                      model_->SortD(child_stats(0).size(),
                                    child_stats(0).cardinality),
                      g, {child});
    }

    case algebra::OpKind::kCoalesce: {
      if (props.site != Site::kMiddleware) return PhysPlanPtr(nullptr);  // middleware-only
      std::vector<algebra::SortSpec> order;
      for (const Column& c : g.schema.columns()) {
        if (c.name == "T1" || c.name == "T2") continue;
        order.push_back({c.name, true});
      }
      order.push_back({"T1", true});
      if (!OrderSatisfies(props.order, order)) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr child,
          FindBest(memo, e.children[0], {Site::kMiddleware, order}, false,
                   false));
      if (child == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kCoalesceM, e.op, Site::kMiddleware, order,
                      model_->CoalesceM(child_stats(0).size()), g, {child});
    }

    case algebra::OpKind::kDifference: {
      if (props.site != Site::kMiddleware) return PhysPlanPtr(nullptr);  // middleware-only
      const auto order = AllColumnsOrder(g.schema);
      if (!OrderSatisfies(props.order, order)) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr left,
          FindBest(memo, e.children[0], {Site::kMiddleware, order}, false,
                   false));
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr right,
          FindBest(memo, e.children[1], {Site::kMiddleware, order}, false,
                   false));
      if (left == nullptr || right == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kDiffM, e.op, Site::kMiddleware, order,
                      model_->DifferenceM(child_stats(0).size(),
                                          child_stats(1).size()),
                      g, {left, right});
    }

    case algebra::OpKind::kProduct: {
      if (props.site != Site::kDbms || !props.order.empty()) return PhysPlanPtr(nullptr);
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr left,
          FindBest(memo, e.children[0], {Site::kDbms, {}}, false, false));
      TANGO_ASSIGN_OR_RETURN(
          PhysPlanPtr right,
          FindBest(memo, e.children[1], {Site::kDbms, {}}, false, false));
      if (left == nullptr || right == nullptr) return PhysPlanPtr(nullptr);
      return MakeNode(Algorithm::kProductD, e.op, Site::kDbms, {},
                      model_->ProductD(g.stats.size()), g, {left, right});
    }

    case algebra::OpKind::kTransferM:
    case algebra::OpKind::kTransferD:
      return Status::Internal("transfers cannot appear as memo elements");
  }
  return Status::Internal("unreachable");
}

}  // namespace optimizer
}  // namespace tango
