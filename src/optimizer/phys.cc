#include "optimizer/phys.h"

#include <cstdio>

namespace tango {
namespace optimizer {

const char* SiteName(Site site) {
  return site == Site::kDbms ? "DBMS" : "MW";
}

std::string PhysProps::Key() const {
  std::string key = site == Site::kDbms ? "D|" : "M|";
  for (const algebra::SortSpec& s : order) {
    key += s.attr;
    key += s.ascending ? "+" : "-";
    key += ",";
  }
  return key;
}

bool OrderSatisfies(const std::vector<algebra::SortSpec>& required,
                    const std::vector<algebra::SortSpec>& delivered) {
  if (required.size() > delivered.size()) return false;
  for (size_t i = 0; i < required.size(); ++i) {
    if (!(required[i] == delivered[i])) return false;
  }
  return true;
}

const char* AlgorithmName(Algorithm alg) {
  switch (alg) {
    case Algorithm::kScanD: return "SCAN^D";
    case Algorithm::kSelectD: return "SELECT^D";
    case Algorithm::kProjectD: return "PROJECT^D";
    case Algorithm::kSortD: return "SORT^D";
    case Algorithm::kJoinD: return "JOIN^D";
    case Algorithm::kTJoinD: return "TJOIN^D";
    case Algorithm::kTAggrD: return "TAGGR^D";
    case Algorithm::kDistinctD: return "DISTINCT^D";
    case Algorithm::kProductD: return "PRODUCT^D";
    case Algorithm::kFilterM: return "FILTER^M";
    case Algorithm::kProjectM: return "PROJECT^M";
    case Algorithm::kSortM: return "SORT^M";
    case Algorithm::kMergeJoinM: return "MERGEJOIN^M";
    case Algorithm::kTJoinM: return "TJOIN^M";
    case Algorithm::kTAggrM: return "TAGGR^M";
    case Algorithm::kDupElimM: return "DUPELIM^M";
    case Algorithm::kCoalesceM: return "COALESCE^M";
    case Algorithm::kDiffM: return "DIFF^M";
    case Algorithm::kTransferM: return "TRANSFER^M";
    case Algorithm::kTransferD: return "TRANSFER^D";
  }
  return "?";
}

bool IsDbmsAlgorithm(Algorithm alg) {
  switch (alg) {
    case Algorithm::kScanD:
    case Algorithm::kSelectD:
    case Algorithm::kProjectD:
    case Algorithm::kSortD:
    case Algorithm::kJoinD:
    case Algorithm::kTJoinD:
    case Algorithm::kTAggrD:
    case Algorithm::kDistinctD:
    case Algorithm::kProductD:
      return true;
    default:
      return false;
  }
}

std::string PhysPlan::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += AlgorithmName(algorithm);
  // Parameters from the logical node, kind-specific.
  if (op != nullptr) {
    const std::string desc = op->Describe();
    const size_t bracket = desc.find(" [");
    if (bracket != std::string::npos) out += desc.substr(bracket);
    if (op->kind == algebra::OpKind::kScan) out += " " + op->table;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  (cost=%.0fus, rows=%.0f)", cost,
                est_cardinality);
  out += buf;
  out += "\n";
  for (const PhysPlanPtr& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace optimizer
}  // namespace tango
