#include "optimizer/memo.h"

#include <algorithm>

#include "adapt/fingerprint.h"

namespace tango {
namespace optimizer {

namespace {

/// Lightweight child stand-in exposing only a group's schema (enough for
/// factory validation and statistics derivation).
algebra::OpPtr Placeholder(size_t group_id, const Schema& schema) {
  auto op = std::make_shared<algebra::Op>();
  op->kind = algebra::OpKind::kScan;
  op->table = "$G" + std::to_string(group_id);
  op->alias = op->table;
  op->schema = schema;
  return op;
}

/// True when the conjunct matches half of the Overlaps pattern: an upper
/// bound on T1 or a lower bound on T2.
bool IsTemporalWindowConjunct(const ExprPtr& c, const Schema& schema) {
  if (c->kind != Expr::Kind::kBinary) return false;
  ExprPtr col = c->children[0];
  ExprPtr lit = c->children[1];
  BinaryOp op = c->binary_op;
  if (col->kind == Expr::Kind::kLiteral && lit->kind == Expr::Kind::kColumn) {
    std::swap(col, lit);
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  if (col->kind != Expr::Kind::kColumn || lit->kind != Expr::Kind::kLiteral) {
    return false;
  }
  auto idx = schema.IndexOf(col->table, col->name);
  if (!idx.ok()) return false;
  const std::string& name = schema.column(idx.ValueOrDie()).name;
  if (name == "T1") return op == BinaryOp::kLt || op == BinaryOp::kLe;
  if (name == "T2") return op == BinaryOp::kGt || op == BinaryOp::kGe;
  return false;
}

}  // namespace

Result<size_t> Memo::CopyIn(const algebra::OpPtr& plan,
                            const stats::RelStats& base_placeholder) {
  (void)base_placeholder;
  if (plan->kind == algebra::OpKind::kTransferM ||
      plan->kind == algebra::OpKind::kTransferD) {
    return Status::InvalidArgument(
        "transfers are physical here; strip them before CopyIn");
  }
  std::vector<size_t> children;
  for (const algebra::OpPtr& c : plan->children) {
    TANGO_ASSIGN_OR_RETURN(size_t g, CopyIn(c));
    children.push_back(g);
  }
  return Insert(plan, std::move(children), kNewGroup);
}

algebra::OpPtr Memo::MakePatternOp(const algebra::OpPtr& op,
                                   const std::vector<size_t>& children) const {
  auto pattern = std::make_shared<algebra::Op>(*op);
  pattern->children.clear();
  for (size_t g : children) {
    pattern->children.push_back(Placeholder(g, groups_[g].schema));
  }
  return pattern;
}

Result<stats::RelStats> Memo::DeriveStats(const algebra::OpPtr& op,
                                          const std::vector<size_t>& children) {
  if (op->kind == algebra::OpKind::kScan) {
    if (!scan_stats_) {
      return Status::InvalidArgument("no scan statistics provider configured");
    }
    return scan_stats_(op->table);
  }
  std::vector<const stats::RelStats*> child_stats;
  child_stats.reserve(children.size());
  for (size_t g : children) child_stats.push_back(&groups_[g].stats);
  return stats::Derive(*MakePatternOp(op, children), child_stats,
                       options_.semantic_temporal_selectivity);
}

Result<size_t> Memo::Insert(const algebra::OpPtr& op,
                            std::vector<size_t> children, size_t target) {
  std::string fingerprint = op->ParamFingerprint();
  for (size_t g : children) fingerprint += "|" + std::to_string(g);

  size_t group_id = target;
  if (target == kNewGroup) {
    const auto it = expr_index_.find(fingerprint);
    if (it != expr_index_.end()) return it->second;  // reuse existing class
    TANGO_ASSIGN_OR_RETURN(stats::RelStats stats, DeriveStats(op, children));
    Group g;
    g.schema = op->schema;
    g.stats = std::move(stats);
    std::vector<uint64_t> child_keys;
    child_keys.reserve(children.size());
    for (size_t c : children) child_keys.push_back(groups_[c].key);
    g.key = adapt::NodeKey(*op, child_keys);
    // Cardinality feedback: an observed actual for this group replaces the
    // derived estimate before any parent group derives from it (CopyIn and
    // the rules both create groups bottom-up).
    if (overrides_ != nullptr) {
      const auto ov = overrides_->find(g.key);
      if (ov != overrides_->end()) {
        g.stats.cardinality = std::max(1.0, ov->second);
      }
    }
    groups_.push_back(std::move(g));
    group_id = groups_.size() - 1;
  } else {
    // In-group dedup: do not add the same element twice.
    for (const MExpr& e : groups_[target].exprs) {
      std::string fp = e.op->ParamFingerprint();
      for (size_t g : e.children) fp += "|" + std::to_string(g);
      if (fp == fingerprint) return target;
    }
  }
  MExpr expr;
  expr.op = MakePatternOp(op, children);
  expr.children = std::move(children);
  groups_[group_id].exprs.push_back(std::move(expr));
  if (expr_index_.find(fingerprint) == expr_index_.end()) {
    expr_index_[fingerprint] = group_id;
  }
  ++generated_;
  return group_id;
}

size_t Memo::num_exprs() const {
  size_t n = 0;
  for (const Group& g : groups_) n += g.exprs.size();
  return n;
}

Result<size_t> Memo::Explore() {
  const size_t before = generated_;
  for (size_t pass = 0; pass < options_.max_passes; ++pass) {
    const size_t pass_start = generated_;
    const size_t group_count = groups_.size();
    for (size_t g = 0; g < group_count; ++g) {
      const size_t expr_count = groups_[g].exprs.size();
      for (size_t e = 0; e < expr_count; ++e) {
        TANGO_RETURN_IF_ERROR(ApplyRulesToExpr(g, e).status());
      }
    }
    if (generated_ == pass_start) break;  // saturated
  }
  return generated_ - before;
}

Result<size_t> Memo::ApplyRulesToExpr(size_t group_id, size_t expr_index) {
  // Copy: rule applications may reallocate the expr vector.
  const MExpr e = groups_[group_id].exprs[expr_index];
  size_t produced = 0;
  switch (e.op->kind) {
    case algebra::OpKind::kSelect: {
      TANGO_ASSIGN_OR_RETURN(size_t a, RuleSelectMerge(group_id, e));
      TANGO_ASSIGN_OR_RETURN(size_t b, RuleSelectPushdownJoin(group_id, e));
      TANGO_ASSIGN_OR_RETURN(size_t c, RuleSelectPushdownTAggr(group_id, e));
      TANGO_ASSIGN_OR_RETURN(size_t d, RuleSelectProjectCommute(group_id, e));
      TANGO_ASSIGN_OR_RETURN(size_t f, RuleSelectCoalesceCommute(group_id, e));
      produced = a + b + c + d + f;
      break;
    }
    case algebra::OpKind::kProject: {
      TANGO_ASSIGN_OR_RETURN(produced,
                             RuleIdentityProjectCollapse(group_id, e));
      break;
    }
    case algebra::OpKind::kJoin:
    case algebra::OpKind::kProduct: {
      TANGO_ASSIGN_OR_RETURN(produced, RuleJoinCommute(group_id, e));
      break;
    }
    default:
      break;
  }
  return produced;
}

// Heuristic group 3 (operator fusion): σ_P(σ_Q(r)) -> σ_{P AND Q}(r).
Result<size_t> Memo::RuleSelectMerge(size_t group_id, const MExpr& e) {
  const size_t before = generated_;
  const size_t child = e.children[0];
  const size_t n = groups_[child].exprs.size();
  for (size_t i = 0; i < n; ++i) {
    const MExpr f = groups_[child].exprs[i];
    if (f.op->kind != algebra::OpKind::kSelect) continue;
    const size_t grandchild = f.children[0];
    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr merged,
        algebra::Select(Placeholder(grandchild, groups_[grandchild].schema),
                        Expr::And(f.op->predicate, e.op->predicate)));
    TANGO_RETURN_IF_ERROR(Insert(merged, {grandchild}, group_id).status());
  }
  return generated_ - before;
}

// Heuristic group 4 (reduce arguments to expensive operations): push the
// movable conjuncts of a selection below a join / temporal join / product;
// window (Overlaps) conjuncts are replicated into both temporal-join inputs
// while staying on top (they reduce, not replace).
Result<size_t> Memo::RuleSelectPushdownJoin(size_t group_id, const MExpr& e) {
  const size_t before = generated_;
  const size_t child = e.children[0];
  const size_t n = groups_[child].exprs.size();
  for (size_t i = 0; i < n; ++i) {
    const MExpr f = groups_[child].exprs[i];
    const auto kind = f.op->kind;
    if (kind != algebra::OpKind::kJoin && kind != algebra::OpKind::kTJoin &&
        kind != algebra::OpKind::kProduct) {
      continue;
    }
    const size_t lg = f.children[0];
    const size_t rg = f.children[1];
    const Schema& ls = groups_[lg].schema;
    const Schema& rs = groups_[rg].schema;

    std::vector<ExprPtr> keep, to_left, to_right, replicate;
    for (const ExprPtr& c : SplitConjuncts(e.op->predicate)) {
      const bool temporal_window =
          kind == algebra::OpKind::kTJoin &&
          IsTemporalWindowConjunct(c, e.op->schema);
      if (temporal_window) {
        // The output period is the intersection; surviving result tuples
        // come only from inputs overlapping the window, so the window
        // conjunct is replicated below and kept on top.
        keep.push_back(c);
        replicate.push_back(c);
        continue;
      }
      const bool in_left = ColumnsResolveIn(c, ls);
      const bool in_right = ColumnsResolveIn(c, rs);
      if (in_left && !in_right) {
        to_left.push_back(c);
      } else if (in_right && !in_left) {
        to_right.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (to_left.empty() && to_right.empty() && replicate.empty()) continue;

    // A group already filtered by the same predicate is not re-filtered
    // (prevents replication loops).
    auto filtered_group = [&](size_t g, std::vector<ExprPtr> conjuncts)
        -> Result<size_t> {
      if (conjuncts.empty()) return g;
      const ExprPtr pred = Expr::AndAll(conjuncts);
      for (const MExpr& existing : groups_[g].exprs) {
        if (existing.op->kind == algebra::OpKind::kSelect &&
            existing.op->predicate->Equals(*pred)) {
          return g;  // already pushed; avoid stacking the same filter
        }
      }
      TANGO_ASSIGN_OR_RETURN(
          algebra::OpPtr sel,
          algebra::Select(Placeholder(g, groups_[g].schema), pred));
      return Insert(sel, {g}, kNewGroup);
    };

    std::vector<ExprPtr> left_conj = to_left;
    std::vector<ExprPtr> right_conj = to_right;
    for (const ExprPtr& c : replicate) {
      // Window conjuncts reference the output T1/T2, which exist in both
      // inputs under the same names.
      if (ColumnsResolveIn(c, ls)) left_conj.push_back(c);
      if (ColumnsResolveIn(c, rs)) right_conj.push_back(c);
    }
    TANGO_ASSIGN_OR_RETURN(size_t new_left, filtered_group(lg, left_conj));
    TANGO_ASSIGN_OR_RETURN(size_t new_right, filtered_group(rg, right_conj));
    if (new_left == lg && new_right == rg) continue;

    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr join,
        algebra::WithChildren(
            *f.op, {Placeholder(new_left, groups_[new_left].schema),
                    Placeholder(new_right, groups_[new_right].schema)}));
    if (keep.empty()) {
      TANGO_RETURN_IF_ERROR(
          Insert(join, {new_left, new_right}, group_id).status());
    } else {
      TANGO_ASSIGN_OR_RETURN(size_t join_group,
                             Insert(join, {new_left, new_right}, kNewGroup));
      TANGO_ASSIGN_OR_RETURN(
          algebra::OpPtr sel,
          algebra::Select(Placeholder(join_group, groups_[join_group].schema),
                          Expr::AndAll(keep)));
      TANGO_RETURN_IF_ERROR(Insert(sel, {join_group}, group_id).status());
    }
  }
  return generated_ - before;
}

// Selection vs temporal aggregation: group-attribute conjuncts commute
// below ξ^T; window conjuncts are replicated below (reducing the argument —
// the difference between the paper's Query 2 Plans 1 and 5).
Result<size_t> Memo::RuleSelectPushdownTAggr(size_t group_id, const MExpr& e) {
  const size_t before = generated_;
  const size_t child = e.children[0];
  const size_t n = groups_[child].exprs.size();
  for (size_t i = 0; i < n; ++i) {
    const MExpr f = groups_[child].exprs[i];
    if (f.op->kind != algebra::OpKind::kTAggregate) continue;
    const size_t arg = f.children[0];
    const Schema& as = groups_[arg].schema;

    std::vector<ExprPtr> keep, move_down, replicate;
    for (const ExprPtr& c : SplitConjuncts(e.op->predicate)) {
      if (IsTemporalWindowConjunct(c, e.op->schema)) {
        keep.push_back(c);
        replicate.push_back(c);
        continue;
      }
      // Group-attribute conjuncts commute with the aggregation.
      std::vector<std::string> cols;
      CollectColumns(c, &cols);
      bool group_only = !cols.empty();
      for (const std::string& col : cols) {
        bool is_group = false;
        for (const std::string& g : f.op->group_by) {
          auto gi = as.IndexOf(g);
          auto ci = e.op->schema.IndexOf(col);
          if (gi.ok() && ci.ok() &&
              as.column(gi.ValueOrDie()).name ==
                  e.op->schema.column(ci.ValueOrDie()).name) {
            is_group = true;
            break;
          }
        }
        if (!is_group) {
          group_only = false;
          break;
        }
      }
      if (group_only) {
        move_down.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (move_down.empty() && replicate.empty()) continue;

    std::vector<ExprPtr> below = move_down;
    for (const ExprPtr& c : replicate) {
      if (ColumnsResolveIn(c, as)) below.push_back(c);
    }
    if (below.empty()) continue;
    const ExprPtr below_pred = Expr::AndAll(below);
    bool already = false;
    for (const MExpr& existing : groups_[arg].exprs) {
      if (existing.op->kind == algebra::OpKind::kSelect &&
          existing.op->predicate->Equals(*below_pred)) {
        already = true;
        break;
      }
    }
    if (already) continue;

    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr sel,
        algebra::Select(Placeholder(arg, as), below_pred));
    TANGO_ASSIGN_OR_RETURN(size_t sel_group, Insert(sel, {arg}, kNewGroup));
    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr agg,
        algebra::WithChildren(
            *f.op, {Placeholder(sel_group, groups_[sel_group].schema)}));
    if (keep.empty()) {
      TANGO_RETURN_IF_ERROR(Insert(agg, {sel_group}, group_id).status());
    } else {
      TANGO_ASSIGN_OR_RETURN(size_t agg_group,
                             Insert(agg, {sel_group}, kNewGroup));
      TANGO_ASSIGN_OR_RETURN(
          algebra::OpPtr top,
          algebra::Select(Placeholder(agg_group, groups_[agg_group].schema),
                          Expr::AndAll(keep)));
      TANGO_RETURN_IF_ERROR(Insert(top, {agg_group}, group_id).status());
    }
  }
  return generated_ - before;
}

// Rule E1 (left-to-right): σ_P(π(r)) -> π(σ_P'(r)) when every column P
// references is a plain pass-through of the projection.
Result<size_t> Memo::RuleSelectProjectCommute(size_t group_id, const MExpr& e) {
  const size_t before = generated_;
  const size_t child = e.children[0];
  const size_t n = groups_[child].exprs.size();
  for (size_t i = 0; i < n; ++i) {
    const MExpr f = groups_[child].exprs[i];
    if (f.op->kind != algebra::OpKind::kProject) continue;
    const size_t arg = f.children[0];
    const Schema& as = groups_[arg].schema;

    // Rewrite P's columns through the projection items.
    std::function<ExprPtr(const ExprPtr&)> rewrite =
        [&](const ExprPtr& x) -> ExprPtr {
      if (x == nullptr) return nullptr;
      if (x->kind == Expr::Kind::kColumn) {
        for (const algebra::ProjectItem& item : f.op->items) {
          if (item.name == x->name &&
              item.expr->kind == Expr::Kind::kColumn) {
            return Expr::Column(item.expr->table, item.expr->name);
          }
        }
        return nullptr;  // not a pass-through
      }
      auto copy = std::make_shared<Expr>(*x);
      copy->children.clear();
      for (const ExprPtr& c : x->children) {
        ExprPtr r = rewrite(c);
        if (r == nullptr) return nullptr;
        copy->children.push_back(std::move(r));
      }
      return copy;
    };
    const ExprPtr rewritten = rewrite(e.op->predicate);
    if (rewritten == nullptr) continue;
    if (!ColumnsResolveIn(rewritten, as)) continue;

    TANGO_ASSIGN_OR_RETURN(algebra::OpPtr sel,
                           algebra::Select(Placeholder(arg, as), rewritten));
    TANGO_ASSIGN_OR_RETURN(size_t sel_group, Insert(sel, {arg}, kNewGroup));
    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr proj,
        algebra::WithChildren(
            *f.op, {Placeholder(sel_group, groups_[sel_group].schema)}));
    TANGO_RETURN_IF_ERROR(Insert(proj, {sel_group}, group_id).status());
  }
  return generated_ - before;
}

// Vassilakis's coalesce/selection scheme (the paper's §6: "when introducing
// coalescing to our framework, this scheme can be adopted in the form of
// transformation rules"): a selection on non-period attributes commutes
// below coalescing — value-equivalent tuples either all pass or all fail,
// so filtering first shrinks the coalescing input. Period predicates do NOT
// commute (coalescing changes T1/T2) and are left in place.
Result<size_t> Memo::RuleSelectCoalesceCommute(size_t group_id,
                                               const MExpr& e) {
  const size_t before = generated_;
  const size_t child = e.children[0];
  const size_t n = groups_[child].exprs.size();
  for (size_t i = 0; i < n; ++i) {
    const MExpr f = groups_[child].exprs[i];
    if (f.op->kind != algebra::OpKind::kCoalesce) continue;
    std::vector<std::string> cols;
    CollectColumns(e.op->predicate, &cols);
    bool period_free = true;
    for (const std::string& col : cols) {
      const size_t dot = col.rfind('.');
      const std::string bare = dot == std::string::npos ? col
                                                        : col.substr(dot + 1);
      if (bare == "T1" || bare == "T2") {
        period_free = false;
        break;
      }
    }
    if (!period_free) continue;
    const size_t arg = f.children[0];
    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr sel,
        algebra::Select(Placeholder(arg, groups_[arg].schema),
                        e.op->predicate));
    TANGO_ASSIGN_OR_RETURN(size_t sel_group, Insert(sel, {arg}, kNewGroup));
    TANGO_ASSIGN_OR_RETURN(
        algebra::OpPtr coal,
        algebra::Coalesce(Placeholder(sel_group, groups_[sel_group].schema)));
    TANGO_RETURN_IF_ERROR(Insert(coal, {sel_group}, group_id).status());
  }
  return generated_ - before;
}

// Rule T9: a projection on all attributes (identity) is redundant; the
// child's expressions join this class.
Result<size_t> Memo::RuleIdentityProjectCollapse(size_t group_id,
                                                 const MExpr& e) {
  const size_t before = generated_;
  const size_t child = e.children[0];
  const Schema& cs = groups_[child].schema;
  if (e.op->items.size() != cs.num_columns()) return 0;
  for (size_t i = 0; i < e.op->items.size(); ++i) {
    const algebra::ProjectItem& item = e.op->items[i];
    if (item.expr->kind != Expr::Kind::kColumn) return 0;
    if (item.name != cs.column(i).name) return 0;
    // The reference must resolve to position i — a projection that merely
    // carries the same *names* in a different column order is a reorder,
    // not an identity (e.g. the restoring projection of rule E2).
    auto idx = cs.IndexOf(item.expr->table, item.expr->name);
    if (!idx.ok() || idx.ValueOrDie() != i) return 0;
  }
  // Adopt the child's expressions (approximate group merge).
  const size_t n = groups_[child].exprs.size();
  for (size_t i = 0; i < n; ++i) {
    const MExpr f = groups_[child].exprs[i];
    TANGO_RETURN_IF_ERROR(Insert(f.op, f.children, group_id).status());
  }
  return generated_ - before;
}

// Rule E2 (commutativity) for equijoins and products, with a restoring
// projection so the positional output schema is preserved.
Result<size_t> Memo::RuleJoinCommute(size_t group_id, const MExpr& e) {
  const size_t before = generated_;
  const size_t lg = e.children[0];
  const size_t rg = e.children[1];
  // Apply commutativity only once per join: re-commuting the product would
  // create mutually-referencing projection classes.
  {
    std::string fp = e.op->ParamFingerprint();
    for (size_t g : e.children) fp += "|" + std::to_string(g);
    if (commute_products_.count(fp) != 0) return 0;
  }
  std::vector<std::pair<std::string, std::string>> swapped;
  for (const auto& [l, r] : e.op->join_attrs) swapped.emplace_back(r, l);

  Result<algebra::OpPtr> commuted =
      e.op->kind == algebra::OpKind::kJoin
          ? algebra::Join(Placeholder(rg, groups_[rg].schema),
                          Placeholder(lg, groups_[lg].schema), swapped)
          : algebra::Product(Placeholder(rg, groups_[rg].schema),
                             Placeholder(lg, groups_[lg].schema));
  if (!commuted.ok()) return generated_ - before;
  {
    std::string fp = commuted.ValueOrDie()->ParamFingerprint();
    fp += "|" + std::to_string(rg) + "|" + std::to_string(lg);
    commute_products_.insert(fp);
  }
  TANGO_ASSIGN_OR_RETURN(size_t cg,
                         Insert(commuted.ValueOrDie(), {rg, lg}, kNewGroup));

  // π restoring the original column order (left columns first again).
  std::vector<algebra::ProjectItem> items;
  const Schema& out = e.op->schema;
  const Schema& cs = groups_[cg].schema;
  const size_t right_cols = groups_[rg].schema.num_columns();
  for (size_t i = 0; i < out.num_columns(); ++i) {
    // Column i of the original output lives at position
    // (i + right_cols) % total in the commuted output.
    const size_t j = (i + right_cols) % cs.num_columns();
    items.push_back({Expr::Column(cs.column(j).table, cs.column(j).name),
                     out.column(i).name});
  }
  auto proj = algebra::Project(Placeholder(cg, cs), items);
  if (!proj.ok()) return generated_ - before;
  TANGO_RETURN_IF_ERROR(Insert(proj.ValueOrDie(), {cg}, group_id).status());
  return generated_ - before;
}

std::string Memo::ToString() const {
  std::string out;
  for (size_t g = 0; g < groups_.size(); ++g) {
    out += "class " + std::to_string(g) + " " + groups_[g].schema.ToString() +
           "\n";
    for (const MExpr& e : groups_[g].exprs) {
      out += "  " + e.op->Describe() + " (";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(e.children[i]);
      }
      out += ")\n";
    }
  }
  return out;
}

}  // namespace optimizer
}  // namespace tango
