#ifndef TANGO_OBS_METRICS_H_
#define TANGO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tango {
namespace obs {

/// \brief Monotone event counter (thread-safe, relaxed atomics).
///
/// Instances are created by (and owned by) a MetricsRegistry; their
/// addresses are stable for the registry's lifetime, so hot paths hold a
/// `Counter*` and never touch the registry map again.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  Counter& operator++() {
    Increment();
    return *this;
  }
  uint64_t load() const { return value_.load(std::memory_order_relaxed); }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (queue depths, in-flight queries).
///
/// A gauge registered with `expect_zero_at_exit` asserts a balance
/// invariant: every Increment must be matched by a Decrement before the
/// registry dies, otherwise the registry reports a leak warning (check.sh
/// fails the build on those).
class Gauge {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t load() const { return value_.load(std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-memory distribution: 64 base-2 log buckets over
/// [1e-9, ~9.2e9) plus exact count/sum/min/max.
///
/// Record is lock-free (CAS loops for the floating-point aggregates), so
/// pool workers and prefetch threads can record concurrently. Quantiles
/// come from the bucket upper bounds clamped into [min, max] — they always
/// bracket the recorded values and are monotone in q.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  double min() const;
  double max() const;
  double Mean() const;
  /// Value at quantile `q` in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  static size_t BucketOf(double value);
  static double BucketUpper(size_t bucket);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

/// \brief Thread-safe name -> instrument registry; the middleware's
/// observability backbone.
///
/// Instruments are created on first lookup and live as long as the
/// registry; lookups after creation return the same address, so callers
/// cache pointers. `Global()` is the process-wide instance (long-lived
/// services share it); each Middleware defaults to a private registry so
/// tests and embedded uses see isolated numbers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  /// Reports leak warnings (see LeakWarnings) on stderr.
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  /// `expect_zero_at_exit` marks a balance invariant; once set for a name
  /// it sticks.
  Gauge& gauge(const std::string& name, bool expect_zero_at_exit = false);
  Histogram& histogram(const std::string& name);

  /// One line per instrument, sorted by name:
  ///   counter wire.statements 42
  ///   gauge pool.queue_depth 0
  ///   histogram query.latency_seconds count=3 sum=... p50=... p95=... ...
  std::string DumpText() const;

  /// "metrics-registry leak: ..." messages for every expect-zero gauge that
  /// is not zero. Empty means all balance invariants hold.
  std::vector<std::string> LeakWarnings() const;

  /// Process-wide registry (never destroyed before exit).
  static MetricsRegistry& Global();

 private:
  struct GaugeEntry {
    std::unique_ptr<Gauge> gauge;
    bool expect_zero = false;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace tango

#endif  // TANGO_OBS_METRICS_H_
