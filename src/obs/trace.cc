#include "obs/trace.h"

#include <cstdio>

namespace tango {
namespace obs {

namespace {

/// Minimal JSON string escaping (names are plain ASCII operator labels, but
/// the exporter must never emit a malformed document).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t TraceRecorder::ThreadIdLocked() {
  const std::thread::id tid = std::this_thread::get_id();
  const auto it = thread_ids_.find(tid);
  if (it != thread_ids_.end()) return it->second;
  const uint64_t id = thread_ids_.size();
  thread_ids_[tid] = id;
  return id;
}

SpanId TraceRecorder::Allocate(std::string name, std::string category,
                               SpanId parent, int64_t plan_node) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.plan_node = plan_node;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::Begin(SpanId id) {
  // NowUs before the lock: a contended mutex must not inflate the span.
  const int64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kNoSpan || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.start_us >= 0) return;
  span.start_us = now;
  span.thread_id = ThreadIdLocked();
}

void TraceRecorder::End(SpanId id) {
  const int64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kNoSpan || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.start_us < 0 || span.end_us >= 0) return;
  span.end_us = now;
}

SpanId TraceRecorder::StartSpan(std::string name, std::string category,
                                SpanId parent, int64_t plan_node) {
  const SpanId id =
      Allocate(std::move(name), std::move(category), parent, plan_node);
  Begin(id);
  return id;
}

void TraceRecorder::SetParent(SpanId id, SpanId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kNoSpan || id > spans_.size()) return;
  spans_[id - 1].parent = parent;
}

std::vector<Span> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<Span> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const Span& s : spans) {
    if (!s.completed()) continue;  // never begun (e.g. EXPLAIN) or still open
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"cat\":\"" +
           JsonEscape(s.category) + "\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%llu",
                  static_cast<long long>(s.start_us),
                  static_cast<long long>(s.end_us - s.start_us),
                  static_cast<unsigned long long>(s.thread_id));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"span_id\":%llu,\"parent\":%llu,"
                  "\"plan_node\":%lld}}",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<long long>(s.plan_node));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace tango
