#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace tango {
namespace obs {

namespace {

/// Lower edge of bucket 0; every bucket spans a factor of 2 above it.
constexpr double kFirstUpper = 1e-9;

/// fetch_add / fetch_min / fetch_max for atomic<double> via CAS (portable
/// across toolchains that lack C++20 floating-point fetch_add).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketOf(double value) {
  if (!(value > kFirstUpper)) return 0;
  const double b = std::ceil(std::log2(value / kFirstUpper));
  if (b >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(b);
}

double Histogram::BucketUpper(size_t bucket) {
  return kFirstUpper * std::pow(2.0, static_cast<double>(bucket));
}

void Histogram::Record(double value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  const uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  if (before == 0) {
    // First sample: seed min/max so the CAS loops compare against a real
    // value, not the 0 placeholder. A concurrent first Record still
    // converges — both threads run the min/max CAS below.
    double zero = 0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(total);
  const double lo = min();
  const double hi = max();
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) >= target) {
      // Clamp the bucket's upper edge into the observed range so quantiles
      // always bracket real values (and q=0 / q=1 hit min / max exactly).
      double v = BucketUpper(i);
      if (v < lo) v = lo;
      if (v > hi) v = hi;
      return v;
    }
  }
  return hi;
}

MetricsRegistry::~MetricsRegistry() {
  for (const std::string& warning : LeakWarnings()) {
    std::fprintf(stderr, "%s\n", warning.c_str());
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              bool expect_zero_at_exit) {
  std::lock_guard<std::mutex> lock(mu_);
  GaugeEntry& entry = gauges_[name];
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  entry.expect_zero = entry.expect_zero || expect_zero_at_exit;
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->load()));
    out += line;
  }
  for (const auto& [name, e] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld\n", name.c_str(),
                  static_cast<long long>(e.gauge->load()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu sum=%.6g min=%.6g max=%.6g "
                  "p50=%.6g p95=%.6g p99=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->sum(), h->min(), h->max(), h->Quantile(0.5),
                  h->Quantile(0.95), h->Quantile(0.99));
    out += line;
  }
  return out;
}

std::vector<std::string> MetricsRegistry::LeakWarnings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> warnings;
  for (const auto& [name, e] : gauges_) {
    if (!e.expect_zero) continue;
    const int64_t v = e.gauge->load();
    if (v != 0) {
      warnings.push_back("metrics-registry leak: gauge " + name + " = " +
                         std::to_string(v) + " at registry destruction");
    }
  }
  return warnings;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: worker threads of detached embedders may record at
  // static-destruction time; the global registry therefore never dies (its
  // leak warnings are only meaningful for per-middleware registries).
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace obs
}  // namespace tango
