#ifndef TANGO_OBS_TRACE_H_
#define TANGO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tango {
namespace obs {

/// 1-based handle into a TraceRecorder; 0 means "no span" everywhere, so a
/// default-constructed id is always safe to End or parent to.
using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// \brief One timed interval of a query's life.
///
/// Spans form a tree via `parent`; `plan_node` attributes operator spans to
/// their timing-sink entry (and thereby the physical plan node), and
/// `thread_id` is a small per-recorder id (0, 1, 2, ...) identifying which
/// thread ran the interval — the prefetch producer and pool workers get
/// their own ids.
struct Span {
  std::string name;
  std::string category;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  int64_t plan_node = -1;
  uint64_t thread_id = 0;
  /// Microseconds since the recorder's epoch; -1 = never begun / still open.
  int64_t start_us = -1;
  int64_t end_us = -1;

  bool completed() const { return start_us >= 0 && end_us >= start_us; }
};

/// \brief Lightweight span recorder for one or more query executions.
///
/// Allocation is separate from Begin because the plan compiler allocates
/// the operator spans (and fixes up their parent links) before anything
/// runs; Begin stamps the start time and the calling thread when the
/// operator's Init actually fires — possibly on a prefetch thread. All
/// methods are thread-safe; ids stay valid for the recorder's lifetime.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(Clock::now()) {}

  /// Creates a span without timing it yet.
  SpanId Allocate(std::string name, std::string category,
                  SpanId parent = kNoSpan, int64_t plan_node = -1);
  /// Stamps the start time + thread id (first call wins; kNoSpan ignored).
  void Begin(SpanId id);
  /// Stamps the end time (first call wins; kNoSpan and un-begun ignored).
  void End(SpanId id);
  /// Allocate + Begin.
  SpanId StartSpan(std::string name, std::string category,
                   SpanId parent = kNoSpan, int64_t plan_node = -1);
  void SetParent(SpanId id, SpanId parent);

  std::vector<Span> Snapshot() const;

  /// Chrome trace_event JSON (the chrome://tracing / Perfetto "JSON Array
  /// Format" with complete "X" events); open spans are omitted.
  std::string ToChromeJson() const;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }
  /// Small stable id of the calling thread; requires mu_ held.
  uint64_t ThreadIdLocked();

  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::map<std::thread::id, uint64_t> thread_ids_;
};

/// \brief RAII Begin/End; null-recorder safe (all no-ops), so call sites
/// can trace unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name, const char* category,
             SpanId parent = kNoSpan, int64_t plan_node = -1)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      id_ = recorder_->StartSpan(name, category, parent, plan_node);
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// kNoSpan when tracing is off — safe to pass as a parent.
  SpanId id() const { return id_; }

 private:
  TraceRecorder* recorder_;
  SpanId id_ = kNoSpan;
};

}  // namespace obs
}  // namespace tango

#endif  // TANGO_OBS_TRACE_H_
