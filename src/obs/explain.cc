#include "obs/explain.h"

#include <cmath>
#include <cstdio>

namespace tango {
namespace obs {

namespace {

std::string FormatSeconds(double seconds) {
  char buf[48];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

std::string FormatRows(double rows) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(std::llround(rows)));
  return buf;
}

void RenderOp(const AnalyzeReport& report, size_t id, int depth,
              std::string* out) {
  if (id >= report.ops.size()) return;
  const OpObservation& op = report.ops[id];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.label;
  *out += " [";
  *out += op.site;
  *out += "]";

  // TRANSFER^D delivers its rows INTO the DBMS during Init and produces no
  // cursor output, so "actual rows" is not an output cardinality here.
  const bool loads_only = op.label == "TRANSFER^D";
  char buf[160];
  if (loads_only) {
    std::snprintf(buf, sizeof(buf), " rows est=%s act=- q=- batches=-",
                  FormatRows(op.est_rows).c_str());
  } else {
    std::snprintf(buf, sizeof(buf), " rows est=%s act=%llu q=%.2f batches=%llu",
                  FormatRows(op.est_rows).c_str(),
                  static_cast<unsigned long long>(op.act_rows),
                  QError(op.est_rows, static_cast<double>(op.act_rows)),
                  static_cast<unsigned long long>(op.act_batches));
  }
  *out += buf;

  std::snprintf(buf, sizeof(buf), " cost=%.0fus self=%s incl=%s work=%s",
                op.est_cost_us, FormatSeconds(op.self_seconds).c_str(),
                FormatSeconds(op.inclusive_seconds).c_str(),
                FormatSeconds(op.worker_seconds).c_str());
  *out += buf;
  *out += "\n";

  for (size_t child : op.children) {
    RenderOp(report, child, depth + 1, out);
  }
}

}  // namespace

double QError(double estimated, double actual) {
  const double est = estimated < 1 ? 1 : estimated;
  const double act = actual < 1 ? 1 : actual;
  return est > act ? est / act : act / est;
}

std::string RenderAnalyzeTree(const AnalyzeReport& report) {
  std::string out;
  RenderOp(report, report.root, 0, &out);
  return out;
}

}  // namespace obs
}  // namespace tango
