#ifndef TANGO_OBS_EXPLAIN_H_
#define TANGO_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tango {
namespace obs {

/// \brief Per-operator estimate-vs-actual record of one executed plan.
///
/// One observation per executed cursor (middleware algorithms and the two
/// transfers; the DBMS fragment below a TRANSFER^M executes inside the DBMS
/// and is summarized by the transfer's SQL). Indexed by the timing-sink id,
/// so the tree structure in `children` matches the instrumented cursor
/// tree.
struct OpObservation {
  std::string label;  // algorithm name, e.g. "TAGGR^M"
  char site = 'M';    // 'M' middleware, 'D' DBMS
  size_t timing_id = 0;
  std::vector<size_t> children;  // timing ids of wrapped children

  /// Optimizer-side estimates for this plan node.
  double est_rows = 0;
  double est_bytes = 0;
  double est_cost_us = 0;  // inclusive (subtree) cost estimate

  /// Measured by the instrumented execution.
  uint64_t act_rows = 0;
  /// Non-empty RowBlocks the operator produced (vectorized path); 0 when it
  /// was drained tuple-at-a-time.
  uint64_t act_batches = 0;
  double inclusive_seconds = 0;
  double self_seconds = 0;  // inclusive minus children (clamped at >= 0)
  double worker_seconds = 0;

  /// The SELECT a TRANSFER^M issued (empty for other operators).
  std::string sql;
};

/// \brief EXPLAIN ANALYZE payload: the observation tree plus query totals.
struct AnalyzeReport {
  std::vector<OpObservation> ops;  // indexed by timing id
  size_t root = 0;                 // timing id of the plan root
  double elapsed_seconds = 0;
  uint64_t result_rows = 0;
};

/// Cardinality-estimation error: max(est, act) / min(est, act), with both
/// sides floored at one row so empty results and zero estimates stay
/// finite. Always >= 1; 1 is a perfect estimate.
double QError(double estimated, double actual);

/// Human-readable per-operator tree:
///   TAGGR^M [M] rows est=6 act=34 q=5.67 cost=1234us self=0.2ms incl=1.1ms work=0us
/// Children are indented under their parents, root first. TRANSFER^D
/// produces no tuples (it loads them into the DBMS), so its actual-rows and
/// Q-error columns render as "-".
std::string RenderAnalyzeTree(const AnalyzeReport& report);

}  // namespace obs
}  // namespace tango

#endif  // TANGO_OBS_EXPLAIN_H_
