#ifndef TANGO_TSQL_TSQL_H_
#define TANGO_TSQL_TSQL_H_

#include <functional>
#include <string>

#include "algebra/algebra.h"
#include "common/status.h"

namespace tango {
namespace tsql {

/// \brief Parser for TANGO's temporal SQL dialect, producing the initial
/// query plan of Figure 4(a): an all-DBMS algebra tree with a single T^M on
/// top.
///
/// Dialect (documented in README.md):
///
///     [TEMPORAL] SELECT items
///     FROM ref [alias] (, ref [alias])*
///     [WHERE predicate]
///     [GROUP BY cols OVER TIME]
///     [ORDER BY cols [ASC|DESC]]
///
/// * With the TEMPORAL prefix, equality conjuncts between two FROM entries
///   become *temporal joins* (periods must overlap; the result carries the
///   intersected T1/T2). Without it, they are regular equijoins.
/// * `GROUP BY cols OVER TIME` is temporal aggregation ξ^T: aggregates in
///   the select list are computed over the constant periods of each group.
/// * `OVERLAPS PERIOD (a, b)` in WHERE desugars to `T1 < b AND T2 > a`
///   (closed-open periods); `CONTAINS a` desugars to `T1 <= a AND T2 > a`
///   (the timeslice of §3.3).
/// * Subqueries in FROM may themselves be [TEMPORAL] SELECTs.
class Parser {
 public:
  /// Supplies base-relation schemas (the middleware fetches them from the
  /// DBMS catalog over the connection).
  using SchemaProvider = std::function<Result<Schema>(const std::string&)>;

  /// Parses `text` into an initial logical plan (top operator: T^M).
  static Result<algebra::OpPtr> Parse(const std::string& text,
                                      const SchemaProvider& provider);
};

}  // namespace tsql
}  // namespace tango

#endif  // TANGO_TSQL_TSQL_H_
