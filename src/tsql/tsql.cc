#include "tsql/tsql.h"

#include <memory>
#include <vector>

#include "sql/parser.h"

namespace tango {
namespace tsql {

namespace {

using sql::TokenStream;
using sql::TokenType;

struct Item {
  ExprPtr expr;       // null for star
  std::string alias;  // may be empty
  bool star = false;
};

struct Ref {
  std::string table;
  std::string alias;  // range variable (defaults to table name)
  std::shared_ptr<struct Query> subquery;
};

struct OrderItem {
  std::string attr;
  bool ascending = true;
};

struct Query {
  bool temporal = false;
  bool distinct = false;   // duplicate elimination (rdup)
  bool coalesce = false;   // merge value-equivalent adjacent periods (coal)
  std::vector<Item> items;
  std::vector<Ref> refs;
  ExprPtr where;
  std::vector<std::string> group_by;
  bool over_time = false;
  std::vector<OrderItem> order_by;
};

// ---------------------------------------------------------------- parsing

Result<std::shared_ptr<Query>> ParseQuery(TokenStream* ts);

/// Predicate atom: OVERLAPS PERIOD (a, b), CONTAINS (a), NOT atom, or a
/// plain SQL comparison.
Result<ExprPtr> ParsePredAtom(TokenStream* ts) {
  if (ts->AcceptKeyword("NOT")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr inner, ParsePredAtom(ts));
    return Expr::Unary(UnaryOp::kNot, std::move(inner));
  }
  if (ts->AcceptKeyword("OVERLAPS")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("PERIOD"));
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
    TANGO_ASSIGN_OR_RETURN(ExprPtr a, sql::Parser::ParseExpression(ts));
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(","));
    TANGO_ASSIGN_OR_RETURN(ExprPtr b, sql::Parser::ParseExpression(ts));
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
    // Overlaps(a, b) over closed-open periods: T1 < b AND T2 > a (§3.3).
    return Expr::And(
        Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("T1"), std::move(b)),
        Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("T2"), std::move(a)));
  }
  if (ts->AcceptKeyword("CONTAINS")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol("("));
    TANGO_ASSIGN_OR_RETURN(ExprPtr a, sql::Parser::ParseExpression(ts));
    TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
    // Timeslice: T1 <= a AND T2 > a.
    return Expr::And(
        Expr::Binary(BinaryOp::kLe, Expr::ColumnRef("T1"), a),
        Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("T2"), a));
  }
  return sql::Parser::ParseComparison(ts);
}

Result<ExprPtr> ParsePredAnd(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePredAtom(ts));
  while (ts->AcceptKeyword("AND")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePredAtom(ts));
    lhs = Expr::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParsePredOr(TokenStream* ts) {
  TANGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePredAnd(ts));
  while (ts->AcceptKeyword("OR")) {
    TANGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePredAnd(ts));
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::shared_ptr<Query>> ParseQuery(TokenStream* ts) {
  auto q = std::make_shared<Query>();
  q->temporal = ts->AcceptKeyword("TEMPORAL");
  TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("SELECT"));
  if (ts->AcceptKeyword("DISTINCT")) q->distinct = true;
  if (ts->AcceptKeyword("COALESCE")) q->coalesce = true;

  do {
    Item item;
    if (ts->AcceptSymbol("*")) {
      item.star = true;
    } else {
      TANGO_ASSIGN_OR_RETURN(item.expr, sql::Parser::ParseExpression(ts));
      if (ts->AcceptKeyword("AS")) {
        TANGO_ASSIGN_OR_RETURN(item.alias, ts->ExpectIdentifier());
      } else if (ts->Peek().type == TokenType::kIdentifier) {
        item.alias = ts->Next().text;
      }
    }
    q->items.push_back(std::move(item));
  } while (ts->AcceptSymbol(","));

  TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("FROM"));
  do {
    Ref ref;
    if (ts->AcceptSymbol("(")) {
      TANGO_ASSIGN_OR_RETURN(ref.subquery, ParseQuery(ts));
      TANGO_RETURN_IF_ERROR(ts->ExpectSymbol(")"));
      if (ts->AcceptKeyword("AS")) {
        TANGO_ASSIGN_OR_RETURN(ref.alias, ts->ExpectIdentifier());
      } else if (ts->Peek().type == TokenType::kIdentifier) {
        ref.alias = ts->Next().text;
      } else {
        return ts->ErrorHere("subquery in FROM requires an alias");
      }
    } else {
      TANGO_ASSIGN_OR_RETURN(ref.table, ts->ExpectIdentifier());
      if (ts->AcceptKeyword("AS")) {
        TANGO_ASSIGN_OR_RETURN(ref.alias, ts->ExpectIdentifier());
      } else if (ts->Peek().type == TokenType::kIdentifier) {
        ref.alias = ts->Next().text;
      } else {
        ref.alias = ref.table;
      }
    }
    q->refs.push_back(std::move(ref));
  } while (ts->AcceptSymbol(","));

  if (ts->AcceptKeyword("WHERE")) {
    TANGO_ASSIGN_OR_RETURN(q->where, ParsePredOr(ts));
  }
  if (ts->AcceptKeyword("GROUP")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("BY"));
    do {
      const sql::Token& t = ts->Peek();
      if (t.type != TokenType::kIdentifier) {
        return ts->ErrorHere("expected a grouping column");
      }
      std::string col = ts->Next().text;
      if (ts->AcceptSymbol(".")) {
        TANGO_ASSIGN_OR_RETURN(std::string name, ts->ExpectIdentifier());
        col += "." + name;
      }
      q->group_by.push_back(col);
    } while (ts->AcceptSymbol(","));
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("OVER"));
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("TIME"));
    q->over_time = true;
  }
  if (ts->AcceptKeyword("ORDER")) {
    TANGO_RETURN_IF_ERROR(ts->ExpectKeyword("BY"));
    do {
      const sql::Token& t = ts->Peek();
      if (t.type != TokenType::kIdentifier && t.text != "T1" &&
          t.text != "T2") {
        return ts->ErrorHere("expected an ORDER BY column");
      }
      std::string col = ts->Next().text;
      if (ts->AcceptSymbol(".")) {
        TANGO_ASSIGN_OR_RETURN(std::string name, ts->ExpectIdentifier());
        col += "." + name;
      }
      OrderItem item;
      item.attr = col;
      if (ts->AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        ts->AcceptKeyword("ASC");
      }
      q->order_by.push_back(std::move(item));
    } while (ts->AcceptSymbol(","));
  }
  return q;
}

// ------------------------------------------------------------ translation

struct BoundRef {
  algebra::OpPtr op;
  std::string alias;
  bool is_subquery = false;
};

/// True when a column reference (table, name) belongs to this FROM entry.
bool RefResolves(const BoundRef& ref, const ExprPtr& col) {
  if (!col->table.empty() && col->table != ref.alias) return false;
  return ref.op->schema.IndexOf("", col->name).ok();
}

/// Attribute string resolvable inside the ref's own schema.
std::string AttrInRef(const BoundRef& ref, const ExprPtr& col) {
  if (ref.is_subquery) return col->name;  // subquery schemas are unqualified
  return ref.alias + "." + col->name;
}

/// Subquery outputs carry no range-variable qualifier, so references like
/// "C.PosID" (C being a subquery alias) are rewritten to bare names.
ExprPtr StripSubqueryQualifiers(const ExprPtr& e,
                                const std::vector<BoundRef>& refs) {
  if (e == nullptr) return nullptr;
  if (e->kind == Expr::Kind::kColumn) {
    if (!e->table.empty()) {
      for (const BoundRef& r : refs) {
        if (r.is_subquery && r.alias == e->table) {
          return Expr::Column("", e->name);
        }
      }
    }
    return e;
  }
  auto copy = std::make_shared<Expr>(*e);
  copy->children.clear();
  for (const ExprPtr& c : e->children) {
    copy->children.push_back(StripSubqueryQualifiers(c, refs));
  }
  return copy;
}

std::string StripSubqueryQualifier(const std::string& attr,
                                   const std::vector<BoundRef>& refs) {
  const size_t dot = attr.find('.');
  if (dot == std::string::npos) return attr;
  const std::string qual = ToUpper(attr.substr(0, dot));
  for (const BoundRef& r : refs) {
    if (r.is_subquery && r.alias == qual) return attr.substr(dot + 1);
  }
  return attr;
}

Result<algebra::OpPtr> TranslateBody(const Query& q,
                                     const Parser::SchemaProvider& provider) {
  // FROM entries.
  std::vector<BoundRef> refs;
  for (const Ref& r : q.refs) {
    BoundRef bound;
    if (r.subquery != nullptr) {
      TANGO_ASSIGN_OR_RETURN(algebra::OpPtr sub,
                             TranslateBody(*r.subquery, provider));
      bound.op = std::move(sub);
      bound.alias = ToUpper(r.alias);
      bound.is_subquery = true;
    } else {
      TANGO_ASSIGN_OR_RETURN(Schema schema, provider(ToUpper(r.table)));
      TANGO_ASSIGN_OR_RETURN(bound.op,
                             algebra::Scan(r.table, schema, r.alias));
      bound.alias = ToUpper(r.alias);
    }
    refs.push_back(std::move(bound));
  }

  // Classify WHERE conjuncts into join predicates and residual selections.
  struct JoinPred {
    size_t left_ref;
    size_t right_ref;
    std::string left_attr;
    std::string right_attr;
  };
  std::vector<JoinPred> join_preds;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : SplitConjuncts(q.where)) {
    bool is_join = false;
    if (refs.size() > 1 && c->kind == Expr::Kind::kBinary &&
        c->binary_op == BinaryOp::kEq &&
        c->children[0]->kind == Expr::Kind::kColumn &&
        c->children[1]->kind == Expr::Kind::kColumn) {
      int li = -1, ri = -1;
      for (size_t i = 0; i < refs.size(); ++i) {
        if (RefResolves(refs[i], c->children[0]) && li < 0) {
          li = static_cast<int>(i);
        }
        if (RefResolves(refs[i], c->children[1]) && ri < 0) {
          ri = static_cast<int>(i);
        }
      }
      if (li >= 0 && ri >= 0 && li != ri) {
        JoinPred jp;
        if (li < ri) {
          jp.left_ref = static_cast<size_t>(li);
          jp.right_ref = static_cast<size_t>(ri);
          jp.left_attr = AttrInRef(refs[static_cast<size_t>(li)], c->children[0]);
          jp.right_attr = AttrInRef(refs[static_cast<size_t>(ri)], c->children[1]);
        } else {
          jp.left_ref = static_cast<size_t>(ri);
          jp.right_ref = static_cast<size_t>(li);
          jp.left_attr = AttrInRef(refs[static_cast<size_t>(ri)], c->children[1]);
          jp.right_attr = AttrInRef(refs[static_cast<size_t>(li)], c->children[0]);
        }
        join_preds.push_back(std::move(jp));
        is_join = true;
      }
    }
    if (!is_join && c != nullptr) {
      residual.push_back(c);
    }
  }

  // Conjuncts whose columns all belong to one FROM entry are applied to
  // that entry before joining. This matters for temporal joins, whose
  // output replaces the inputs' periods by the intersection: a predicate on
  // A.T1 must see A's own period. Conjuncts spanning entries stay above.
  std::vector<std::vector<ExprPtr>> pushed(refs.size());
  {
    std::vector<ExprPtr> keep;
    for (const ExprPtr& c : residual) {
      std::vector<std::string> cols;
      CollectColumns(c, &cols);
      int target = -1;
      bool single = !cols.empty();
      for (const std::string& col : cols) {
        auto ref_expr = Expr::ColumnRef(col);
        int owner = -1;
        for (size_t i = 0; i < refs.size(); ++i) {
          if (RefResolves(refs[i], ref_expr)) {
            // Ambiguity across refs keeps the conjunct above the join.
            owner = owner == -1 ? static_cast<int>(i) : -2;
          }
        }
        if (owner < 0 || (target != -1 && owner != target)) {
          single = false;
          break;
        }
        target = owner;
      }
      if (single && target >= 0) {
        pushed[static_cast<size_t>(target)].push_back(c);
      } else {
        keep.push_back(StripSubqueryQualifiers(c, refs));
      }
    }
    residual = std::move(keep);
  }
  for (size_t i = 0; i < refs.size(); ++i) {
    if (pushed[i].empty()) continue;
    ExprPtr pred = Expr::AndAll(pushed[i]);
    if (refs[i].is_subquery) pred = StripSubqueryQualifiers(pred, refs);
    TANGO_ASSIGN_OR_RETURN(refs[i].op, algebra::Select(refs[i].op, pred));
  }

  // Left-deep join tree in FROM order.
  algebra::OpPtr plan = refs[0].op;
  std::vector<bool> joined(refs.size(), false);
  joined[0] = true;
  for (size_t i = 1; i < refs.size(); ++i) {
    std::vector<std::pair<std::string, std::string>> attrs;
    for (const JoinPred& jp : join_preds) {
      if (jp.right_ref == i && joined[jp.left_ref]) {
        attrs.emplace_back(jp.left_attr, jp.right_attr);
      }
    }
    const bool temporal_join = q.temporal &&
                               algebra::HasPeriod(plan->schema) &&
                               algebra::HasPeriod(refs[i].op->schema);
    if (temporal_join) {
      TANGO_ASSIGN_OR_RETURN(plan, algebra::TJoin(plan, refs[i].op, attrs));
    } else if (!attrs.empty()) {
      TANGO_ASSIGN_OR_RETURN(plan, algebra::Join(plan, refs[i].op, attrs));
    } else {
      TANGO_ASSIGN_OR_RETURN(plan, algebra::Product(plan, refs[i].op));
    }
    joined[i] = true;
  }

  // Residual WHERE conjuncts.
  if (!residual.empty()) {
    TANGO_ASSIGN_OR_RETURN(plan,
                           algebra::Select(plan, Expr::AndAll(residual)));
  }

  // Temporal aggregation.
  if (q.over_time) {
    std::vector<algebra::AggItem> aggs;
    for (const Item& item : q.items) {
      if (item.star || !ContainsAggregate(item.expr)) continue;
      if (item.expr->kind != Expr::Kind::kAggregate) {
        return Status::NotSupported(
            "aggregates must appear bare in the select list");
      }
      algebra::AggItem agg;
      agg.func = item.expr->agg;
      if (!item.expr->agg_star) {
        const ExprPtr arg =
            StripSubqueryQualifiers(item.expr->children[0], refs);
        if (arg->kind != Expr::Kind::kColumn) {
          return Status::NotSupported("aggregate argument must be a column");
        }
        agg.arg = arg->table.empty() ? arg->name : arg->table + "." + arg->name;
      }
      agg.name = !item.alias.empty()
                     ? item.alias
                     : std::string(AggFuncName(agg.func)) + "OF" +
                           (agg.arg.empty() ? "ALL" : ToUpper(agg.arg));
      // Qualified default names would not be valid identifiers.
      for (char& ch : agg.name) {
        if (ch == '.') ch = '_';
      }
      aggs.push_back(std::move(agg));
    }
    if (aggs.empty()) {
      return Status::InvalidArgument(
          "GROUP BY ... OVER TIME requires at least one aggregate");
    }
    std::vector<std::string> group_by;
    for (const std::string& g : q.group_by) {
      group_by.push_back(StripSubqueryQualifier(g, refs));
    }
    TANGO_ASSIGN_OR_RETURN(plan, algebra::TAggregate(plan, group_by, aggs));
  }

  // Projection (skipped when the select list is `*` or matches the schema).
  bool star_only = q.items.size() == 1 && q.items[0].star;
  if (!star_only) {
    std::vector<algebra::ProjectItem> items;
    for (const Item& item : q.items) {
      if (item.star) {
        for (const Column& c : plan->schema.columns()) {
          items.push_back({Expr::Column(c.table, c.name), c.name});
        }
        continue;
      }
      ExprPtr e = StripSubqueryQualifiers(item.expr, refs);
      if (!q.over_time && ContainsAggregate(e)) {
        return Status::NotSupported(
            "aggregates require GROUP BY ... OVER TIME (temporal "
            "aggregation); plain SQL aggregation belongs in the DBMS");
      }
      std::string name = item.alias;
      if (q.over_time && e->kind == Expr::Kind::kAggregate) {
        // Aggregates were computed by ξ^T; reference their output column.
        std::string agg_name = name;
        if (agg_name.empty()) {
          std::string arg;
          if (!e->agg_star) {
            const ExprPtr& a = e->children[0];
            arg = a->table.empty() ? a->name : a->table + "." + a->name;
          }
          agg_name = std::string(AggFuncName(e->agg)) + "OF" +
                     (arg.empty() ? "ALL" : ToUpper(arg));
          for (char& ch : agg_name) {
            if (ch == '.') ch = '_';
          }
        }
        e = Expr::Column("", agg_name);
        name = agg_name;
      }
      if (name.empty()) {
        name = e->kind == Expr::Kind::kColumn ? e->name : e->ToString();
      }
      items.push_back({std::move(e), std::move(name)});
    }
    // Temporal semantics: the period attributes are implicit — a TEMPORAL
    // query's result always carries T1/T2 even when the select list omits
    // them (as in the paper's aggregation example).
    if (q.temporal && algebra::HasPeriod(plan->schema)) {
      bool has_t1 = false, has_t2 = false;
      for (const algebra::ProjectItem& item : items) {
        if (ToUpper(item.name) == "T1") has_t1 = true;
        if (ToUpper(item.name) == "T2") has_t2 = true;
      }
      if (!has_t1) items.push_back({Expr::ColumnRef("T1"), "T1"});
      if (!has_t2) items.push_back({Expr::ColumnRef("T2"), "T2"});
    }
    // Identity projection detection (T9's pre-condition).
    bool identity = items.size() == plan->schema.num_columns();
    if (identity) {
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].expr->kind != Expr::Kind::kColumn ||
            items[i].expr->name != plan->schema.column(i).name ||
            ToUpper(items[i].name) != plan->schema.column(i).name) {
          identity = false;
          break;
        }
      }
    }
    if (!identity) {
      TANGO_ASSIGN_OR_RETURN(plan, algebra::Project(plan, items));
    }
  }

  // Duplicate elimination and coalescing over the (projected) result.
  // Coalescing merges value-equivalent tuples with adjacent or overlapping
  // periods — the operator the paper lists among those "later added to
  // TANGO" and for which Vassilakis's optimization scheme applies.
  if (q.distinct) {
    TANGO_ASSIGN_OR_RETURN(plan, algebra::DupElim(plan));
  }
  if (q.coalesce) {
    if (!algebra::HasPeriod(plan->schema)) {
      return Status::InvalidArgument("COALESCE requires a temporal result");
    }
    TANGO_ASSIGN_OR_RETURN(plan, algebra::Coalesce(plan));
  }

  // ORDER BY.
  if (!q.order_by.empty()) {
    std::vector<algebra::SortSpec> keys;
    for (const OrderItem& o : q.order_by) {
      keys.push_back({StripSubqueryQualifier(o.attr, refs), o.ascending});
    }
    TANGO_ASSIGN_OR_RETURN(plan, algebra::Sort(plan, keys));
  }
  return plan;
}

}  // namespace

Result<algebra::OpPtr> Parser::Parse(const std::string& text,
                                     const SchemaProvider& provider) {
  TANGO_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens,
                         sql::Lexer::Tokenize(text));
  TokenStream ts(std::move(tokens));
  TANGO_ASSIGN_OR_RETURN(std::shared_ptr<Query> q, ParseQuery(&ts));
  TANGO_ASSIGN_OR_RETURN(algebra::OpPtr plan, TranslateBody(*q, provider));
  // EXCEPT chain: multiset difference (the − of the temporal algebra; its
  // only implementation is the middleware's DIFF^M).
  while (ts.AcceptKeyword("EXCEPT")) {
    TANGO_ASSIGN_OR_RETURN(std::shared_ptr<Query> rhs, ParseQuery(&ts));
    TANGO_ASSIGN_OR_RETURN(algebra::OpPtr rhs_plan,
                           TranslateBody(*rhs, provider));
    TANGO_ASSIGN_OR_RETURN(plan, algebra::Difference(plan, rhs_plan));
  }
  ts.AcceptSymbol(";");
  if (!ts.AtEnd()) return ts.ErrorHere("unexpected trailing input");
  return algebra::TransferM(plan);
}

}  // namespace tsql
}  // namespace tango
