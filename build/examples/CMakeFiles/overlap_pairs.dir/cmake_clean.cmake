file(REMOVE_RECURSE
  "CMakeFiles/overlap_pairs.dir/overlap_pairs.cpp.o"
  "CMakeFiles/overlap_pairs.dir/overlap_pairs.cpp.o.d"
  "overlap_pairs"
  "overlap_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
