# Empty compiler generated dependencies file for overlap_pairs.
# This may be replaced when dependencies are built.
