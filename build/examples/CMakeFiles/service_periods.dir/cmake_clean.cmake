file(REMOVE_RECURSE
  "CMakeFiles/service_periods.dir/service_periods.cpp.o"
  "CMakeFiles/service_periods.dir/service_periods.cpp.o.d"
  "service_periods"
  "service_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
