# Empty dependencies file for service_periods.
# This may be replaced when dependencies are built.
