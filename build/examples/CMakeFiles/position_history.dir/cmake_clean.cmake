file(REMOVE_RECURSE
  "CMakeFiles/position_history.dir/position_history.cpp.o"
  "CMakeFiles/position_history.dir/position_history.cpp.o.d"
  "position_history"
  "position_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/position_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
