# Empty compiler generated dependencies file for position_history.
# This may be replaced when dependencies are built.
