file(REMOVE_RECURSE
  "CMakeFiles/adaptive_split.dir/adaptive_split.cpp.o"
  "CMakeFiles/adaptive_split.dir/adaptive_split.cpp.o.d"
  "adaptive_split"
  "adaptive_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
