# Empty dependencies file for adaptive_split.
# This may be replaced when dependencies are built.
