# Empty dependencies file for tango_lib.
# This may be replaced when dependencies are built.
