file(REMOVE_RECURSE
  "libtango_lib.a"
)
