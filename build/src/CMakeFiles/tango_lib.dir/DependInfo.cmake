
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/algebra.cc" "src/CMakeFiles/tango_lib.dir/algebra/algebra.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/algebra/algebra.cc.o.d"
  "/root/repo/src/common/date.cc" "src/CMakeFiles/tango_lib.dir/common/date.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/common/date.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/tango_lib.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/common/rng.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/tango_lib.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tango_lib.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/tango_lib.dir/common/value.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/common/value.cc.o.d"
  "/root/repo/src/common/wire.cc" "src/CMakeFiles/tango_lib.dir/common/wire.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/common/wire.cc.o.d"
  "/root/repo/src/cost/calibrate.cc" "src/CMakeFiles/tango_lib.dir/cost/calibrate.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/cost/calibrate.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/tango_lib.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/dbms/catalog.cc" "src/CMakeFiles/tango_lib.dir/dbms/catalog.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/dbms/catalog.cc.o.d"
  "/root/repo/src/dbms/connection.cc" "src/CMakeFiles/tango_lib.dir/dbms/connection.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/dbms/connection.cc.o.d"
  "/root/repo/src/dbms/engine.cc" "src/CMakeFiles/tango_lib.dir/dbms/engine.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/dbms/engine.cc.o.d"
  "/root/repo/src/dbms/exec_ops.cc" "src/CMakeFiles/tango_lib.dir/dbms/exec_ops.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/dbms/exec_ops.cc.o.d"
  "/root/repo/src/dbms/planner.cc" "src/CMakeFiles/tango_lib.dir/dbms/planner.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/dbms/planner.cc.o.d"
  "/root/repo/src/exec/basic.cc" "src/CMakeFiles/tango_lib.dir/exec/basic.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/exec/basic.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/CMakeFiles/tango_lib.dir/exec/join.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/exec/join.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/tango_lib.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/exec/sort.cc.o.d"
  "/root/repo/src/exec/taggr.cc" "src/CMakeFiles/tango_lib.dir/exec/taggr.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/exec/taggr.cc.o.d"
  "/root/repo/src/exec/transfer.cc" "src/CMakeFiles/tango_lib.dir/exec/transfer.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/exec/transfer.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/tango_lib.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/expr/expr.cc.o.d"
  "/root/repo/src/optimizer/memo.cc" "src/CMakeFiles/tango_lib.dir/optimizer/memo.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/optimizer/memo.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/tango_lib.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/phys.cc" "src/CMakeFiles/tango_lib.dir/optimizer/phys.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/optimizer/phys.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/tango_lib.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/tango_lib.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/sql/parser.cc.o.d"
  "/root/repo/src/sqlgen/translator.cc" "src/CMakeFiles/tango_lib.dir/sqlgen/translator.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/sqlgen/translator.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/tango_lib.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/tango_lib.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/stats/stats.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/tango_lib.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/tango_lib.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/run_file.cc" "src/CMakeFiles/tango_lib.dir/storage/run_file.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/storage/run_file.cc.o.d"
  "/root/repo/src/tango/compiler.cc" "src/CMakeFiles/tango_lib.dir/tango/compiler.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/tango/compiler.cc.o.d"
  "/root/repo/src/tango/middleware.cc" "src/CMakeFiles/tango_lib.dir/tango/middleware.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/tango/middleware.cc.o.d"
  "/root/repo/src/tsql/tsql.cc" "src/CMakeFiles/tango_lib.dir/tsql/tsql.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/tsql/tsql.cc.o.d"
  "/root/repo/src/workload/uis.cc" "src/CMakeFiles/tango_lib.dir/workload/uis.cc.o" "gcc" "src/CMakeFiles/tango_lib.dir/workload/uis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
