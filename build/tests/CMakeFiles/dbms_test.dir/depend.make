# Empty dependencies file for dbms_test.
# This may be replaced when dependencies are built.
