file(REMOVE_RECURSE
  "CMakeFiles/dbms_test.dir/dbms_test.cc.o"
  "CMakeFiles/dbms_test.dir/dbms_test.cc.o.d"
  "dbms_test"
  "dbms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
