# Empty compiler generated dependencies file for tsql_test.
# This may be replaced when dependencies are built.
