file(REMOVE_RECURSE
  "CMakeFiles/tsql_test.dir/tsql_test.cc.o"
  "CMakeFiles/tsql_test.dir/tsql_test.cc.o.d"
  "tsql_test"
  "tsql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
