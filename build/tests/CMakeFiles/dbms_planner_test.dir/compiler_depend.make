# Empty compiler generated dependencies file for dbms_planner_test.
# This may be replaced when dependencies are built.
