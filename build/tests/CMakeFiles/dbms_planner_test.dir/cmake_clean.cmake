file(REMOVE_RECURSE
  "CMakeFiles/dbms_planner_test.dir/dbms_planner_test.cc.o"
  "CMakeFiles/dbms_planner_test.dir/dbms_planner_test.cc.o.d"
  "dbms_planner_test"
  "dbms_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
