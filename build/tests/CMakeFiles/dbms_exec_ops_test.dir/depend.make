# Empty dependencies file for dbms_exec_ops_test.
# This may be replaced when dependencies are built.
