file(REMOVE_RECURSE
  "CMakeFiles/dbms_exec_ops_test.dir/dbms_exec_ops_test.cc.o"
  "CMakeFiles/dbms_exec_ops_test.dir/dbms_exec_ops_test.cc.o.d"
  "dbms_exec_ops_test"
  "dbms_exec_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_exec_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
