# Empty compiler generated dependencies file for bench_query3_fig11a.
# This may be replaced when dependencies are built.
