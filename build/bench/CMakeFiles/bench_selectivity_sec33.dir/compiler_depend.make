# Empty compiler generated dependencies file for bench_selectivity_sec33.
# This may be replaced when dependencies are built.
