file(REMOVE_RECURSE
  "CMakeFiles/bench_selectivity_sec33.dir/bench_selectivity_sec33.cc.o"
  "CMakeFiles/bench_selectivity_sec33.dir/bench_selectivity_sec33.cc.o.d"
  "bench_selectivity_sec33"
  "bench_selectivity_sec33.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selectivity_sec33.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
