# Empty dependencies file for bench_query1_fig8.
# This may be replaced when dependencies are built.
