file(REMOVE_RECURSE
  "CMakeFiles/bench_query1_fig8.dir/bench_query1_fig8.cc.o"
  "CMakeFiles/bench_query1_fig8.dir/bench_query1_fig8.cc.o.d"
  "bench_query1_fig8"
  "bench_query1_fig8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query1_fig8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
