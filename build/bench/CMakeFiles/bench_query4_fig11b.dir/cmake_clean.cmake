file(REMOVE_RECURSE
  "CMakeFiles/bench_query4_fig11b.dir/bench_query4_fig11b.cc.o"
  "CMakeFiles/bench_query4_fig11b.dir/bench_query4_fig11b.cc.o.d"
  "bench_query4_fig11b"
  "bench_query4_fig11b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query4_fig11b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
