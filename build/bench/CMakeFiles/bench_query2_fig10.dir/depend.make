# Empty dependencies file for bench_query2_fig10.
# This may be replaced when dependencies are built.
