file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_choices.dir/bench_optimizer_choices.cc.o"
  "CMakeFiles/bench_optimizer_choices.dir/bench_optimizer_choices.cc.o.d"
  "bench_optimizer_choices"
  "bench_optimizer_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
