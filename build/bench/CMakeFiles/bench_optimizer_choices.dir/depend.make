# Empty dependencies file for bench_optimizer_choices.
# This may be replaced when dependencies are built.
