// Cardinality-feedback re-optimization: the FeedbackStore unit behavior,
// and the end-to-end adaptive loop — a join whose estimate is ~2000x off
// marks its cached plan stale after one execution, and the re-optimization
// (with the observed cardinality injected) flips the join from the
// middleware to the DBMS, asserted via EXPLAIN ANALYZE site tags.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapt/feedback.h"
#include "tango/middleware.h"

namespace tango {
namespace {

TEST(FeedbackStoreTest, RecordReturnsWorstQError) {
  adapt::FeedbackStore store;
  EXPECT_DOUBLE_EQ(store.Record(1, {}), 1.0);
  // Node 7 is 4x under, node 8 is exact, node 0 is skipped entirely.
  const double worst = store.Record(
      1, {{7, 25.0, 100}, {8, 50.0, 50}, {0, 1.0, 1000000}});
  EXPECT_DOUBLE_EQ(worst, 4.0);
  const std::map<uint64_t, double> overrides = store.OverridesFor(1);
  ASSERT_EQ(overrides.size(), 2u);
  EXPECT_DOUBLE_EQ(overrides.at(7), 100.0);
  EXPECT_DOUBLE_EQ(overrides.at(8), 50.0);
  EXPECT_TRUE(store.OverridesFor(2).empty());
}

TEST(FeedbackStoreTest, LastWriteWinsAndForget) {
  adapt::FeedbackStore store;
  store.Record(1, {{7, 10.0, 100}});
  store.Record(1, {{7, 10.0, 60}});
  EXPECT_DOUBLE_EQ(store.OverridesFor(1).at(7), 60.0);
  EXPECT_EQ(store.size(), 1u);
  store.Forget(1);
  EXPECT_TRUE(store.OverridesFor(1).empty());
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end site flip. L.J and R2.J are disjoint (1..5 vs 6..10, five
// distinct values each), so the §3.3 join estimate is 100*100/5 = 2000 rows
// while the actual is 0. Under est=2000 the optimizer ships both inputs up
// and merge-joins in the middleware (the transfer of 2000 result rows from
// the DBMS looks too expensive); with the observed cardinality injected the
// DBMS join plus a tiny transfer wins, so the join migrates M -> D after
// one bad run.

void LoadDisjoint(dbms::Engine* db) {
  ASSERT_TRUE(db->Execute("CREATE TABLE L (J INT, X INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE R2 (J INT, Y INT)").ok());
  std::vector<Tuple> left, right;
  for (int64_t i = 0; i < 100; ++i) {
    left.push_back({Value(i % 5 + 1), Value(i)});
    right.push_back({Value(i % 5 + 6), Value(i)});
  }
  ASSERT_TRUE(db->BulkLoad("L", left).ok());
  ASSERT_TRUE(db->BulkLoad("R2", right).ok());
  ASSERT_TRUE(db->Execute("ANALYZE L").ok());
  ASSERT_TRUE(db->Execute("ANALYZE R2").ok());
}

Middleware::Config AdaptiveConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  // Keep the cost factors fixed: this test isolates the cardinality loop
  // (factor adaptation would also trigger the cache's drift invalidation).
  config.adapt = false;
  return config;
}

const char* const kDisjointJoin =
    "SELECT L.J, R2.Y FROM L, R2 WHERE L.J = R2.J";

TEST(FeedbackLoopTest, MisestimatedJoinMigratesSitesAfterOneRun) {
  dbms::Engine db;
  LoadDisjoint(&db);
  Middleware mw(&db, AdaptiveConfig());

  // First run: fresh plan, join placed in the middleware on the 2000-row
  // estimate; the actual result is empty.
  auto first = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie().source, Middleware::Prepared::Source::kFresh);
  auto analyzed1 = mw.ExplainAnalyze(first.ValueOrDie());
  ASSERT_TRUE(analyzed1.ok()) << analyzed1.status().ToString();
  EXPECT_NE(analyzed1.ValueOrDie().find("MERGEJOIN^M [M]"), std::string::npos)
      << analyzed1.ValueOrDie();
  EXPECT_NE(analyzed1.ValueOrDie().find("rows=0"), std::string::npos);
  // The 2000-vs-0 Q-error exceeded the bound: the entry is marked stale.
  EXPECT_EQ(mw.metrics().counter("reoptimize.stale_marks").load(), 1u);

  // Second prepare: stale entry -> re-optimized with the observed
  // cardinality; the join migrates to the DBMS.
  auto second = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie().source,
            Middleware::Prepared::Source::kReoptimized);
  EXPECT_EQ(mw.metrics().counter("reoptimize.count").load(), 1u);
  // The full physical plan (EXPLAIN) shows the join now runs in the DBMS;
  // EXPLAIN ANALYZE only renders middleware cursors, so there the join's
  // disappearance from the middleware is the visible signal.
  auto explained2 = mw.Explain(second.ValueOrDie());
  ASSERT_TRUE(explained2.ok()) << explained2.status().ToString();
  EXPECT_NE(explained2.ValueOrDie().find("JOIN^D"), std::string::npos)
      << explained2.ValueOrDie();
  EXPECT_EQ(explained2.ValueOrDie().find("MERGEJOIN^M"), std::string::npos)
      << explained2.ValueOrDie();
  auto analyzed2 = mw.ExplainAnalyze(second.ValueOrDie());
  ASSERT_TRUE(analyzed2.ok()) << analyzed2.status().ToString();
  EXPECT_EQ(analyzed2.ValueOrDie().find("MERGEJOIN^M"), std::string::npos)
      << analyzed2.ValueOrDie();
  EXPECT_NE(analyzed2.ValueOrDie().find("plan: reoptimized"),
            std::string::npos)
      << analyzed2.ValueOrDie();
  EXPECT_NE(analyzed2.ValueOrDie().find("rows=0"), std::string::npos);

  // Third prepare: the re-optimized plan's estimates now match reality, so
  // the entry stayed fresh — the loop converged.
  auto third = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third.ValueOrDie().source, Middleware::Prepared::Source::kCached);
  EXPECT_EQ(mw.metrics().counter("reoptimize.count").load(), 1u);
  EXPECT_EQ(third.ValueOrDie().cache_entry->reoptimized.load(), 1u);
}

TEST(FeedbackLoopTest, QErrorBoundIsConfigurable) {
  dbms::Engine db;
  LoadDisjoint(&db);
  Middleware::Config config = AdaptiveConfig();
  // A bound looser than the 2000x mis-estimate: no staleness, no
  // re-optimization — the second prepare reuses the entry as-is.
  config.plan_cache.q_error_bound = 1e6;
  Middleware mw(&db, config);

  auto first = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(mw.Execute(first.ValueOrDie()).ok());
  EXPECT_EQ(mw.metrics().counter("reoptimize.stale_marks").load(), 0u);

  auto second = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie().source, Middleware::Prepared::Source::kCached);
  EXPECT_EQ(mw.metrics().counter("reoptimize.count").load(), 0u);
}

TEST(FeedbackLoopTest, CollectStatisticsInvalidatesButKeepsFeedback) {
  dbms::Engine db;
  LoadDisjoint(&db);
  Middleware mw(&db, AdaptiveConfig());

  auto first = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(mw.Execute(first.ValueOrDie()).ok());
  ASSERT_TRUE(mw.CollectStatistics({"L"}).ok());
  EXPECT_GE(mw.plan_cache().counters().invalidations, 1u);

  // The entry is gone, but the observed cardinalities survive: the fresh
  // optimization already plans the join in the DBMS.
  auto second = mw.Prepare(kDisjointJoin);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie().source, Middleware::Prepared::Source::kFresh);
  auto explained = mw.Explain(second.ValueOrDie());
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_NE(explained.ValueOrDie().find("JOIN^D"), std::string::npos)
      << explained.ValueOrDie();
}

}  // namespace
}  // namespace tango
