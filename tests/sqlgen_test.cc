#include <gtest/gtest.h>

#include "dbms/engine.h"
#include "sqlgen/translator.h"
#include "sql/parser.h"

namespace tango {
namespace sqlgen {
namespace {

using optimizer::Algorithm;
using optimizer::PhysPlanPtr;

Schema PosSchema() {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

PhysPlanPtr Node(Algorithm alg, algebra::OpPtr op,
                 std::vector<PhysPlanPtr> children) {
  auto node = std::make_shared<optimizer::PhysPlan>();
  node->algorithm = alg;
  node->op = std::move(op);
  node->children = std::move(children);
  return node;
}

algebra::OpPtr SortOpOf(const Schema& schema,
                        std::vector<algebra::SortSpec> keys) {
  auto op = std::make_shared<algebra::Op>();
  op->kind = algebra::OpKind::kSort;
  op->schema = schema;
  op->sort_keys = std::move(keys);
  return op;
}

/// Loads Figure 3's POSITION and executes `sql`, returning the rows.
std::vector<Tuple> RunSql(const std::string& sql) {
  dbms::Engine db;
  EXPECT_TRUE(db.Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                         "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  EXPECT_TRUE(db.Execute("INSERT INTO POSITION VALUES "
                         "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), "
                         "(2, 'Tom', 5, 10)")
                  .ok());
  auto r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
  return r.ok() ? r.ValueOrDie().rows : std::vector<Tuple>{};
}

TEST(TranslatorTest, ScanRendersBareTable) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(*Node(Algorithm::kScanD, scan, {}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_EQ(rendered.ValueOrDie().base_table, "POSITION");
  EXPECT_EQ(rendered.ValueOrDie().aliases.size(), 4u);
  const auto rows = RunSql(rendered.ValueOrDie().sql);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(TranslatorTest, SelectionRendersWhere) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto pred = sql::Parser::ParseSelect("SELECT X FROM T WHERE PosID = 1")
                  .ValueOrDie()
                  ->where;
  auto sel = algebra::Select(scan, pred).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(
      *Node(Algorithm::kSelectD, sel, {Node(Algorithm::kScanD, scan, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered.ValueOrDie().sql.find("WHERE"), std::string::npos);
  EXPECT_EQ(RunSql(rendered.ValueOrDie().sql).size(), 2u);
}

TEST(TranslatorTest, SortRendersOrderBy) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(*Node(
      Algorithm::kSortD, SortOpOf(scan->schema, {{"T1", true}, {"T2", false}}),
      {Node(Algorithm::kScanD, scan, {})}));
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered.ValueOrDie().sql.find("ORDER BY"), std::string::npos);
  EXPECT_NE(rendered.ValueOrDie().sql.find("DESC"), std::string::npos);
  const auto rows = RunSql(rendered.ValueOrDie().sql);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][2].AsInt(), 2);  // smallest T1 first
}

TEST(TranslatorTest, TemporalJoinMatchesFigure5Shape) {
  // TAGGR result ⋈^T POSITION — the SQL must use GREATEST/LEAST and the
  // overlap condition of Figure 5.
  auto scan = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  Schema agg_schema({{"", "POSID", DataType::kInt},
                     {"", "T1", DataType::kInt},
                     {"", "T2", DataType::kInt},
                     {"", "CNT", DataType::kInt}});
  auto tmp = algebra::Scan("TMP", agg_schema, "A").ValueOrDie();
  auto tjoin = algebra::TJoin(tmp, scan, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(*Node(Algorithm::kTJoinD, tjoin,
                                 {Node(Algorithm::kScanD, tmp, {}),
                                  Node(Algorithm::kScanD, scan, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  const std::string& sql = rendered.ValueOrDie().sql;
  EXPECT_NE(sql.find("GREATEST("), std::string::npos);
  EXPECT_NE(sql.find("LEAST("), std::string::npos);
  EXPECT_NE(sql.find("<"), std::string::npos);

  // Execute against the Figure 3 data: TMP = aggregation result, join back.
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                         "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO POSITION VALUES "
                         "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), "
                         "(2, 'Tom', 5, 10)")
                  .ok());
  ASSERT_TRUE(
      db.Execute("CREATE TABLE TMP (PosID INT, T1 INT, T2 INT, CNT INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO TMP VALUES (1, 2, 5, 1), (1, 5, 20, 2), "
                         "(1, 20, 25, 1), (2, 5, 10, 1)")
                  .ok());
  auto r = db.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().rows.size(), 5u);  // Figure 3(b)
}

TEST(TranslatorTest, TAggrSqlReproducesFigure3c) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "CNT"}})
                 .ValueOrDie();
  Translator t({});
  auto rendered = t.Render(
      *Node(Algorithm::kTAggrD, agg, {Node(Algorithm::kScanD, scan, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  auto rows = RunSql(rendered.ValueOrDie().sql + " ORDER BY POSID, T1");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][1].AsInt(), 5);
  EXPECT_EQ(rows[1][2].AsInt(), 20);
  EXPECT_EQ(rows[1][3].AsInt(), 2);
}

TEST(TranslatorTest, TAggrWithoutGroupingRenders) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {}, {{AggFunc::kCount, "", "CNT"}})
                 .ValueOrDie();
  Translator t({});
  auto rendered = t.Render(
      *Node(Algorithm::kTAggrD, agg, {Node(Algorithm::kScanD, scan, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  auto rows = RunSql(rendered.ValueOrDie().sql + " ORDER BY T1");
  // Instants 2,5,10,20,25 -> 4 non-empty constant periods.
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);   // T1
  EXPECT_EQ(rows[0][1].AsInt(), 5);   // T2
  EXPECT_EQ(rows[0][2].AsInt(), 1);   // one employee during [2,5)
  EXPECT_EQ(rows[1][2].AsInt(), 3);   // three during [5,10)
}

TEST(TranslatorTest, TransferDRendersTempTable) {
  Schema agg_schema({{"", "POSID", DataType::kInt},
                     {"", "CNT", DataType::kInt}});
  auto op = std::make_shared<algebra::Op>();
  op->kind = algebra::OpKind::kTransferD;
  op->schema = agg_schema;
  auto td = Node(Algorithm::kTransferD, op, {});
  Translator t({{td.get(), "TANGO_TMP_9"}});
  auto rendered = t.Render(*td);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(rendered.ValueOrDie().base_table, "TANGO_TMP_9");

  // A TRANSFER^D node the translator was not told about is an error.
  Translator t2({});
  EXPECT_FALSE(t2.Render(*td).ok());
}

TEST(TranslatorTest, DuplicateColumnNamesGetUniqueAliases) {
  // A self-join's concatenated schema carries POSID twice; the generated
  // select list must alias them apart.
  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto join = algebra::Join(a, b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(*Node(Algorithm::kJoinD, join,
                                 {Node(Algorithm::kScanD, a, {}),
                                  Node(Algorithm::kScanD, b, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  const auto& aliases = rendered.ValueOrDie().aliases;
  ASSERT_EQ(aliases.size(), 8u);
  std::set<std::string> unique(aliases.begin(), aliases.end());
  EXPECT_EQ(unique.size(), aliases.size());
  EXPECT_EQ(RunSql(rendered.ValueOrDie().sql).size(), 5u);  // 2x2 + 1
}

TEST(TranslatorTest, DistinctRendersSelectDistinct) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto dup = algebra::DupElim(scan).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(
      *Node(Algorithm::kDistinctD, dup, {Node(Algorithm::kScanD, scan, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered.ValueOrDie().sql.find("SELECT DISTINCT"),
            std::string::npos);
  // Figure 3 data has no duplicate rows, so DISTINCT keeps all three.
  EXPECT_EQ(RunSql(rendered.ValueOrDie().sql).size(), 3u);
}

TEST(TranslatorTest, ProductRendersCrossJoin) {
  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto product = algebra::Product(a, b).ValueOrDie();
  Translator t({});
  auto rendered = t.Render(*Node(Algorithm::kProductD, product,
                                 {Node(Algorithm::kScanD, a, {}),
                                  Node(Algorithm::kScanD, b, {})}));
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_EQ(rendered.ValueOrDie().sql.find("WHERE"), std::string::npos);
  EXPECT_EQ(RunSql(rendered.ValueOrDie().sql).size(), 9u);  // 3 x 3
}

TEST(TranslatorTest, MiddlewareAlgorithmsAreNotRenderable) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  Translator t({});
  EXPECT_FALSE(t.Render(*Node(Algorithm::kSortM,
                              SortOpOf(scan->schema, {{"T1", true}}),
                              {Node(Algorithm::kScanD, scan, {})}))
                   .ok());
}

}  // namespace
}  // namespace sqlgen
}  // namespace tango
