#include <gtest/gtest.h>

#include "common/date.h"
#include "sql/parser.h"

namespace tango {
namespace sql {
namespace {

TEST(LexerTest, TokenizesBasics) {
  auto r = Lexer::Tokenize("SELECT a.b, 12 3.5 'x''y' <= <> != --c\nFROM");
  ASSERT_TRUE(r.ok());
  const auto& t = r.ValueOrDie();
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[0].type, TokenType::kKeyword);
  EXPECT_EQ(t[1].text, "A");
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[2].text, ".");
  EXPECT_EQ(t[3].text, "B");
  EXPECT_EQ(t[4].text, ",");
  EXPECT_EQ(t[5].int_value, 12);
  EXPECT_DOUBLE_EQ(t[6].float_value, 3.5);
  EXPECT_EQ(t[7].text, "x'y");
  EXPECT_EQ(t[7].type, TokenType::kString);
  EXPECT_EQ(t[8].text, "<=");
  EXPECT_EQ(t[9].text, "<>");
  EXPECT_EQ(t[10].text, "<>");  // != normalized
  EXPECT_EQ(t[11].text, "FROM");  // comment skipped
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(Lexer::Tokenize("SELECT 'oops").ok());
  EXPECT_FALSE(Lexer::Tokenize("a ? b").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto r = Parser::ParseSelect("SELECT PosID, T1 FROM POSITION");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& s = *r.ValueOrDie();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->ToString(), "POSID");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "POSITION");
  EXPECT_EQ(s.where, nullptr);
}

TEST(ParserTest, PaperFigure5Query) {
  // The exact SQL of Figure 5 (top TRANSFER^M).
  const char* q =
      "SELECT A.PosID AS PosID, EmpName, "
      "GREATEST(A.T1,B.T1) AS T1, "
      "LEAST(A.T2,B.T2) AS T2, COUNTofPosID "
      "FROM TMP A, POSITION B "
      "WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1 "
      "ORDER BY PosID";
  auto r = Parser::ParseSelect(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& s = *r.ValueOrDie();
  ASSERT_EQ(s.items.size(), 5u);
  EXPECT_EQ(s.items[0].alias, "POSID");
  EXPECT_EQ(s.items[2].expr->function, "GREATEST");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "A");
  EXPECT_EQ(s.from[1].alias, "B");
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
}

TEST(ParserTest, GroupByAggregates) {
  auto r = Parser::ParseSelect(
      "SELECT PosID, COUNT(*), SUM(Pay), AVG(Pay) FROM P "
      "GROUP BY PosID HAVING COUNT(*) > 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& s = *r.ValueOrDie();
  EXPECT_TRUE(s.items[1].expr->agg_star);
  EXPECT_EQ(s.items[2].expr->agg, AggFunc::kSum);
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
}

TEST(ParserTest, SubqueryInFromRequiresAlias) {
  EXPECT_FALSE(Parser::ParseSelect(
      "SELECT X FROM (SELECT X FROM T)").ok());
  auto ok = Parser::ParseSelect("SELECT X FROM (SELECT X FROM T) S");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.ValueOrDie()->from[0].alias, "S");
  ASSERT_NE(ok.ValueOrDie()->from[0].subquery, nullptr);
}

TEST(ParserTest, UnionChainWithOrderBy) {
  auto r = Parser::ParseSelect(
      "SELECT T1 AS T FROM R UNION SELECT T2 FROM R "
      "UNION ALL SELECT T2 FROM R ORDER BY T");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& s = *r.ValueOrDie();
  ASSERT_NE(s.union_next, nullptr);
  EXPECT_FALSE(s.union_all);
  ASSERT_NE(s.union_next->union_next, nullptr);
  EXPECT_TRUE(s.union_next->union_all);
  EXPECT_EQ(s.order_by.size(), 1u);
  // ORDER BY is attached to the head, not the arms.
  EXPECT_TRUE(s.union_next->order_by.empty());
}

TEST(ParserTest, DateLiteralBecomesDayNumber) {
  auto r = Parser::ParseSelect(
      "SELECT X FROM T WHERE T1 < DATE '1997-02-08'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& w = r.ValueOrDie()->where;
  ASSERT_EQ(w->children.size(), 2u);
  EXPECT_EQ(w->children[1]->literal.AsInt(), date::FromYmd(1997, 2, 8));
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto r = Parser::ParseSelect("SELECT X FROM T WHERE X BETWEEN 2 AND 5");
  ASSERT_TRUE(r.ok());
  const auto& w = r.ValueOrDie()->where;
  EXPECT_EQ(w->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(w->children[0]->binary_op, BinaryOp::kGe);
  EXPECT_EQ(w->children[1]->binary_op, BinaryOp::kLe);
}

TEST(ParserTest, OperatorPrecedence) {
  auto r = Parser::ParseSelect(
      "SELECT X FROM T WHERE A = 1 OR B = 2 AND C < 3 + 4 * 5");
  ASSERT_TRUE(r.ok());
  const auto& w = r.ValueOrDie()->where;
  EXPECT_EQ(w->binary_op, BinaryOp::kOr);  // OR binds loosest
  const auto& rhs = w->children[1];
  EXPECT_EQ(rhs->binary_op, BinaryOp::kAnd);
  const auto& cmp = rhs->children[1];
  EXPECT_EQ(cmp->binary_op, BinaryOp::kLt);
  EXPECT_EQ(cmp->children[1]->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(cmp->children[1]->children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, CreateTableBothForms) {
  auto r1 = Parser::Parse(
      "CREATE TABLE TMP (PosID INT, Pay DOUBLE, Name VARCHAR(20), D DATE)");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  const auto& ct = *r1.ValueOrDie().create_table;
  EXPECT_EQ(ct.name, "TMP");
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_EQ(ct.columns[0].type, DataType::kInt);
  EXPECT_EQ(ct.columns[1].type, DataType::kDouble);
  EXPECT_EQ(ct.columns[2].type, DataType::kString);
  EXPECT_EQ(ct.columns[3].type, DataType::kInt);  // dates are day numbers

  auto r2 = Parser::Parse("CREATE TABLE T2 AS SELECT PosID FROM POSITION");
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r2.ValueOrDie().create_table->as_select, nullptr);
}

TEST(ParserTest, InsertValues) {
  auto r = Parser::Parse("INSERT INTO T VALUES (1, 'a'), (2, 'b')");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().insert->rows.size(), 2u);
  EXPECT_EQ(r.ValueOrDie().insert->rows[1][0]->literal.AsInt(), 2);
}

TEST(ParserTest, DropAnalyzeCreateIndex) {
  EXPECT_EQ(Parser::Parse("DROP TABLE TMP").ValueOrDie().drop_table->table,
            "TMP");
  EXPECT_EQ(Parser::Parse("ANALYZE POSITION").ValueOrDie().analyze->table,
            "POSITION");
  EXPECT_EQ(Parser::Parse("ANALYZE").ValueOrDie().analyze->table, "");
  auto ci = Parser::Parse("CREATE INDEX IX ON POSITION (T1)");
  ASSERT_TRUE(ci.ok());
  EXPECT_EQ(ci.ValueOrDie().create_index->table, "POSITION");
  EXPECT_EQ(ci.ValueOrDie().create_index->column, "T1");
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parser::Parse("SELECT X FROM T garbage garbage").ok());
  EXPECT_FALSE(Parser::Parse("SELECT FROM T").ok());
  EXPECT_FALSE(Parser::Parse("SELECT X T").ok());
}

TEST(ParserTest, NegativeNumbersFoldToLiterals) {
  auto r = Parser::ParseSelect("SELECT X FROM T WHERE X > -42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()->where->children[1]->literal.AsInt(), -42);
}

TEST(ParserTest, IsNullPredicates) {
  auto r = Parser::ParseSelect("SELECT X FROM T WHERE X IS NOT NULL");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()->where->unary_op, UnaryOp::kIsNotNull);
}

TEST(ParserTest, StarVariants) {
  auto r = Parser::ParseSelect("SELECT *, A.* FROM T A");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie()->items[0].star);
  EXPECT_TRUE(r.ValueOrDie()->items[1].star);
  EXPECT_EQ(r.ValueOrDie()->items[1].star_qualifier, "A");
}

}  // namespace
}  // namespace sql
}  // namespace tango
