// End-to-end randomized differential tests: random temporal relations,
// queries through the full stack (temporal SQL -> optimizer -> generated
// SQL + middleware cursors -> results), verified against brute-force
// oracles computed directly over the data, and against the same query
// forced through different plan shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "tango/middleware.h"

namespace tango {
namespace {

struct RandomRelation {
  std::vector<Tuple> rows;  // (G, V, T1, T2)
};

RandomRelation MakeRelation(uint64_t seed, size_t n, int64_t groups,
                            int64_t horizon) {
  Rng rng(seed);
  RandomRelation rel;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rel.rows.push_back({Value(rng.Uniform(1, groups)),
                        Value(rng.Uniform(0, 50)), Value(t1),
                        Value(t1 + rng.Uniform(1, horizon / 4))});
  }
  return rel;
}

void Load(dbms::Engine* db, const std::string& table,
          const RandomRelation& rel) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)")
          .ok());
  ASSERT_TRUE(db->BulkLoad(table, rel.rows).ok());
  ASSERT_TRUE(db->Execute("ANALYZE " + table).ok());
}

Middleware::Config FastConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  return config;
}

/// Brute-force temporal COUNT aggregation: for every (group, day), the
/// number of tuples whose period contains the day.
std::map<std::pair<int64_t, int64_t>, int64_t> SnapshotCounts(
    const RandomRelation& rel) {
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (const Tuple& t : rel.rows) {
    for (int64_t day = t[2].AsInt(); day < t[3].AsInt(); ++day) {
      counts[{t[0].AsInt(), day}] += 1;
    }
  }
  return counts;
}

class RandomTAggrTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTAggrTest, MatchesPerDayOracle) {
  const RandomRelation rel = MakeRelation(GetParam(), 400, 12, 120);
  dbms::Engine db;
  Load(&db, "R", rel);
  Middleware mw(&db, FastConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
      "GROUP BY G OVER TIME ORDER BY G, T1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Expand the constant periods back to per-day counts and compare.
  const auto oracle = SnapshotCounts(rel);
  std::map<std::pair<int64_t, int64_t>, int64_t> got;
  for (const Tuple& t : result.ValueOrDie().rows) {
    for (int64_t day = t[1].AsInt(); day < t[2].AsInt(); ++day) {
      auto [it, inserted] =
          got.insert({{t[0].AsInt(), day}, t[3].AsInt()});
      ASSERT_TRUE(inserted) << "overlapping constant periods";
    }
  }
  EXPECT_EQ(got, oracle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTAggrTest,
                         ::testing::Values(1, 7, 23, 99, 1234));

class RandomTJoinTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTJoinTest, MatchesNestedLoopOracle) {
  const RandomRelation a = MakeRelation(GetParam(), 250, 8, 100);
  const RandomRelation b = MakeRelation(GetParam() ^ 0xbeef, 200, 8, 100);
  dbms::Engine db;
  Load(&db, "RA", a);
  Load(&db, "RB", b);
  Middleware mw(&db, FastConfig());
  auto result = mw.Query(
      "TEMPORAL SELECT X.G, X.V, Y.V FROM RA X, RB Y "
      "WHERE X.G = Y.G ORDER BY G");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Brute-force temporal join.
  std::multiset<std::string> oracle;
  for (const Tuple& x : a.rows) {
    for (const Tuple& y : b.rows) {
      if (x[0].Compare(y[0]) != 0) continue;
      const int64_t t1 = std::max(x[2].AsInt(), y[2].AsInt());
      const int64_t t2 = std::min(x[3].AsInt(), y[3].AsInt());
      if (t1 >= t2) continue;
      oracle.insert(x[0].ToString() + "|" + x[1].ToString() + "|" +
                    y[1].ToString() + "|" + std::to_string(t1) + "|" +
                    std::to_string(t2));
    }
  }
  std::multiset<std::string> got;
  for (const Tuple& t : result.ValueOrDie().rows) {
    got.insert(t[0].ToString() + "|" + t[1].ToString() + "|" +
               t[2].ToString() + "|" + t[3].ToString() + "|" +
               t[4].ToString());
  }
  EXPECT_EQ(got, oracle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTJoinTest,
                         ::testing::Values(3, 17, 42, 256));

// Differential: the same query through (a) whatever the optimizer picks,
// (b) a forced all-DBMS shape, (c) a forced all-middleware shape — all
// three must agree, and the wire simulation must not affect results.
class PlanDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanDifferentialTest, AllShapesAgree) {
  const RandomRelation rel = MakeRelation(GetParam(), 500, 10, 150);
  dbms::Engine db;
  Load(&db, "R", rel);
  const std::string query =
      "TEMPORAL SELECT C.G, V, CNT FROM "
      "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R GROUP BY G OVER TIME) C, "
      "R S WHERE C.G = S.G AND V > 10 ORDER BY G";

  auto run = [&](void (*tweak)(cost::CostFactors*), bool wire) {
    Middleware::Config config;
    config.wire.simulate_delay = wire;
    config.wire.bytes_per_second = 500e6;  // keep paced run fast
    Middleware mw(&db, config);
    if (tweak != nullptr) tweak(&mw.cost_model().factors());
    auto r = mw.Query(query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::multiset<std::string> rows;
    for (const Tuple& t : r.ValueOrDie().rows) {
      std::string s;
      for (const Value& v : t) s += v.ToString() + "|";
      rows.insert(std::move(s));
    }
    return rows;
  };

  const auto chosen = run(nullptr, false);
  const auto dbms_only = run(
      [](cost::CostFactors* f) {
        f->taggm1 = f->taggm2 = f->tjm = f->mjm = f->sortm = 1e9;
      },
      false);
  const auto mw_heavy = run(
      [](cost::CostFactors* f) {
        f->taggd1 = f->taggd2 = f->joind = f->joindout = f->sortd = 1e9;
        f->scand = 1e9;
      },
      false);
  const auto paced = run(nullptr, true);

  EXPECT_FALSE(chosen.empty());
  EXPECT_EQ(chosen, dbms_only);
  EXPECT_EQ(chosen, mw_heavy);
  EXPECT_EQ(chosen, paced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDifferentialTest,
                         ::testing::Values(5, 11, 77));

TEST(IntegrationTest, CoalesceOfAggregationRuns) {
  // Coalescing the COUNT=constant periods merges adjacent periods with
  // equal counts; verify snapshots are preserved.
  const RandomRelation rel = MakeRelation(31, 300, 6, 90);
  dbms::Engine db;
  Load(&db, "R", rel);
  Middleware mw(&db, FastConfig());
  auto plain = mw.Query(
      "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
      "GROUP BY G OVER TIME ORDER BY G, T1");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto coalesced = mw.Query(
      "TEMPORAL SELECT COALESCE G, CNT FROM "
      "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R GROUP BY G OVER TIME) C "
      "ORDER BY G, T1");
  ASSERT_TRUE(coalesced.ok()) << coalesced.status().ToString();
  // Coalescing can only reduce the row count, never change snapshots.
  EXPECT_LE(coalesced.ValueOrDie().rows.size(), plain.ValueOrDie().rows.size());
  auto days = [](const std::vector<Tuple>& rows, size_t t1, size_t t2) {
    std::map<std::pair<int64_t, int64_t>, int64_t> out;
    for (const Tuple& r : rows) {
      for (int64_t d = r[t1].AsInt(); d < r[t2].AsInt(); ++d) {
        out[{r[0].AsInt(), d}] = r[t1 == 1 ? 3 : 1].AsInt();  // CNT column
      }
    }
    return out;
  };
  // plain: (G, T1, T2, CNT); coalesced: (G, CNT, T1, T2).
  EXPECT_EQ(days(plain.ValueOrDie().rows, 1, 2),
            days(coalesced.ValueOrDie().rows, 2, 3));
}

// The paper's list-vs-multiset distinction: an ORDER BY query must come
// back ordered no matter which side of the wire each operator ran on —
// TRANSFER^M preserves a DBMS fragment's ORDER BY (rule T6, type ->L), the
// middleware algorithms are order preserving, and TAGGR^M delivers
// (group, T1) order without a final sort.
class OrderSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderSemanticsTest, OrderedQueriesDeliverOrderedResults) {
  const RandomRelation rel = MakeRelation(GetParam(), 400, 9, 100);
  dbms::Engine db;
  Load(&db, "R", rel);
  const std::string query =
      "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
      "GROUP BY G OVER TIME ORDER BY G, T1";

  auto check_sorted = [&](void (*tweak)(cost::CostFactors*)) {
    Middleware mw(&db, FastConfig());
    if (tweak != nullptr) tweak(&mw.cost_model().factors());
    auto r = mw.Query(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& rows = r.ValueOrDie().rows;
    ASSERT_FALSE(rows.empty());
    for (size_t i = 1; i < rows.size(); ++i) {
      const int g = rows[i - 1][0].Compare(rows[i][0]);
      ASSERT_LE(g, 0) << "row " << i << " out of order on G";
      if (g == 0) {
        ASSERT_LE(rows[i - 1][1].Compare(rows[i][1]), 0)
            << "row " << i << " out of order on T1";
      }
    }
  };
  // Whatever the optimizer picks (TAGGR^M without a final sort).
  check_sorted(nullptr);
  // Forced all-DBMS (ORDER BY inside the fragment + order-preserving T^M).
  check_sorted([](cost::CostFactors* f) {
    f->taggm1 = f->taggm2 = f->sortm = 1e9;
  });
  // Forced middleware-heavy (SORT^M / order-preserving cursors).
  check_sorted([](cost::CostFactors* f) {
    f->taggd1 = f->taggd2 = f->sortd = f->scand = 1e9;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderSemanticsTest,
                         ::testing::Values(2, 13, 59));

TEST(IntegrationTest, EngineStatementCountObservability) {
  const RandomRelation rel = MakeRelation(101, 100, 5, 50);
  dbms::Engine db;
  Load(&db, "R", rel);
  const uint64_t before = db.statements_executed();
  Middleware mw(&db, FastConfig());
  ASSERT_TRUE(mw.Query("TEMPORAL SELECT G, T1, T2, COUNT(G) AS C FROM R "
                       "GROUP BY G OVER TIME ORDER BY G")
                  .ok());
  // At least the statistics queries and one SELECT reached the DBMS.
  EXPECT_GT(db.statements_executed(), before);
}

}  // namespace
}  // namespace tango
