// Seeded fuzz of the wire codec: frames that lose their tail or arrive
// with flipped bits must be rejected with a clean Status — never decoded
// into garbage rows, never UB (the suite runs under ASan/UBSan via
// scripts/check.sh). Deterministic: one SplitMix64 stream per test.

#include <cstdint>
#include <string>
#include <vector>

#include "common/wire.h"
#include "gtest/gtest.h"

// GCC 12's -Wmaybe-uninitialized misfires on the string alternative of the
// Value variant when vector growth is inlined into the tuple generators;
// the very point of this file is that the ASan/UBSan legs prove the real
// initialization story.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace tango {
namespace {

// SplitMix64: tiny, seedable, good enough for fuzz-input generation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

Tuple RandomTuple(Rng* rng) {
  Tuple t;
  const size_t arity = 1 + rng->Below(6);
  t.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    switch (rng->Below(4)) {
      case 0:
        t.push_back(Value::Null());
        break;
      case 1:
        t.push_back(Value(static_cast<int64_t>(rng->Next())));
        break;
      case 2:
        t.push_back(Value(static_cast<double>(rng->Next()) / 7.0));
        break;
      default: {
        std::string s(rng->Below(24), 'x');
        for (char& c : s) c = static_cast<char>('a' + rng->Below(26));
        t.push_back(Value(std::move(s)));
        break;
      }
    }
  }
  return t;
}

std::vector<uint8_t> RandomBatch(Rng* rng, std::vector<Tuple>* tuples) {
  WireWriter writer;
  const size_t n = 1 + rng->Below(20);
  if (tuples != nullptr) tuples->reserve(tuples->size() + n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t = RandomTuple(rng);
    writer.PutTuple(t);
    if (tuples != nullptr) tuples->push_back(std::move(t));
  }
  return writer.Take();
}

// Decodes as many tuples as the buffer yields; any failure must be a clean
// Status (the harness is what catches UB).
size_t DrainTuples(const uint8_t* data, size_t len) {
  WireReader reader(data, len);
  size_t decoded = 0;
  while (!reader.AtEnd()) {
    auto t = reader.GetTuple();
    if (!t.ok()) {
      EXPECT_FALSE(t.status().message().empty());
      break;
    }
    ++decoded;
  }
  return decoded;
}

TEST(WireFuzzTest, RoundTripSurvivesSealing) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Tuple> tuples;
    const std::vector<uint8_t> payload = RandomBatch(&rng, &tuples);
    const std::vector<uint8_t> framed = WireFrame::Seal(payload);

    const uint8_t* body = nullptr;
    size_t len = 0;
    ASSERT_TRUE(WireFrame::Check(framed, &body, &len).ok());
    ASSERT_EQ(len, payload.size());

    WireReader reader(body, len);
    for (const Tuple& expect : tuples) {
      auto got = reader.GetTuple();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.ValueOrDie().size(), expect.size());
      for (size_t c = 0; c < expect.size(); ++c) {
        EXPECT_EQ(got.ValueOrDie()[c].Compare(expect[c]), 0);
      }
    }
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(WireFuzzTest, TruncatedFramesAreRejected) {
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> framed = WireFrame::Seal(RandomBatch(&rng, nullptr));
    // Any strictly shorter prefix must fail the frame check: the length
    // field no longer matches (or the header itself is gone).
    framed.resize(rng.Below(framed.size()));
    const uint8_t* body = nullptr;
    size_t len = 0;
    const Status s = WireFrame::Check(framed, &body, &len);
    ASSERT_FALSE(s.ok()) << "truncated to " << framed.size() << " bytes";
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
}

TEST(WireFuzzTest, BitFlippedFramesAreRejected) {
  Rng rng(0xCAFE);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> framed = WireFrame::Seal(RandomBatch(&rng, nullptr));
    const size_t byte = rng.Below(framed.size());
    framed[byte] ^= static_cast<uint8_t>(1u << rng.Below(8));
    const uint8_t* body = nullptr;
    size_t len = 0;
    // CRC-32 detects every single-bit flip in the payload; a flip in the
    // header corrupts the declared length or the stored checksum.
    const Status s = WireFrame::Check(framed, &body, &len);
    ASSERT_FALSE(s.ok()) << "flip at byte " << byte;
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
}

TEST(WireFuzzTest, ReaderSurvivesGarbageBuffers) {
  Rng rng(0xD15EA5E);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> buf(rng.Below(256));
    for (uint8_t& b : buf) b = static_cast<uint8_t>(rng.Next());
    // Must terminate with clean statuses, whatever the bytes decode to.
    DrainTuples(buf.data(), buf.size());

    WireReader reader(buf.data(), buf.size());
    (void)reader.GetU8();
    (void)reader.GetU32();
    (void)reader.GetI64();
    (void)reader.GetDouble();
    (void)reader.GetString();
    (void)reader.GetValue();
  }
}

TEST(WireFuzzTest, ReaderSurvivesMutatedPayloads) {
  // A payload that passes no frame check (simulating a bug upstream) still
  // must not crash the decoder: every underrun and bad tag is a Status.
  Rng rng(0x5EED);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> payload = RandomBatch(&rng, nullptr);
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      if (payload.empty()) break;
      switch (rng.Below(3)) {
        case 0:  // bit flip
          payload[rng.Below(payload.size())] ^=
              static_cast<uint8_t>(1u << rng.Below(8));
          break;
        case 1:  // truncate
          payload.resize(rng.Below(payload.size() + 1));
          break;
        default:  // overwrite a byte (can forge huge lengths/arities)
          payload[rng.Below(payload.size())] =
              static_cast<uint8_t>(rng.Next());
          break;
      }
    }
    DrainTuples(payload.data(), payload.size());
  }
}

TEST(WireFuzzTest, ForgedHugeArityDoesNotAllocate) {
  // A forged tuple arity of ~4 billion must fail on underrun, not attempt
  // a matching up-front allocation.
  WireWriter writer;
  writer.PutU32(0xFFFFFFFFu);
  writer.PutU8(1);  // one int value, then the buffer ends
  writer.PutI64(42);
  WireReader reader(writer.buffer());
  auto t = reader.GetTuple();
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);

  // Same for a forged string length.
  WireWriter w2;
  w2.PutU8(3);  // kTagString
  w2.PutU32(0xFFFFFFF0u);
  w2.PutU8('x');
  WireReader r2(w2.buffer());
  auto v = r2.GetValue();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Block-frame codec: the column-packed RowBlock encoding that carries every
// prefetch batch and bulk-load chunk, under the same damage model.

RowBlock RandomRowBlock(Rng* rng) {
  const size_t arity = 1 + rng->Below(5);
  const size_t rows = 1 + rng->Below(30);
  RowBlock block(rows);
  for (size_t r = 0; r < rows; ++r) {
    Tuple t;
    t.reserve(arity);
    for (size_t c = 0; c < arity; ++c) {
      switch (rng->Below(4)) {
        case 0:
          t.push_back(Value::Null());
          break;
        case 1:
          t.push_back(Value(static_cast<int64_t>(rng->Next())));
          break;
        case 2:
          t.push_back(Value(static_cast<double>(rng->Next()) / 7.0));
          break;
        default: {
          std::string s(rng->Below(24), 'x');
          for (char& ch : s) ch = static_cast<char>('a' + rng->Below(26));
          t.push_back(Value(std::move(s)));
          break;
        }
      }
    }
    block.AppendRow(std::move(t));
  }
  return block;
}

TEST(WireBlockFuzzTest, BlockRoundTripSurvivesSealing) {
  Rng rng(0xB10C);
  for (int iter = 0; iter < 200; ++iter) {
    const RowBlock block = RandomRowBlock(&rng);
    WireWriter writer;
    writer.PutRowBlock(block);
    const std::vector<uint8_t> framed = WireFrame::Seal(writer.buffer());

    const uint8_t* body = nullptr;
    size_t len = 0;
    ASSERT_TRUE(WireFrame::Check(framed, &body, &len).ok());
    WireReader reader(body, len);
    RowBlock decoded;
    auto n = reader.GetRowBlock(&decoded);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(n.ValueOrDie(), block.rows());
    ASSERT_EQ(decoded.columns(), block.columns());
    EXPECT_TRUE(reader.AtEnd());
    for (size_t r = 0; r < block.rows(); ++r) {
      for (size_t c = 0; c < block.columns(); ++c) {
        EXPECT_EQ(decoded.At(r, c).Compare(block.At(r, c)), 0)
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(WireBlockFuzzTest, DamagedBlockFramesAreRejected) {
  Rng rng(0xB10C2);
  for (int iter = 0; iter < 400; ++iter) {
    WireWriter writer;
    writer.PutRowBlock(RandomRowBlock(&rng));
    std::vector<uint8_t> framed = WireFrame::Seal(writer.buffer());
    if (rng.Below(2) == 0) {
      framed.resize(rng.Below(framed.size()));  // truncation, mid-block
    } else {
      framed[rng.Below(framed.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));  // CRC mismatch
    }
    const uint8_t* body = nullptr;
    size_t len = 0;
    const Status s = WireFrame::Check(framed, &body, &len);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
}

TEST(WireBlockFuzzTest, MutatedBlockPayloadsDecodeCleanlyOrFail) {
  // Payload damage past the frame check (simulating an upstream bug) must
  // surface as a Status from GetRowBlock, never UB or garbage growth.
  Rng rng(0xB10C3);
  for (int iter = 0; iter < 500; ++iter) {
    WireWriter writer;
    writer.PutRowBlock(RandomRowBlock(&rng));
    std::vector<uint8_t> payload = writer.Take();
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      if (payload.empty()) break;
      switch (rng.Below(3)) {
        case 0:
          payload[rng.Below(payload.size())] ^=
              static_cast<uint8_t>(1u << rng.Below(8));
          break;
        case 1:
          payload.resize(rng.Below(payload.size() + 1));
          break;
        default:
          payload[rng.Below(payload.size())] =
              static_cast<uint8_t>(rng.Next());
          break;
      }
    }
    WireReader reader(payload.data(), payload.size());
    RowBlock decoded;
    auto n = reader.GetRowBlock(&decoded);
    if (!n.ok()) {
      EXPECT_FALSE(n.status().message().empty());
    }
  }
}

TEST(WireBlockFuzzTest, ForgedBlockHeaderDoesNotAllocate) {
  // rows=2^31, cols=2^31 would be 2^62 cells; the decoder must reject the
  // header against the actual remaining bytes before reserving anything.
  WireWriter writer;
  writer.PutU32(0x80000000u);
  writer.PutU32(0x80000000u);
  writer.PutU8(1);
  WireReader reader(writer.buffer());
  RowBlock decoded;
  auto n = reader.GetRowBlock(&decoded);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIOError);

  // rows>0 with cols=0 declares rows that cannot carry data: reject.
  WireWriter w2;
  w2.PutU32(5);
  w2.PutU32(0);
  WireReader r2(w2.buffer());
  auto n2 = r2.GetRowBlock(&decoded);
  ASSERT_FALSE(n2.ok());
  EXPECT_EQ(n2.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tango
