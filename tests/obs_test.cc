// Invariant tests for the observability layer: counters stay monotone,
// histogram quantiles bracket the recorded values, concurrent recording is
// race-free (the TSan leg of check.sh runs this file), the registry's
// expect-zero leak warnings fire and clear correctly, and the fault-matrix
// slice at the bottom proves retries and degradations are counted exactly
// once by the middleware's metric series.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/instrument.h"
#include "exec/transfer.h"
#include "obs/metrics.h"
#include "tango/middleware.h"

namespace tango {
namespace {

TEST(MetricsTest, CounterMonotoneAndStable) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.events");
  EXPECT_EQ(c.load(), 0u);
  ++c;
  EXPECT_EQ(c.load(), 1u);
  c.Increment(41);
  EXPECT_EQ(c.load(), 42u);
  // Same name, same instrument: pointers cached by hot paths stay valid.
  EXPECT_EQ(&registry.counter("test.events"), &c);
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    ++c;
    const uint64_t now = c.load();
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(MetricsTest, GaugeBalances) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("test.depth");
  g.Increment();
  g.Increment(3);
  EXPECT_EQ(g.load(), 4);
  g.Decrement(4);
  EXPECT_EQ(g.load(), 0);
  g.Set(-7);
  EXPECT_EQ(g.load(), -7);
}

TEST(MetricsTest, HistogramQuantilesBracketRecordedValues) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("test.latency");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);

  std::vector<double> values;
  Rng rng(0xab5e);
  for (int i = 0; i < 1000; ++i) {
    // Spread over several orders of magnitude, like query latencies.
    const double v = 1e-6 * static_cast<double>(1 + rng.Uniform(0, 1000000));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const double lo = values.front();
  const double hi = values.back();

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), lo);
  EXPECT_DOUBLE_EQ(h.max(), hi);
  EXPECT_GE(h.Mean(), lo);
  EXPECT_LE(h.Mean(), hi);

  double prev = 0;
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double estimate = h.Quantile(q);
    // Every quantile estimate brackets the recorded range and is monotone.
    EXPECT_GE(estimate, lo) << "q=" << q;
    EXPECT_LE(estimate, hi) << "q=" << q;
    EXPECT_GE(estimate, prev) << "q=" << q;
    prev = estimate;
    // The log-bucket upper edge can overshoot the true quantile by at most
    // one bucket (a factor of 2), never undershoot below the bucket.
    const double exact =
        values[std::min(values.size() - 1,
                        static_cast<size_t>(q * static_cast<double>(
                                                    values.size())))];
    EXPECT_LE(exact, estimate * 2.000001) << "q=" << q;
  }
}

TEST(MetricsTest, DumpTextListsEverySeries) {
  obs::MetricsRegistry registry;
  registry.counter("retry.tm").Increment(3);
  registry.gauge("pool.queue_depth").Set(2);
  registry.histogram("query.latency_seconds").Record(0.25);
  const std::string dump = registry.DumpText();
  EXPECT_NE(dump.find("counter retry.tm 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("gauge pool.queue_depth 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("histogram query.latency_seconds count=1"),
            std::string::npos)
      << dump;
}

TEST(MetricsTest, ConcurrentRecordingIsExactAndRaceFree) {
  // Run under TSan by the check.sh obs leg: writers on all three instrument
  // kinds from many threads, exact totals at the end.
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.concurrent");
  obs::Gauge& g = registry.gauge("test.inflight", /*expect_zero_at_exit=*/true);
  obs::Histogram& h = registry.histogram("test.dist");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &c, &g, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Increment();
        ++c;
        h.Record(1e-3 * static_cast<double>(t + 1));
        // Lookups race with other threads' lookups of the same names.
        registry.counter("test.concurrent").Increment(0);
        g.Decrement();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(c.load(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(g.load(), 0);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3 * kThreads);
  EXPECT_TRUE(registry.LeakWarnings().empty());
}

TEST(MetricsTest, LeakWarningsFireForUnbalancedExpectZeroGauges) {
  obs::MetricsRegistry registry;
  registry.gauge("test.balanced", /*expect_zero_at_exit=*/true);
  obs::Gauge& leaky = registry.gauge("test.leaky", /*expect_zero_at_exit=*/true);
  obs::Gauge& free_running = registry.gauge("test.free");
  free_running.Set(99);  // not expect-zero: never warns
  leaky.Increment(2);

  std::vector<std::string> warnings = registry.LeakWarnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("metrics-registry leak"), std::string::npos);
  EXPECT_NE(warnings[0].find("test.leaky"), std::string::npos);

  // The expect-zero flag sticks even when a later lookup omits it.
  registry.gauge("test.leaky").Increment();
  EXPECT_EQ(registry.LeakWarnings().size(), 1u);

  // Balance the gauge before the registry dies: its destructor prints leak
  // warnings to stderr, and check.sh greps test logs for exactly that.
  leaky.Decrement(3);
  EXPECT_TRUE(registry.LeakWarnings().empty());
}

TEST(MetricsTest, RecoveryCountersAreRegistryBacked) {
  // Default-constructed: a private registry, counters start at zero
  // (recovery_test relies on exact equality against fresh instances).
  RecoveryCounters counters;
  EXPECT_EQ(counters.tm_retries.load(), 0u);
  ++counters.tm_retries;
  ++counters.downgrades;
  counters.td_retries.Increment(2);
  EXPECT_EQ(counters.transfer_retries(), 3u);
  const std::string dump = counters.registry().DumpText();
  EXPECT_NE(dump.find("counter retry.tm 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("counter retry.td 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("counter recovery.downgrades 1"), std::string::npos)
      << dump;

  // Bound to an external registry: no private one is created and the
  // counters alias the shared series.
  obs::MetricsRegistry shared;
  RecoveryCounters bound(&shared);
  ++bound.drop_retries;
  EXPECT_EQ(shared.counter("retry.drop").load(), 1u);
  EXPECT_EQ(&bound.registry(), &shared);
}

TEST(MetricsTest, SelfSecondsClampsConcurrentChildOverlap) {
  // Regression for the negative-subtraction clamp: with the parallel
  // transfer drain a child's inclusive time can exceed its parent's (the
  // child runs on the prefetch thread concurrently with the parent), and
  // the self-time subtraction must clamp at zero instead of going negative.
  exec::TimingSink sink;
  exec::AlgorithmTiming parent;
  parent.label = "TAGGR^M";
  parent.inclusive_seconds = 0.010;
  parent.child_ids = {1};
  sink.push_back(parent);
  exec::AlgorithmTiming child;
  child.label = "TRANSFER^M";
  child.inclusive_seconds = 0.025;  // overlapped: larger than the parent
  sink.push_back(child);

  EXPECT_EQ(exec::SelfSeconds(sink, 0), 0.0);
  EXPECT_DOUBLE_EQ(exec::SelfSeconds(sink, 1), 0.025);

  // Normal nesting still subtracts.
  sink[1].inclusive_seconds = 0.004;
  EXPECT_DOUBLE_EQ(exec::SelfSeconds(sink, 0), 0.006);
}

TEST(MetricsTest, ThreadPoolQueueDepthGaugeDrainsToZero) {
  obs::MetricsRegistry registry;
  obs::Gauge& depth = registry.gauge("pool.queue_depth",
                                     /*expect_zero_at_exit=*/true);
  {
    common::ThreadPool pool(2, &depth);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([i] { return i; }));
    }
    for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i);
  }
  EXPECT_EQ(depth.load(), 0);
  EXPECT_TRUE(registry.LeakWarnings().empty());
}

// ---------------------------------------------------------------------------
// Middleware-level: the metric series the ISSUE promises, and the
// fault-matrix slice proving retries/degradations count exactly once.

struct RandomRelation {
  std::vector<Tuple> rows;  // (G, V, T1, T2)
};

RandomRelation MakeRelation(uint64_t seed, size_t n, int64_t groups,
                            int64_t horizon) {
  Rng rng(seed);
  RandomRelation rel;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rel.rows.push_back({Value(rng.Uniform(1, groups)),
                        Value(rng.Uniform(0, 50)), Value(t1),
                        Value(t1 + rng.Uniform(1, horizon / 4))});
  }
  return rel;
}

void Load(dbms::Engine* db, const std::string& table,
          const RandomRelation& rel) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)")
          .ok());
  ASSERT_TRUE(db->BulkLoad(table, rel.rows).ok());
  ASSERT_TRUE(db->Execute("ANALYZE " + table).ok());
}

Middleware::Config StableConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;
  return config;
}

const char* kAggrQuery =
    "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
    "GROUP BY G OVER TIME ORDER BY G, T1";

uint64_t CounterValue(Middleware* mw, const std::string& name) {
  return mw->metrics().counter(name).load();
}

TEST(MiddlewareMetricsTest, QueryExecutionSeriesPopulate) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(7, 300, 8, 80));
  Middleware mw(&db, StableConfig());

  auto r = mw.Query(kAggrQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(CounterValue(&mw, "query.executions"), 1u);
  EXPECT_EQ(CounterValue(&mw, "query.failures"), 0u);
  EXPECT_EQ(mw.metrics().gauge("query.active").load(), 0);
  EXPECT_GT(CounterValue(&mw, "wire.statements"), 0u);
  EXPECT_GT(CounterValue(&mw, "wire.bytes_to_server"), 0u);
  EXPECT_GT(CounterValue(&mw, "wire.bytes_to_client"), 0u);
  EXPECT_GT(CounterValue(&mw, "transfer.rows_to_middleware"), 0u);
  obs::Histogram& latency = mw.metrics().histogram("query.latency_seconds");
  EXPECT_EQ(latency.count(), 1u);
  EXPECT_GT(latency.max(), 0.0);
  EXPECT_TRUE(mw.metrics().LeakWarnings().empty());

  // The dump carries every promised family on one registry.
  const std::string dump = mw.metrics().DumpText();
  for (const char* series :
       {"wire.statements", "transfer.rows_to_middleware", "retry.tm",
        "recovery.downgrades", "query.latency_seconds", "query.executions"}) {
    EXPECT_NE(dump.find(series), std::string::npos) << series << "\n" << dump;
  }
}

TEST(MiddlewareMetricsTest, FailedQueryCountsOnceAndActiveDrains) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(11, 100, 5, 50));
  Middleware::Config config = StableConfig();
  config.degrade_on_failure = false;
  Middleware mw(&db, config);
  auto control = std::make_shared<QueryControl>();
  control->Cancel();

  auto r = mw.Query(kAggrQuery, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(CounterValue(&mw, "query.executions"), 1u);
  EXPECT_EQ(CounterValue(&mw, "query.failures"), 1u);
  EXPECT_EQ(mw.metrics().gauge("query.active").load(), 0);
  EXPECT_TRUE(mw.metrics().LeakWarnings().empty());
}

TEST(MiddlewareMetricsTest, RetriesCountedExactlyOnce) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(3, 300, 8, 80));
  Middleware mw(&db, StableConfig());
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "SELECT";
  plan.times = 2;  // two transient failures within a budget of 4 attempts
  injector->Arm(plan);

  auto r = mw.Query(kAggrQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.ValueOrDie().degraded);
  // Exactly one count per injected failure — and the legacy accessor and
  // the registry series are the same underlying counter.
  EXPECT_EQ(CounterValue(&mw, "retry.tm"), 2u);
  EXPECT_EQ(mw.recovery_counters().tm_retries.load(), 2u);
  EXPECT_EQ(CounterValue(&mw, "recovery.downgrades"), 0u);
  EXPECT_EQ(injector->faults_fired(), 2u);
}

TEST(MiddlewareMetricsTest, DegradationCountedExactlyOnce) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(17, 250, 7, 70));
  Middleware::Config config = StableConfig();
  Middleware mw(&db, config);
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "SELECT";
  plan.times = config.retry.max_attempts;  // exhaust the budget, then clear
  injector->Arm(plan);

  auto r = mw.Query(kAggrQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().degraded);
  EXPECT_EQ(CounterValue(&mw, "recovery.downgrades"), 1u);
  EXPECT_EQ(CounterValue(&mw, "retry.tm"),
            static_cast<uint64_t>(config.retry.max_attempts - 1));
  // Both executions (chosen + degraded) counted; neither leaked "active".
  EXPECT_EQ(CounterValue(&mw, "query.executions"), 2u);
  EXPECT_EQ(CounterValue(&mw, "query.failures"), 1u);
  EXPECT_EQ(mw.metrics().gauge("query.active").load(), 0);
}

TEST(MiddlewareMetricsTest, TransferCacheHitAndMissSeries) {
  // Unit-level: two TRANSFER^M cursors sharing one statement through the
  // cache — the first materialization is the miss, the second a hit.
  dbms::Engine db;
  Load(&db, "R", MakeRelation(9, 80, 4, 40));
  dbms::WireConfig wc;
  wc.simulate_delay = false;
  dbms::Connection conn(&db, wc);
  const std::string sql = "SELECT G, V, T1, T2 FROM R";
  const Schema schema = conn.GetTableSchema("R").ValueOrDie();
  auto cache = std::make_shared<exec::TransferCache>();
  cache->MarkShared(sql);

  obs::MetricsRegistry registry;
  exec::TransferObservability hooks;
  hooks.rows_to_middleware = &registry.counter("transfer.rows_to_middleware");
  hooks.cache_hits = &registry.counter("transfer_cache.hits");
  hooks.cache_misses = &registry.counter("transfer_cache.misses");

  exec::TransferMCursor first(&conn, sql, schema, {}, cache);
  first.set_observability(hooks);
  ASSERT_TRUE(first.Init().ok());
  EXPECT_EQ(registry.counter("transfer_cache.misses").load(), 1u);
  EXPECT_EQ(registry.counter("transfer_cache.hits").load(), 0u);
  // The shared materialization counts every row exactly once.
  EXPECT_EQ(registry.counter("transfer.rows_to_middleware").load(), 80u);

  exec::TransferMCursor second(&conn, sql, schema, {}, cache);
  second.set_observability(hooks);
  ASSERT_TRUE(second.Init().ok());
  EXPECT_EQ(registry.counter("transfer_cache.hits").load(), 1u);
  EXPECT_EQ(registry.counter("transfer_cache.misses").load(), 1u);
  // Cache hits are served locally: no additional transfer rows.
  EXPECT_EQ(registry.counter("transfer.rows_to_middleware").load(), 80u);
}

TEST(MiddlewareMetricsTest, SharedRegistryAggregatesAcrossInstances) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(23, 150, 5, 50));
  obs::MetricsRegistry shared;
  Middleware::Config config = StableConfig();
  config.metrics = &shared;
  {
    Middleware a(&db, config);
    ASSERT_TRUE(a.Query(kAggrQuery).ok());
    Middleware b(&db, config);
    ASSERT_TRUE(b.Query(kAggrQuery).ok());
    EXPECT_EQ(&a.metrics(), &shared);
  }
  // Both instances fed the same series; the registry outlives them.
  EXPECT_EQ(shared.counter("query.executions").load(), 2u);
  EXPECT_TRUE(shared.LeakWarnings().empty());
}

}  // namespace
}  // namespace tango
