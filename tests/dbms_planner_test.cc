// Planner-focused DBMS tests: access-path selection, join-method forcing,
// and the executor behaviours the generated temporal SQL depends on.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dbms/engine.h"

namespace tango {
namespace dbms {
namespace {

/// A table of `n` rows: K in [0, distinct_k), V = row index, T in [0, n).
void LoadKv(Engine* db, const std::string& name, int n, int distinct_k) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + name + " (K INT, V INT, T INT)").ok());
  std::vector<Tuple> rows;
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i % distinct_k)),
                    Value(static_cast<int64_t>(i)),
                    Value(rng.Uniform(0, n))});
  }
  ASSERT_TRUE(db->BulkLoad(name, rows).ok());
}

TEST(PlannerTest, IndexChosenOnlyWhenSelective) {
  Engine db;
  LoadKv(&db, "R", 2000, 100);
  ASSERT_TRUE(db.Execute("CREATE INDEX IT ON R (T)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());

  // A narrow range is under the index threshold, a wide one is not; both
  // must return the same rows as each other and as a no-index baseline.
  for (const char* where : {"T >= 100 AND T < 140", "T >= 100 AND T < 1900"}) {
    auto with = db.Execute(std::string("SELECT V FROM R WHERE ") + where +
                           " ORDER BY V");
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    // Baseline through a fresh engine without the index.
    Engine plain;
    LoadKv(&plain, "R", 2000, 100);
    auto without = plain.Execute(std::string("SELECT V FROM R WHERE ") +
                                 where + " ORDER BY V");
    ASSERT_TRUE(without.ok());
    ASSERT_EQ(with.ValueOrDie().rows.size(), without.ValueOrDie().rows.size());
  }
}

TEST(PlannerTest, IndexEqualityLookup) {
  Engine db;
  LoadKv(&db, "R", 3000, 300);
  ASSERT_TRUE(db.Execute("CREATE INDEX IK ON R (K)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());
  auto r = db.Execute("SELECT V FROM R WHERE K = 7 ORDER BY V");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), 10u);  // 3000/300
  for (const Tuple& t : r.ValueOrDie().rows) {
    EXPECT_EQ(t[0].AsInt() % 300, 7);
  }
}

TEST(PlannerTest, ForcedJoinMethodsAgreeOnThreeWayJoin) {
  Engine db;
  LoadKv(&db, "A", 300, 30);
  LoadKv(&db, "B", 200, 30);
  LoadKv(&db, "C", 100, 30);
  ASSERT_TRUE(db.Execute("CREATE INDEX IBK ON B (K)").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX ICK ON C (K)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE").ok());
  const char* q =
      "SELECT A.V, B.V, C.V FROM A, B, C "
      "WHERE A.K = B.K AND B.K = C.K AND A.V < 50 AND B.V < 40 AND C.V < 30 "
      "ORDER BY A.V, B.V, C.V";
  std::vector<std::vector<Tuple>> results;
  for (auto m : {SessionConfig::JoinMethod::kAuto,
                 SessionConfig::JoinMethod::kHash,
                 SessionConfig::JoinMethod::kMerge,
                 SessionConfig::JoinMethod::kNestedLoop}) {
    db.config().forced_join = m;
    auto r = db.Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(r.ValueOrDie().rows);
  }
  db.config().forced_join = SessionConfig::JoinMethod::kAuto;
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size()) << "method " << i;
    for (size_t j = 0; j < results[i].size(); ++j) {
      for (size_t c = 0; c < results[i][j].size(); ++c) {
        EXPECT_EQ(results[i][j][c].Compare(results[0][j][c]), 0);
      }
    }
  }
  EXPECT_GT(results[0].size(), 0u);
}

TEST(PlannerTest, CrossJoinConjunctPlacement) {
  Engine db;
  LoadKv(&db, "A", 50, 10);
  LoadKv(&db, "B", 40, 10);
  // A non-equi cross conjunct must be evaluated as a join residual.
  auto r = db.Execute(
      "SELECT A.V, B.V FROM A, B WHERE A.K = B.K AND A.V + B.V < 20");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const Tuple& t : r.ValueOrDie().rows) {
    EXPECT_LT(t[0].AsInt() + t[1].AsInt(), 20);
  }
  EXPECT_GT(r.ValueOrDie().rows.size(), 0u);
}

TEST(PlannerTest, PureInequalityJoinFallsBackToNestedLoop) {
  Engine db;
  LoadKv(&db, "A", 60, 6);
  LoadKv(&db, "B", 50, 6);
  auto r = db.Execute("SELECT A.V, B.V FROM A, B WHERE A.V < B.V");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  size_t expected = 0;
  for (int a = 0; a < 60; ++a) {
    for (int b = 0; b < 50; ++b) {
      if (a < b) ++expected;
    }
  }
  EXPECT_EQ(r.ValueOrDie().rows.size(), expected);
}

TEST(PlannerTest, NestedSubqueryChains) {
  Engine db;
  LoadKv(&db, "R", 500, 50);
  auto r = db.Execute(
      "SELECT M FROM "
      "(SELECT K, MAX(V) AS M FROM "
      "  (SELECT K, V FROM R WHERE V >= 100) X "
      " GROUP BY K) Y "
      "WHERE M > 490 ORDER BY M");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Max V per K for V in [100, 500): K = V % 50, so max per K is in
  // [450, 500); those > 490 are 491..499 -> 9 rows.
  EXPECT_EQ(r.ValueOrDie().rows.size(), 9u);
}

TEST(PlannerTest, GroupByQualifiedColumns) {
  Engine db;
  LoadKv(&db, "A", 100, 5);
  LoadKv(&db, "B", 100, 5);
  auto r = db.Execute(
      "SELECT A.K, COUNT(*) AS C FROM A, B WHERE A.K = B.K "
      "GROUP BY A.K ORDER BY A.K");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.ValueOrDie().rows.size(), 5u);
  // 20 rows per key on each side -> 400 join pairs per key.
  EXPECT_EQ(r.ValueOrDie().rows[0][1].AsInt(), 400);
}

TEST(PlannerTest, OrderByDescAndMixedDirections) {
  Engine db;
  LoadKv(&db, "R", 50, 7);
  auto r = db.Execute("SELECT K, V FROM R ORDER BY K DESC, V ASC");
  ASSERT_TRUE(r.ok());
  const auto& rows = r.ValueOrDie().rows;
  for (size_t i = 1; i < rows.size(); ++i) {
    const int c = rows[i - 1][0].Compare(rows[i][0]);
    EXPECT_GE(c, 0);
    if (c == 0) {
      EXPECT_LE(rows[i - 1][1].Compare(rows[i][1]), 0);
    }
  }
}

TEST(PlannerTest, ConstantPredicatePushesAnywhere) {
  Engine db;
  LoadKv(&db, "A", 10, 2);
  LoadKv(&db, "B", 10, 2);
  auto t = db.Execute("SELECT A.V FROM A, B WHERE A.K = B.K AND 1 = 1");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto f = db.Execute("SELECT A.V FROM A, B WHERE A.K = B.K AND 1 = 2");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_GT(t.ValueOrDie().rows.size(), 0u);
  EXPECT_EQ(f.ValueOrDie().rows.size(), 0u);
}

TEST(PlannerTest, EmptyTablesFlowThroughEveryOperator) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE E (K INT, V INT, T INT)").ok());
  LoadKv(&db, "R", 20, 4);
  EXPECT_EQ(db.Execute("SELECT K FROM E").ValueOrDie().rows.size(), 0u);
  EXPECT_EQ(db.Execute("SELECT E.K FROM E, R WHERE E.K = R.K")
                .ValueOrDie()
                .rows.size(),
            0u);
  EXPECT_EQ(db.Execute("SELECT K, COUNT(*) AS C FROM E GROUP BY K")
                .ValueOrDie()
                .rows.size(),
            0u);
  EXPECT_EQ(db.Execute("SELECT DISTINCT K FROM E").ValueOrDie().rows.size(),
            0u);
  EXPECT_EQ(db.Execute("SELECT K FROM E UNION SELECT K FROM E")
                .ValueOrDie()
                .rows.size(),
            0u);
  EXPECT_EQ(db.Execute("SELECT K FROM E ORDER BY K").ValueOrDie().rows.size(),
            0u);
}

TEST(PlannerTest, UnionMixedDistinctAndAll) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE U (X INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO U VALUES (1), (1), (2)").ok());
  // Mixed chain: any non-ALL link dedups the whole chain (documented
  // simplification; our generated SQL never mixes them).
  auto r = db.Execute(
      "SELECT X FROM U UNION ALL SELECT X FROM U UNION SELECT X FROM U");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), 2u);
}

TEST(PlannerTest, GreatestLeastInProjections) {
  Engine db;
  LoadKv(&db, "R", 10, 3);
  auto r = db.Execute(
      "SELECT GREATEST(K, 1) AS G, LEAST(V, 5) AS L FROM R ORDER BY V");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.ValueOrDie().rows[0][0].AsInt(), 1);
  EXPECT_LE(r.ValueOrDie().rows[9][1].AsInt(), 5);
}

}  // namespace
}  // namespace dbms
}  // namespace tango
