#include <gtest/gtest.h>

#include "optimizer/memo.h"
#include "sql/parser.h"

namespace tango {
namespace optimizer {
namespace {

Schema PosSchema() {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "PAYRATE", DataType::kDouble},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

stats::RelStats PosStats() {
  stats::RelStats rel;
  rel.cardinality = 10000;
  rel.avg_tuple_bytes = 50;
  stats::ColumnInfo c;
  c.numeric = true;
  c.min = 0;
  c.max = 1000;
  c.num_distinct = 500;
  rel.columns = {c, c, c, c};
  return rel;
}

Memo MakeMemo() {
  Memo memo;
  memo.set_scan_stats_provider(
      [](const std::string&) -> Result<stats::RelStats> { return PosStats(); });
  return memo;
}

ExprPtr Pred(const std::string& text) {
  return sql::Parser::ParseSelect("SELECT X FROM T WHERE " + text)
      .ValueOrDie()
      ->where;
}

/// Counts elements of the given kind across all classes.
size_t CountKind(const Memo& memo, algebra::OpKind kind) {
  size_t n = 0;
  for (size_t g = 0; g < memo.num_groups(); ++g) {
    for (const MExpr& e : memo.group(g).exprs) {
      if (e.op->kind == kind) ++n;
    }
  }
  return n;
}

TEST(MemoTest, CopyInBuildsOneClassPerOperator) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto sel = algebra::Select(scan, Pred("PAYRATE > 10")).ValueOrDie();
  auto sorted = algebra::Sort(sel, {{"POSID", true}}).ValueOrDie();
  Memo memo = MakeMemo();
  auto root = memo.CopyIn(sorted);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(memo.num_groups(), 3u);
  EXPECT_EQ(memo.num_exprs(), 3u);
  // The root group's derived stats come from the selection's selectivity.
  EXPECT_LT(memo.group(root.ValueOrDie()).stats.cardinality, 10000);
}

TEST(MemoTest, TransfersAreRejected) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto tm = algebra::TransferM(scan).ValueOrDie();
  Memo memo = MakeMemo();
  EXPECT_FALSE(memo.CopyIn(tm).ok());
}

TEST(MemoTest, SelectMergeFusesStackedSelections) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto s1 = algebra::Select(scan, Pred("PAYRATE > 10")).ValueOrDie();
  auto s2 = algebra::Select(s1, Pred("POSID < 100")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(s2).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // The top class must now contain a fused Select over the scan class.
  bool fused = false;
  for (const MExpr& e : memo.group(2).exprs) {
    if (e.op->kind == algebra::OpKind::kSelect && e.children[0] == 0) {
      fused = true;
    }
  }
  EXPECT_TRUE(fused) << memo.ToString();
}

TEST(MemoTest, SelectionPushesBelowJoin) {
  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto join = algebra::Join(a, b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto sel = algebra::Select(join, Pred("A.PAYRATE > 10")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  const size_t selects_before = CountKind(memo, algebra::OpKind::kSelect);
  ASSERT_TRUE(memo.Explore().ok());
  // A new Select-below-join variant (σ over the A scan) must exist.
  EXPECT_GT(CountKind(memo, algebra::OpKind::kSelect), selects_before)
      << memo.ToString();
  EXPECT_GT(CountKind(memo, algebra::OpKind::kJoin), 1u) << memo.ToString();
}

TEST(MemoTest, WindowPredicateReplicatesIntoTJoinArguments) {
  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto tjoin = algebra::TJoin(a, b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto sel =
      algebra::Select(tjoin, Pred("T1 < 800 AND T2 > 200")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // Both scan classes acquire σ_window children, and the top keeps the
  // window selection (it is a reducer, not a replacement).
  size_t scans_with_window = 0;
  for (size_t g = 0; g < memo.num_groups(); ++g) {
    for (const MExpr& e : memo.group(g).exprs) {
      if (e.op->kind == algebra::OpKind::kSelect && e.children[0] <= 1) {
        ++scans_with_window;
      }
    }
  }
  EXPECT_GE(scans_with_window, 2u) << memo.ToString();
}

TEST(MemoTest, WindowReplicationThroughTAggregate) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "C"}})
                 .ValueOrDie();
  auto sel = algebra::Select(agg, Pred("T1 < 800 AND T2 > 200")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // The scan class (0) gains a filtered child class, and an aggregation
  // over it appears — the Query-2 Plan-1-vs-Plan-5 distinction.
  EXPECT_GT(CountKind(memo, algebra::OpKind::kTAggregate), 1u)
      << memo.ToString();
}

TEST(MemoTest, GroupAttributeSelectionCommutesThroughTAggregate) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "C"}})
                 .ValueOrDie();
  auto sel = algebra::Select(agg, Pred("POSID = 7")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // σ_{POSID=7} commutes below ξ: the top class gains a TAggregate element
  // directly (not wrapped in the selection).
  bool direct_agg_at_top = false;
  const size_t top = memo.num_groups() >= 3 ? 2 : memo.num_groups() - 1;
  for (const MExpr& e : memo.group(top).exprs) {
    if (e.op->kind == algebra::OpKind::kTAggregate) direct_agg_at_top = true;
  }
  EXPECT_TRUE(direct_agg_at_top) << memo.ToString();
}

TEST(MemoTest, SelectProjectCommute) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto proj = algebra::Project(scan, {{Expr::ColumnRef("POSID"), "PID"},
                                      {Expr::ColumnRef("PAYRATE"), "PAY"}})
                  .ValueOrDie();
  auto sel = algebra::Select(proj, Pred("PAY > 10")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // E1: a projection over σ_{PAYRATE>10}(scan) appears in the top class.
  bool commuted = false;
  for (size_t g = 0; g < memo.num_groups(); ++g) {
    for (const MExpr& e : memo.group(g).exprs) {
      if (e.op->kind == algebra::OpKind::kSelect &&
          e.op->predicate->ToString().find("PAYRATE") != std::string::npos) {
        commuted = true;
      }
    }
  }
  EXPECT_TRUE(commuted) << memo.ToString();
}

TEST(MemoTest, JoinCommutativityAddsRestoringProjection) {
  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto join = algebra::Join(a, b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(join).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // E2: the commuted join lives in a new class; the original class gains a
  // projection element restoring the column order.
  EXPECT_EQ(CountKind(memo, algebra::OpKind::kJoin), 2u) << memo.ToString();
  EXPECT_GE(CountKind(memo, algebra::OpKind::kProject), 1u) << memo.ToString();
}

TEST(MemoTest, SelectionCommutesBelowCoalescingWhenPeriodFree) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto coal = algebra::Coalesce(scan).ValueOrDie();
  auto sel = algebra::Select(coal, Pred("POSID = 3")).ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  ASSERT_TRUE(memo.Explore().ok());
  // Vassilakis: coal(σ_{POSID=3}(scan)) joins the top class.
  bool commuted = false;
  for (const MExpr& e : memo.group(2).exprs) {
    if (e.op->kind == algebra::OpKind::kCoalesce) commuted = true;
  }
  EXPECT_TRUE(commuted) << memo.ToString();

  // A period predicate must NOT commute.
  auto sel_t = algebra::Select(coal, Pred("T1 < 500")).ValueOrDie();
  Memo memo2 = MakeMemo();
  ASSERT_TRUE(memo2.CopyIn(sel_t).ok());
  ASSERT_TRUE(memo2.Explore().ok());
  for (size_t g = 0; g < memo2.num_groups(); ++g) {
    for (const MExpr& e : memo2.group(g).exprs) {
      if (e.op->kind == algebra::OpKind::kSelect) {
        // The only selection stays above the coalescing.
        EXPECT_EQ(memo2.group(e.children[0]).exprs[0].op->kind,
                  algebra::OpKind::kCoalesce)
            << memo2.ToString();
      }
    }
  }
}

TEST(MemoTest, ExplorationIsBoundedAndIdempotent) {
  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto tjoin = algebra::TJoin(a, b, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto sel = algebra::Select(
                 tjoin, Pred("T1 < 800 AND T2 > 200 AND A.PAYRATE > 10"))
                 .ValueOrDie();
  Memo memo = MakeMemo();
  ASSERT_TRUE(memo.CopyIn(sel).ok());
  ASSERT_TRUE(memo.Explore().ok());
  const size_t groups = memo.num_groups();
  const size_t exprs = memo.num_exprs();
  EXPECT_LT(groups, 100u);
  EXPECT_LT(exprs, 300u);
  // A second exploration adds nothing (saturation).
  auto more = memo.Explore();
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(more.ValueOrDie(), 0u);
  EXPECT_EQ(memo.num_groups(), groups);
  EXPECT_EQ(memo.num_exprs(), exprs);
}

}  // namespace
}  // namespace optimizer
}  // namespace tango
