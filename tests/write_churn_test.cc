// Temporal-update churn against live queries (the ISSUE-8 durability
// satellite): a WriterGenerator streams BEGIN / close-version UPDATE /
// INSERT / COMMIT-or-ROLLBACK transactions against POSITION while the
// middleware runs the paper's four query shapes on another session.
//
// The concurrency itself is the point under ASan/TSan; on top of it the
// test checks three differentials:
//   - quiesced durable engine vs a fresh volatile engine bulk-loaded with
//     the same rows: all four queries return identical row multisets;
//   - reopen differential: destroying the durable engine and recovering
//     from its WAL reproduces the exact pre-close table;
//   - statistics staleness: churn drifts POSITION's modification epoch, and
//     RefreshStatisticsIfStale re-collects (and re-fingerprints cached
//     plans for) exactly the drifted tables.

#include <gtest/gtest.h>

#include <filesystem>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tango/middleware.h"
#include "workload/uis.h"
#include "workload/writer.h"

namespace tango {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("tango_churn_" + tag + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

Middleware::Config ChurnConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;  // keep plan shapes fixed across the differentials
  return config;
}

// The four paper query shapes, adapted to the churn tables.
const char* const kQueries[] = {
    // Q1: temporal aggregation.
    "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
    "GROUP BY PosID OVER TIME ORDER BY PosID",
    // Q2: temporal selection with a value predicate.
    "TEMPORAL SELECT PosID, EmpName FROM POSITION "
    "WHERE OVERLAPS PERIOD (DATE '1995-01-01', DATE '1998-01-01') "
    "AND PayRate > 10",
    // Q3: temporal self-join.
    "TEMPORAL SELECT A.PosID, A.EmpName, B.EmpName FROM POSITION A, "
    "POSITION B WHERE A.PosID = B.PosID",
    // Q4: mixed join with the nontemporal EMPLOYEE.
    "TEMPORAL SELECT PosID, Addr FROM POSITION P, EMPLOYEE E "
    "WHERE P.EmpName = E.EmpName",
};

std::vector<Tuple> EmployeeRows() {
  std::vector<Tuple> rows;
  // Names overlap both the generator's and the writer's EmpID universe
  // (0..49971) sparsely, so the Q4 join has matches without exploding.
  for (int64_t k = 0; k < 1000; ++k) {
    rows.push_back({Value(k), Value("EMP" + std::to_string(k)),
                    Value("Addr" + std::to_string(k % 37))});
  }
  return rows;
}

Status LoadChurnTables(dbms::Engine* db, const std::vector<Tuple>& position) {
  TANGO_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE POSITION " + workload::PositionDdlColumns())
          .status());
  TANGO_RETURN_IF_ERROR(db->BulkLoad("POSITION", position));
  TANGO_RETURN_IF_ERROR(
      db->Execute(
            "CREATE TABLE EMPLOYEE (EmpID INT, EmpName VARCHAR(12), "
            "Addr VARCHAR(24))")
          .status());
  TANGO_RETURN_IF_ERROR(db->BulkLoad("EMPLOYEE", EmployeeRows()));
  return db->Execute("ANALYZE").status();
}

std::multiset<std::string> RowSet(const Middleware::Execution& exec) {
  std::multiset<std::string> rows;
  for (const Tuple& t : exec.rows) {
    std::string s;
    for (const Value& v : t) s += v.ToString() + "|";
    rows.insert(std::move(s));
  }
  return rows;
}

Result<std::vector<Tuple>> Dump(dbms::Engine* db, const std::string& table) {
  TANGO_ASSIGN_OR_RETURN(dbms::QueryResult r,
                         db->Execute("SELECT * FROM " + table));
  return std::move(r.rows);
}

std::multiset<std::string> TupleSet(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) {
    std::string s;
    for (const Value& v : t) s += v.ToString() + "|";
    out.insert(std::move(s));
  }
  return out;
}

TEST(WriteChurnTest, QueriesRaceTheWriterAndDifferentialsHold) {
  TempDir dir("race");
  const std::vector<Tuple> base = workload::GeneratePositionRows(800, 42);

  dbms::EngineOptions opts;
  opts.wal_dir = dir.path.string();
  auto db = std::make_unique<dbms::Engine>(opts);
  ASSERT_TRUE(db->Open().ok());
  ASSERT_TRUE(LoadChurnTables(db.get(), base).ok());

  std::vector<std::multiset<std::string>> churn_results;
  {
    Middleware mw(db.get(), ChurnConfig());
    ASSERT_TRUE(mw.CollectStatistics({"POSITION", "EMPLOYEE"}).ok());

    // The writer gets its own Connection — its own engine session — so its
    // transactions interleave with the queries' cursor fetches.
    dbms::WireConfig wire;
    wire.simulate_delay = false;
    dbms::Connection writer_conn(db.get(), wire);
    workload::WriterOptions wopts;
    wopts.num_positions = 40;  // matches 800 rows / 20 versions-per-position
    workload::WriterGenerator writer(&writer_conn, wopts);

    writer.Start();
    for (const char* sql : kQueries) {
      for (int rep = 0; rep < 2; ++rep) {
        auto exec = mw.Query(sql);
        ASSERT_TRUE(exec.ok()) << sql << ": " << exec.status().ToString();
      }
    }
    ASSERT_TRUE(writer.Stop().ok());
    EXPECT_GT(writer.counters().txns_committed.load(), 0u);
    EXPECT_EQ(writer.counters().txns_failed.load(), 0u);

    // Quiesced: every query's answer must match a fresh volatile engine
    // loaded with the durable engine's final rows.
    for (const char* sql : kQueries) {
      auto exec = mw.Query(sql);
      ASSERT_TRUE(exec.ok()) << sql << ": " << exec.status().ToString();
      churn_results.push_back(RowSet(exec.ValueOrDie()));
    }
  }

  auto final_rows = Dump(db.get(), "POSITION");
  ASSERT_TRUE(final_rows.ok());
  {
    dbms::Engine volatile_db;
    ASSERT_TRUE(
        LoadChurnTables(&volatile_db, final_rows.ValueOrDie()).ok());
    Middleware mw(&volatile_db, ChurnConfig());
    for (size_t i = 0; i < std::size(kQueries); ++i) {
      auto exec = mw.Query(kQueries[i]);
      ASSERT_TRUE(exec.ok()) << kQueries[i] << ": "
                             << exec.status().ToString();
      EXPECT_EQ(RowSet(exec.ValueOrDie()), churn_results[i])
          << "differential mismatch for " << kQueries[i];
    }
  }

  // Reopen differential: recovery after heavy churn reproduces the exact
  // table the engine held before it went down.
  db.reset();
  dbms::Engine reopened(opts);
  ASSERT_TRUE(reopened.Open().ok());
  auto recovered = Dump(&reopened, "POSITION");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(TupleSet(recovered.ValueOrDie()),
            TupleSet(final_rows.ValueOrDie()));
}

TEST(WriteChurnTest, RefreshStatisticsIfStaleTracksChurnEpochs) {
  dbms::Engine db;
  ASSERT_TRUE(
      LoadChurnTables(&db, workload::GeneratePositionRows(400, 7)).ok());
  Middleware mw(&db, ChurnConfig());
  ASSERT_TRUE(mw.CollectStatistics({"POSITION", "EMPLOYEE"}).ok());

  // Nothing has moved since collection: no table refreshes.
  auto refreshed = mw.RefreshStatisticsIfStale({"POSITION", "EMPLOYEE"});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed.ValueOrDie(), 0u);

  // Warm the plan cache for Q2.
  auto first = mw.Prepare(kQueries[1]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie().source, Middleware::Prepared::Source::kFresh);
  auto warm = mw.Prepare(kQueries[1]);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.ValueOrDie().source, Middleware::Prepared::Source::kCached);

  // Churn only POSITION; EMPLOYEE's epoch must not drift.
  dbms::WireConfig wire;
  wire.simulate_delay = false;
  dbms::Connection writer_conn(&db, wire);
  workload::WriterOptions wopts;
  wopts.num_positions = 20;
  workload::WriterGenerator writer(&writer_conn, wopts);
  ASSERT_TRUE(writer.Run(30).ok());
  EXPECT_GT(writer.counters().txns_committed.load(), 0u);

  refreshed = mw.RefreshStatisticsIfStale({"POSITION", "EMPLOYEE"});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed.ValueOrDie(), 1u);  // POSITION only

  // The refresh re-collected POSITION, invalidating its cached plans.
  auto after = mw.Prepare(kQueries[1]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().source, Middleware::Prepared::Source::kFresh);

  // And the refreshed epoch is now current again.
  refreshed = mw.RefreshStatisticsIfStale({"POSITION", "EMPLOYEE"});
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed.ValueOrDie(), 0u);
}

TEST(WriteChurnTest, WriterCountersAccountForEveryTransaction) {
  dbms::Engine db;
  const std::vector<Tuple> base = workload::GeneratePositionRows(200, 3);
  ASSERT_TRUE(LoadChurnTables(&db, base).ok());
  dbms::WireConfig wire;
  wire.simulate_delay = false;
  dbms::Connection conn(&db, wire);

  workload::WriterOptions wopts;
  wopts.num_positions = 10;
  wopts.abort_fraction = 0.4;
  workload::WriterGenerator writer(&conn, wopts);
  ASSERT_TRUE(writer.Run(50).ok());

  const auto& c = writer.counters();
  EXPECT_EQ(c.txns_committed.load() + c.txns_rolled_back.load() +
                c.txns_failed.load(),
            50u);
  EXPECT_GT(c.txns_committed.load(), 0u);
  EXPECT_GT(c.txns_rolled_back.load(), 0u);
  // A single writer on an otherwise idle engine never conflicts.
  EXPECT_EQ(c.lock_retries.load(), 0u);

  // Each committed transaction inserts exactly one new version; rollbacks
  // and version closes never change the row count.
  auto rows = Dump(&db, "POSITION");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.ValueOrDie().size(),
            base.size() + c.txns_committed.load());
}

}  // namespace
}  // namespace tango
