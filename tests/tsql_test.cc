#include <gtest/gtest.h>

#include "common/date.h"
#include "tsql/tsql.h"

namespace tango {
namespace tsql {
namespace {

Parser::SchemaProvider Provider() {
  return [](const std::string& table) -> Result<Schema> {
    if (table == "POSITION") {
      return Schema({{"", "POSID", DataType::kInt},
                     {"", "EMPNAME", DataType::kString},
                     {"", "PAYRATE", DataType::kDouble},
                     {"", "T1", DataType::kInt},
                     {"", "T2", DataType::kInt}});
    }
    if (table == "EMPLOYEE") {
      return Schema({{"", "EMPID", DataType::kInt},
                     {"", "EMPNAME", DataType::kString},
                     {"", "ADDR", DataType::kString}});
    }
    return Status::NotFound("table " + table);
  };
}

/// Finds the first node of `kind` in the plan tree (pre-order).
const algebra::Op* Find(const algebra::OpPtr& plan, algebra::OpKind kind) {
  if (plan->kind == kind) return plan.get();
  for (const auto& c : plan->children) {
    if (const algebra::Op* hit = Find(c, kind)) return hit;
  }
  return nullptr;
}

TEST(TsqlTest, InitialPlanHasTransferMOnTop) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Figure 4(a): all processing in the DBMS, T^M at the top.
  EXPECT_EQ(plan.ValueOrDie()->kind, algebra::OpKind::kTransferM);
  EXPECT_NE(Find(plan.ValueOrDie(), algebra::OpKind::kTAggregate), nullptr);
  EXPECT_NE(Find(plan.ValueOrDie(), algebra::OpKind::kSort), nullptr);
}

TEST(TsqlTest, GroupByWithoutOverTimeIsRejected) {
  EXPECT_FALSE(Parser::Parse("TEMPORAL SELECT PosID, COUNT(PosID) AS C "
                             "FROM POSITION GROUP BY PosID",
                             Provider())
                   .ok());
}

TEST(TsqlTest, TemporalPrefixMakesJoinsTemporal) {
  auto temporal = Parser::Parse(
      "TEMPORAL SELECT A.PosID, A.EmpName, B.EmpName FROM POSITION A, "
      "POSITION B WHERE A.PosID = B.PosID",
      Provider());
  ASSERT_TRUE(temporal.ok()) << temporal.status().ToString();
  EXPECT_NE(Find(temporal.ValueOrDie(), algebra::OpKind::kTJoin), nullptr);
  EXPECT_EQ(Find(temporal.ValueOrDie(), algebra::OpKind::kJoin), nullptr);

  // EMPLOYEE has no period: the join of POSITION and EMPLOYEE is regular
  // even under TEMPORAL.
  auto mixed = Parser::Parse(
      "TEMPORAL SELECT PosID, E.Addr FROM POSITION P, EMPLOYEE E "
      "WHERE P.EmpName = E.EmpName",
      Provider());
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_NE(Find(mixed.ValueOrDie(), algebra::OpKind::kJoin), nullptr);

  // Without TEMPORAL: regular join.
  auto plain = Parser::Parse(
      "SELECT A.PosID FROM POSITION A, POSITION B WHERE A.PosID = B.PosID",
      Provider());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_NE(Find(plain.ValueOrDie(), algebra::OpKind::kJoin), nullptr);
}

TEST(TsqlTest, OverlapsPeriodDesugarsToWindowConjuncts) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT PosID FROM POSITION "
      "WHERE OVERLAPS PERIOD (DATE '1995-01-01', DATE '1998-01-01')",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const algebra::Op* sel = Find(plan.ValueOrDie(), algebra::OpKind::kSelect);
  ASSERT_NE(sel, nullptr);
  const std::string pred = sel->predicate->ToString();
  EXPECT_NE(pred.find("T1 < " + std::to_string(date::Jan1(1998))),
            std::string::npos)
      << pred;
  EXPECT_NE(pred.find("T2 > " + std::to_string(date::Jan1(1995))),
            std::string::npos)
      << pred;
}

TEST(TsqlTest, ContainsDesugarsToTimeslice) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT PosID FROM POSITION WHERE CONTAINS (DATE '1996-06-01')",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const algebra::Op* sel = Find(plan.ValueOrDie(), algebra::OpKind::kSelect);
  ASSERT_NE(sel, nullptr);
  const std::string pred = sel->predicate->ToString();
  EXPECT_NE(pred.find("T1 <="), std::string::npos) << pred;
  EXPECT_NE(pred.find("T2 >"), std::string::npos) << pred;
}

TEST(TsqlTest, PerRelationPredicatesArePushedBelowTemporalJoins) {
  // A.T1 < c must apply to A's own period, not the join's intersection.
  auto plan = Parser::Parse(
      "TEMPORAL SELECT A.PosID, A.EmpName, B.EmpName "
      "FROM POSITION A, POSITION B "
      "WHERE A.PosID = B.PosID AND A.T1 < 9000 AND B.T1 < 9000",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const algebra::Op* tjoin = Find(plan.ValueOrDie(), algebra::OpKind::kTJoin);
  ASSERT_NE(tjoin, nullptr);
  EXPECT_EQ(tjoin->children[0]->kind, algebra::OpKind::kSelect);
  EXPECT_EQ(tjoin->children[1]->kind, algebra::OpKind::kSelect);
}

TEST(TsqlTest, TemporalResultKeepsImplicitPeriod) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT PosID, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Schema& schema = plan.ValueOrDie()->schema;
  EXPECT_TRUE(schema.Contains("T1"));
  EXPECT_TRUE(schema.Contains("T2"));
}

TEST(TsqlTest, DefaultAggregateNameMatchesPaperStyle) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT PosID, COUNT(PosID) FROM POSITION "
      "GROUP BY PosID OVER TIME",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // COUNT(PosID) without an alias -> COUNTOFPOSID, the paper's naming.
  EXPECT_TRUE(plan.ValueOrDie()->schema.Contains("COUNTOFPOSID"))
      << plan.ValueOrDie()->schema.ToString();
}

TEST(TsqlTest, SubqueryQualifiersResolve) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT C.PosID, C.CNT FROM "
      "(TEMPORAL SELECT PosID, COUNT(PosID) AS CNT FROM POSITION "
      " GROUP BY PosID OVER TIME) C "
      "WHERE C.CNT > 1 ORDER BY C.PosID",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST(TsqlTest, ErrorsSurface) {
  EXPECT_FALSE(Parser::Parse("TEMPORAL SELECT", Provider()).ok());
  EXPECT_FALSE(Parser::Parse("TEMPORAL SELECT X FROM NOPE", Provider()).ok());
  EXPECT_FALSE(Parser::Parse(
                   "TEMPORAL SELECT Nope FROM POSITION", Provider())
                   .ok());
  EXPECT_FALSE(Parser::Parse(
                   "TEMPORAL SELECT PosID FROM POSITION trailing garbage !",
                   Provider())
                   .ok());
  // Aggregate without GROUP BY ... OVER TIME.
  EXPECT_FALSE(
      Parser::Parse("TEMPORAL SELECT COUNT(PosID) FROM POSITION", Provider())
          .ok());
}

TEST(TsqlTest, MultipleAggregates) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT PosID, COUNT(PosID) AS C, MAX(PayRate) AS MX, "
      "AVG(PayRate) AS AV FROM POSITION GROUP BY PosID OVER TIME",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const algebra::Op* agg =
      Find(plan.ValueOrDie(), algebra::OpKind::kTAggregate);
  ASSERT_NE(agg, nullptr);
  ASSERT_EQ(agg->aggs.size(), 3u);
  EXPECT_EQ(agg->aggs[1].func, AggFunc::kMax);
  EXPECT_EQ(agg->aggs[2].func, AggFunc::kAvg);
}

TEST(TsqlTest, DistinctAddsDupElim) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT DISTINCT PosID FROM POSITION", Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(Find(plan.ValueOrDie(), algebra::OpKind::kDupElim), nullptr);
}

TEST(TsqlTest, CoalesceAddsCoalesceOperator) {
  auto plan = Parser::Parse(
      "TEMPORAL SELECT COALESCE PosID FROM POSITION ORDER BY PosID",
      Provider());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(Find(plan.ValueOrDie(), algebra::OpKind::kCoalesce), nullptr);

  // DISTINCT COALESCE combine.
  auto both = Parser::Parse(
      "TEMPORAL SELECT DISTINCT COALESCE PosID FROM POSITION", Provider());
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_NE(Find(both.ValueOrDie(), algebra::OpKind::kDupElim), nullptr);
  EXPECT_NE(Find(both.ValueOrDie(), algebra::OpKind::kCoalesce), nullptr);

  // COALESCE on a non-temporal result is rejected.
  EXPECT_FALSE(Parser::Parse(
                   "SELECT COALESCE EmpName FROM EMPLOYEE", Provider())
                   .ok());
}

}  // namespace
}  // namespace tsql
}  // namespace tango
