#include <gtest/gtest.h>

#include "common/date.h"
#include "dbms/engine.h"
#include "sql/parser.h"
#include "stats/stats.h"

namespace tango {
namespace stats {
namespace {

// Builds the §3.3 example relation R: 100,000 tuples, 7-day periods,
// uniformly distributed over 1995-01-01 .. 2000-01-01.
RelStats PaperRelation(bool with_histograms) {
  RelStats rel;
  rel.cardinality = 100000;
  rel.avg_tuple_bytes = 40;
  const double t1_min = static_cast<double>(date::FromYmd(1995, 1, 1));
  const double t1_max = static_cast<double>(date::FromYmd(1999, 12, 25));
  ColumnInfo t1;
  t1.numeric = true;
  t1.min = t1_min;
  t1.max = t1_max;
  t1.num_distinct = 1819;
  ColumnInfo t2 = t1;
  t2.min = t1_min + 7;
  t2.max = t1_max + 7;
  if (with_histograms) {
    // Uniform synthetic histograms (20 equal buckets).
    std::vector<double> v1, v2;
    for (int i = 0; i < 2000; ++i) {
      const double x = t1_min + (t1_max - t1_min) * i / 1999.0;
      v1.push_back(x);
      v2.push_back(x + 7);
    }
    t1.histogram = Histogram::BuildEquiDepth(v1, 20);
    t2.histogram = Histogram::BuildEquiDepth(v2, 20);
    // Histogram counts must describe the full relation.
    // (BuildEquiDepth used a sample; scale via a fresh build at full size is
    // overkill — instead build from per-day counts.)
  }
  rel.columns = {t1, t2};
  return rel;
}

TEST(HistogramTest, EquiDepthBucketsBalanced) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  Histogram h = Histogram::BuildEquiDepth(values, 10);
  ASSERT_EQ(h.num_buckets(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(h.bVal(i), 100.0);
  }
  EXPECT_DOUBLE_EQ(h.total_count(), 1000.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 999.0);
}

TEST(HistogramTest, EstimateLessInterpolates) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  Histogram h = Histogram::BuildEquiDepth(values, 10);
  EXPECT_NEAR(h.EstimateLess(500), 500, 15);
  EXPECT_DOUBLE_EQ(h.EstimateLess(-5), 0);
  EXPECT_DOUBLE_EQ(h.EstimateLess(5000), 1000);
}

TEST(HistogramTest, SkewedDataBucketsFollowDensity) {
  // 90% of values in [0,10), 10% in [10,1000).
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(i % 10);
  for (int i = 0; i < 100; ++i) values.push_back(10 + i * 9.9);
  Histogram h = Histogram::BuildEquiDepth(values, 10);
  // Height-balanced buckets adapt to the density: below 10 is ~900.
  EXPECT_NEAR(h.EstimateLess(10), 900, 110);
  // A width-balanced histogram puts all the mass in one wide bucket and
  // interpolates uniformly inside it — far less accurate on skewed data
  // (which is why height-balanced histograms are the DBMS default).
  Histogram w = Histogram::BuildEquiWidth(values, 10);
  EXPECT_LT(w.EstimateLess(10.0), 200);
  EXPECT_NEAR(w.EstimateLess(100.0), 917, 30);  // full first bucket
}

TEST(HistogramTest, BNoFindsBucket) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  Histogram h = Histogram::BuildEquiDepth(values, 5);
  EXPECT_EQ(h.bNo(-10), 0u);
  EXPECT_EQ(h.bNo(1000), h.num_buckets() - 1);
  const size_t mid = h.bNo(50);
  EXPECT_LE(h.b1(mid), 50.0);
  EXPECT_GE(h.b2(mid), 50.0);
}

// The paper's worked example: Overlaps(1997-02-01, 1997-02-08).
// Actual result is 0.4%-0.8% of R. The straightforward estimate is 24.7%
// ("a factor of 40 too high"); the semantic estimate is ~0.8%.
TEST(SelectivityTest, PaperSection33Example) {
  RelStats rel = PaperRelation(/*with_histograms=*/false);
  const double a = static_cast<double>(date::FromYmd(1997, 2, 1));
  const double b = static_cast<double>(date::FromYmd(1997, 2, 8));

  // Semantic: StartBefore(B) - EndBefore(A + 1).
  const double semantic = EstimateOverlapsCardinality(a, b, rel, 0, 1);
  const double semantic_pct = semantic / rel.cardinality;
  EXPECT_NEAR(semantic_pct, 0.008, 0.002);

  // Straightforward: the two conjuncts estimated independently.
  Schema schema({{"", "T1", DataType::kInt}, {"", "T2", DataType::kInt}});
  auto sel = sql::Parser::ParseSelect(
      "SELECT T1 FROM R WHERE T1 < DATE '1997-02-08' AND "
      "T2 > DATE '1997-02-01'");
  ASSERT_TRUE(sel.ok());
  const ExprPtr pred = sel.ValueOrDie()->where;
  const double naive = EstimateSelectivity(pred, schema, rel,
                                           /*semantic_temporal=*/false);
  EXPECT_NEAR(naive, 0.247, 0.02);  // the paper's 24.7%
  const double smart = EstimateSelectivity(pred, schema, rel,
                                           /*semantic_temporal=*/true);
  EXPECT_NEAR(smart, semantic_pct, 1e-9);
  // "This is a factor of 40 too high!"
  EXPECT_GT(naive / smart, 25);
}

TEST(SelectivityTest, TimesliceEstimate) {
  RelStats rel = PaperRelation(false);
  const double a = static_cast<double>(date::FromYmd(1997, 6, 1));
  const double card = EstimateTimesliceCardinality(a, rel, 0, 1);
  // ~383 tuples intersect any given day (100000 * 7 / 1826).
  EXPECT_NEAR(card, 383, 80);
}

TEST(SelectivityTest, HistogramPathAgreesOnUniformData) {
  RelStats with = PaperRelation(true);
  RelStats without = PaperRelation(false);
  // Histogram totals describe a 2000-value sample; StartBefore/EndBefore
  // normalize them to the relation cardinality.
  const double a = static_cast<double>(date::FromYmd(1997, 2, 1));
  const double b = static_cast<double>(date::FromYmd(1997, 2, 8));
  const double f_with =
      EstimateOverlapsCardinality(a, b, with, 0, 1) / with.cardinality;
  const double f_without =
      EstimateOverlapsCardinality(a, b, without, 0, 1) / without.cardinality;
  EXPECT_NEAR(f_with, f_without, 0.01);
}

TEST(SelectivityTest, ComparisonSelectivity) {
  RelStats rel = PaperRelation(false);
  // T1 < midpoint: about half.
  const double mid = (rel.columns[0].min + rel.columns[0].max) / 2;
  EXPECT_NEAR(ComparisonSelectivity(rel, 0, BinaryOp::kLt, mid), 0.5, 0.01);
  EXPECT_NEAR(ComparisonSelectivity(rel, 0, BinaryOp::kGe, mid), 0.5, 0.01);
  EXPECT_NEAR(ComparisonSelectivity(rel, 0, BinaryOp::kEq, mid),
              1.0 / 1819, 1e-6);
}

TEST(TAggrCardinalityTest, PaperBounds) {
  RelStats rel;
  rel.cardinality = 1000;
  rel.avg_tuple_bytes = 30;
  ColumnInfo g;
  g.numeric = true;
  g.num_distinct = 10;
  ColumnInfo t1;
  t1.numeric = true;
  t1.num_distinct = 100;
  ColumnInfo t2 = t1;
  rel.columns = {g, t1, t2};

  const auto bounds = EstimateTAggrCardinality(rel, {0}, 1, 2);
  // Max: (1000/10 * 2 - 1) * 10 = 1990, capped by 2*card-1 = 1999.
  EXPECT_DOUBLE_EQ(bounds.max, 1990);
  // Min: min(distinct(G), distinct(T1)+1, distinct(T2)+1) = 10.
  EXPECT_DOUBLE_EQ(bounds.min, 10);
  // Estimate: 60% of max since that's above the min.
  EXPECT_DOUBLE_EQ(bounds.estimate, 0.6 * 1990);

  // Without grouping: max = distinct(T1) + distinct(T2) + 1.
  const auto global = EstimateTAggrCardinality(rel, {}, 1, 2);
  EXPECT_DOUBLE_EQ(global.max, 201);
}

TEST(DeriveTest, SelectScalesCardinalityAndBounds) {
  Schema schema({{"", "X", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
  auto scan = algebra::Scan("R", schema).ValueOrDie();
  RelStats in;
  in.cardinality = 1000;
  in.avg_tuple_bytes = 30;
  ColumnInfo x;
  x.numeric = true;
  x.min = 0;
  x.max = 100;
  x.num_distinct = 100;
  in.columns = {x, x, x};

  auto pred = sql::Parser::ParseSelect("SELECT X FROM R WHERE X < 25")
                  .ValueOrDie()
                  ->where;
  auto sel = algebra::Select(scan, pred).ValueOrDie();
  auto out = Derive(*sel, {&in});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NEAR(out.ValueOrDie().cardinality, 250, 1);
  EXPECT_DOUBLE_EQ(out.ValueOrDie().columns[0].max, 25);
}

TEST(DeriveTest, JoinUsesDistinctCounts) {
  Schema ls({{"", "K", DataType::kInt}, {"", "A", DataType::kInt}});
  Schema rs({{"", "K2", DataType::kInt}, {"", "B", DataType::kInt}});
  auto l = algebra::Scan("L", ls).ValueOrDie();
  auto r = algebra::Scan("R", rs).ValueOrDie();
  auto join = algebra::Join(l, r, {{"K", "K2"}}).ValueOrDie();
  RelStats lst, rst;
  lst.cardinality = 1000;
  lst.avg_tuple_bytes = 20;
  ColumnInfo k;
  k.numeric = true;
  k.num_distinct = 50;
  lst.columns = {k, k};
  rst.cardinality = 500;
  rst.avg_tuple_bytes = 20;
  ColumnInfo k2 = k;
  k2.num_distinct = 100;
  rst.columns = {k2, k2};
  auto out = Derive(*join, {&lst, &rst});
  ASSERT_TRUE(out.ok());
  // 1000 * 500 / max(50, 100) = 5000.
  EXPECT_DOUBLE_EQ(out.ValueOrDie().cardinality, 5000);
  EXPECT_DOUBLE_EQ(out.ValueOrDie().avg_tuple_bytes, 40);
}

TEST(DeriveTest, TAggregateUsesSection34Estimate) {
  Schema schema({{"", "G", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
  auto scan = algebra::Scan("R", schema).ValueOrDie();
  auto agg =
      algebra::TAggregate(scan, {"G"}, {{AggFunc::kCount, "G", "C"}})
          .ValueOrDie();
  RelStats in;
  in.cardinality = 1000;
  in.avg_tuple_bytes = 30;
  ColumnInfo g;
  g.numeric = true;
  g.num_distinct = 10;
  ColumnInfo t;
  t.numeric = true;
  t.num_distinct = 100;
  in.columns = {g, t, t};
  auto out = Derive(*agg, {&in});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.ValueOrDie().cardinality, 0.6 * 1990);
  // Schema: G, T1, T2, C.
  EXPECT_EQ(out.ValueOrDie().columns.size(), 4u);
}

TEST(FromTableStatsTest, ConvertsAnalyzeOutput) {
  dbms::Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE R (X INT, S VARCHAR(10))").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO R VALUES (1, 'aaaa'), (2, 'bbbb'), "
                         "(3, 'cccc')")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX IX ON R (X)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());
  const dbms::Table* t = db.catalog().GetTable("R").ValueOrDie();
  RelStats rel = FromTableStats(t->stats(), t->schema());
  EXPECT_DOUBLE_EQ(rel.cardinality, 3);
  EXPECT_GT(rel.avg_tuple_bytes, 0);
  EXPECT_DOUBLE_EQ(rel.columns[0].num_distinct, 3);
  EXPECT_DOUBLE_EQ(rel.columns[0].min, 1);
  EXPECT_DOUBLE_EQ(rel.columns[0].max, 3);
  EXPECT_FALSE(rel.columns[0].histogram.empty());
  EXPECT_FALSE(rel.columns[1].numeric);
  // Index availability and clustering flow through to the middleware
  // (inserted in key order, so the index is clustered).
  EXPECT_TRUE(rel.columns[0].has_index);
  EXPECT_TRUE(rel.columns[0].index_clustered);
  EXPECT_FALSE(rel.columns[1].has_index);
}

}  // namespace
}  // namespace stats
}  // namespace tango
