// Wire-simulation specifics: prefetch batching, byte accounting, pacing,
// and the SQL*Loader-style load path.

#include <gtest/gtest.h>

#include <chrono>

#include "dbms/connection.h"
#include "workload/uis.h"

namespace tango {
namespace dbms {
namespace {

void LoadSmall(Engine* db, int n) {
  ASSERT_TRUE(db->Execute("CREATE TABLE R (X INT, S VARCHAR(8))").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i)),
                    Value("s" + std::to_string(i))});
  }
  ASSERT_TRUE(db->BulkLoad("R", rows).ok());
}

TEST(ConnectionTest, PrefetchBatchCountsAreExact) {
  Engine db;
  LoadSmall(&db, 100);
  for (const size_t prefetch : {1u, 7u, 100u, 1000u}) {
    WireConfig wire;
    wire.simulate_delay = false;
    wire.row_prefetch = prefetch;
    Connection conn(&db, wire);
    auto cur = conn.ExecuteQuery("SELECT X, S FROM R");
    ASSERT_TRUE(cur.ok());
    auto rows = MaterializeAll(cur.ValueOrDie().get()).ValueOrDie();
    EXPECT_EQ(rows.size(), 100u);
    const uint64_t expected_batches = (100 + prefetch - 1) / prefetch;
    EXPECT_EQ(conn.counters().batches, expected_batches) << prefetch;
  }
}

TEST(ConnectionTest, ZeroPrefetchIsClampedToOne) {
  Engine db;
  LoadSmall(&db, 5);
  WireConfig wire;
  wire.simulate_delay = false;
  wire.row_prefetch = 0;
  Connection conn(&db, wire);
  auto cur = conn.ExecuteQuery("SELECT X, S FROM R");
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(MaterializeAll(cur.ValueOrDie().get()).ValueOrDie().size(), 5u);
  EXPECT_EQ(conn.counters().batches, 5u);
}

TEST(ConnectionTest, BytesScaleWithRowsTransferred) {
  Engine db;
  LoadSmall(&db, 200);
  WireConfig wire;
  wire.simulate_delay = false;
  Connection conn(&db, wire);
  auto all = conn.ExecuteQuery("SELECT X, S FROM R");
  (void)MaterializeAll(all.ValueOrDie().get());
  const uint64_t all_bytes = conn.counters().bytes_to_client;
  conn.ResetCounters();
  auto half = conn.ExecuteQuery("SELECT X, S FROM R WHERE X < 100");
  (void)MaterializeAll(half.ValueOrDie().get());
  const uint64_t half_bytes = conn.counters().bytes_to_client;
  EXPECT_NEAR(static_cast<double>(half_bytes),
              static_cast<double>(all_bytes) / 2, all_bytes * 0.1);
}

TEST(ConnectionTest, SlowerWireTakesLonger) {
  Engine db;
  LoadSmall(&db, 500);
  auto timed = [&](double bytes_per_second) {
    WireConfig wire;
    wire.bytes_per_second = bytes_per_second;
    wire.roundtrip_seconds = 0;
    wire.per_batch_seconds = 0;
    Connection conn(&db, wire);
    auto cur = conn.ExecuteQuery("SELECT X, S FROM R");
    const auto start = std::chrono::steady_clock::now();
    (void)MaterializeAll(cur.ValueOrDie().get());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double fast = timed(1e9);
  const double slow = timed(1e5);  // ~10 KB over 100 KB/s ≈ 0.1 s
  EXPECT_GT(slow, fast * 3);
  EXPECT_GT(slow, 0.03);
}

TEST(ConnectionTest, BulkLoadPreservesValuesExactly) {
  Engine db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE T (I INT, D DOUBLE, S VARCHAR(20))").ok());
  WireConfig wire;
  wire.simulate_delay = false;
  Connection conn(&db, wire);
  std::vector<Tuple> rows = {
      {Value(int64_t{-42}), Value(3.14159), Value("hello world")},
      {Value::Null(), Value(0.0), Value("")},
      {Value(int64_t{1} << 40), Value(-1e-9), Value("O'Neil")},
  };
  ASSERT_TRUE(conn.BulkLoad("T", rows).ok());
  auto back = db.Execute("SELECT I, D, S FROM T");
  ASSERT_TRUE(back.ok());
  const auto& got = back.ValueOrDie().rows;
  ASSERT_EQ(got.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t c = 0; c < rows[i].size(); ++c) {
      EXPECT_EQ(got[i][c].is_null(), rows[i][c].is_null()) << i << "," << c;
      EXPECT_EQ(got[i][c].Compare(rows[i][c]), 0) << i << "," << c;
    }
  }
}

TEST(ConnectionTest, QueryErrorsPropagateThroughTheWire) {
  Engine db;
  WireConfig wire;
  wire.simulate_delay = false;
  Connection conn(&db, wire);
  EXPECT_FALSE(conn.ExecuteQuery("SELECT X FROM MISSING").ok());
  EXPECT_FALSE(conn.Execute("GIBBERISH").ok());
  EXPECT_FALSE(conn.BulkLoad("MISSING", {}).ok());
  EXPECT_FALSE(conn.GetTableStats("MISSING").ok());
}

}  // namespace
}  // namespace dbms
}  // namespace tango
