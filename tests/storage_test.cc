#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/run_file.h"

namespace tango {
namespace storage {
namespace {

Schema TwoColSchema() {
  return Schema({{"", "K", DataType::kInt}, {"", "V", DataType::kString}});
}

TEST(PageTest, AppendUntilFull) {
  Page page(128);
  WireWriter w;
  w.PutTuple({Value(int64_t{1}), Value("0123456789")});
  const auto encoded = w.Take();
  int appended = 0;
  while (page.Append(encoded) >= 0) ++appended;
  EXPECT_GT(appended, 1);
  EXPECT_LE(page.used_bytes(), 128u);
  auto back = page.Read(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie()[1].AsString(), "0123456789");
}

TEST(HeapFileTest, AppendScanGet) {
  HeapFile file(TwoColSchema(), /*page_size=*/256);
  std::vector<Rid> rids;
  for (int64_t i = 0; i < 100; ++i) {
    rids.push_back(file.Append({Value(i), Value("v" + std::to_string(i))}));
  }
  EXPECT_EQ(file.num_tuples(), 100u);
  EXPECT_GT(file.num_pages(), 1u);  // tiny pages force multiple
  EXPECT_GT(file.avg_tuple_bytes(), 0.0);

  // Scan returns everything in insertion order.
  auto it = file.Scan();
  Tuple t;
  Rid rid;
  int64_t expect = 0;
  while (it.Next(&t, &rid)) {
    EXPECT_EQ(t[0].AsInt(), expect);
    EXPECT_EQ(rid, rids[static_cast<size_t>(expect)]);
    ++expect;
  }
  EXPECT_EQ(expect, 100);

  // Random access by rid.
  auto got = file.Get(rids[42]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie()[1].AsString(), "v42");
  EXPECT_FALSE(file.Get(Rid{9999, 0}).ok());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  for (int64_t i = 0; i < 1000; ++i) {
    tree.Insert(Value(i * 2), Rid{static_cast<uint32_t>(i), 0});
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.height(), 1u);
  auto hits = tree.Lookup(Value(int64_t{500}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].page, 250u);
  EXPECT_TRUE(tree.Lookup(Value(int64_t{501})).empty());
}

TEST(BPlusTreeTest, DuplicateKeysAllFound) {
  BPlusTree tree;
  // 200 entries of the same key interleaved with others, forcing splits
  // around duplicate separators.
  for (int64_t i = 0; i < 200; ++i) {
    tree.Insert(Value(int64_t{7}), Rid{static_cast<uint32_t>(i), 1});
    tree.Insert(Value(i), Rid{static_cast<uint32_t>(i), 2});
  }
  EXPECT_EQ(tree.Lookup(Value(int64_t{7})).size(), 201u);  // 200 dups + i==7
  std::string err;
  EXPECT_TRUE(tree.CheckInvariants(&err)) << err;
}

TEST(BPlusTreeTest, RangeScanGEAndGT) {
  BPlusTree tree;
  for (int64_t i = 0; i < 500; ++i) tree.Insert(Value(i), Rid{0, 0});
  Value k;
  Rid r;
  auto ge = tree.SeekGE(Value(int64_t{100}));
  ASSERT_TRUE(ge.Next(&k, &r));
  EXPECT_EQ(k.AsInt(), 100);
  auto gt = tree.SeekGT(Value(int64_t{100}));
  ASSERT_TRUE(gt.Next(&k, &r));
  EXPECT_EQ(k.AsInt(), 101);
  // Seek beyond the end yields nothing.
  auto end = tree.SeekGT(Value(int64_t{499}));
  EXPECT_FALSE(end.Next(&k, &r));
}

TEST(BPlusTreeTest, SeekGTSkipsAllDuplicates) {
  BPlusTree tree;
  for (int i = 0; i < 300; ++i) tree.Insert(Value(int64_t{5}), Rid{0, 0});
  tree.Insert(Value(int64_t{9}), Rid{1, 1});
  Value k;
  Rid r;
  auto it = tree.SeekGT(Value(int64_t{5}));
  ASSERT_TRUE(it.Next(&k, &r));
  EXPECT_EQ(k.AsInt(), 9);
}

// Property test: random workloads keep the tree's invariants and agree with
// a sorted-vector oracle.
class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesSortedOracle) {
  Rng rng(GetParam());
  BPlusTree tree;
  std::vector<int64_t> oracle;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const int64_t key = rng.Uniform(0, 300);  // plenty of duplicates
    tree.Insert(Value(key), Rid{static_cast<uint32_t>(i), 0});
    oracle.push_back(key);
  }
  std::sort(oracle.begin(), oracle.end());

  std::string err;
  ASSERT_TRUE(tree.CheckInvariants(&err)) << err;

  // Full scan equals the sorted oracle.
  auto it = tree.Begin();
  Value k;
  Rid r;
  size_t i = 0;
  while (it.Next(&k, &r)) {
    ASSERT_LT(i, oracle.size());
    EXPECT_EQ(k.AsInt(), oracle[i]) << "position " << i;
    ++i;
  }
  EXPECT_EQ(i, oracle.size());

  // Random point lookups match oracle counts.
  for (int probe = 0; probe < 50; ++probe) {
    const int64_t key = rng.Uniform(0, 300);
    const auto hits = tree.Lookup(Value(key));
    const auto lo = std::lower_bound(oracle.begin(), oracle.end(), key);
    const auto hi = std::upper_bound(oracle.begin(), oracle.end(), key);
    EXPECT_EQ(hits.size(), static_cast<size_t>(hi - lo)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1, 2, 3, 7, 11, 42, 1337));

TEST(RunFileTest, WriteRewindRead) {
  RunFile run;
  ASSERT_TRUE(run.Open().ok());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(run.Append({Value(i), Value("r" + std::to_string(i))}).ok());
  }
  EXPECT_EQ(run.count(), 50u);
  ASSERT_TRUE(run.Rewind().ok());
  Tuple t;
  int64_t i = 0;
  while (true) {
    auto more = run.Next(&t);
    ASSERT_TRUE(more.ok());
    if (!more.ValueOrDie()) break;
    EXPECT_EQ(t[0].AsInt(), i);
    ++i;
  }
  EXPECT_EQ(i, 50);
}

TEST(RunFileTest, MoveTransfersOwnership) {
  RunFile a;
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(a.Append({Value(int64_t{1})}).ok());
  RunFile b = std::move(a);
  ASSERT_TRUE(b.Rewind().ok());
  Tuple t;
  auto more = b.Next(&t);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(more.ValueOrDie());
  EXPECT_EQ(t[0].AsInt(), 1);
}

}  // namespace
}  // namespace storage
}  // namespace tango
