#include <gtest/gtest.h>

#include "common/date.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "common/wire.h"

namespace tango {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation POSITION");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "Not found: relation POSITION");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 42);

  Result<int> err(Status::Internal("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value::Null(), Value("abc"));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.0), Value(int64_t{3}));
}

TEST(ValueTest, StringsCompareLexicographically) {
  EXPECT_LT(Value("ABC"), Value("ABD"));
  EXPECT_GT(Value("B"), Value("AZZZ"));
  // Numbers sort before strings in the total order.
  EXPECT_LT(Value(int64_t{999}), Value("0"));
}

TEST(ValueTest, ToSqlLiteralQuotesStrings) {
  EXPECT_EQ(Value("O'Neil").ToSqlLiteral(), "'O''Neil'");
  EXPECT_EQ(Value(int64_t{7}).ToSqlLiteral(), "7");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value("xy").Hash(), Value("xy").Hash());
  EXPECT_NE(Value("xy").Hash(), Value("xz").Hash());
}

TEST(ValueTest, ByteSizeReflectsContent) {
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value("abcd").ByteSize(), 6u);
  Tuple t = {Value(int64_t{1}), Value("ab")};
  EXPECT_EQ(TupleByteSize(t), 4u + 8u + 4u);
}

TEST(SchemaTest, IndexOfUnqualified) {
  Schema s({{"A", "POSID", DataType::kInt}, {"A", "T1", DataType::kInt}});
  EXPECT_EQ(s.IndexOf("POSID").ValueOrDie(), 0u);
  EXPECT_EQ(s.IndexOf("T1").ValueOrDie(), 1u);
  EXPECT_FALSE(s.IndexOf("NOPE").ok());
}

TEST(SchemaTest, QualifiedResolutionAndAmbiguity) {
  Schema s({{"A", "POSID", DataType::kInt}, {"B", "POSID", DataType::kInt}});
  EXPECT_FALSE(s.IndexOf("POSID").ok());  // ambiguous
  EXPECT_EQ(s.IndexOf("A.POSID").ValueOrDie(), 0u);
  EXPECT_EQ(s.IndexOf("B.POSID").ValueOrDie(), 1u);
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema s({{"", "POSID", DataType::kInt}});
  EXPECT_TRUE(s.IndexOf("posid").ok());
  EXPECT_TRUE(s.IndexOf("PosID").ok());
}

TEST(SchemaTest, WithQualifierAndConcat) {
  Schema s({{"", "X", DataType::kInt}});
  Schema q = s.WithQualifier("t");
  EXPECT_EQ(q.column(0).table, "T");
  Schema c = Schema::Concat(q, s);
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.IndexOf("T.X").ValueOrDie(), 0u);
}

TEST(TupleComparatorTest, MultiKeyWithDirections) {
  TupleComparator cmp({{0, true}, {1, false}});
  Tuple a = {Value(int64_t{1}), Value(int64_t{5})};
  Tuple b = {Value(int64_t{1}), Value(int64_t{9})};
  Tuple c = {Value(int64_t{2}), Value(int64_t{0})};
  EXPECT_TRUE(cmp(b, a));  // same first key, second key DESC
  EXPECT_TRUE(cmp(a, c));
  EXPECT_EQ(cmp.Compare(a, a), 0);
}

TEST(DateTest, RoundTrip) {
  for (int y : {1970, 1983, 1995, 2000, 2026}) {
    for (int m : {1, 2, 6, 12}) {
      const int64_t d = date::FromYmd(y, m, 15);
      int yy, mm, dd;
      date::ToYmd(d, &yy, &mm, &dd);
      EXPECT_EQ(yy, y);
      EXPECT_EQ(mm, m);
      EXPECT_EQ(dd, 15);
    }
  }
}

TEST(DateTest, EpochAndKnownValues) {
  EXPECT_EQ(date::FromYmd(1970, 1, 1), 0);
  EXPECT_EQ(date::FromYmd(1970, 1, 2), 1);
  EXPECT_EQ(date::FromYmd(1969, 12, 31), -1);
  // The paper's selectivity example: 1819 days between Jan 1 1995 and
  // Dec 25 1999 (distinct T1 values).
  EXPECT_EQ(date::FromYmd(1999, 12, 25) - date::FromYmd(1995, 1, 1), 1819);
}

TEST(DateTest, ParseAndFormat) {
  auto r = date::Parse("1997-02-01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(date::Format(r.ValueOrDie()), "1997-02-01");
  EXPECT_FALSE(date::Parse("1997/02/01").ok());
  EXPECT_FALSE(date::Parse("1997-13-01").ok());
}

TEST(WireTest, TupleRoundTrip) {
  Tuple t = {Value(int64_t{-5}), Value(3.25), Value("hello"), Value::Null()};
  WireWriter w;
  w.PutTuple(t);
  WireReader r(w.buffer());
  auto back = r.GetTuple();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.ValueOrDie().size(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.ValueOrDie()[i].Compare(t[i]), 0) << i;
    EXPECT_EQ(back.ValueOrDie()[i].is_null(), t[i].is_null()) << i;
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, UnderrunDetected) {
  WireWriter w;
  w.PutTuple({Value("abcdef")});
  std::vector<uint8_t> cut(w.buffer().begin(), w.buffer().end() - 3);
  WireReader r(cut);
  EXPECT_FALSE(r.GetTuple().ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, SkewedFavorsSmallValues) {
  Rng rng(2);
  int64_t below = 0;
  const int64_t n = 1000;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Skewed(n, 0.5) < n / 10) ++below;
  }
  // With theta=0.5 skew, far more than 10% of the mass is in the lowest 10%.
  EXPECT_GT(below, 2000);
}

}  // namespace
}  // namespace tango
