#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace tango {
namespace optimizer {
namespace {

Schema PosSchema() {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

stats::RelStats PosStats(double cardinality, double posid_distinct = 0) {
  stats::RelStats rel;
  rel.cardinality = cardinality;
  rel.avg_tuple_bytes = 60;
  stats::ColumnInfo posid;
  posid.numeric = true;
  posid.min = 1;
  posid.max = posid_distinct > 0 ? posid_distinct : cardinality / 5;
  posid.num_distinct =
      posid_distinct > 0 ? posid_distinct : std::max(1.0, cardinality / 5);
  stats::ColumnInfo name;
  name.numeric = false;
  name.num_distinct = cardinality / 2;
  name.avg_width = 20;
  stats::ColumnInfo t1;
  t1.numeric = true;
  t1.min = 5000;
  t1.max = 11000;
  t1.num_distinct = 2000;
  stats::ColumnInfo t2 = t1;
  t2.min = 5030;
  t2.max = 11060;
  rel.columns = {posid, name, t1, t2};
  return rel;
}

Memo::ScanStatsProvider Provider(double cardinality = 80000,
                                 double posid_distinct = 0) {
  return [cardinality, posid_distinct](const std::string&)
             -> Result<stats::RelStats> {
    return PosStats(cardinality, posid_distinct);
  };
}

/// True if the plan tree contains the given algorithm.
bool Contains(const PhysPlanPtr& plan, Algorithm alg) {
  if (plan->algorithm == alg) return true;
  for (const auto& c : plan->children) {
    if (Contains(c, alg)) return true;
  }
  return false;
}

std::string Flat(const PhysPlanPtr& plan) {
  std::string out = AlgorithmName(plan->algorithm);
  out += "(";
  for (size_t i = 0; i < plan->children.size(); ++i) {
    if (i > 0) out += ",";
    out += Flat(plan->children[i]);
  }
  out += ")";
  return out;
}

// Query 1's shape: ξ^T over POSITION, sorted output.
algebra::OpPtr Query1Plan() {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "CNT"}})
                 .ValueOrDie();
  auto sorted = algebra::Sort(agg, {{"POSID", true}}).ValueOrDie();
  return algebra::TransferM(sorted).ValueOrDie();
}

TEST(OptimizerTest, Query1PicksMiddlewareAggregation) {
  cost::CostModel model;  // defaults: TAGGR^D is much more expensive
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider());
  auto result = opt.Optimize(Query1Plan());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& plan = result.ValueOrDie().plan;
  EXPECT_TRUE(Contains(plan, Algorithm::kTAggrM)) << plan->ToString();
  EXPECT_FALSE(Contains(plan, Algorithm::kTAggrD)) << plan->ToString();
  // The argument arrives sorted through a transfer: either SORT^D below
  // T^M (Fig 7 Plan 1) or SORT^M above it (Plan 2).
  EXPECT_TRUE(Contains(plan, Algorithm::kSortD) ||
              Contains(plan, Algorithm::kSortM))
      << plan->ToString();
  // TAGGR^M preserves the (POSID, T1) order, so no top-level sort is needed:
  // the root is the aggregation itself or its transfer-d-free pipeline.
  EXPECT_EQ(plan->algorithm, Algorithm::kTAggrM) << plan->ToString();
  EXPECT_GT(result.ValueOrDie().num_classes, 2u);
  EXPECT_GE(result.ValueOrDie().num_elements,
            result.ValueOrDie().num_classes);
}

TEST(OptimizerTest, ExpensiveMiddlewareAggregationStaysInDbms) {
  cost::CostModel model;
  // Make middleware temporal aggregation prohibitive and the DBMS version
  // cheap: the optimizer must keep everything in the DBMS.
  model.factors().taggm1 = 100;
  model.factors().taggm2 = 100;
  model.factors().taggd1 = 0.001;
  model.factors().taggd2 = 0.001;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider());
  auto result = opt.Optimize(Query1Plan());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& plan = result.ValueOrDie().plan;
  EXPECT_TRUE(Contains(plan, Algorithm::kTAggrD)) << plan->ToString();
  EXPECT_FALSE(Contains(plan, Algorithm::kTAggrM)) << plan->ToString();
  // All-DBMS plan: exactly one TRANSFER^M at the root.
  EXPECT_EQ(plan->algorithm, Algorithm::kTransferM) << plan->ToString();
}

TEST(OptimizerTest, TransferCostMovesJoinSite) {
  // One-to-one join (result no bigger than the arguments): with expensive
  // transfers it is cheaper to join in the DBMS and ship one result than to
  // ship both arguments.
  auto l = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto r = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto join = algebra::Join(l, r, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto plan = algebra::TransferM(join).ValueOrDie();

  cost::CostModel expensive_wire;
  expensive_wire.factors().tm = 10.0;
  expensive_wire.factors().td = 10.0;
  Optimizer opt1(&expensive_wire);
  opt1.set_scan_stats_provider(Provider(10000, /*posid_distinct=*/10000));
  auto r1 = opt1.Optimize(plan);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(Contains(r1.ValueOrDie().plan, Algorithm::kJoinD))
      << r1.ValueOrDie().plan->ToString();

  cost::CostModel cheap_wire;
  cheap_wire.factors().tm = 0.0001;
  cheap_wire.factors().td = 0.0001;
  cheap_wire.factors().joind = 1.0;     // DBMS join slow
  cheap_wire.factors().joindout = 1.0;
  Optimizer opt2(&cheap_wire);
  opt2.set_scan_stats_provider(Provider(10000, 10000));
  auto r2 = opt2.Optimize(plan);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(Contains(r2.ValueOrDie().plan, Algorithm::kMergeJoinM))
      << r2.ValueOrDie().plan->ToString();
}

TEST(OptimizerTest, LargeJoinResultPrefersMiddleware) {
  // The Query 3 lesson: when the join result is bigger than its arguments,
  // shipping the arguments and joining in the middleware wins even though
  // transfers are expensive.
  auto l = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto r = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto join = algebra::Join(l, r, {{"A.POSID", "B.POSID"}}).ValueOrDie();
  auto plan = algebra::TransferM(join).ValueOrDie();
  cost::CostModel model;
  model.factors().tm = 10.0;
  Optimizer opt(&model);
  // distinct = card/5 -> result is 5x the argument size.
  opt.set_scan_stats_provider(Provider(10000));
  auto result = opt.Optimize(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Contains(result.ValueOrDie().plan, Algorithm::kMergeJoinM))
      << result.ValueOrDie().plan->ToString();
}

TEST(OptimizerTest, SortEliminationThroughTAggr) {
  // ORDER BY POSID after ξ^T grouped on POSID: TAGGR^M already delivers the
  // order, so no SORT^M may appear above it (rule T10/T11 behaviour).
  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider());
  auto result = opt.Optimize(Query1Plan());
  ASSERT_TRUE(result.ok());
  const auto& plan = result.ValueOrDie().plan;
  ASSERT_EQ(plan->algorithm, Algorithm::kTAggrM);
  // No sort above the aggregation.
  EXPECT_NE(Flat(plan).substr(0, 6), "SORT^M");
}

TEST(OptimizerTest, SelectionPushdownReducesTransfer) {
  // σ_{T1<c AND T2>c'}(ξ(POSITION)) — the reduce-argument heuristic should
  // produce a plan where the selection also runs below the aggregation.
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto agg = algebra::TAggregate(scan, {"POSID"},
                                 {{AggFunc::kCount, "POSID", "CNT"}})
                 .ValueOrDie();
  auto pred = sql::Parser::ParseSelect(
                  "SELECT X FROM T WHERE T1 < 8000 AND T2 > 7900")
                  .ValueOrDie()
                  ->where;
  auto sel = algebra::Select(agg, pred).ValueOrDie();
  auto initial = algebra::TransferM(sel).ValueOrDie();

  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider());
  auto result = opt.Optimize(initial);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The window is highly selective; the winning plan must filter before
  // aggregating (a SELECT^D below, since the scan is in the DBMS).
  const std::string flat = Flat(result.ValueOrDie().plan);
  EXPECT_NE(flat.find("SELECT^D"), std::string::npos)
      << result.ValueOrDie().plan->ToString();
}

TEST(OptimizerTest, DbmsOnlyOperatorsForceDbmsSite) {
  // A projection-only query stays entirely in the DBMS (selection /
  // projection alone cannot justify a transfer — heuristic group 1).
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto proj = algebra::Project(scan, {{Expr::ColumnRef("POSID"), "POSID"}})
                  .ValueOrDie();
  auto initial = algebra::TransferM(proj).ValueOrDie();
  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider());
  auto result = opt.Optimize(initial);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Flat(result.ValueOrDie().plan),
            "TRANSFER^M(PROJECT^D(SCAN^D()))");
}

TEST(OptimizerTest, CoalesceRunsInMiddleware) {
  auto scan = algebra::Scan("POSITION", PosSchema()).ValueOrDie();
  auto coal = algebra::Coalesce(scan).ValueOrDie();
  auto initial = algebra::TransferM(coal).ValueOrDie();
  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider(1000));
  auto result = opt.Optimize(initial);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Contains(result.ValueOrDie().plan, Algorithm::kCoalesceM));
}

TEST(OptimizerTest, EquivalenceClassCountsAreReported) {
  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider());
  auto r = opt.Optimize(Query1Plan());
  ASSERT_TRUE(r.ok());
  // Query 1 in the paper: 12 classes, 29 elements. Our counts differ (the
  // rule realization differs) but must be in a sane range.
  EXPECT_GE(r.ValueOrDie().num_classes, 3u);
  EXPECT_LE(r.ValueOrDie().num_classes, 50u);
  EXPECT_GE(r.ValueOrDie().num_elements, r.ValueOrDie().num_classes);
}

TEST(OptimizerTest, MiddlewareOnlyOperatorsForceTransfers) {
  // Coalescing and difference exist only in the middleware; plans for them
  // must transfer their (DBMS-resident) inputs up, and any DBMS-side
  // continuation must go through a T^D.
  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider(2000));

  auto a = algebra::Scan("POSITION", PosSchema(), "A").ValueOrDie();
  auto b = algebra::Scan("POSITION", PosSchema(), "B").ValueOrDie();
  auto diff = algebra::Difference(a, b).ValueOrDie();
  auto initial = algebra::TransferM(diff).ValueOrDie();
  auto r = opt.Optimize(initial);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Contains(r.ValueOrDie().plan, Algorithm::kDiffM));
  EXPECT_TRUE(Contains(r.ValueOrDie().plan, Algorithm::kTransferM));

  // DupElim has both a DISTINCT^D and a DUPELIM^M implementation; for a
  // DBMS-resident input with nothing else in the middleware, the DBMS side
  // wins (no transfer detour).
  auto dup = algebra::DupElim(a).ValueOrDie();
  auto r2 = opt.Optimize(algebra::TransferM(dup).ValueOrDie());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(Contains(r2.ValueOrDie().plan, Algorithm::kDistinctD))
      << r2.ValueOrDie().plan->ToString();
}

TEST(OptimizerTest, PlanPrintingCarriesCostsAndRows) {
  cost::CostModel model;
  Optimizer opt(&model);
  opt.set_scan_stats_provider(Provider(5000));
  auto r = opt.Optimize(Query1Plan());
  ASSERT_TRUE(r.ok());
  const std::string rendered = r.ValueOrDie().plan->ToString();
  EXPECT_NE(rendered.find("cost="), std::string::npos);
  EXPECT_NE(rendered.find("rows="), std::string::npos);
  EXPECT_NE(rendered.find("TAGGR"), std::string::npos);
}

TEST(PhysPropsTest, OrderSatisfiesIsPrefixOf) {
  std::vector<algebra::SortSpec> gd = {{"A", true}, {"B", true}};
  EXPECT_TRUE(OrderSatisfies({}, gd));
  EXPECT_TRUE(OrderSatisfies({{"A", true}}, gd));
  EXPECT_TRUE(OrderSatisfies(gd, gd));
  EXPECT_FALSE(OrderSatisfies({{"B", true}}, gd));
  EXPECT_FALSE(OrderSatisfies({{"A", false}}, gd));
  EXPECT_FALSE(OrderSatisfies({{"A", true}, {"B", true}, {"C", true}}, gd));
}

}  // namespace
}  // namespace optimizer
}  // namespace tango
