// Golden-snapshot tests for EXPLAIN ANALYZE: the four fault-matrix queries
// rendered with volatile time fields masked, so the snapshots pin the exact
// tree shape, sites, estimated/actual row columns, and Q-errors — plus
// report-level invariants and a Q-error bound on the UIS workload after
// ANALYZE.

#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tango/middleware.h"
#include "workload/uis.h"

namespace tango {
namespace {

struct RandomRelation {
  std::vector<Tuple> rows;  // (G, V, T1, T2)
};

RandomRelation MakeRelation(uint64_t seed, size_t n, int64_t groups,
                            int64_t horizon) {
  Rng rng(seed);
  RandomRelation rel;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rel.rows.push_back({Value(rng.Uniform(1, groups)),
                        Value(rng.Uniform(0, 50)), Value(t1),
                        Value(t1 + rng.Uniform(1, horizon / 4))});
  }
  return rel;
}

void Load(dbms::Engine* db, const std::string& table,
          const RandomRelation& rel) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)")
          .ok());
  ASSERT_TRUE(db->BulkLoad(table, rel.rows).ok());
  ASSERT_TRUE(db->Execute("ANALYZE " + table).ok());
}

// Adaptation off keeps the chosen plan (and therefore the snapshot) stable
// across runs; the simulated wire delay only adds noise to the masked time
// columns but costs real wall time.
Middleware::Config StableConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;
  return config;
}

// Masks the volatile measured-time fields (and the calibration-dependent
// cost estimate), leaving tree shape, sites, row counts, and Q-errors
// exact:  "cost=1234us self=0.2ms" -> "cost=# self=#".
std::string Normalize(const std::string& rendered) {
  static const std::regex volatile_fields(
      R"((cost|self|incl|work|elapsed|batches)=[^\s]+)");
  return std::regex_replace(rendered, volatile_fields, "$1=#");
}

std::string RunExplainAnalyze(Middleware* mw, const std::string& sql) {
  auto prepared = mw->Prepare(sql);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  if (!prepared.ok()) return "";
  auto rendered = mw->ExplainAnalyze(prepared.ValueOrDie());
  EXPECT_TRUE(rendered.ok()) << rendered.status().ToString();
  if (!rendered.ok()) return "";
  return Normalize(rendered.ValueOrDie());
}

const char* const kQuery1 =
    "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
    "GROUP BY G OVER TIME ORDER BY G, T1";
const char* const kQuery2 =
    "TEMPORAL SELECT X.G, X.V, Y.V FROM RA X, RB Y "
    "WHERE X.G = Y.G ORDER BY G";
const char* const kQuery3 =
    "TEMPORAL SELECT C.G, V, CNT FROM "
    "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R "
    "GROUP BY G OVER TIME) C, R S WHERE C.G = S.G ORDER BY G";
const char* const kQuery4 =
    "TEMPORAL SELECT COALESCE G, CNT FROM "
    "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R "
    "GROUP BY G OVER TIME) C ORDER BY G, T1";

TEST(ExplainAnalyzeSnapshotTest, Query1TemporalAggregation) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(7, 150, 6, 60));
  Middleware mw(&db, StableConfig());
  const std::string actual = RunExplainAnalyze(&mw, kQuery1);
  const std::string golden =
      "EXPLAIN ANALYZE rows=199 elapsed=#\n"
      "plan: fresh, executions=1, reoptimized=0\n"
      "TAGGR^M [M] rows est=176 act=199 q=1.13 batches=# cost=# self=# incl=# work=#\n"
      "  TRANSFER^M [M] rows est=150 act=150 q=1.00 batches=# cost=# self=# incl=# "
      "work=#\n";
  EXPECT_EQ(golden, actual) << "actual:\n" << actual;
}

TEST(ExplainAnalyzeSnapshotTest, Query2TemporalJoin) {
  dbms::Engine db;
  Load(&db, "RA", MakeRelation(11, 120, 5, 50));
  Load(&db, "RB", MakeRelation(11 ^ 0xbeef, 100, 5, 50));
  Middleware mw(&db, StableConfig());
  const std::string actual = RunExplainAnalyze(&mw, kQuery2);
  const std::string golden =
      "EXPLAIN ANALYZE rows=557 elapsed=#\n"
      "plan: fresh, executions=1, reoptimized=0\n"
      "TJOIN^M [M] rows est=440 act=557 q=1.27 batches=# cost=# self=# incl=# work=#\n"
      "  TRANSFER^M [M] rows est=120 act=120 q=1.00 batches=# cost=# self=# incl=# "
      "work=#\n"
      "  TRANSFER^M [M] rows est=100 act=100 q=1.00 batches=# cost=# self=# incl=# "
      "work=#\n";
  EXPECT_EQ(golden, actual) << "actual:\n" << actual;
}

TEST(ExplainAnalyzeSnapshotTest, Query3AggregationJoinWithTransferD) {
  // The fault-matrix cost tweak: no middleware join, no DBMS aggregation —
  // the aggregate must ship down through TRANSFER^D, whose actual-rows and
  // Q-error columns must render as "-".
  dbms::Engine db;
  Load(&db, "R", MakeRelation(23, 150, 6, 60));
  Middleware mw(&db, StableConfig());
  cost::CostFactors* f = &mw.cost_model().factors();
  f->tjm = f->mjm = 1e9;
  f->taggd1 = f->taggd2 = 1e9;
  const std::string actual = RunExplainAnalyze(&mw, kQuery3);
  const std::string golden =
      "EXPLAIN ANALYZE rows=646 elapsed=#\n"
      "plan: fresh, executions=1, reoptimized=0\n"
      "TRANSFER^M [M] rows est=521 act=646 q=1.24 batches=# cost=# self=# incl=# "
      "work=#\n"
      "  TRANSFER^D [D] rows est=176 act=- q=- batches=# cost=# self=# incl=# work=#\n"
      "    TAGGR^M [M] rows est=176 act=195 q=1.11 batches=# cost=# self=# incl=# "
      "work=#\n"
      "      TRANSFER^M [M] rows est=150 act=150 q=1.00 batches=# cost=# self=# incl=# "
      "work=#\n";
  EXPECT_EQ(golden, actual) << "actual:\n" << actual;
  EXPECT_NE(actual.find("TRANSFER^D"), std::string::npos);
  EXPECT_NE(actual.find("act=- q=-"), std::string::npos);
}

TEST(ExplainAnalyzeSnapshotTest, Query4CoalescedAggregation) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(31, 150, 6, 60));
  Middleware mw(&db, StableConfig());
  const std::string actual = RunExplainAnalyze(&mw, kQuery4);
  const std::string golden =
      "EXPLAIN ANALYZE rows=177 elapsed=#\n"
      "plan: fresh, executions=1, reoptimized=0\n"
      "SORT^M [M] rows est=123 act=177 q=1.43 batches=# cost=# self=# incl=# work=#\n"
      "  COALESCE^M [M] rows est=123 act=177 q=1.43 batches=# cost=# self=# incl=# "
      "work=#\n"
      "    PROJECT^M [M] rows est=176 act=205 q=1.16 batches=# cost=# self=# incl=# "
      "work=#\n"
      "      SORT^M [M] rows est=176 act=205 q=1.16 batches=# cost=# self=# incl=# "
      "work=#\n"
      "        TAGGR^M [M] rows est=176 act=205 q=1.16 batches=# cost=# self=# incl=# "
      "work=#\n"
      "          TRANSFER^M [M] rows est=150 act=150 q=1.00 batches=# cost=# self=# "
      "incl=# work=#\n";
  EXPECT_EQ(golden, actual) << "actual:\n" << actual;
}

// ---------------------------------------------------------------------------
// Report-level invariants (independent of the rendered text).

TEST(AnalyzeReportTest, InvariantsHoldForQuery2) {
  dbms::Engine db;
  Load(&db, "RA", MakeRelation(11, 120, 5, 50));
  Load(&db, "RB", MakeRelation(11 ^ 0xbeef, 100, 5, 50));
  Middleware mw(&db, StableConfig());
  auto prepared = mw.Prepare(kQuery2);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto r = mw.Analyze(prepared.ValueOrDie());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::AnalyzeReport& report = r.ValueOrDie();

  ASSERT_FALSE(report.ops.empty());
  ASSERT_LT(report.root, report.ops.size());
  EXPECT_GT(report.result_rows, 0u);

  const obs::OpObservation& root = report.ops[report.root];
  // The root operator delivers the query's result rows, and its inclusive
  // time is part of (hence bounded by) the query's elapsed time.
  EXPECT_EQ(root.act_rows, report.result_rows);
  EXPECT_LE(root.inclusive_seconds, report.elapsed_seconds);

  std::vector<bool> is_child(report.ops.size(), false);
  for (const obs::OpObservation& op : report.ops) {
    EXPECT_EQ(op.site == 'M' || op.site == 'D', true) << op.label;
    EXPECT_GE(op.self_seconds, 0.0) << op.label;
    EXPECT_LE(op.self_seconds, op.inclusive_seconds + 1e-9) << op.label;
    EXPECT_GE(obs::QError(op.est_rows, static_cast<double>(op.act_rows)), 1.0)
        << op.label;
    for (size_t c : op.children) {
      ASSERT_LT(c, report.ops.size());
      is_child[c] = true;
      // A child's inclusive interval is contained in the parent's work.
      EXPECT_LE(report.ops[c].inclusive_seconds,
                op.inclusive_seconds + 1e-9)
          << op.label << " -> " << report.ops[c].label;
    }
  }
  // Exactly one root: every other observation is some operator's child.
  EXPECT_FALSE(is_child[report.root]);
  for (size_t i = 0; i < report.ops.size(); ++i) {
    if (i != report.root) {
      EXPECT_TRUE(is_child[i]) << report.ops[i].label;
    }
  }
}

TEST(AnalyzeReportTest, QErrorDefinition) {
  EXPECT_DOUBLE_EQ(obs::QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(obs::QError(5, 20), 4.0);
  EXPECT_DOUBLE_EQ(obs::QError(20, 5), 4.0);
  // Both sides floored at one row: empty results stay finite.
  EXPECT_DOUBLE_EQ(obs::QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(obs::QError(0, 8), 8.0);
  EXPECT_DOUBLE_EQ(obs::QError(8, 0), 8.0);
}

// ---------------------------------------------------------------------------
// Q-error bound on the UIS workload: with collected statistics (ANALYZE has
// run), the optimizer's cardinality estimates for the paper's Query 1 stay
// within a fixed factor of the measured row counts at every operator.

TEST(AnalyzeReportTest, UisQuery1QErrorBoundAfterAnalyze) {
  dbms::Engine db;
  workload::UisOptions opts;
  opts.employee_rows = 500;
  opts.position_rows = 4000;
  ASSERT_TRUE(workload::LoadUis(&db, opts).ok());

  Middleware mw(&db, StableConfig());
  auto prepared = mw.Prepare(
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
      "GROUP BY PosID OVER TIME ORDER BY PosID");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto r = mw.Analyze(prepared.ValueOrDie());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::AnalyzeReport& report = r.ValueOrDie();

  double worst = 1.0;
  std::string worst_op;
  for (const obs::OpObservation& op : report.ops) {
    if (op.label.find("TRANSFER^D") != std::string::npos) continue;
    const double q =
        obs::QError(op.est_rows, static_cast<double>(op.act_rows));
    if (q > worst) {
      worst = q;
      worst_op = op.label;
    }
  }
  // Regression bound: the temporal-aggregation estimate is the loosest in
  // this plan; anything past this factor means the estimator broke.
  EXPECT_LE(worst, 16.0) << "worst Q-error at " << worst_op;
}

}  // namespace
}  // namespace tango
