// Targeted recovery tests: idempotent transfer retries, shared-cache
// hygiene under failure, graceful degradation to site-restricted fallback
// plans, deadline/cancellation unwinding (including the parallel prefetch
// machinery), and the temp-table janitor + startup orphan sweep.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>

#include "common/rng.h"
#include "exec/transfer.h"
#include "tango/middleware.h"

namespace tango {
namespace {

struct RandomRelation {
  std::vector<Tuple> rows;  // (G, V, T1, T2)
};

RandomRelation MakeRelation(uint64_t seed, size_t n, int64_t groups,
                            int64_t horizon) {
  Rng rng(seed);
  RandomRelation rel;
  for (size_t i = 0; i < n; ++i) {
    const int64_t t1 = rng.Uniform(0, horizon);
    rel.rows.push_back({Value(rng.Uniform(1, groups)),
                        Value(rng.Uniform(0, 50)), Value(t1),
                        Value(t1 + rng.Uniform(1, horizon / 4))});
  }
  return rel;
}

void Load(dbms::Engine* db, const std::string& table,
          const RandomRelation& rel) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE " + table + " (G INT, V INT, T1 INT, T2 INT)")
          .ok());
  ASSERT_TRUE(db->BulkLoad(table, rel.rows).ok());
  ASSERT_TRUE(db->Execute("ANALYZE " + table).ok());
}

Middleware::Config StableConfig() {
  Middleware::Config config;
  config.wire.simulate_delay = false;
  config.adapt = false;  // keep the plan shape fixed across runs
  return config;
}

std::multiset<std::string> RowSet(const Middleware::Execution& exec) {
  std::multiset<std::string> rows;
  for (const Tuple& t : exec.rows) {
    std::string s;
    for (const Value& v : t) s += v.ToString() + "|";
    rows.insert(std::move(s));
  }
  return rows;
}

bool CatalogHasTempTables(dbms::Engine* db) {
  for (const std::string& t : db->catalog().TableNames()) {
    if (t.find("TANGO_TMP") != std::string::npos) return true;
  }
  return false;
}

const char* kAggrQuery =
    "TEMPORAL SELECT G, T1, T2, COUNT(G) AS CNT FROM R "
    "GROUP BY G OVER TIME ORDER BY G, T1";

// Aggregate in the middleware, join in the DBMS: the plan must ship the
// aggregate down through TRANSFER^D (temp table + CREATE/BULKLOAD/DROP).
const char* kTransferDQuery =
    "TEMPORAL SELECT C.G, V, CNT FROM "
    "(TEMPORAL SELECT G, COUNT(G) AS CNT FROM R GROUP BY G OVER TIME) C, "
    "R S WHERE C.G = S.G ORDER BY G";

void ForceTransferDShape(cost::CostFactors* f) {
  f->tjm = f->mjm = 1e9;        // no middleware join
  f->taggd1 = f->taggd2 = 1e9;  // no DBMS aggregation
}

TEST(RecoveryTest, TransferMRetriesInPlace) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(3, 300, 8, 80));
  Middleware mw(&db, StableConfig());
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  auto baseline = mw.Query(kAggrQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "SELECT";
  plan.times = 2;  // two failures, budget of 3 retries: must recover
  injector->Arm(plan);
  auto faulted = mw.Query(kAggrQuery);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(RowSet(faulted.ValueOrDie()), RowSet(baseline.ValueOrDie()));
  EXPECT_FALSE(faulted.ValueOrDie().degraded);
  EXPECT_GE(mw.recovery_counters().tm_retries.load(), 2u);
  EXPECT_EQ(injector->faults_fired(), 2u);
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, CursorKillMidStreamRepositions) {
  // Unit-level restart-and-skip: a cursor killed on its third prefetch
  // batch must re-issue the SELECT, skip the rows already delivered, and
  // stream the remainder — byte-identical to an unfaulted run.
  dbms::Engine db;
  Load(&db, "R", MakeRelation(5, 100, 4, 40));
  dbms::WireConfig wc;
  wc.simulate_delay = false;
  wc.row_prefetch = 16;  // many small batches
  dbms::Connection conn(&db, wc);
  const std::string sql = "SELECT G, V, T1, T2 FROM R";
  const Schema schema = conn.GetTableSchema("R").ValueOrDie();

  auto drain = [&](exec::TransferMCursor* c, std::vector<Tuple>* out) {
    TANGO_RETURN_IF_ERROR(c->Init());
    Tuple t;
    while (true) {
      auto more = c->Next(&t);
      TANGO_RETURN_IF_ERROR(more.status());
      if (!more.ValueOrDie()) return Status::OK();
      out->push_back(t);
    }
  };

  std::vector<Tuple> expected;
  {
    exec::TransferMCursor clean(&conn, sql, schema);
    ASSERT_TRUE(drain(&clean, &expected).ok());
    ASSERT_EQ(expected.size(), 100u);
  }

  auto injector = std::make_shared<dbms::FaultInjector>();
  conn.set_fault_injector(injector);
  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kCursorKill;
  plan.batch_index = 2;
  injector->Arm(plan);

  RecoveryCounters counters;
  std::vector<Tuple> got;
  exec::TransferMCursor faulted(&conn, sql, schema, {}, nullptr, nullptr,
                                RetryPolicy(), &counters);
  ASSERT_TRUE(drain(&faulted, &got).ok());
  EXPECT_EQ(injector->faults_fired(), 1u);
  EXPECT_EQ(counters.tm_retries.load(), 1u);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t c = 0; c < expected[i].size(); ++c) {
      EXPECT_EQ(got[i][c].Compare(expected[i][c]), 0) << i << "," << c;
    }
  }
}

TEST(RecoveryTest, SharedTransferCacheNotPoisonedByFailure) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(9, 80, 4, 40));
  dbms::WireConfig wc;
  wc.simulate_delay = false;
  wc.row_prefetch = 16;
  dbms::Connection conn(&db, wc);
  const std::string sql = "SELECT G, V, T1, T2 FROM R";
  const Schema schema = conn.GetTableSchema("R").ValueOrDie();
  auto cache = std::make_shared<exec::TransferCache>();
  cache->MarkShared(sql);

  auto injector = std::make_shared<dbms::FaultInjector>();
  conn.set_fault_injector(injector);
  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kCursorKill;
  plan.batch_index = 0;
  plan.times = 1000;  // outlast any budget
  injector->Arm(plan);

  RetryPolicy tight;
  tight.max_attempts = 2;
  RecoveryCounters counters;
  exec::TransferMCursor first(&conn, sql, schema, {}, cache, nullptr, tight,
                              &counters);
  const Status failed = first.Init();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsTransientCode(failed.code())) << failed.ToString();
  EXPECT_NE(failed.message().find("TRANSFER^M"), std::string::npos)
      << failed.ToString();
  // The poisoning contract: a failed materialization stores nothing.
  EXPECT_EQ(cache->Get(sql), nullptr);

  injector->Disarm();
  exec::TransferMCursor second(&conn, sql, schema, {}, cache, nullptr,
                               RetryPolicy(), &counters);
  ASSERT_TRUE(second.Init().ok());
  Tuple t;
  size_t n = 0;
  while (true) {
    auto more = second.Next(&t);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ValueOrDie()) break;
    ++n;
  }
  EXPECT_EQ(n, 80u);
  auto stored = cache->Get(sql);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->size(), 80u);
}

TEST(RecoveryTest, TransferDRetriesDropAndRecreate) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(13, 200, 6, 60));
  Middleware mw(&db, StableConfig());
  ForceTransferDShape(&mw.cost_model().factors());
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  auto baseline = mw.Query(kTransferDQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "CREATE TABLE TANGO_TMP";
  injector->Arm(plan);
  auto faulted = mw.Query(kTransferDQuery);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(injector->faults_fired(), 1u);
  EXPECT_GE(mw.recovery_counters().td_retries.load(), 1u);
  EXPECT_EQ(RowSet(faulted.ValueOrDie()), RowSet(baseline.ValueOrDie()));
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, OutageOutlastingBudgetDegradesToDbmsOnly) {
  // A transient outage that consumes exactly the TRANSFER^M budget and
  // then clears: the chosen plan fails, the middleware re-plans DBMS-only
  // and delivers the same rows, recording the downgrade.
  dbms::Engine db;
  Load(&db, "R", MakeRelation(17, 250, 7, 70));
  Middleware::Config config = StableConfig();
  ASSERT_TRUE(config.degrade_on_failure);
  Middleware mw(&db, config);
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  auto baseline = mw.Query(kAggrQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_FALSE(baseline.ValueOrDie().degraded);

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "SELECT";
  plan.times = config.retry.max_attempts;  // budget gone, then outage ends
  injector->Arm(plan);
  auto degraded = mw.Query(kAggrQuery);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.ValueOrDie().degraded);
  EXPECT_EQ(mw.recovery_counters().downgrades.load(), 1u);
  EXPECT_EQ(mw.recovery_counters().tm_retries.load(),
            static_cast<uint64_t>(config.retry.max_attempts - 1));
  EXPECT_EQ(RowSet(degraded.ValueOrDie()), RowSet(baseline.ValueOrDie()));
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, TransferDFailureDegradesToMiddlewareOnly) {
  // The temp-table CREATE fails permanently: TRANSFER^D is unusable, so
  // the fallback must avoid the DBMS side entirely (middleware-only) —
  // and succeed even though the injector is still armed.
  dbms::Engine db;
  Load(&db, "R", MakeRelation(19, 200, 6, 60));
  Middleware mw(&db, StableConfig());
  ForceTransferDShape(&mw.cost_model().factors());
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  auto baseline = mw.Query(kTransferDQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kStatementFail;
  plan.sql_substring = "CREATE TABLE TANGO_TMP";
  plan.times = 1000;
  injector->Arm(plan);
  auto degraded = mw.Query(kTransferDQuery);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.ValueOrDie().degraded);
  EXPECT_EQ(mw.recovery_counters().downgrades.load(), 1u);
  EXPECT_GE(mw.recovery_counters().td_retries.load(), 1u);
  EXPECT_EQ(RowSet(degraded.ValueOrDie()), RowSet(baseline.ValueOrDie()));
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, CancelBeforeExecutionAborts) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(21, 100, 5, 50));
  Middleware mw(&db, StableConfig());
  auto control = std::make_shared<QueryControl>();
  control->Cancel();
  auto r = mw.Query(kAggrQuery, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status().ToString();
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, MidQueryCancelUnwindsParallelPlan) {
  // A paced, parallel (dop > 1) query cancelled mid-flight must unwind —
  // including the PrefetchCursor producer thread — without deadlocking,
  // and leave no temp tables behind.
  dbms::Engine db;
  Load(&db, "R", MakeRelation(25, 500, 8, 100));
  Middleware::Config config;
  config.adapt = false;
  config.dop = 2;
  config.wire.simulate_delay = true;
  config.wire.bytes_per_second = 2e4;  // slow link: plenty of time to cancel
  Middleware mw(&db, config);

  auto control = std::make_shared<QueryControl>();
  std::thread canceller([control] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    control->Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto r = mw.Query(kAggrQuery, control);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status().ToString();
  // Far below what the full transfer would have taken on this link; mostly
  // a guard against a hung prefetch handshake.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, DeadlineExpiresDuringLatencySpike) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(27, 100, 5, 50));
  Middleware mw(&db, StableConfig());
  auto injector = std::make_shared<dbms::FaultInjector>();
  mw.connection().set_fault_injector(injector);

  dbms::FaultPlan plan;
  plan.kind = dbms::FaultKind::kLatencySpike;
  plan.latency_seconds = 0.5;
  plan.times = 1000;
  injector->Arm(plan);

  auto control = std::make_shared<QueryControl>();
  control->SetDeadline(0.05);
  const auto start = std::chrono::steady_clock::now();
  auto r = mw.Query(kAggrQuery, control);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  // The spike sleeps in small slices polling the control, so the query
  // dies at the deadline, not after the full stall — and kTimeout is not
  // retryable, so no backoff loop piles on top.
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout) << r.status().ToString();
  EXPECT_LT(elapsed, 2.0);
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, JanitorCountsLeaksAndStartupSweepReclaims) {
  dbms::Engine db;
  Load(&db, "R", MakeRelation(29, 200, 6, 60));
  {
    Middleware mw(&db, StableConfig());
    ForceTransferDShape(&mw.cost_model().factors());
    auto injector = std::make_shared<dbms::FaultInjector>();
    mw.connection().set_fault_injector(injector);

    dbms::FaultPlan plan;
    plan.kind = dbms::FaultKind::kStatementFail;
    plan.sql_substring = "DROP TABLE TANGO_TMP";
    plan.times = 1000;
    injector->Arm(plan);

    // The query itself succeeds; only its cleanup is being sabotaged.
    auto r = mw.Query(kTransferDQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.ValueOrDie().cleanup_status.ok());
    EXPECT_GE(mw.recovery_counters().drop_retries.load(), 1u);
    EXPECT_GE(mw.recovery_counters().temp_table_drop_failures.load(), 1u);
    EXPECT_GE(mw.recovery_counters().temp_tables_leaked.load(), 1u);
    EXPECT_TRUE(CatalogHasTempTables(&db));
  }
  // A fresh middleware (fault gone) reclaims the orphans at startup.
  Middleware fresh(&db, StableConfig());
  EXPECT_GE(fresh.recovery_counters().orphans_swept.load(), 1u);
  EXPECT_FALSE(CatalogHasTempTables(&db));
}

TEST(RecoveryTest, StartupSweepReclaimsCheckpointedWalSegments) {
  // Durable garbage variant of the orphan sweep: WAL segments fully covered
  // by a checkpoint snapshot are dead weight a crashed run can leave
  // behind; the janitor's startup sweep asks the engine to truncate them.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("tango_rec_walsweep_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    dbms::EngineOptions opts;
    opts.wal_dir = dir.string();
    opts.wal_segment_bytes = 1 << 10;  // force many small segments
    dbms::Engine db(opts);
    ASSERT_TRUE(db.Open().ok());
    Load(&db, "R", MakeRelation(29, 200, 6, 60));
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO R VALUES (1, " +
                             std::to_string(i) + ", 0, 10)")
                      .ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());

    size_t segments_before = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".seg") ++segments_before;
    }
    ASSERT_GT(segments_before, 1u);

    Middleware mw(&db, StableConfig());
    EXPECT_GE(mw.recovery_counters().wal_segments_reclaimed.load(), 1u);

    size_t segments_after = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".seg") ++segments_after;
    }
    EXPECT_LT(segments_after, segments_before);

    // The surviving log still recovers the full table.
    Middleware again(&db, StableConfig());
    EXPECT_EQ(again.recovery_counters().wal_segments_reclaimed.load(), 0u);
  }
  {
    dbms::EngineOptions opts;
    opts.wal_dir = dir.string();
    opts.wal_segment_bytes = 1 << 10;
    dbms::Engine db(opts);
    ASSERT_TRUE(db.Open().ok());
    auto r = db.Execute("SELECT * FROM R");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().rows.size(), 250u);
  }
  fs::remove_all(dir);
}

TEST(RecoveryTest, RetryStateDisciplines) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryState state(policy);
  const Status transient = Status::Unavailable("flaky");
  EXPECT_TRUE(state.ShouldRetry(transient));
  // Internal errors are never retried: the bug won't go away.
  EXPECT_FALSE(state.ShouldRetry(Status::Internal("bug")));
  // kTimeout is transient but not retryable (the deadline governs).
  EXPECT_FALSE(state.ShouldRetry(Status::Timeout("deadline")));

  ASSERT_TRUE(state.Backoff(nullptr).ok());
  EXPECT_TRUE(state.ShouldRetry(transient));
  ASSERT_TRUE(state.Backoff(nullptr).ok());
  EXPECT_FALSE(state.ShouldRetry(transient)) << "budget of 3 attempts";

  // Backoff fails fast on a dead control instead of sleeping.
  auto cancelled = std::make_shared<QueryControl>();
  cancelled->Cancel();
  RetryState s2(policy);
  EXPECT_EQ(s2.Backoff(cancelled).code(), StatusCode::kAborted);

  auto expiring = std::make_shared<QueryControl>();
  expiring->SetDeadline(1e-9);
  RetryState s3(policy);
  EXPECT_EQ(s3.Backoff(expiring).code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace tango
