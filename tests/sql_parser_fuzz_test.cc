// Seeded mutation fuzzer for the lexer and both parsers: starts from valid
// SQL / temporal-SQL statements, applies random mutations (truncation, token
// swaps, random byte injection), and asserts every layer returns a Status
// instead of crashing, throwing, or hanging. Deterministic: a failure
// reproduces from the printed seed and iteration.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapt/fingerprint.h"
#include "common/rng.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tsql/tsql.h"

namespace tango {
namespace {

const char* const kSeeds[] = {
    "SELECT * FROM POSITION",
    "SELECT DISTINCT PosID, EmpName FROM POSITION WHERE T1 < 100 AND T2 > 5 "
    "ORDER BY PosID DESC, T1",
    "SELECT P.POSID, GREATEST(A.T1, P.T1), LEAST(A.T2, P.T2) "
    "FROM TANGO_TMP_1 A, POSITION P WHERE A.POSID = P.POSID AND "
    "A.T1 < P.T2 AND A.T2 > P.T1",
    "SELECT G, COUNT(G) AS CNT FROM R GROUP BY G HAVING COUNT(G) > 1",
    "SELECT X FROM (SELECT Y AS X FROM T WHERE Y BETWEEN 1 AND 10) S "
    "UNION ALL SELECT Z FROM U ORDER BY X",
    "CREATE TABLE T (A INT, B VARCHAR(12), C DOUBLE, T1 INT, T2 INT)",
    "CREATE INDEX IX ON T (A)",
    "INSERT INTO T VALUES (1, 'a''b', 2.5, NULL, 3), (2, 'x', -1.0, 4, 5)",
    "DROP TABLE T",
    "ANALYZE",
    "SELECT A + B * -C / 2 - 1, DATE '1997-02-01' FROM T "
    "WHERE NOT (A <> 3 OR B >= 'zz') -- trailing comment",
    "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
    "GROUP BY PosID OVER TIME ORDER BY PosID",
    "TEMPORAL SELECT C.PosID, EmpName FROM (TEMPORAL SELECT PosID, "
    "COUNT(PosID) AS CNT FROM POSITION GROUP BY PosID OVER TIME) C, "
    "POSITION P WHERE C.PosID = P.PosID",
    "TEMPORAL SELECT COALESCE G, V FROM R WHERE T1 OVERLAPS PERIOD (3, 9)",
    "TEMPORAL SELECT DISTINCT A FROM R WHERE T CONTAINS 7",
};

std::string Mutate(const std::string& base, Rng* rng) {
  std::string s = base;
  const int kind = static_cast<int>(rng->Uniform(0, 3));
  switch (kind) {
    case 0: {  // truncate at a random point
      if (!s.empty()) s.resize(rng->Uniform(0, static_cast<int64_t>(s.size())));
      break;
    }
    case 1: {  // swap two random whitespace-delimited tokens
      std::vector<std::string> words;
      std::string w;
      for (char c : s) {
        if (c == ' ') {
          if (!w.empty()) words.push_back(w);
          w.clear();
        } else {
          w += c;
        }
      }
      if (!w.empty()) words.push_back(w);
      if (words.size() >= 2) {
        const size_t a = rng->Uniform(0, words.size() - 1);
        const size_t b = rng->Uniform(0, words.size() - 1);
        std::swap(words[a], words[b]);
      }
      s.clear();
      for (const std::string& word : words) {
        if (!s.empty()) s += ' ';
        s += word;
      }
      break;
    }
    case 2: {  // overwrite 1-8 random positions with random bytes
      if (s.empty()) break;
      const int n = static_cast<int>(rng->Uniform(1, 8));
      for (int i = 0; i < n; ++i) {
        s[rng->Uniform(0, static_cast<int64_t>(s.size()) - 1)] =
            static_cast<char>(rng->Uniform(0, 255));
      }
      break;
    }
    default: {  // insert a random byte
      const char c = static_cast<char>(rng->Uniform(0, 255));
      s.insert(s.begin() + rng->Uniform(0, static_cast<int64_t>(s.size())), c);
      break;
    }
  }
  return s;
}

/// A fixed schema for the temporal parser's provider; unknown tables
/// resolve too, so the fuzzer reaches deeper analysis stages.
Result<Schema> FuzzSchema(const std::string&) {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "G", DataType::kInt},
                 {"", "V", DataType::kString},
                 {"", "A", DataType::kInt},
                 {"", "B", DataType::kString},
                 {"", "T", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

TEST(SqlParserFuzzTest, MutatedInputsNeverCrash) {
  Rng rng(0xF0220805);
  constexpr int kIterations = 1200;
  size_t lexer_ok = 0, sql_ok = 0, tsql_ok = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    const std::string& base =
        kSeeds[rng.Uniform(0, std::size(kSeeds) - 1)];
    std::string input = Mutate(base, &rng);
    // Occasionally stack a second mutation for compound damage.
    if (rng.Bernoulli(0.3)) input = Mutate(input, &rng);

    SCOPED_TRACE("iter=" + std::to_string(iter) + " input=" + input);

    // Every layer must produce a Status, never crash or throw.
    auto tokens = sql::Lexer::Tokenize(input);
    if (tokens.ok()) ++lexer_ok;
    auto stmt = sql::Parser::Parse(input);
    if (stmt.ok()) ++sql_ok;
    auto plan = tsql::Parser::Parse(input, FuzzSchema);
    if (plan.ok()) ++tsql_ok;
  }
  // Sanity: the mutations must not be so destructive that nothing parses —
  // otherwise the fuzzer only exercises the first error return.
  EXPECT_GT(lexer_ok, kIterations / 10);
  EXPECT_GT(sql_ok + tsql_ok, kIterations / 20);
}

TEST(SqlParserFuzzTest, PathologicalInputsReturnStatus) {
  const std::string cases[] = {
      "",
      " ",
      ";",
      "'",
      "'unterminated",
      "SELECT 'a",
      "((((((((((",
      std::string(10000, '('),
      std::string(5000, '*'),
      "SELECT " + std::string(2000, '-'),  // comment eats the rest
      "\xff\xfe\x00\x01",
      std::string("SELECT \0 FROM T", 15),
      "SELECT 99999999999999999999999999 FROM T",
      "SELECT 1e99999 FROM T",
      "SELECT A FROM T WHERE A = DATE 'not-a-date'",
      "SELECT A FROM T ORDER BY",
      "TEMPORAL",
      "TEMPORAL SELECT",
      "TEMPORAL SELECT COALESCE FROM R",
      "GROUP BY OVER TIME",
  };
  for (const std::string& input : cases) {
    SCOPED_TRACE(input.substr(0, 60));
    (void)sql::Lexer::Tokenize(input);
    (void)sql::Parser::Parse(input);
    (void)tsql::Parser::Parse(input, FuzzSchema);
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Fingerprint stability fuzzing (adapt/fingerprint): replacing every lifted
// literal with a random value of the same type must never change the
// fingerprint (that is the plan cache's key invariant), while structurally
// distinct seed queries must never share one.

/// Seeds for the fingerprint section: every one parses through the temporal
/// parser under FuzzSchema and carries at least one liftable literal (the
/// crash seeds above intentionally include DDL and unsupported syntax, which
/// never reach canonicalization).
const char* const kFpSeeds[] = {
    "SELECT PosID, EmpName FROM POSITION WHERE T1 < 100 AND T2 > 5",
    "SELECT PosID FROM POSITION WHERE T1 < 100 AND T2 > 5 ORDER BY PosID DESC",
    "SELECT A, B FROM T WHERE A > 10 AND B = 'abc'",
    "SELECT A FROM T WHERE A + 2 > 7 AND A <> 3",
    "SELECT G FROM R WHERE G >= 4 OR G <= 1",
    "SELECT P.POSID FROM TANGO_TMP_1 A, POSITION P "
    "WHERE A.POSID = P.POSID AND A.T1 < 44 AND P.T2 > 9",
    "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
    "WHERE PosID > 3 GROUP BY PosID OVER TIME ORDER BY PosID",
    "TEMPORAL SELECT G FROM R WHERE G = 2 AND T1 < 8",
    "SELECT A FROM T WHERE B < 'zz' AND A * 1.5 > 2.25",
    "SELECT DISTINCT A FROM T WHERE A BETWEEN 1 AND 10",
};

Value RandomOfSameType(const Value& v, Rng* rng) {
  if (v.is_int()) return Value(rng->Uniform(-100000, 100000));
  if (v.is_double()) {
    return Value(static_cast<double>(rng->Uniform(-1000000, 1000000)) / 128.0);
  }
  if (v.is_string()) {
    std::string s;
    const int len = static_cast<int>(rng->Uniform(0, 12));
    for (int i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng->Uniform(0, 25));
    }
    return Value(s);
  }
  return v;
}

TEST(FingerprintFuzzTest, LiteralRandomizationPreservesFingerprint) {
  Rng rng(0xF1229E55);
  size_t parsed = 0, literal_sites = 0;
  for (const char* seed : kFpSeeds) {
    auto plan = tsql::Parser::Parse(seed, FuzzSchema);
    ASSERT_TRUE(plan.ok()) << seed << ": " << plan.status().ToString();
    ++parsed;
    const adapt::ParameterizedQuery base =
        adapt::ParameterizeQuery(plan.ValueOrDie());
    literal_sites += base.params.size();

    // Identity rebind reproduces the plan exactly.
    EXPECT_EQ(adapt::BindLogicalParams(base.plan, base.params)->ToString(),
              plan.ValueOrDie()->ToString())
        << seed;

    for (int iter = 0; iter < 40; ++iter) {
      SCOPED_TRACE(std::string(seed) + " iter=" + std::to_string(iter));
      std::vector<Value> mutated;
      mutated.reserve(base.params.size());
      for (const Value& v : base.params) {
        mutated.push_back(RandomOfSameType(v, &rng));
      }
      const adapt::ParameterizedQuery variant = adapt::ParameterizeQuery(
          adapt::BindLogicalParams(base.plan, mutated));
      EXPECT_EQ(variant.canon, base.canon);
      EXPECT_EQ(variant.hash, base.hash);
      ASSERT_EQ(variant.params.size(), base.params.size());
      for (size_t i = 0; i < mutated.size(); ++i) {
        EXPECT_EQ(variant.params[i], mutated[i]);
      }
    }
  }
  // The property must actually have been exercised.
  EXPECT_GE(parsed, 5u);
  EXPECT_GE(literal_sites, 5u);
}

TEST(FingerprintFuzzTest, StructurallyDistinctSeedsNeverCollide) {
  std::vector<std::pair<std::string, adapt::ParameterizedQuery>> queries;
  for (const char* seed : kFpSeeds) {
    auto plan = tsql::Parser::Parse(seed, FuzzSchema);
    if (plan.ok()) {
      queries.emplace_back(seed,
                           adapt::ParameterizeQuery(plan.ValueOrDie()));
    }
  }
  ASSERT_GE(queries.size(), 5u);
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      EXPECT_NE(queries[i].second.canon, queries[j].second.canon)
          << queries[i].first << " vs " << queries[j].first;
      EXPECT_NE(queries[i].second.hash, queries[j].second.hash)
          << queries[i].first << " vs " << queries[j].first;
    }
  }
}

TEST(FingerprintFuzzTest, MutatedInputsHashConsistently) {
  // Hash must be a pure function of the canon, even on heavily damaged
  // inputs that still parse: canon equality and hash equality agree.
  Rng rng(0xF1CAFE02);
  constexpr int kIterations = 600;
  size_t compared = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    const std::string& base =
        kFpSeeds[rng.Uniform(0, std::size(kFpSeeds) - 1)];
    auto base_plan = tsql::Parser::Parse(base, FuzzSchema);
    if (!base_plan.ok()) continue;
    const std::string input = Mutate(base, &rng);
    auto plan = tsql::Parser::Parse(input, FuzzSchema);
    if (!plan.ok()) continue;
    SCOPED_TRACE("iter=" + std::to_string(iter) + " input=" + input);
    const adapt::ParameterizedQuery a =
        adapt::ParameterizeQuery(base_plan.ValueOrDie());
    const adapt::ParameterizedQuery b =
        adapt::ParameterizeQuery(plan.ValueOrDie());
    EXPECT_EQ(a.canon == b.canon, a.hash == b.hash);
    ++compared;
  }
  EXPECT_GT(compared, 20u);
}

}  // namespace
}  // namespace tango
