// Seeded mutation fuzzer for the lexer and both parsers: starts from valid
// SQL / temporal-SQL statements, applies random mutations (truncation, token
// swaps, random byte injection), and asserts every layer returns a Status
// instead of crashing, throwing, or hanging. Deterministic: a failure
// reproduces from the printed seed and iteration.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tsql/tsql.h"

namespace tango {
namespace {

const char* const kSeeds[] = {
    "SELECT * FROM POSITION",
    "SELECT DISTINCT PosID, EmpName FROM POSITION WHERE T1 < 100 AND T2 > 5 "
    "ORDER BY PosID DESC, T1",
    "SELECT P.POSID, GREATEST(A.T1, P.T1), LEAST(A.T2, P.T2) "
    "FROM TANGO_TMP_1 A, POSITION P WHERE A.POSID = P.POSID AND "
    "A.T1 < P.T2 AND A.T2 > P.T1",
    "SELECT G, COUNT(G) AS CNT FROM R GROUP BY G HAVING COUNT(G) > 1",
    "SELECT X FROM (SELECT Y AS X FROM T WHERE Y BETWEEN 1 AND 10) S "
    "UNION ALL SELECT Z FROM U ORDER BY X",
    "CREATE TABLE T (A INT, B VARCHAR(12), C DOUBLE, T1 INT, T2 INT)",
    "CREATE INDEX IX ON T (A)",
    "INSERT INTO T VALUES (1, 'a''b', 2.5, NULL, 3), (2, 'x', -1.0, 4, 5)",
    "DROP TABLE T",
    "ANALYZE",
    "SELECT A + B * -C / 2 - 1, DATE '1997-02-01' FROM T "
    "WHERE NOT (A <> 3 OR B >= 'zz') -- trailing comment",
    "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION "
    "GROUP BY PosID OVER TIME ORDER BY PosID",
    "TEMPORAL SELECT C.PosID, EmpName FROM (TEMPORAL SELECT PosID, "
    "COUNT(PosID) AS CNT FROM POSITION GROUP BY PosID OVER TIME) C, "
    "POSITION P WHERE C.PosID = P.PosID",
    "TEMPORAL SELECT COALESCE G, V FROM R WHERE T1 OVERLAPS PERIOD (3, 9)",
    "TEMPORAL SELECT DISTINCT A FROM R WHERE T CONTAINS 7",
};

std::string Mutate(const std::string& base, Rng* rng) {
  std::string s = base;
  const int kind = static_cast<int>(rng->Uniform(0, 3));
  switch (kind) {
    case 0: {  // truncate at a random point
      if (!s.empty()) s.resize(rng->Uniform(0, static_cast<int64_t>(s.size())));
      break;
    }
    case 1: {  // swap two random whitespace-delimited tokens
      std::vector<std::string> words;
      std::string w;
      for (char c : s) {
        if (c == ' ') {
          if (!w.empty()) words.push_back(w);
          w.clear();
        } else {
          w += c;
        }
      }
      if (!w.empty()) words.push_back(w);
      if (words.size() >= 2) {
        const size_t a = rng->Uniform(0, words.size() - 1);
        const size_t b = rng->Uniform(0, words.size() - 1);
        std::swap(words[a], words[b]);
      }
      s.clear();
      for (const std::string& word : words) {
        if (!s.empty()) s += ' ';
        s += word;
      }
      break;
    }
    case 2: {  // overwrite 1-8 random positions with random bytes
      if (s.empty()) break;
      const int n = static_cast<int>(rng->Uniform(1, 8));
      for (int i = 0; i < n; ++i) {
        s[rng->Uniform(0, static_cast<int64_t>(s.size()) - 1)] =
            static_cast<char>(rng->Uniform(0, 255));
      }
      break;
    }
    default: {  // insert a random byte
      const char c = static_cast<char>(rng->Uniform(0, 255));
      s.insert(s.begin() + rng->Uniform(0, static_cast<int64_t>(s.size())), c);
      break;
    }
  }
  return s;
}

/// A fixed schema for the temporal parser's provider; unknown tables
/// resolve too, so the fuzzer reaches deeper analysis stages.
Result<Schema> FuzzSchema(const std::string&) {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "G", DataType::kInt},
                 {"", "V", DataType::kString},
                 {"", "A", DataType::kInt},
                 {"", "B", DataType::kString},
                 {"", "T", DataType::kInt},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

TEST(SqlParserFuzzTest, MutatedInputsNeverCrash) {
  Rng rng(0xF0220805);
  constexpr int kIterations = 1200;
  size_t lexer_ok = 0, sql_ok = 0, tsql_ok = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    const std::string& base =
        kSeeds[rng.Uniform(0, std::size(kSeeds) - 1)];
    std::string input = Mutate(base, &rng);
    // Occasionally stack a second mutation for compound damage.
    if (rng.Bernoulli(0.3)) input = Mutate(input, &rng);

    SCOPED_TRACE("iter=" + std::to_string(iter) + " input=" + input);

    // Every layer must produce a Status, never crash or throw.
    auto tokens = sql::Lexer::Tokenize(input);
    if (tokens.ok()) ++lexer_ok;
    auto stmt = sql::Parser::Parse(input);
    if (stmt.ok()) ++sql_ok;
    auto plan = tsql::Parser::Parse(input, FuzzSchema);
    if (plan.ok()) ++tsql_ok;
  }
  // Sanity: the mutations must not be so destructive that nothing parses —
  // otherwise the fuzzer only exercises the first error return.
  EXPECT_GT(lexer_ok, kIterations / 10);
  EXPECT_GT(sql_ok + tsql_ok, kIterations / 20);
}

TEST(SqlParserFuzzTest, PathologicalInputsReturnStatus) {
  const std::string cases[] = {
      "",
      " ",
      ";",
      "'",
      "'unterminated",
      "SELECT 'a",
      "((((((((((",
      std::string(10000, '('),
      std::string(5000, '*'),
      "SELECT " + std::string(2000, '-'),  // comment eats the rest
      "\xff\xfe\x00\x01",
      std::string("SELECT \0 FROM T", 15),
      "SELECT 99999999999999999999999999 FROM T",
      "SELECT 1e99999 FROM T",
      "SELECT A FROM T WHERE A = DATE 'not-a-date'",
      "SELECT A FROM T ORDER BY",
      "TEMPORAL",
      "TEMPORAL SELECT",
      "TEMPORAL SELECT COALESCE FROM R",
      "GROUP BY OVER TIME",
  };
  for (const std::string& input : cases) {
    SCOPED_TRACE(input.substr(0, 60));
    (void)sql::Lexer::Tokenize(input);
    (void)sql::Parser::Parse(input);
    (void)tsql::Parser::Parse(input, FuzzSchema);
  }
  SUCCEED();
}

}  // namespace
}  // namespace tango
