// Differential correctness tests for the parallel execution engine: every
// parallel operator is run against its serial counterpart over seeded random
// inputs (including degenerate and adversarial shapes) and must agree —
// bit-identically for the sort and the transfer drain, set-equally for the
// partitioned temporal join. Plus ThreadPool unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "dbms/engine.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/sort.h"
#include "tango/middleware.h"
#include "workload/uis.h"

namespace tango {
namespace exec {
namespace {

constexpr size_t kDop = 4;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsTasksToCompletion) {
  common::ThreadPool pool(kDop);
  EXPECT_EQ(pool.num_threads(), kDop);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i, &sum]() {
      sum += 1;
      return i * i;
    }));
  }
  int total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(sum.load(), 100);
  EXPECT_EQ(total, 328350);  // sum of squares 0..99
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  common::ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 7; });
  auto bad = pool.Submit([]() -> int {
    throw std::runtime_error("task exploded");
  });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, ReusableAfterDrain) {
  common::ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([i]() { return i; }));
    }
    int sum = 0;
    for (auto& f : futures) sum += f.get();
    EXPECT_EQ(sum, 190);
  }
}

// ---------------------------------------------------------------------------
// Shared generators / helpers
// ---------------------------------------------------------------------------

Schema RelSchema() {
  return Schema({{"", "KEY", DataType::kInt},
                 {"", "VAL", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

/// Random rows; `adversarial_periods` makes every period span nearly the
/// whole time domain, so each tuple crosses every partition boundary.
std::vector<Tuple> RandomRows(Rng* rng, size_t n, int64_t key_range,
                              bool adversarial_periods = false,
                              double null_fraction = 0.05) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t key = rng->Uniform(0, key_range);
    int64_t t1, t2;
    if (adversarial_periods) {
      // Starts spread across the domain (so partitioning engages) but every
      // period reaches near the end: each tuple crosses every partition
      // boundary above its start and gets replicated into all of them.
      t1 = rng->Uniform(0, 200);
      t2 = rng->Uniform(900, 1000);
    } else {
      t1 = rng->Uniform(0, 1000);
      t2 = t1 + rng->Uniform(1, 200);
    }
    Tuple row = {Value(key), Value(rng->Identifier(3)), Value(t1), Value(t2)};
    if (rng->Bernoulli(null_fraction)) row[2] = Value::Null();
    if (rng->Bernoulli(null_fraction / 2)) row[3] = Value::Null();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string TupleRepr(const Tuple& t) {
  std::string s;
  for (const Value& v : t) {
    s += v.is_null() ? "<null>" : v.ToString();
    s += "|";
  }
  return s;
}

std::vector<std::string> Reprs(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(TupleRepr(t));
  return out;
}

// ---------------------------------------------------------------------------
// Parallel external sort: bit-identical to the serial sort
// ---------------------------------------------------------------------------

void CheckSortDifferential(const std::vector<Tuple>& input, size_t budget,
                           common::ThreadPoolPtr pool,
                           const std::string& label) {
  const std::vector<SortKey> keys = {{0, true}, {2, false}};

  SortCursor serial(std::make_unique<VectorCursor>(RelSchema(), input), keys,
                    budget);
  auto serial_rows = MaterializeAll(&serial);
  ASSERT_TRUE(serial_rows.ok()) << label;

  ParallelSortCursor parallel(
      std::make_unique<VectorCursor>(RelSchema(), input), keys, pool, budget,
      kDop);
  auto parallel_rows = MaterializeAll(&parallel);
  ASSERT_TRUE(parallel_rows.ok()) << label;

  // Bit-identical: same rows in the same order.
  EXPECT_EQ(Reprs(serial_rows.ValueOrDie()),
            Reprs(parallel_rows.ValueOrDie()))
      << label;
}

TEST(ParallelSortTest, DifferentialAgainstSerial) {
  auto pool = std::make_shared<common::ThreadPool>(kDop);
  Rng rng(20260805);

  // One row of this shape is ~40 bytes; budget 640 gives chunks of
  // 160 bytes (~4 rows) at DOP 4, so the boundary sizes below exercise
  // empty, single-row, exactly-one-chunk, and chunk+1 inputs.
  const size_t kBudget = 640;
  const size_t sizes[] = {0, 1, 2, 4, 5, 16, 17, 100, 1000};
  for (size_t n : sizes) {
    // Narrow key range => many duplicate keys => the stability tie-break
    // must match between the serial and parallel merges.
    auto input = RandomRows(&rng, n, 5);
    CheckSortDifferential(input, kBudget, pool, "spilling n=" +
                          std::to_string(n));
    CheckSortDifferential(input, 32 << 20, pool,
                          "in-memory n=" + std::to_string(n));
  }
  for (int round = 0; round < 10; ++round) {
    const size_t n = static_cast<size_t>(rng.Uniform(0, 400));
    auto input = RandomRows(&rng, n, 50);
    CheckSortDifferential(input, kBudget, pool,
                          "random round=" + std::to_string(round));
  }
}

TEST(ParallelSortTest, SpillsAndMergesLargeInput) {
  auto pool = std::make_shared<common::ThreadPool>(kDop);
  Rng rng(7);
  auto input = RandomRows(&rng, 2000, 100, false, 0.0);
  ParallelSortCursor cursor(
      std::make_unique<VectorCursor>(RelSchema(), input), {{0, true}}, pool,
      /*memory_budget_bytes=*/4096, kDop);
  auto rows = MaterializeAll(&cursor);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.ValueOrDie().size(), input.size());
  EXPECT_GT(cursor.spilled_runs(), 0u);
  EXPECT_GT(cursor.total_runs(), kDop);
}

TEST(ParallelSortTest, WorksWithoutPool) {
  Rng rng(11);
  auto input = RandomRows(&rng, 100, 10);
  CheckSortDifferential(input, 512, nullptr, "null pool");
}

// ---------------------------------------------------------------------------
// Partitioned temporal join: set-equal to the serial temporal join
// ---------------------------------------------------------------------------

Schema JoinOutSchema() {
  return Schema({{"", "KEY", DataType::kInt},
                 {"", "VALL", DataType::kString},
                 {"", "VALR", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

/// Key-sorts `rows` (merge-join input requirement).
std::vector<Tuple> KeySorted(std::vector<Tuple> rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a[0].Compare(b[0]) < 0;
                   });
  return rows;
}

void CheckJoinDifferential(const std::vector<Tuple>& left,
                           const std::vector<Tuple>& right,
                           common::ThreadPoolPtr pool,
                           const std::string& label,
                           bool expect_partitioned = false) {
  const std::vector<size_t> lkeys = {0}, rkeys = {0};
  const std::vector<size_t> left_out = {0, 1}, right_out = {1};

  TemporalJoinCursor serial(
      std::make_unique<VectorCursor>(RelSchema(), left),
      std::make_unique<VectorCursor>(RelSchema(), right), lkeys, rkeys, 2, 3,
      2, 3, left_out, right_out, JoinOutSchema());
  auto serial_rows = MaterializeAll(&serial);
  ASSERT_TRUE(serial_rows.ok()) << label;

  ParallelTemporalJoinCursor parallel(
      std::make_unique<VectorCursor>(RelSchema(), left),
      std::make_unique<VectorCursor>(RelSchema(), right), lkeys, rkeys, 2, 3,
      2, 3, left_out, right_out, JoinOutSchema(), pool, kDop);
  auto parallel_rows = MaterializeAll(&parallel);
  ASSERT_TRUE(parallel_rows.ok()) << label;
  if (expect_partitioned) {
    EXPECT_EQ(parallel.partitions_used(), kDop) << label;
  }

  // Set-equal (multiset, order-insensitive): partition concatenation does
  // not preserve the serial left-key order.
  auto s = Reprs(serial_rows.ValueOrDie());
  auto p = Reprs(parallel_rows.ValueOrDie());
  std::sort(s.begin(), s.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(s, p) << label;
}

TEST(ParallelTemporalJoinTest, DifferentialAgainstSerial) {
  auto pool = std::make_shared<common::ThreadPool>(kDop);
  Rng rng(20260806);

  const size_t sizes[] = {0, 1, 2, 5, 16, 17, 200};
  for (size_t ln : sizes) {
    for (size_t rn : {size_t{0}, size_t{1}, size_t{100}}) {
      auto left = KeySorted(RandomRows(&rng, ln, 8));
      auto right = KeySorted(RandomRows(&rng, rn, 8));
      CheckJoinDifferential(left, right, pool,
                            "n=" + std::to_string(ln) + "x" +
                                std::to_string(rn));
    }
  }
  for (int round = 0; round < 10; ++round) {
    auto left = KeySorted(RandomRows(&rng, 150, 10));
    auto right = KeySorted(RandomRows(&rng, 150, 10));
    CheckJoinDifferential(left, right, pool,
                          "random round=" + std::to_string(round),
                          /*expect_partitioned=*/true);
  }
}

TEST(ParallelTemporalJoinTest, AdversarialPeriodsCrossAllBoundaries) {
  auto pool = std::make_shared<common::ThreadPool>(kDop);
  Rng rng(99);
  // Every period spans ~[0..5, 995..1000): each tuple is replicated into
  // every partition; the intersection-start window rule must still emit
  // each pair exactly once.
  auto left = KeySorted(RandomRows(&rng, 80, 4, /*adversarial=*/true, 0.0));
  auto right = KeySorted(RandomRows(&rng, 80, 4, /*adversarial=*/true, 0.0));
  CheckJoinDifferential(left, right, pool, "adversarial",
                        /*expect_partitioned=*/true);
}

TEST(ParallelTemporalJoinTest, DegeneratePeriodsAndNulls) {
  auto pool = std::make_shared<common::ThreadPool>(kDop);
  Rng rng(123);
  // Mix in empty periods ([t, t)) and inverted ones; the overlap predicate
  // treats them like the serial join does.
  auto tweak = [&rng](std::vector<Tuple> rows) {
    for (Tuple& t : rows) {
      if (!t[2].is_null() && rng.Bernoulli(0.3)) t[3] = t[2];
      if (!t[2].is_null() && !t[3].is_null() && rng.Bernoulli(0.2)) {
        std::swap(t[2], t[3]);
      }
    }
    return rows;
  };
  auto left = KeySorted(tweak(RandomRows(&rng, 120, 6, false, 0.2)));
  auto right = KeySorted(tweak(RandomRows(&rng, 120, 6, false, 0.2)));
  CheckJoinDifferential(left, right, pool, "degenerate");
}

// ---------------------------------------------------------------------------
// Prefetching transfer drain: bit-identical pass-through + error paths
// ---------------------------------------------------------------------------

/// Cursor that fails after producing `ok_rows` rows.
class FailingCursor : public Cursor {
 public:
  FailingCursor(Schema schema, size_t ok_rows)
      : schema_(std::move(schema)), ok_rows_(ok_rows) {}

  Status Init() override {
    produced_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* tuple) override {
    if (produced_ >= ok_rows_) return Status::IOError("wire dropped");
    *tuple = {Value(static_cast<int64_t>(produced_++))};
    return true;
  }
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  size_t ok_rows_;
  size_t produced_ = 0;
};

TEST(PrefetchCursorTest, DifferentialPassThrough) {
  Rng rng(5);
  // Sizes around the batch boundary (batch_rows = 8 here).
  for (size_t n : {0, 1, 7, 8, 9, 64, 1000}) {
    auto input = RandomRows(&rng, n, 20);
    PrefetchCursor prefetch(
        std::make_unique<VectorCursor>(RelSchema(), input), /*batch_rows=*/8,
        /*max_batches=*/2);
    auto rows = MaterializeAll(&prefetch);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(Reprs(rows.ValueOrDie()), Reprs(input)) << n;
  }
}

TEST(PrefetchCursorTest, PropagatesProducerErrors) {
  Schema schema({{"", "N", DataType::kInt}});
  PrefetchCursor prefetch(std::make_unique<FailingCursor>(schema, 20),
                          /*batch_rows=*/8, /*max_batches=*/2);
  ASSERT_TRUE(prefetch.Init().ok());
  Tuple t;
  size_t got = 0;
  Status error = Status::OK();
  while (true) {
    Result<bool> r = prefetch.Next(&t);
    if (!r.ok()) {
      error = r.status();
      break;
    }
    if (!r.ValueOrDie()) break;
    ++got;
  }
  EXPECT_EQ(error.code(), StatusCode::kIOError);
  EXPECT_EQ(got, 16u);  // full batches delivered before the error surfaced
}

TEST(PrefetchCursorTest, TeardownWithoutDrainingDoesNotHang) {
  Rng rng(6);
  auto input = RandomRows(&rng, 500, 20);
  auto prefetch = std::make_unique<PrefetchCursor>(
      std::make_unique<VectorCursor>(RelSchema(), input), 8, 2);
  ASSERT_TRUE(prefetch->Init().ok());
  Tuple t;
  ASSERT_TRUE(prefetch->Next(&t).ValueOrDie());
  prefetch.reset();  // producer blocked on a full queue must unblock
}

TEST(PrefetchCursorTest, ReInitRestartsStream) {
  Rng rng(8);
  auto input = RandomRows(&rng, 40, 20);
  PrefetchCursor prefetch(
      std::make_unique<VectorCursor>(RelSchema(), input), 8, 2);
  for (int round = 0; round < 3; ++round) {
    auto rows = MaterializeAll(&prefetch);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.ValueOrDie().size(), input.size()) << round;
  }
}

// ---------------------------------------------------------------------------
// End to end: a DOP-4 middleware returns exactly the serial results
// ---------------------------------------------------------------------------

TEST(ParallelMiddlewareTest, Query1PipelineMatchesSerial) {
  dbms::Engine db;
  workload::UisOptions opts;
  ASSERT_TRUE(workload::LoadPositionVariant(&db, "POSITION_T", 3000, opts).ok());

  const std::string query =
      "TEMPORAL SELECT PosID, T1, T2, COUNT(PosID) AS CNT FROM POSITION_T "
      "GROUP BY PosID OVER TIME ORDER BY PosID, T1";

  Middleware::Config serial_cfg;
  serial_cfg.wire.simulate_delay = false;
  Middleware serial_mw(&db, serial_cfg);
  auto serial = serial_mw.Query(query);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  Middleware::Config par_cfg = serial_cfg;
  par_cfg.dop = kDop;
  // Tiny sort budget so the parallel sort genuinely chunks and spills.
  par_cfg.sort_memory_budget_bytes = 16 << 10;
  Middleware parallel_mw(&db, par_cfg);
  auto parallel = parallel_mw.Query(query);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(Reprs(serial.ValueOrDie().rows),
            Reprs(parallel.ValueOrDie().rows));
}

TEST(ParallelMiddlewareTest, TemporalJoinQueryMatchesSerial) {
  dbms::Engine db;
  workload::UisOptions opts;
  opts.employee_rows = 500;
  opts.position_rows = 2500;
  ASSERT_TRUE(workload::LoadUis(&db, opts).ok());

  // The running example (§2.2): temporal aggregation joined back to
  // POSITION — exercises TJOIN^M above two transfers.
  const std::string query =
      "TEMPORAL SELECT C.PosID, EmpName, T1, T2, CNT "
      "FROM (TEMPORAL SELECT PosID, COUNT(PosID) AS CNT "
      "      FROM POSITION GROUP BY PosID OVER TIME) C, POSITION P "
      "WHERE C.PosID = P.PosID ORDER BY PosID";

  Middleware::Config serial_cfg;
  serial_cfg.wire.simulate_delay = false;
  Middleware serial_mw(&db, serial_cfg);
  auto serial = serial_mw.Query(query);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  Middleware::Config par_cfg = serial_cfg;
  par_cfg.dop = kDop;
  Middleware parallel_mw(&db, par_cfg);
  auto parallel = parallel_mw.Query(query);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  auto s = Reprs(serial.ValueOrDie().rows);
  auto p = Reprs(parallel.ValueOrDie().rows);
  std::sort(s.begin(), s.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(s, p);
}

/// DOP must shift cost estimates: the same middleware sort gets cheaper.
TEST(ParallelCostModelTest, DopDiscountsMiddlewareCpuTerms) {
  cost::CostModel serial_model;
  cost::CostModel parallel_model;
  parallel_model.set_parallelism(4, 0.75);
  EXPECT_DOUBLE_EQ(parallel_model.EffectiveDop(), 3.25);
  EXPECT_LT(parallel_model.SortM(1e6, 1e4), serial_model.SortM(1e6, 1e4));
  EXPECT_LT(parallel_model.TJoinM(1e6, 1e6, 1e5),
            serial_model.TJoinM(1e6, 1e6, 1e5));
  // DBMS-side and transfer formulas are unaffected.
  EXPECT_DOUBLE_EQ(parallel_model.SortD(1e6, 1e4),
                   serial_model.SortD(1e6, 1e4));
  EXPECT_DOUBLE_EQ(parallel_model.TransferM(1e6), serial_model.TransferM(1e6));
}

}  // namespace
}  // namespace exec
}  // namespace tango
