#include <gtest/gtest.h>

#include "algebra/algebra.h"

namespace tango {
namespace algebra {
namespace {

Schema PosSchema() {
  return Schema({{"", "POSID", DataType::kInt},
                 {"", "EMPNAME", DataType::kString},
                 {"", "T1", DataType::kInt},
                 {"", "T2", DataType::kInt}});
}

OpPtr PosScan(const std::string& alias = "") {
  return Scan("POSITION", PosSchema(), alias).ValueOrDie();
}

TEST(AlgebraTest, ScanQualifiesSchema) {
  auto scan = PosScan("A");
  EXPECT_EQ(scan->schema.column(0).table, "A");
  EXPECT_EQ(scan->schema.IndexOf("A.POSID").ValueOrDie(), 0u);
  // Default alias is the table name.
  auto plain = PosScan();
  EXPECT_EQ(plain->schema.column(0).table, "POSITION");
}

TEST(AlgebraTest, SelectValidatesPredicate) {
  auto ok = Select(PosScan(), Expr::Binary(BinaryOp::kEq,
                                           Expr::ColumnRef("POSID"),
                                           Expr::Int(1)));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie()->schema.num_columns(), 4u);
  auto bad = Select(PosScan(), Expr::Binary(BinaryOp::kEq,
                                            Expr::ColumnRef("NOPE"),
                                            Expr::Int(1)));
  EXPECT_FALSE(bad.ok());
}

TEST(AlgebraTest, ProjectDerivesTypes) {
  auto p = Project(PosScan(), {{Expr::ColumnRef("POSID"), "PID"},
                               {Expr::Binary(BinaryOp::kSub,
                                             Expr::ColumnRef("T2"),
                                             Expr::ColumnRef("T1")),
                                "DUR"}});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.ValueOrDie()->schema.column(0).name, "PID");
  EXPECT_EQ(p.ValueOrDie()->schema.column(1).type, DataType::kInt);
}

TEST(AlgebraTest, TJoinSchemaDropsJoinAttrAndIntersectsPeriod) {
  // TAGGR(POSITION) ⋈^T POSITION on PosID, as in the running example.
  auto agg = TAggregate(PosScan(), {"POSID"},
                        {{AggFunc::kCount, "POSID", "COUNTOFPOSID"}});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  // Aggregation schema: POSID, T1, T2, COUNTOFPOSID.
  EXPECT_EQ(agg.ValueOrDie()->schema.num_columns(), 4u);
  EXPECT_EQ(agg.ValueOrDie()->schema.column(3).name, "COUNTOFPOSID");
  EXPECT_EQ(agg.ValueOrDie()->schema.column(3).type, DataType::kInt);

  auto tj = TJoin(agg.ValueOrDie(), PosScan("B"), {{"POSID", "B.POSID"}});
  ASSERT_TRUE(tj.ok()) << tj.status().ToString();
  // left minus period: POSID, COUNTOFPOSID; right minus join attr + period:
  // EMPNAME; then T1, T2.
  const Schema& s = tj.ValueOrDie()->schema;
  ASSERT_EQ(s.num_columns(), 5u);
  EXPECT_EQ(s.column(0).name, "POSID");
  EXPECT_EQ(s.column(1).name, "COUNTOFPOSID");
  EXPECT_EQ(s.column(2).name, "EMPNAME");
  EXPECT_EQ(s.column(3).name, "T1");
  EXPECT_EQ(s.column(4).name, "T2");
}

TEST(AlgebraTest, TJoinRequiresPeriods) {
  Schema no_period({{"", "X", DataType::kInt}});
  auto scan = Scan("R", no_period).ValueOrDie();
  EXPECT_FALSE(TJoin(scan, PosScan(), {}).ok());
  EXPECT_FALSE(TAggregate(scan, {}, {{AggFunc::kCount, "", "C"}}).ok());
  EXPECT_FALSE(Coalesce(scan).ok());
}

TEST(AlgebraTest, TAggregateAvgIsDouble) {
  auto agg = TAggregate(PosScan(), {}, {{AggFunc::kAvg, "POSID", "A"}});
  ASSERT_TRUE(agg.ok());
  // Schema: T1, T2, A.
  EXPECT_EQ(agg.ValueOrDie()->schema.num_columns(), 3u);
  EXPECT_EQ(agg.ValueOrDie()->schema.column(2).type, DataType::kDouble);
}

TEST(AlgebraTest, DifferenceRequiresCompatibleArms) {
  auto a = PosScan("A");
  auto b = PosScan("B");
  EXPECT_TRUE(Difference(a, b).ok());
  Schema other({{"", "X", DataType::kInt}});
  EXPECT_FALSE(Difference(a, Scan("R", other).ValueOrDie()).ok());
}

TEST(AlgebraTest, InitialPlanOfFigure4a) {
  // T^M(sort(π(⋈^T(ξ(POSITION), POSITION)))) — the running example's
  // initial plan shape.
  auto agg = TAggregate(PosScan("A"), {"POSID"},
                        {{AggFunc::kCount, "POSID", "COUNTOFPOSID"}})
                 .ValueOrDie();
  auto tj = TJoin(agg, PosScan("B"), {{"POSID", "B.POSID"}}).ValueOrDie();
  auto proj = Project(tj, {{Expr::ColumnRef("POSID"), "POSID"},
                           {Expr::ColumnRef("EMPNAME"), "EMPNAME"},
                           {Expr::ColumnRef("T1"), "T1"},
                           {Expr::ColumnRef("T2"), "T2"},
                           {Expr::ColumnRef("COUNTOFPOSID"), "COUNTOFPOSID"}})
                  .ValueOrDie();
  auto sorted = Sort(proj, {{"POSID", true}}).ValueOrDie();
  auto plan = TransferM(sorted).ValueOrDie();
  EXPECT_EQ(plan->schema.num_columns(), 5u);
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("T^M"), std::string::npos);
  EXPECT_NE(rendered.find("TAGGR"), std::string::npos);
  EXPECT_NE(rendered.find("TJOIN"), std::string::npos);
}

TEST(AlgebraTest, WithChildrenRebuildsAndRederives) {
  auto sel = Select(PosScan(), Expr::Binary(BinaryOp::kLt,
                                            Expr::ColumnRef("T1"),
                                            Expr::Int(100)))
                 .ValueOrDie();
  auto rebuilt = WithChildren(*sel, {PosScan("Z")});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.ValueOrDie()->schema.column(0).table, "Z");
}

TEST(AlgebraTest, FingerprintsDistinguishParameters) {
  auto s1 = Sort(PosScan(), {{"POSID", true}}).ValueOrDie();
  auto s2 = Sort(PosScan(), {{"POSID", false}}).ValueOrDie();
  auto s3 = Sort(PosScan(), {{"POSID", true}}).ValueOrDie();
  EXPECT_NE(s1->ParamFingerprint(), s2->ParamFingerprint());
  EXPECT_EQ(s1->ParamFingerprint(), s3->ParamFingerprint());
  EXPECT_TRUE(s1->Equals(*s3));
  EXPECT_FALSE(s1->Equals(*s2));
}

TEST(AlgebraTest, EqualsComparesDeeply) {
  auto a = Select(PosScan(), Expr::Binary(BinaryOp::kEq,
                                          Expr::ColumnRef("POSID"),
                                          Expr::Int(1)))
               .ValueOrDie();
  auto b = Select(PosScan(), Expr::Binary(BinaryOp::kEq,
                                          Expr::ColumnRef("POSID"),
                                          Expr::Int(1)))
               .ValueOrDie();
  auto c = Select(PosScan("X"), Expr::Binary(BinaryOp::kEq,
                                             Expr::ColumnRef("POSID"),
                                             Expr::Int(1)))
               .ValueOrDie();
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

}  // namespace
}  // namespace algebra
}  // namespace tango
