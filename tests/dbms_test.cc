#include <gtest/gtest.h>

#include "common/date.h"
#include "dbms/connection.h"
#include "dbms/engine.h"

namespace tango {
namespace dbms {
namespace {

// The POSITION relation of Figure 3(a).
void LoadFigure3(Engine* db) {
  ASSERT_TRUE(db->Execute("CREATE TABLE POSITION (PosID INT, EmpName "
                          "VARCHAR(20), T1 INT, T2 INT)")
                  .ok());
  ASSERT_TRUE(db->Execute("INSERT INTO POSITION VALUES "
                          "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), "
                          "(2, 'Tom', 5, 10)")
                  .ok());
}

TEST(EngineTest, CreateInsertSelect) {
  Engine db;
  LoadFigure3(&db);
  auto r = db.Execute("SELECT PosID, EmpName FROM POSITION WHERE T1 >= 5 "
                      "ORDER BY PosID DESC, EmpName");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& rows = r.ValueOrDie().rows;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);
  EXPECT_EQ(rows[0][1].AsString(), "Tom");
  EXPECT_EQ(rows[1][1].AsString(), "Jane");
}

TEST(EngineTest, ProjectionExpressionsAndAliases) {
  Engine db;
  LoadFigure3(&db);
  auto r = db.Execute(
      "SELECT PosID * 10 AS P10, T2 - T1 AS DUR, GREATEST(T1, 4) AS G "
      "FROM POSITION ORDER BY P10, DUR");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& res = r.ValueOrDie();
  EXPECT_EQ(res.schema.column(0).name, "P10");
  EXPECT_EQ(res.schema.column(1).name, "DUR");
  ASSERT_EQ(res.rows.size(), 3u);
  EXPECT_EQ(res.rows[0][0].AsInt(), 10);
  EXPECT_EQ(res.rows[0][1].AsInt(), 18);  // Tom: 20-2
  EXPECT_EQ(res.rows[0][2].AsInt(), 4);   // GREATEST(2,4)
}

TEST(EngineTest, SelfJoinWithQualifiers) {
  Engine db;
  LoadFigure3(&db);
  // Overlapping same-position pairs (Query 3 shape).
  auto r = db.Execute(
      "SELECT A.EmpName, B.EmpName FROM POSITION A, POSITION B "
      "WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1 "
      "AND A.EmpName < B.EmpName");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().rows[0][0].AsString(), "Jane");
  EXPECT_EQ(r.ValueOrDie().rows[0][1].AsString(), "Tom");
}

TEST(EngineTest, JoinMethodsAgree) {
  Engine db;
  LoadFigure3(&db);
  ASSERT_TRUE(db.Execute("CREATE TABLE NAMES (EmpName VARCHAR(20), Nice INT)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO NAMES VALUES ('Tom', 1), ('Jane', 0)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX IX ON NAMES (EmpName)").ok());
  const char* q =
      "SELECT PosID, Nice FROM POSITION A, NAMES B "
      "WHERE A.EmpName = B.EmpName ORDER BY PosID, Nice";
  auto run = [&](SessionConfig::JoinMethod m) {
    db.config().forced_join = m;
    auto r = db.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ValueOrDie().rows;
  };
  const auto hash_rows = run(SessionConfig::JoinMethod::kHash);
  const auto merge_rows = run(SessionConfig::JoinMethod::kMerge);
  const auto nl_rows = run(SessionConfig::JoinMethod::kNestedLoop);
  const auto auto_rows = run(SessionConfig::JoinMethod::kAuto);
  ASSERT_EQ(hash_rows.size(), 3u);
  for (const auto& rows : {merge_rows, nl_rows, auto_rows}) {
    ASSERT_EQ(rows.size(), hash_rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t c = 0; c < rows[i].size(); ++c) {
        EXPECT_EQ(rows[i][c].Compare(hash_rows[i][c]), 0) << i << "," << c;
      }
    }
  }
}

TEST(EngineTest, GroupByAggregates) {
  Engine db;
  LoadFigure3(&db);
  auto r = db.Execute(
      "SELECT PosID, COUNT(*) AS C, MIN(T1) AS MN, MAX(T2) AS MX, "
      "AVG(T1) AS AV FROM POSITION GROUP BY PosID ORDER BY PosID");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& rows = r.ValueOrDie().rows;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_EQ(rows[0][2].AsInt(), 2);
  EXPECT_EQ(rows[0][3].AsInt(), 25);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 3.5);
  EXPECT_EQ(rows[1][1].AsInt(), 1);
}

TEST(EngineTest, HavingFiltersGroups) {
  Engine db;
  LoadFigure3(&db);
  auto r = db.Execute(
      "SELECT PosID FROM POSITION GROUP BY PosID HAVING COUNT(*) > 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().rows[0][0].AsInt(), 1);
}

TEST(EngineTest, GlobalAggregateOnEmptyInput) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE E (X INT)").ok());
  auto r = db.Execute("SELECT COUNT(*) AS C, SUM(X) AS S FROM E");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.ValueOrDie().rows[0][1].is_null());
}

TEST(EngineTest, AggregatesSkipNulls) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE N (G INT, X INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO N VALUES (1, 5), (1, NULL), (1, 7)")
                  .ok());
  auto r = db.Execute(
      "SELECT G, COUNT(X) AS C, AVG(X) AS A FROM N GROUP BY G");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().rows[0][2].AsDouble(), 6.0);
}

TEST(EngineTest, UnionDistinctAndAll) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE U (X INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO U VALUES (1), (2), (2)").ok());
  auto distinct = db.Execute("SELECT X FROM U UNION SELECT X FROM U");
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  EXPECT_EQ(distinct.ValueOrDie().rows.size(), 2u);
  auto all = db.Execute("SELECT X FROM U UNION ALL SELECT X FROM U");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.ValueOrDie().rows.size(), 6u);
}

TEST(EngineTest, DistinctSelect) {
  Engine db;
  LoadFigure3(&db);
  auto r = db.Execute("SELECT DISTINCT EmpName FROM POSITION ORDER BY EmpName");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().rows.size(), 2u);
  EXPECT_EQ(r.ValueOrDie().rows[0][0].AsString(), "Jane");
}

TEST(EngineTest, SubqueryInFrom) {
  Engine db;
  LoadFigure3(&db);
  auto r = db.Execute(
      "SELECT S.PosID, CNT FROM "
      "(SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY PosID) S "
      "WHERE CNT > 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(r.ValueOrDie().rows[0][0].AsInt(), 1);
}

TEST(EngineTest, TemporalAggregationSqlShape) {
  // The nested SQL the Translator-To-SQL emits for TAGGR^D, on the Figure 3
  // data: must reproduce the Figure 3(c) aggregation result.
  Engine db;
  LoadFigure3(&db);
  const char* q =
      "SELECT R.PosID AS PosID, P.T1 AS T1, P.T2 AS T2, COUNT(*) AS CNT "
      "FROM POSITION R, "
      " (SELECT A.G AS G, A.T AS T1, MIN(B.T) AS T2 "
      "  FROM (SELECT PosID AS G, T1 AS T FROM POSITION "
      "        UNION SELECT PosID AS G, T2 AS T FROM POSITION) A, "
      "       (SELECT PosID AS G, T1 AS T FROM POSITION "
      "        UNION SELECT PosID AS G, T2 AS T FROM POSITION) B "
      "  WHERE A.G = B.G AND A.T < B.T GROUP BY A.G, A.T) P "
      "WHERE R.PosID = P.G AND R.T1 <= P.T1 AND P.T2 <= R.T2 "
      "GROUP BY R.PosID, P.T1, P.T2 "
      "ORDER BY PosID, T1";
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& rows = r.ValueOrDie().rows;
  // Figure 3(c): (1,2,5,1) (1,5,20,2) (1,20,25,1) (2,5,10,1).
  ASSERT_EQ(rows.size(), 4u);
  const int64_t expected[4][4] = {
      {1, 2, 5, 1}, {1, 5, 20, 2}, {1, 20, 25, 1}, {2, 5, 10, 1}};
  for (size_t i = 0; i < 4; ++i) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(rows[i][c].AsInt(), expected[i][c]) << i << "," << c;
    }
  }
}

TEST(EngineTest, IndexScanMatchesFullScan) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE R (K INT, P INT)").ok());
  std::string values;
  for (int i = 0; i < 500; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i % 97) + ", " + std::to_string(i) + ")";
  }
  ASSERT_TRUE(db.Execute("INSERT INTO R VALUES " + values).ok());
  auto no_index = db.Execute("SELECT P FROM R WHERE K >= 10 AND K < 15 ORDER BY P");
  ASSERT_TRUE(no_index.ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX IK ON R (K)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE R").ok());
  auto with_index = db.Execute("SELECT P FROM R WHERE K >= 10 AND K < 15 ORDER BY P");
  ASSERT_TRUE(with_index.ok());
  ASSERT_EQ(with_index.ValueOrDie().rows.size(),
            no_index.ValueOrDie().rows.size());
  for (size_t i = 0; i < with_index.ValueOrDie().rows.size(); ++i) {
    EXPECT_EQ(with_index.ValueOrDie().rows[i][0].AsInt(),
              no_index.ValueOrDie().rows[i][0].AsInt());
  }
}

TEST(EngineTest, CreateTableAsSelect) {
  Engine db;
  LoadFigure3(&db);
  ASSERT_TRUE(
      db.Execute("CREATE TABLE TMP AS SELECT PosID, T1 FROM POSITION "
                 "WHERE PosID = 1")
          .ok());
  auto r = db.Execute("SELECT COUNT(*) AS C FROM TMP");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().rows[0][0].AsInt(), 2);
  ASSERT_TRUE(db.Execute("DROP TABLE TMP").ok());
  EXPECT_FALSE(db.Execute("SELECT X FROM TMP").ok());
}

TEST(EngineTest, AnalyzeComputesStats) {
  Engine db;
  LoadFigure3(&db);
  ASSERT_TRUE(db.Execute("ANALYZE POSITION").ok());
  const Table* t = db.catalog().GetTable("POSITION").ValueOrDie();
  const TableStats& s = t->stats();
  EXPECT_TRUE(s.analyzed);
  EXPECT_DOUBLE_EQ(s.cardinality, 3.0);
  EXPECT_GE(s.blocks, 1.0);
  EXPECT_GT(s.avg_tuple_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.columns[0].num_distinct, 2.0);  // PosID in {1,2}
  EXPECT_EQ(s.columns[2].min.AsInt(), 2);             // T1
  EXPECT_EQ(s.columns[3].max.AsInt(), 25);            // T2
  EXPECT_FALSE(s.columns[2].histogram.empty());
  EXPECT_TRUE(s.columns[1].histogram.empty());  // strings: no histogram
}

TEST(EngineTest, ErrorsSurfaceCleanly) {
  Engine db;
  EXPECT_EQ(db.Execute("SELECT X FROM MISSING").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Execute("NONSENSE").status().code(), StatusCode::kParseError);
  LoadFigure3(&db);
  EXPECT_FALSE(db.Execute("SELECT Nope FROM POSITION").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO POSITION VALUES (1)").ok());
  // Ambiguous unqualified column in a self-join.
  EXPECT_FALSE(db.Execute("SELECT A.PosID FROM POSITION A, POSITION B "
                          "WHERE T1 < 5")
                   .ok());
}

TEST(ConnectionTest, RemoteCursorDeliversBatches) {
  Engine db;
  LoadFigure3(&db);
  WireConfig wire;
  wire.simulate_delay = false;
  wire.row_prefetch = 2;
  Connection conn(&db, wire);
  auto cur = conn.ExecuteQuery("SELECT PosID, EmpName FROM POSITION ORDER BY T1");
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  auto rows = MaterializeAll(cur.ValueOrDie().get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.ValueOrDie().size(), 3u);
  EXPECT_EQ(rows.ValueOrDie()[0][1].AsString(), "Tom");
  EXPECT_EQ(conn.counters().batches, 2u);  // 3 rows / prefetch 2
  EXPECT_GT(conn.counters().bytes_to_client, 0u);
}

TEST(ConnectionTest, BulkLoadAndInsertLoadAgree) {
  Engine db;
  ASSERT_TRUE(db.Execute("CREATE TABLE A (X INT, S VARCHAR(8))").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE B (X INT, S VARCHAR(8))").ok());
  WireConfig wire;
  wire.simulate_delay = false;
  Connection conn(&db, wire);
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 20; ++i) {
    rows.push_back({Value(i), Value("s" + std::to_string(i))});
  }
  ASSERT_TRUE(conn.BulkLoad("A", rows).ok());
  ASSERT_TRUE(conn.InsertLoad("B", rows).ok());
  auto a = db.Execute("SELECT COUNT(*) AS C FROM A");
  auto b = db.Execute("SELECT COUNT(*) AS C FROM B");
  EXPECT_EQ(a.ValueOrDie().rows[0][0].AsInt(), 20);
  EXPECT_EQ(b.ValueOrDie().rows[0][0].AsInt(), 20);
  // InsertLoad pays one round trip per row.
  EXPECT_GE(conn.counters().statements, 21u);
}

TEST(ConnectionTest, StatsOverTheWire) {
  Engine db;
  LoadFigure3(&db);
  ASSERT_TRUE(db.Execute("ANALYZE").ok());
  WireConfig wire;
  wire.simulate_delay = false;
  Connection conn(&db, wire);
  auto stats = conn.GetTableStats("POSITION");
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().cardinality, 3.0);
  auto schema = conn.GetTableSchema("POSITION");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.ValueOrDie().num_columns(), 4u);
}

TEST(ConnectionTest, WirePacingAccumulates) {
  Engine db;
  LoadFigure3(&db);
  WireConfig wire;
  wire.simulate_delay = true;
  wire.bytes_per_second = 1e9;  // keep the test fast
  wire.roundtrip_seconds = 1e-5;
  Connection conn(&db, wire);
  ASSERT_TRUE(conn.Execute("SELECT PosID FROM POSITION").ok());
  EXPECT_GT(conn.counters().simulated_seconds, 0.0);
}

}  // namespace
}  // namespace dbms
}  // namespace tango
